// rstore_shell — a minimal interactive/scriptable client for RStore,
// exercising the full public API including the VCS surface. Reads commands
// from stdin, one per line:
//
//   put <branch> <key> <json>     stage-and-commit one upsert
//   del <branch> <key>            commit one delete
//   get <key> @<version|branch>   point lookup
//   checkout <branch|@version>    full version retrieval
//   range <lo> <hi> @<vers|br>    partial retrieval
//   history <key>                 record evolution
//   branch <name> @<vers|br>      create a branch
//   tag <name> @<vers|br>         create a tag
//   log                           version graph summary
//   stats                         storage/span/index statistics
//   metrics [json]                process metrics (Prometheus text or JSON)
//   statz                         metrics snapshot + delta since last statz
//   slowlog [json]                flight recorder: slowest + recent queries
//   trace [-o file] <query...>    run a query, print its span tree; with
//                                 -o, also write Chrome trace JSON
//   verify                        offline integrity check (fsck)
//   repartition                   full offline repartition
//   help / quit
//
// Example session:
//   $ printf 'put master a {"x":1}\nput master a {"x":2}\nhistory a\n' |
//       ./build/examples/rstore_shell

#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/branch_manager.h"
#include "core/report.h"
#include "core/rstore.h"
#include "json/json_parser.h"
#include "kvstore/cluster.h"

using namespace rstore;

namespace {

class Shell {
 public:
  Shell() : cluster_(MakeClusterOptions()) {
    Options options;
    options.algorithm = PartitionAlgorithm::kBottomUp;
    options.chunk_capacity_bytes = 64 << 10;
    options.max_sub_chunk_records = 8;
    options.online_batch_size = 1;  // interactive: apply immediately
    store_ = std::move(RStore::Open(&cluster_, options)).value();
    vcs_ = std::make_unique<BranchManager>(store_.get());
  }

  int Run() {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  static ClusterOptions MakeClusterOptions() {
    ClusterOptions options;
    options.num_nodes = 4;
    options.replication_factor = 2;
    return options;
  }

  /// "@12" -> version 12; "@name" or "name" -> branch tip or tag.
  Result<VersionId> Resolve(const std::string& token) {
    std::string name = token;
    if (!name.empty() && name[0] == '@') name = name.substr(1);
    if (!name.empty() && isdigit(static_cast<unsigned char>(name[0]))) {
      return static_cast<VersionId>(std::stoul(name));
    }
    auto tip = vcs_->Tip(name);
    if (tip.ok()) return tip;
    return vcs_->ResolveTag(name);
  }

  void Report(const Status& s) {
    std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
  }

  void PrintRecords(const std::vector<Record>& records) {
    for (const Record& r : records) {
      std::printf("%-20s %s\n", r.key.ToString().c_str(), r.payload.c_str());
    }
    std::printf("(%zu records)\n", records.size());
  }

  /// `trace [-o file] <checkout|get|range|history> <args...>`: runs the
  /// query with a TraceContext attached, prints the span tree, and (with
  /// -o) writes Chrome trace-event JSON loadable in Perfetto.
  void RunTrace(std::istringstream& in) {
    std::string token, out_file;
    in >> token;
    if (token == "-o") {
      in >> out_file >> token;
    }
    TraceContext trace;
    Status status = Status::OK();
    if (token == "checkout") {
      std::string at;
      in >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return;
      }
      status = store_->GetVersion(*version, nullptr, &trace).status();
    } else if (token == "get") {
      std::string key, at;
      in >> key >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return;
      }
      status = store_->GetRecord(key, *version, nullptr, &trace).status();
    } else if (token == "range") {
      std::string lo, hi, at;
      in >> lo >> hi >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return;
      }
      status =
          store_->GetRange(*version, lo, hi, nullptr, &trace).status();
    } else if (token == "history") {
      std::string key;
      in >> key;
      status = store_->GetHistory(key, nullptr, &trace).status();
    } else {
      std::printf("usage: trace [-o file] <checkout|get|range|history> "
                  "<args...>\n");
      return;
    }
    if (!status.ok()) {
      Report(status);
      return;
    }
    std::printf("%s", trace.ToDebugString().c_str());
    if (!out_file.empty()) {
      FILE* f = std::fopen(out_file.c_str(), "w");
      if (f == nullptr) {
        std::printf("error: cannot write %s\n", out_file.c_str());
        return;
      }
      std::string json = trace.ToChromeTraceJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %zu bytes of Chrome trace JSON to %s\n",
                  json.size(), out_file.c_str());
    }
  }

  /// `slowlog [json]`: the flight recorder's slowest-N selection and
  /// most-recent ring, with full latency attribution per query.
  void RunSlowlog(std::istringstream& in) {
    std::string format;
    in >> format;
    FlightRecorder& recorder = FlightRecorder::Default();
    if (format == "json") {
      std::printf("%s\n", recorder.DumpJson().c_str());
      return;
    }
    auto print_rows = [](const char* title,
                         const std::vector<FlightRecord>& rows) {
      std::printf("%s:\n", title);
      std::printf("  %6s %-20s %9s %9s %9s %9s %9s %5s %5s\n", "id", "name",
                  "total_us", "queue_us", "svc_us", "retry_us", "hedge_us",
                  "retry", "tmout");
      for (const FlightRecord& r : rows) {
        std::printf("  %6llu %-20s %9llu %9llu %9llu %9llu %9llu %5llu %5llu\n",
                    (unsigned long long)r.id, r.name.c_str(),
                    (unsigned long long)r.total_us,
                    (unsigned long long)r.queue_wait_us,
                    (unsigned long long)r.service_us,
                    (unsigned long long)r.retry_penalty_us,
                    (unsigned long long)r.hedge_delta_us,
                    (unsigned long long)r.retries,
                    (unsigned long long)r.timeouts);
      }
      if (rows.empty()) std::printf("  (no queries recorded)\n");
    };
    print_rows("slowest", recorder.Slowest());
    print_rows("recent", recorder.Recent());
  }

  /// `statz`: every registry metric with its delta since the previous statz
  /// call — "what did that last command cost" without external tooling.
  void RunStatz() {
    MetricsSnapshot now = MetricsRegistry::Default().Snapshot();
    std::map<std::string, uint64_t> prev_counters(last_statz_.counters.begin(),
                                                  last_statz_.counters.end());
    std::printf("%-44s %14s %14s\n", "counter", "value", "delta");
    for (const auto& [name, value] : now.counters) {
      auto it = prev_counters.find(name);
      const uint64_t prev = it == prev_counters.end() ? 0 : it->second;
      std::printf("%-44s %14llu %+14lld\n", name.c_str(),
                  (unsigned long long)value,
                  (long long)(value - prev));
    }
    for (const auto& [name, value] : now.gauges) {
      std::printf("%-44s %14lld\n", name.c_str(), (long long)value);
    }
    std::map<std::string, std::pair<uint64_t, uint64_t>> prev_hist;
    for (const MetricsSnapshot::HistogramValue& h : last_statz_.histograms) {
      prev_hist[h.name] = {h.count, h.sum};
    }
    for (const MetricsSnapshot::HistogramValue& h : now.histograms) {
      const auto [prev_count, prev_sum] = prev_hist[h.name];
      std::printf("%-44s count %8llu (%+lld)  sum %12llu (%+lld)\n",
                  h.name.c_str(), (unsigned long long)h.count,
                  (long long)(h.count - prev_count), (unsigned long long)h.sum,
                  (long long)(h.sum - prev_sum));
    }
    last_statz_ = std::move(now);
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty() || command[0] == '#') return true;
    if (command == "quit" || command == "exit") return false;

    if (command == "help") {
      std::printf(
          "commands: put del get checkout range history branch tag log "
          "stats metrics statz slowlog trace report verify repartition "
          "quit\n");
    } else if (command == "put") {
      std::string branch, key;
      in >> branch >> key;
      std::string json;
      std::getline(in, json);
      size_t start = json.find_first_not_of(' ');
      json = start == std::string::npos ? "" : json.substr(start);
      if (!json::Parse(json).ok()) {
        std::printf("error: payload is not valid JSON\n");
        return true;
      }
      CommitDelta delta;
      delta.upserts.push_back({{key, 0}, json});
      auto v = vcs_->Commit(branch, std::move(delta));
      if (v.ok()) {
        std::printf("committed V%u on %s\n", *v, branch.c_str());
      } else {
        Report(v.status());
      }
    } else if (command == "del") {
      std::string branch, key;
      in >> branch >> key;
      CommitDelta delta;
      delta.deletes.push_back(key);
      auto v = vcs_->Commit(branch, std::move(delta));
      if (v.ok()) {
        std::printf("committed V%u on %s\n", *v, branch.c_str());
      } else {
        Report(v.status());
      }
    } else if (command == "get") {
      std::string key, at;
      in >> key >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return true;
      }
      auto record = store_->GetRecord(key, *version);
      if (record.ok()) {
        std::printf("%s = %s\n", record->key.ToString().c_str(),
                    record->payload.c_str());
      } else {
        Report(record.status());
      }
    } else if (command == "checkout") {
      std::string at;
      in >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return true;
      }
      QueryStats stats;
      auto records = store_->GetVersion(*version, &stats);
      if (!records.ok()) {
        Report(records.status());
        return true;
      }
      PrintRecords(*records);
      std::printf("span: %llu chunk(s), %.2f ms simulated\n",
                  (unsigned long long)stats.chunks_fetched,
                  stats.simulated_micros / 1000.0);
    } else if (command == "range") {
      std::string lo, hi, at;
      in >> lo >> hi >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return true;
      }
      auto records = store_->GetRange(*version, lo, hi);
      if (records.ok()) {
        PrintRecords(*records);
      } else {
        Report(records.status());
      }
    } else if (command == "history") {
      std::string key;
      in >> key;
      auto records = store_->GetHistory(key);
      if (records.ok()) {
        PrintRecords(*records);
      } else {
        Report(records.status());
      }
    } else if (command == "branch") {
      std::string name, at;
      in >> name >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return true;
      }
      Report(vcs_->CreateBranch(name, *version));
    } else if (command == "tag") {
      std::string name, at;
      in >> name >> at;
      auto version = Resolve(at);
      if (!version.ok()) {
        Report(version.status());
        return true;
      }
      Report(vcs_->Tag(name, *version));
    } else if (command == "log") {
      const VersionGraph& graph = store_->graph();
      for (VersionId v = 0; v < graph.size(); ++v) {
        std::printf("V%-4u parent=%s depth=%u%s\n", v,
                    graph.PrimaryParent(v) == kInvalidVersion
                        ? "-"
                        : ("V" + std::to_string(graph.PrimaryParent(v)))
                              .c_str(),
                    graph.Depth(v), graph.IsLeaf(v) ? "  (tip)" : "");
      }
      for (const std::string& name : vcs_->Branches()) {
        std::printf("branch %-12s -> V%u\n", name.c_str(),
                    *vcs_->Tip(name));
      }
      for (const std::string& name : vcs_->Tags()) {
        std::printf("tag    %-12s -> V%u\n", name.c_str(),
                    *vcs_->ResolveTag(name));
      }
    } else if (command == "stats") {
      std::printf("versions: %u  chunks: %llu  total span: %llu\n",
                  store_->num_versions(),
                  (unsigned long long)store_->NumChunks(),
                  (unsigned long long)store_->TotalVersionSpan());
      std::printf("compression: %.2fx  index memory: %s\n",
                  store_->CompressionRatio(),
                  HumanBytes(store_->catalog().ProjectionMemoryBytes())
                      .c_str());
      KVStats kv = cluster_.stats();
      std::printf("backend: %llu puts, %llu gets, %llu multigets, %s read\n",
                  (unsigned long long)kv.puts, (unsigned long long)kv.gets,
                  (unsigned long long)kv.multiget_batches,
                  HumanBytes(kv.bytes_read).c_str());
    } else if (command == "metrics") {
      std::string format;
      in >> format;
      if (format == "json") {
        std::printf("%s\n",
                    MetricsRegistry::Default().JsonSnapshot().c_str());
      } else {
        std::printf("%s", MetricsRegistry::Default().PrometheusText().c_str());
      }
    } else if (command == "statz") {
      RunStatz();
    } else if (command == "slowlog") {
      RunSlowlog(in);
    } else if (command == "trace") {
      RunTrace(in);
    } else if (command == "report") {
      auto report = BuildStoreReport(*store_, &cluster_);
      if (report.ok()) {
        std::printf("%s", report->ToString().c_str());
      } else {
        Report(report.status());
      }
    } else if (command == "verify") {
      Report(store_->VerifyIntegrity());
    } else if (command == "repartition") {
      Report(store_->Repartition());
    } else {
      std::printf("unknown command '%s' (try: help)\n", command.c_str());
    }
    return true;
  }

  Cluster cluster_;
  std::unique_ptr<RStore> store_;
  std::unique_ptr<BranchManager> vcs_;
  /// Baseline of the previous `statz` call (empty before the first one).
  MetricsSnapshot last_statz_;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
