// Quickstart: open an RStore over a simulated 4-node cluster, commit a few
// versions of a small JSON document collection, branch, and run all four
// query classes.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/rstore.h"
#include "kvstore/cluster.h"

using namespace rstore;

namespace {

void PrintRecords(const char* label, const std::vector<Record>& records) {
  std::printf("%s (%zu records)\n", label, records.size());
  for (const Record& r : records) {
    std::printf("  %-14s = %s\n", r.key.ToString().c_str(),
                r.payload.c_str());
  }
}

}  // namespace

int main() {
  // 1. A backend: RStore only needs get/put. Here, the bundled cluster
  //    simulator; any KVStore implementation works.
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 2;
  Cluster cluster(cluster_options);

  // 2. Open the store. Options hold the paper's tuning knobs: partitioning
  //    algorithm, chunk capacity C, sub-chunk size k, batch size.
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 4096;
  options.max_sub_chunk_records = 4;  // compress up to 4 versions of a key
  auto store = RStore::Open(&cluster, options);
  if (!store.ok()) {
    std::fprintf(stderr, "open: %s\n", store.status().ToString().c_str());
    return 1;
  }
  RStore& db = **store;

  // 3. Commit an initial version (the root).
  CommitDelta base;
  base.upserts.push_back({{"user/alice", 0}, R"({"role":"analyst","age":34})"});
  base.upserts.push_back({{"user/bob", 0}, R"({"role":"engineer","age":41})"});
  base.upserts.push_back({{"user/carol", 0}, R"({"role":"doctor","age":29})"});
  VersionId v0 = *db.Commit(kInvalidVersion, std::move(base));

  // 4. Evolve: update one record, add another.
  CommitDelta change;
  change.upserts.push_back({{"user/alice", 0}, R"({"role":"lead","age":35})"});
  change.upserts.push_back({{"user/dave", 0}, R"({"role":"intern","age":22})"});
  VersionId v1 = *db.Commit(v0, std::move(change));

  // 5. Branch from the root in parallel (a second team's edits).
  CommitDelta branch;
  branch.deletes.push_back("user/bob");
  VersionId v2 = *db.Commit(v0, std::move(branch));

  // 6. Queries.
  PrintRecords("\n== Full version v1 ==", *db.GetVersion(v1));
  PrintRecords("== Full version v2 (branch) ==", *db.GetVersion(v2));
  PrintRecords("== Range user/a..user/c at v1 ==",
               *db.GetRange(v1, "user/a", "user/c~"));
  PrintRecords("== History of user/alice ==", *db.GetHistory("user/alice"));

  auto record = db.GetRecord("user/alice", v0);
  std::printf("== Point lookup user/alice @ v0 ==\n  %s\n",
              record->payload.c_str());

  // 7. Cost introspection: span = chunks fetched per query (the paper's
  //    retrieval metric), plus what the simulated backend charged.
  QueryStats stats;
  (void)db.GetVersion(v1, &stats);
  std::printf("\ncheckout of v1: %llu chunk(s), %llu bytes, %.2f ms simulated "
              "backend time\n",
              (unsigned long long)stats.chunks_fetched,
              (unsigned long long)stats.bytes_fetched,
              stats.simulated_micros / 1000.0);
  std::printf("store: %llu chunks, compression ratio %.2fx\n",
              (unsigned long long)db.NumChunks(), db.CompressionRatio());
  return 0;
}
