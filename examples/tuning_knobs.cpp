// Demonstrates the tuning knobs of paper §2.4: the same synthetic workload
// is stored under every partitioning algorithm (and the §2.2 baselines), and
// the resulting storage / retrieval trade-offs are printed side by side —
// the "adapting to a specific data and query workload" story.
//
//   $ ./build/examples/tuning_knobs

#include <cstdio>

#include "common/string_util.h"
#include "core/rstore.h"
#include "kvstore/cluster.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

using namespace rstore;
using namespace rstore::workload;

int main() {
  // A moderately branched collection: 120 versions of ~800 records.
  DatasetConfig config;
  config.name = "tuning-demo";
  config.num_versions = 120;
  config.records_per_version = 800;
  config.update_fraction = 0.08;
  config.branch_probability = 0.15;
  config.record_size_bytes = 400;
  config.pd = 0.05;
  GeneratedDataset gen = GenerateDataset(config);
  std::printf("workload: %u versions, %llu unique records (%s)\n\n",
              config.num_versions,
              (unsigned long long)gen.stats.unique_records,
              HumanBytes(gen.stats.unique_record_bytes).c_str());

  struct Setting {
    const char* label;
    PartitionAlgorithm algorithm;
    uint32_t k;
  };
  const Setting settings[] = {
      {"BOTTOM-UP k=1", PartitionAlgorithm::kBottomUp, 1},
      {"BOTTOM-UP k=8", PartitionAlgorithm::kBottomUp, 8},
      {"SHINGLE   k=8", PartitionAlgorithm::kShingle, 8},
      {"DFS       k=8", PartitionAlgorithm::kDepthFirst, 8},
      {"DELTA (git-style)", PartitionAlgorithm::kDeltaBaseline, 1},
      {"SUBCHUNK (per-key)", PartitionAlgorithm::kSubChunkBaseline, 1000000},
      {"SINGLE-ADDRESS", PartitionAlgorithm::kSingleAddressSpace, 1},
  };

  std::printf("%-20s %10s %10s | %12s %12s %12s\n", "Setting", "storage",
              "#chunks", "Q1 chunks", "Q3 chunks", "Q1 sim-ms");
  for (const Setting& setting : settings) {
    ClusterOptions cluster_options;
    cluster_options.num_nodes = 4;
    Cluster cluster(cluster_options);
    Options options;
    options.algorithm = setting.algorithm;
    options.chunk_capacity_bytes = 32 << 10;
    options.max_sub_chunk_records = setting.k;
    auto store = RStore::Open(&cluster, options);
    if (!store.ok() ||
        !(*store)->BulkLoad(gen.dataset, gen.payloads).ok()) {
      std::fprintf(stderr, "%s: load failed\n", setting.label);
      return 1;
    }
    uint64_t storage = 0;
    (void)cluster.Scan(options.chunk_table,
                       [&](Slice, Slice v) { storage += v.size(); });

    QueryWorkloadGenerator qgen(&gen.dataset, 17);
    QueryStats q1;
    for (const Query& q : qgen.FullVersionQueries(10)) {
      if (!(*store)->GetVersion(q.version, &q1).ok()) return 1;
    }
    QueryStats q3;
    for (const Query& q : qgen.EvolutionQueries(10)) {
      if (!(*store)->GetHistory(q.key, &q3).ok()) return 1;
    }
    std::printf("%-20s %10s %10llu | %12.1f %12.1f %12.2f\n", setting.label,
                HumanBytes(storage).c_str(),
                (unsigned long long)(*store)->NumChunks(),
                q1.chunks_fetched / 10.0, q3.chunks_fetched / 10.0,
                q1.simulated_micros / 1000.0 / 10.0);
  }
  std::printf(
      "\nReading the table: BOTTOM-UP k>1 wins the mixed workload; SUBCHUNK "
      "wins pure history scans (Q3) at the cost of catastrophic checkouts; "
      "DELTA is compact but pays long chains; SINGLE-ADDRESS pays one round "
      "trip per record.\n");

  // The read-path cache knob: the same BOTTOM-UP store re-run with a chunk
  // cache, replaying the Q1 sweep twice. The cold pass pays the backend
  // once; the warm pass is served from memory (Options::cache_capacity_bytes
  // = 0 keeps it off, matching the paper's prototype).
  std::printf("\n%-20s %10s %12s %12s %8s\n", "Cache capacity", "hit rate",
              "cold sim-ms", "warm sim-ms", "entries");
  for (uint64_t capacity :
       {uint64_t{0}, uint64_t{2} << 20, uint64_t{16} << 20}) {
    ClusterOptions cluster_options;
    cluster_options.num_nodes = 4;
    Cluster cluster(cluster_options);
    Options options;
    options.chunk_capacity_bytes = 32 << 10;
    options.max_sub_chunk_records = 8;
    options.cache_capacity_bytes = capacity;
    auto store = RStore::Open(&cluster, options);
    if (!store.ok() ||
        !(*store)->BulkLoad(gen.dataset, gen.payloads).ok()) {
      return 1;
    }
    QueryWorkloadGenerator qgen(&gen.dataset, 17);
    auto queries = qgen.FullVersionQueries(10);
    QueryStats cold, warm;
    for (const Query& q : queries) {
      if (!(*store)->GetVersion(q.version, &cold).ok()) return 1;
    }
    for (const Query& q : queries) {
      if (!(*store)->GetVersion(q.version, &warm).ok()) return 1;
    }
    const ChunkCache* cache = (*store)->chunk_cache();
    std::printf("%-20s %9.1f%% %12.2f %12.2f %8llu\n",
                capacity == 0 ? "off" : HumanBytes(capacity).c_str(),
                cache == nullptr ? 0.0 : cache->stats().hit_rate() * 100.0,
                cold.simulated_micros / 1000.0 / 10.0,
                warm.simulated_micros / 1000.0 / 10.0,
                cache == nullptr
                    ? 0ull
                    : (unsigned long long)cache->stats().entries);
  }
  std::printf(
      "\nA cache holding the working set turns repeated checkouts into "
      "memory reads; an undersized one degrades gracefully to the uncached "
      "cost.\n");
  return 0;
}
