// The paper's motivating scenario (Example 1): a healthcare provider keeps
// Electronic Health Records for a pool of patients; analyst teams repeatedly
// run models over cohorts and write results back into the EHRs, producing a
// branched version history. Auditors later need to answer:
//   - which EHR versions fed a given model run (full/partial retrieval),
//   - how one patient's record evolved (record evolution),
//   - what a record looked like at a specific study snapshot (point query).
//
//   $ ./build/examples/ehr_analytics

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/rstore.h"
#include "json/json_parser.h"
#include "json/json_writer.h"
#include "kvstore/cluster.h"

using namespace rstore;

namespace {

std::string PatientKey(int id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "patient/%05d", id);
  return buf;
}

std::string BaseEhr(int id, Random* rng) {
  json::Value doc = json::Value::MakeObject();
  doc["patient_id"] = json::Value(int64_t{id});
  doc["age"] = json::Value(static_cast<int64_t>(30 + rng->Uniform(50)));
  doc["ward"] = json::Value(rng->Bernoulli(0.5) ? "cardiology" : "oncology");
  json::Value::Array vitals;
  vitals.emplace_back(98.6);
  vitals.emplace_back(static_cast<int64_t>(60 + rng->Uniform(40)));
  doc["vitals"] = json::Value(std::move(vitals));
  return json::WriteCompact(doc);
}

std::string WithPrediction(const std::string& ehr, const char* model,
                           double score) {
  json::Value doc = *json::Parse(ehr);
  json::Value prediction = json::Value::MakeObject();
  prediction["model"] = json::Value(model);
  prediction["score"] = json::Value(score);
  doc["prediction"] = std::move(prediction);
  return json::WriteCompact(doc);
}

}  // namespace

int main() {
  constexpr int kPatients = 400;
  Random rng(2026);

  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  Cluster cluster(cluster_options);
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 16 << 10;
  options.max_sub_chunk_records = 8;  // EHR updates are small -> compress
  options.online_batch_size = 4;
  auto opened = RStore::Open(&cluster, options);
  if (!opened.ok()) return 1;
  RStore& db = **opened;

  // Intake: the baseline EHR pool.
  CommitDelta intake;
  std::vector<std::string> baseline(kPatients);
  for (int p = 0; p < kPatients; ++p) {
    baseline[p] = BaseEhr(p, &rng);
    intake.upserts.push_back({{PatientKey(p), 0}, baseline[p]});
  }
  VersionId baseline_version = *db.Commit(kInvalidVersion, std::move(intake));
  std::printf("baseline intake: version %u with %d patients\n",
              baseline_version, kPatients);

  // Team A targets a cardiology cohort (ages 50-60) across three model
  // iterations; Team B works on oncology risk in parallel from the same
  // baseline — "the resulting version histories are mostly branched".
  VersionId team_a = baseline_version;
  for (int round = 0; round < 3; ++round) {
    CommitDelta run;
    for (int p = 0; p < kPatients; ++p) {
      auto doc = *json::Parse(baseline[p]);
      int64_t age = doc.Find("age")->as_int();
      bool cardiology = doc.Find("ward")->as_string() == "cardiology";
      if (cardiology && age >= 50 && age <= 60) {
        run.upserts.push_back(
            {{PatientKey(p), 0},
             WithPrediction(baseline[p], "cardio-risk-v2",
                            0.1 * round + rng.NextDouble() * 0.2)});
      }
    }
    std::printf("team A round %d: %zu cohort updates\n", round,
                run.upserts.size());
    team_a = *db.Commit(team_a, std::move(run));
  }
  VersionId team_b = baseline_version;
  {
    CommitDelta run;
    for (int p = 0; p < kPatients; ++p) {
      auto doc = *json::Parse(baseline[p]);
      if (doc.Find("ward")->as_string() == "oncology") {
        run.upserts.push_back({{PatientKey(p), 0},
                               WithPrediction(baseline[p], "onco-risk-v1",
                                              rng.NextDouble())});
      }
    }
    std::printf("team B run: %zu cohort updates\n", run.upserts.size());
    team_b = *db.Commit(team_b, std::move(run));
  }

  // Audit question 1: exactly which records did team A's final model see?
  auto snapshot = *db.GetVersion(team_a);
  int with_prediction = 0;
  for (const Record& r : snapshot) {
    if (json::Parse(r.payload)->Find("prediction") != nullptr) {
      ++with_prediction;
    }
  }
  std::printf("\naudit: team A's final snapshot v%u has %zu records, %d with "
              "model output\n",
              team_a, snapshot.size(), with_prediction);

  // Audit question 2: a patient's full history across both branches.
  std::string probe = PatientKey(7);
  auto history = *db.GetHistory(probe);
  std::printf("history of %s: %zu record version(s)\n", probe.c_str(),
              history.size());
  for (const Record& r : history) {
    auto doc = *json::Parse(r.payload);
    const json::Value* prediction = doc.Find("prediction");
    std::printf("  @V%-3u %s\n", r.key.version,
                prediction
                    ? ("prediction from " +
                       prediction->Find("model")->as_string())
                          .c_str()
                    : "baseline intake");
  }

  // Audit question 3: "looking up a patient history from the point it
  // enters the system" and partial retrieval of a patient range at a
  // specific snapshot.
  auto range = *db.GetRange(team_b, PatientKey(100), PatientKey(119));
  std::printf("partial checkout of %s..%s at team B's v%u: %zu records\n",
              PatientKey(100).c_str(), PatientKey(119).c_str(), team_b,
              range.size());

  // Provenance: version graph shows the branch structure.
  std::printf("\nversion graph: %u versions, branches at V%u -> {",
              db.graph().size(), baseline_version);
  for (VersionId child : db.graph().children(baseline_version)) {
    std::printf(" V%u", child);
  }
  std::printf(" }\n");
  std::printf("storage: %llu chunks, compression %.2fx, index footprint %s\n",
              (unsigned long long)db.NumChunks(), db.CompressionRatio(),
              std::to_string(db.catalog().ProjectionMemoryBytes()).c_str());
  return 0;
}
