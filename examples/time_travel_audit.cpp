// Time-travel auditing over a long-running collection: bulk-load a
// generated history, then answer "as-of" questions — what did the collection
// look like at version X, when did a record change, and what is the cost
// profile of those queries. Also demonstrates surviving a backend node
// failure through replication.
//
//   $ ./build/examples/time_travel_audit

#include <cstdio>

#include "common/string_util.h"
#include "core/rstore.h"
#include "kvstore/cluster.h"
#include "workload/dataset_generator.h"

using namespace rstore;
using namespace rstore::workload;

int main() {
  DatasetConfig config;
  config.name = "audit-trail";
  config.num_versions = 200;
  config.records_per_version = 600;
  config.update_fraction = 0.05;
  config.zipf_updates = true;  // few hot documents, many cold ones
  config.record_size_bytes = 300;
  GeneratedDataset gen = GenerateDataset(config);

  ClusterOptions cluster_options;
  cluster_options.num_nodes = 6;
  cluster_options.replication_factor = 3;
  Cluster cluster(cluster_options);
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 16 << 10;
  options.max_sub_chunk_records = 6;
  auto store = RStore::Open(&cluster, options);
  if (!store.ok() || !(*store)->BulkLoad(gen.dataset, gen.payloads).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  RStore& db = **store;
  std::printf("loaded %u versions, %llu unique records into a 6-node "
              "cluster (rf=3)\n",
              db.num_versions(),
              (unsigned long long)gen.stats.unique_records);

  // As-of queries at three points in history.
  for (VersionId v : {VersionId{10}, VersionId{100}, VersionId{199}}) {
    QueryStats stats;
    auto snapshot = db.GetVersion(v, &stats);
    if (!snapshot.ok()) return 1;
    std::printf("as-of v%-4u: %4zu records, %3llu chunks, %6.2f ms simulated\n",
                v, snapshot->size(),
                (unsigned long long)stats.chunks_fetched,
                stats.simulated_micros / 1000.0);
  }

  // Find the most-edited document (Zipf makes one key hot) and walk its
  // changes.
  std::string hottest;
  size_t hottest_changes = 0;
  for (const auto& [ck, versions] :
       db.catalog().record_versions()) {
    (void)versions;
    auto history_size = db.catalog().ChunksOfKey(ck.key).size();
    if (history_size > hottest_changes) {
      hottest_changes = history_size;
      hottest = ck.key;
    }
  }
  auto history = *db.GetHistory(hottest);
  std::printf("\nhottest document %s changed %zu times; first at V%u, last "
              "at V%u\n",
              hottest.c_str(), history.size(), history.front().key.version,
              history.back().key.version);

  // "Which version introduced this change?" — binary search over history by
  // origin version, then a point query to confirm visibility.
  const Record& change = history[history.size() / 2];
  auto visible = db.GetRecord(hottest, change.key.version);
  std::printf("change introduced at V%u is %s at that version\n",
              change.key.version,
              visible.ok() && visible->key == change.key ? "visible"
                                                         : "NOT visible");

  // Kill a node mid-audit: replication keeps every query answerable.
  cluster.SetNodeAlive(0, false);
  QueryStats stats;
  auto after_failure = db.GetVersion(150, &stats);
  std::printf("\nafter killing node 0: as-of v150 still returns %zu records "
              "(%llu chunks)\n",
              after_failure->size(),
              (unsigned long long)stats.chunks_fetched);

  std::printf("index memory: %s for %llu chunks (paper: projections fit in "
              "main memory)\n",
              HumanBytes(db.catalog().ProjectionMemoryBytes()).c_str(),
              (unsigned long long)db.NumChunks());
  return 0;
}
