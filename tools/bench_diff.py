#!/usr/bin/env python3
"""Compare BENCH_*.json outputs against committed baselines.

The bench binaries emit flat metric -> value JSON (BENCH_<name>.json).
Metrics gate in two tiers:

  simulated time  names containing "micros" or ending in "_ms". Produced by
                  the deterministic latency model, so exactly reproducible
                  run-to-run and machine-to-machine: a change is a real
                  modeling or code-path change, not noise. Tight gate
                  (--threshold, default 0.25 = +25%).
  wall clock      names ending in "_real_ns" (bench_micro). Host- and
                  load-dependent, so the gate is deliberately loose
                  (--wall-threshold, default 3.0 = +300%): it only catches
                  order-of-magnitude regressions — an accidental O(n^2), a
                  lock on the hot path — never scheduler jitter.

Other metrics (counters, bytes) are reported but never gate. Improvements
and sub-threshold drift are reported but do not fail. Metrics missing from
the baseline (new benches, new series) warn and pass, so adding coverage
never blocks a PR; refresh the baseline to start gating them.

Usage:
  tools/bench_diff.py [--threshold 0.25] [--wall-threshold 3.0]
                      [--baselines bench/baselines]
                      BENCH_a.json [BENCH_b.json ...]

Exit status: 1 when any gated metric regressed, else 0.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def metric_tier(name):
    """"sim" (tight gate), "wall" (loose gate), or None (never gates)."""
    if "micros" in name or name.endswith("_ms"):
        return "sim"
    if name.endswith("_real_ns"):
        return "wall"
    return None


def load_metrics(path):
    with open(path) as f:
        metrics = json.load(f)
    if not isinstance(metrics, dict):
        raise ValueError("%s: expected a flat JSON object" % path)
    return metrics


def compare(current_path, baseline_path, thresholds):
    """Returns (regressions, lines) for one bench file pair; `thresholds`
    maps metric tier ("sim"/"wall") to its relative gate."""
    current = load_metrics(current_path)
    baseline = load_metrics(baseline_path)
    regressions = 0
    lines = []
    for name in sorted(current):
        tier = metric_tier(name)
        if tier is None:
            continue
        threshold = thresholds[tier]
        value = float(current[name])
        if name not in baseline:
            lines.append("  NEW      %-45s %14.3f (no baseline)"
                         % (name, value))
            continue
        base = float(baseline[name])
        if base == 0.0:
            delta = 0.0 if value == 0.0 else float("inf")
        else:
            delta = (value - base) / base
        tag = "ok"
        if delta > threshold:
            tag = "REGRESSED"
            regressions += 1
        elif delta < -threshold:
            tag = "improved"
        lines.append("  %-8s %-45s %14.3f vs %14.3f  (%+.1f%%, gate %+.0f%%)"
                     % (tag, name, value, base, delta * 100.0,
                        threshold * 100.0))
    return regressions, lines


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_files", nargs="+",
                        help="BENCH_*.json files produced by this run")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative gate for simulated-time metrics "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--wall-threshold", type=float, default=3.0,
                        help="relative gate for wall-clock *_real_ns "
                             "metrics (default 3.0 = +300%%)")
    parser.add_argument("--baselines",
                        default=os.path.join(REPO_ROOT, "bench", "baselines"),
                        help="directory of committed baseline BENCH_*.json")
    args = parser.parse_args()

    total_regressions = 0
    compared = 0
    for path in args.bench_files:
        name = os.path.basename(path)
        baseline_path = os.path.join(args.baselines, name)
        if not os.path.exists(baseline_path):
            print("%s: no baseline at %s — skipping (commit one to start "
                  "gating)" % (name, baseline_path))
            continue
        try:
            regressions, lines = compare(
                path, baseline_path,
                {"sim": args.threshold, "wall": args.wall_threshold})
        except (OSError, ValueError, KeyError) as e:
            print("%s: cannot compare: %s" % (name, e), file=sys.stderr)
            return 1
        compared += 1
        print("%s: %s" % (name,
                          "%d regression(s)" % regressions
                          if regressions else "ok"))
        for line in lines:
            print(line)
        total_regressions += regressions

    if not compared:
        print("bench_diff.py: nothing compared (no baselines found)",
              file=sys.stderr)
        return 0
    if total_regressions:
        print("\nbench_diff.py: %d gated metric(s) regressed past their "
              "tier's threshold (sim %.0f%%, wall %.0f%%)"
              % (total_regressions, args.threshold * 100,
                 args.wall_threshold * 100), file=sys.stderr)
        return 1
    print("\nbench_diff.py: all gated metrics within threshold "
          "(sim %.0f%%, wall %.0f%%)"
          % (args.threshold * 100, args.wall_threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
