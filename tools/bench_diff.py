#!/usr/bin/env python3
"""Compare BENCH_*.json outputs against committed baselines.

The bench binaries emit flat metric -> value JSON (BENCH_<name>.json). The
simulated-time metrics in them — names containing "micros" or ending in
"_ms" — are produced by the deterministic latency model, so they are exactly
reproducible run-to-run and machine-to-machine: a change is a real modeling
or code-path change, not noise. This script gates on those metrics only;
wall-clock metrics (seconds of real CPU) vary by host and are ignored.

A metric regresses when its value grows by more than --threshold (relative,
default 0.25 = +25%) over the committed baseline in bench/baselines/.
Improvements and sub-threshold drift are reported but do not fail. Metrics
missing from the baseline (new benches, new series) warn and pass, so adding
coverage never blocks a PR; refresh the baseline to start gating them.

Usage:
  tools/bench_diff.py [--threshold 0.25] [--baselines bench/baselines]
                      BENCH_a.json [BENCH_b.json ...]

Exit status: 1 when any simulated-time metric regressed, else 0.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def is_simulated_time_metric(name):
    return "micros" in name or name.endswith("_ms")


def load_metrics(path):
    with open(path) as f:
        metrics = json.load(f)
    if not isinstance(metrics, dict):
        raise ValueError("%s: expected a flat JSON object" % path)
    return metrics


def compare(current_path, baseline_path, threshold):
    """Returns (regressions, lines) for one bench file pair."""
    current = load_metrics(current_path)
    baseline = load_metrics(baseline_path)
    regressions = 0
    lines = []
    for name in sorted(current):
        if not is_simulated_time_metric(name):
            continue
        value = float(current[name])
        if name not in baseline:
            lines.append("  NEW      %-45s %14.3f (no baseline)"
                         % (name, value))
            continue
        base = float(baseline[name])
        if base == 0.0:
            delta = 0.0 if value == 0.0 else float("inf")
        else:
            delta = (value - base) / base
        tag = "ok"
        if delta > threshold:
            tag = "REGRESSED"
            regressions += 1
        elif delta < -threshold:
            tag = "improved"
        lines.append("  %-8s %-45s %14.3f vs %14.3f  (%+.1f%%)"
                     % (tag, name, value, base, delta * 100.0))
    return regressions, lines


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_files", nargs="+",
                        help="BENCH_*.json files produced by this run")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression gate (default 0.25 = +25%%)")
    parser.add_argument("--baselines",
                        default=os.path.join(REPO_ROOT, "bench", "baselines"),
                        help="directory of committed baseline BENCH_*.json")
    args = parser.parse_args()

    total_regressions = 0
    compared = 0
    for path in args.bench_files:
        name = os.path.basename(path)
        baseline_path = os.path.join(args.baselines, name)
        if not os.path.exists(baseline_path):
            print("%s: no baseline at %s — skipping (commit one to start "
                  "gating)" % (name, baseline_path))
            continue
        try:
            regressions, lines = compare(path, baseline_path, args.threshold)
        except (OSError, ValueError, KeyError) as e:
            print("%s: cannot compare: %s" % (name, e), file=sys.stderr)
            return 1
        compared += 1
        print("%s: %s" % (name,
                          "%d regression(s)" % regressions
                          if regressions else "ok"))
        for line in lines:
            print(line)
        total_regressions += regressions

    if not compared:
        print("bench_diff.py: nothing compared (no baselines found)",
              file=sys.stderr)
        return 0
    if total_regressions:
        print("\nbench_diff.py: %d simulated-time metric(s) regressed more "
              "than %.0f%%" % (total_regressions, args.threshold * 100),
              file=sys.stderr)
        return 1
    print("\nbench_diff.py: all simulated-time metrics within %.0f%% of "
          "baseline" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
