#!/usr/bin/env python3
"""Line-coverage gate over llvm-cov / gcov output.

Reads one or more coverage reports, aggregates line coverage per source
file, and fails (exit 1) when any file matching a --require pattern falls
below the threshold — or when a required pattern matches no file at all,
so silently-uninstrumented code cannot pass the gate.

Accepted input formats (auto-detected per file):

  llvm-json   `llvm-cov export -format=text` JSON (the CI coverage job).
  gcov-json   `gcov --json-format` output, optionally .gz (the GCC
              fallback used by local RSTORE_COVERAGE=ON builds).
  lcov        lcov tracefile (.info): SF:/DA:/end_of_record records.

When the same source file appears in several reports (one gcov JSON per
object file, or several llvm-cov exports), a line counts as covered if ANY
report saw it executed, matching how lcov merges tracefiles.

Usage:
  tools/coverage_gate.py --require src/core/chunk_cache --threshold 90 \
      coverage.json
  tools/coverage_gate.py --require chunk_cache *.gcov.json.gz
  tools/coverage_gate.py --list coverage.json        # show all files

Exit status: 0 when every required pattern is matched and meets the
threshold, 1 otherwise (including unreadable/unparseable inputs).
"""

import argparse
import gzip
import json
import os
import re
import sys


def read_text(path):
    """Return the decoded contents of path, transparently un-gzipping."""
    with open(path, "rb") as f:
        raw = f.read()
    if raw[:2] == b"\x1f\x8b":
        raw = gzip.decompress(raw)
    return raw.decode("utf-8", errors="replace")


def parse_llvm_json(doc, lines_by_file):
    """llvm-cov export: data[].files[].segments describe regions; the
    per-file `summary.lines` block is an aggregate, but segments give the
    per-line detail needed for cross-report merging. llvm-cov also emits a
    simpler per-line form under files[].branches/expansions; the stable
    parts across LLVM versions are `filename` and `segments`, so lines are
    reconstructed from segments: [line, col, count, has_count, is_region_entry,
    ...]."""
    for datum in doc.get("data", []):
        for entry in datum.get("files", []):
            filename = entry.get("filename", "")
            lines = lines_by_file.setdefault(filename, {})
            # Segment list -> executable line hit counts. A line is
            # executable if any segment with has_count starts on it; its
            # count is the max over those segments (llvm-cov's own line
            # summary uses region-entry semantics; max over segments is a
            # faithful reconstruction for gating purposes).
            for seg in entry.get("segments", []):
                if len(seg) < 5:
                    continue
                line, _col, count, has_count, is_region_entry = seg[:5]
                if not has_count or not is_region_entry:
                    continue
                lines[line] = max(lines.get(line, 0), count)


def parse_gcov_json(doc, lines_by_file):
    """`gcov --json-format`: {files: [{file, lines: [{line_number, count,
    unexecuted_block...}]}]}."""
    for entry in doc.get("files", []):
        filename = entry.get("file", "")
        lines = lines_by_file.setdefault(filename, {})
        for rec in entry.get("lines", []):
            line = rec.get("line_number")
            if line is None:
                continue
            lines[line] = max(lines.get(line, 0), rec.get("count", 0))


def parse_lcov(text, lines_by_file):
    current = None
    for raw_line in text.splitlines():
        record = raw_line.strip()
        if record.startswith("SF:"):
            current = lines_by_file.setdefault(record[3:], {})
        elif record.startswith("DA:") and current is not None:
            fields = record[3:].split(",")
            if len(fields) >= 2:
                try:
                    line, hits = int(fields[0]), int(fields[1])
                except ValueError:
                    continue
                current[line] = max(current.get(line, 0), hits)
        elif record == "end_of_record":
            current = None


def parse_report(path, lines_by_file):
    text = read_text(path)
    stripped = text.lstrip()
    if stripped.startswith("{"):
        doc = json.loads(stripped)
        if "data" in doc:
            parse_llvm_json(doc, lines_by_file)
        elif "files" in doc:
            parse_gcov_json(doc, lines_by_file)
        else:
            raise ValueError("unrecognised JSON coverage schema")
    elif "SF:" in text:
        parse_lcov(text, lines_by_file)
    else:
        raise ValueError("unrecognised coverage format")


def normalise(path):
    """Collapse absolute build paths so --require patterns written against
    repo-relative paths (src/core/chunk_cache.cc) match."""
    return os.path.normpath(path).replace("\\", "/")


def main():
    parser = argparse.ArgumentParser(
        description="Fail when required files fall below a line-coverage "
        "threshold.")
    parser.add_argument("reports", nargs="+",
                        help="llvm-cov export JSON, gcov --json-format "
                        "(.gz ok), or lcov .info files")
    parser.add_argument("--require", action="append", default=[],
                        metavar="REGEX",
                        help="pattern (regex, searched against the source "
                        "path) that must meet the threshold; repeatable")
    parser.add_argument("--threshold", type=float, default=90.0,
                        help="minimum line coverage percent (default 90)")
    parser.add_argument("--list", action="store_true",
                        help="print coverage for every file seen")
    args = parser.parse_args()

    lines_by_file = {}
    for report in args.reports:
        try:
            parse_report(report, lines_by_file)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"coverage_gate: cannot read {report}: {err}",
                  file=sys.stderr)
            return 1

    coverage = {}  # path -> (covered, total, percent)
    for path, lines in lines_by_file.items():
        total = len(lines)
        if total == 0:
            continue
        covered = sum(1 for hits in lines.values() if hits > 0)
        coverage[normalise(path)] = (covered, total, 100.0 * covered / total)

    if args.list:
        for path in sorted(coverage):
            covered, total, pct = coverage[path]
            print(f"{pct:6.1f}%  {covered:5d}/{total:<5d}  {path}")

    failed = False
    for pattern in args.require:
        regex = re.compile(pattern)
        matches = {p: v for p, v in coverage.items() if regex.search(p)}
        if not matches:
            print(f"coverage_gate: FAIL: no instrumented file matches "
                  f"'{pattern}'", file=sys.stderr)
            failed = True
            continue
        for path in sorted(matches):
            covered, total, pct = matches[path]
            verdict = "ok" if pct >= args.threshold else "FAIL"
            print(f"coverage_gate: {verdict}: {path} line coverage "
                  f"{pct:.1f}% ({covered}/{total}, threshold "
                  f"{args.threshold:.0f}%)")
            if pct < args.threshold:
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
