#!/usr/bin/env python3
"""Unit tests for tools/lint.py: one good/bad snippet pair per rule, plus a
suppression test for every `lint:allow-*` escape. Run directly or via ctest
(`ctest -R tools.lint`); stdlib unittest only, no external deps."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint  # noqa: E402


def run_check(check_name, rel_path, text):
    """Violations from one named check over an in-memory file."""
    stripped = lint.strip_comments_and_strings(text)
    for name, fn in lint.CHECKS:
        if name == check_name:
            return fn(rel_path, text, stripped)
    raise AssertionError("unknown check: %s" % check_name)


class StripTest(unittest.TestCase):
    def test_preserves_line_structure(self):
        text = 'a /* b\nc */ d // e\nx = "f";\n'
        stripped = lint.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("b", stripped)
        self.assertNotIn("e", stripped)
        self.assertNotIn("f", stripped)
        self.assertIn("a", stripped)
        self.assertIn("d", stripped)

    def test_string_contents_blanked(self):
        stripped = lint.strip_comments_and_strings('x = "new Foo";\ny;\n')
        self.assertNotIn("new Foo", stripped)
        self.assertIn("y;", stripped)


class IncludeGuardTest(unittest.TestCase):
    def good(self, rel_path, guard):
        return ("#ifndef %s\n#define %s\n\nint x;\n\n#endif  // %s\n"
                % (guard, guard, guard))

    def test_good_src_header(self):
        text = self.good("src/core/foo.h", "RSTORE_CORE_FOO_H_")
        self.assertEqual(run_check("include-guard", "src/core/foo.h", text),
                         [])

    def test_good_tests_header_keeps_tree_prefix(self):
        text = self.good("tests/core/util.h", "RSTORE_TESTS_CORE_UTIL_H_")
        self.assertEqual(
            run_check("include-guard", "tests/core/util.h", text), [])

    def test_good_bench_header(self):
        text = self.good("bench/bench_util.h", "RSTORE_BENCH_BENCH_UTIL_H_")
        self.assertEqual(
            run_check("include-guard", "bench/bench_util.h", text), [])

    def test_wrong_guard_name(self):
        text = self.good("src/core/foo.h", "RSTORE_WRONG_H_")
        violations = run_check("include-guard", "src/core/foo.h", text)
        self.assertEqual(len(violations), 1)
        self.assertIn("RSTORE_CORE_FOO_H_", violations[0][2])

    def test_missing_define(self):
        text = "#ifndef RSTORE_CORE_FOO_H_\nint x;\n#endif\n"
        violations = run_check("include-guard", "src/core/foo.h", text)
        self.assertEqual(len(violations), 1)

    def test_non_header_ignored(self):
        self.assertEqual(
            run_check("include-guard", "src/core/foo.cc", "int x;\n"), [])


class NakedNewTest(unittest.TestCase):
    def test_bad(self):
        violations = run_check("naked-new", "src/a.cc", "auto* p = new Foo;\n")
        self.assertEqual(len(violations), 1)

    def test_good_make_unique(self):
        self.assertEqual(
            run_check("naked-new", "src/a.cc",
                      "auto p = std::make_unique<Foo>();\n"), [])

    def test_good_owned_from_birth(self):
        self.assertEqual(
            run_check("naked-new", "src/a.cc",
                      "std::unique_ptr<Foo> p(new Foo(1));\n"), [])

    def test_identifier_suffix_not_flagged(self):
        self.assertEqual(
            run_check("naked-new", "src/a.cc", "int renew = my_new;\n"), [])


class StreamLoggingTest(unittest.TestCase):
    def test_bad(self):
        violations = run_check("stream-logging", "src/a.cc",
                               'std::cout << "x";\n')
        self.assertEqual(len(violations), 1)

    def test_bad_printf(self):
        violations = run_check("stream-logging", "src/a.cc",
                               'printf("%d", x);\n')
        self.assertEqual(len(violations), 1)

    def test_good(self):
        self.assertEqual(
            run_check("stream-logging", "src/a.cc",
                      'RSTORE_LOG(INFO) << "x";\n'), [])

    def test_logging_impl_allowlisted(self):
        self.assertEqual(
            run_check("stream-logging", "src/common/logging.cc",
                      'std::cerr << "x";\n'), [])


class AssertTest(unittest.TestCase):
    def test_bad(self):
        violations = run_check("assert", "src/a.cc", "assert(x > 0);\n")
        self.assertEqual(len(violations), 1)

    def test_good(self):
        self.assertEqual(
            run_check("assert", "src/a.cc", "RSTORE_CHECK(x > 0);\n"), [])

    def test_static_assert_not_flagged(self):
        self.assertEqual(
            run_check("assert", "src/a.cc",
                      "static_assert(sizeof(int) == 4);\n"), [])


class RawSyncTest(unittest.TestCase):
    def test_bad(self):
        violations = run_check("raw-sync", "src/a.cc", "std::mutex mu;\n")
        self.assertEqual(len(violations), 1)

    def test_good(self):
        self.assertEqual(
            run_check("raw-sync", "src/a.cc",
                      'Mutex mu{kLockRankLeaf, "a"};\nMutexLock lock(mu);\n'),
            [])

    def test_escape_suppresses(self):
        self.assertEqual(
            run_check("raw-sync", "src/a.cc",
                      "std::mutex mu;  // lint:allow-raw-sync\n"), [])

    def test_sync_impl_allowlisted(self):
        self.assertEqual(
            run_check("raw-sync", "src/common/sync.cc", "std::mutex mu;\n"),
            [])


class RawTimingTest(unittest.TestCase):
    BAD = "auto t = std::chrono::steady_clock::now();\n"

    def test_bad_in_core(self):
        violations = run_check("raw-timing", "src/core/a.cc", self.BAD)
        self.assertEqual(len(violations), 1)

    def test_good_stopwatch(self):
        self.assertEqual(
            run_check("raw-timing", "src/core/a.cc", "Stopwatch sw;\n"), [])

    def test_escape_suppresses(self):
        self.assertEqual(
            run_check("raw-timing", "src/core/a.cc",
                      self.BAD.rstrip("\n") + "  // lint:allow-raw-timing\n"),
            [])

    def test_common_layer_out_of_scope(self):
        self.assertEqual(
            run_check("raw-timing", "src/common/a.cc", self.BAD), [])


class AlivePokeTest(unittest.TestCase):
    def test_bad(self):
        violations = run_check("alive-poke", "src/core/a.cc",
                               "alive_[i] = false;\n")
        self.assertEqual(len(violations), 1)

    def test_good(self):
        self.assertEqual(
            run_check("alive-poke", "src/core/a.cc",
                      "cluster.SetNodeAlive(i, false);\n"), [])

    def test_escape_suppresses(self):
        self.assertEqual(
            run_check("alive-poke", "src/core/a.cc",
                      "alive_[i] = false;  // lint:allow-alive-poke\n"), [])

    def test_owner_allowlisted(self):
        self.assertEqual(
            run_check("alive-poke", "src/kvstore/cluster.cc",
                      "alive_[i] = false;\n"), [])


class ScopedSpanMathTest(unittest.TestCase):
    BAD = "uint64_t d = span.sim_end_us - span.sim_start_us;\n"

    def test_bad_in_src(self):
        violations = run_check("scoped-span-math", "src/core/a.cc", self.BAD)
        self.assertEqual(len(violations), 1)  # one violation per line

    def test_good_field_copy(self):
        self.assertEqual(
            run_check("scoped-span-math", "src/core/a.cc",
                      "out.start = span.sim_start_us;\n"), [])

    def test_good_attribution_fields(self):
        self.assertEqual(
            run_check("scoped-span-math", "src/core/a.cc",
                      "stats->queue_wait_us += queue_us;\n"), [])

    def test_escape_suppresses(self):
        self.assertEqual(
            run_check("scoped-span-math", "src/core/a.cc",
                      self.BAD.rstrip("\n") + "  // lint:allow-span-math\n"),
            [])

    def test_trace_and_recorder_allowlisted(self):
        for owner in ("src/common/trace.cc", "src/common/flight_recorder.cc"):
            self.assertEqual(run_check("scoped-span-math", owner, self.BAD),
                             [])

    def test_tests_out_of_scope(self):
        self.assertEqual(
            run_check("scoped-span-math", "tests/core/a_test.cc", self.BAD),
            [])


class AllChecksFireTest(unittest.TestCase):
    """Every registered check produces a violation on a known-bad snippet —
    guards against a check being registered but made a no-op by a refactor."""

    BAD_BY_CHECK = {
        "include-guard": ("src/core/foo.h", "#ifndef WRONG_H_\nint x;\n"),
        "naked-new": ("src/a.cc", "auto* p = new Foo;\n"),
        "stream-logging": ("src/a.cc", 'std::cout << 1;\n'),
        "assert": ("src/a.cc", "assert(1);\n"),
        "raw-sync": ("src/a.cc", "std::mutex mu;\n"),
        "raw-timing": ("src/core/a.cc",
                       "auto t = std::chrono::seconds(1);\n"),
        "alive-poke": ("src/core/a.cc", "alive_[0] = true;\n"),
        "scoped-span-math": ("src/core/a.cc",
                             "auto d = s.sim_end_us - s.sim_start_us;\n"),
    }

    def test_every_check_has_a_firing_snippet(self):
        self.assertEqual(sorted(self.BAD_BY_CHECK),
                         sorted(name for name, _ in lint.CHECKS))
        for name, (rel_path, text) in self.BAD_BY_CHECK.items():
            violations = run_check(name, rel_path, text)
            self.assertTrue(violations, "check %r did not fire" % name)
            self.assertTrue(all(v[1] == name for v in violations))


class ExpectedGuardTest(unittest.TestCase):
    def test_src_prefix_dropped(self):
        self.assertEqual(lint.expected_guard("src/core/chunk.h"),
                         "RSTORE_CORE_CHUNK_H_")

    def test_other_trees_keep_prefix(self):
        self.assertEqual(lint.expected_guard("tests/core/util.h"),
                         "RSTORE_TESTS_CORE_UTIL_H_")
        self.assertEqual(lint.expected_guard("bench/bench_util.h"),
                         "RSTORE_BENCH_BENCH_UTIL_H_")


if __name__ == "__main__":
    unittest.main()
