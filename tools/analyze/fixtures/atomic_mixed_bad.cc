// Intentionally-mixed synchronization protocols, compiled (never linked) so
// `tools/analyze/run.py --self-test` can prove atomic-mixed-access fires.
// Every `analyze:expect-*` marker below must be matched by a finding on its
// line, or the self-test fails (see run.py). Do not "fix" this file.

#include <atomic>
#include <cstdint>

#include "common/sync.h"

namespace rstore {
namespace analyze_fixture {

// pending_ is written under mu_ alongside the guarded queue depth, but the
// fast path polls it lock-free as if it were an independent atomic — the
// alive_/hint_count_ bug class from PR 1. A real protocol would either
// guard it or document the lock-free contract with `// analyze:atomic`.
class MixedProtocol {
 public:
  void Enqueue() {
    MutexLock lock(mu_);
    depth_ += 1;
    pending_.fetch_add(1);  // analyze:expect-atomic-mixed-access
  }

  bool MaybeDrain() {
    if (pending_.load() == 0) return false;  // the lock-free half
    MutexLock lock(mu_);
    pending_.fetch_sub(1);
    depth_ -= 1;
    return true;
  }

 private:
  Mutex mu_{kLockRankLeaf, "MixedProtocol::mu_"};
  uint64_t depth_ RSTORE_GUARDED_BY(mu_) = 0;
  // The unmarked atomic is also an annotation hole, anchored at its decl:
  std::atomic<uint64_t> pending_{0};  // analyze:expect-annotation-completeness
};

}  // namespace analyze_fixture
}  // namespace rstore
