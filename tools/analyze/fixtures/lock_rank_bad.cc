// Intentionally-broken locking, compiled (never linked) so that
// `tools/analyze/run.py --self-test` can prove lock-rank-static fires.
// Every `analyze:expect-*` marker below must be matched by a finding on its
// line, or the self-test fails (see run.py). Do not "fix" this file.

#include "common/sync.h"

namespace rstore {
namespace analyze_fixture {

// The rank order says ChunkCache (150) must be taken *after* MemoryStore
// (200); every method below violates that, each in a different shape.
class RankInverted {
 public:
  // Direct inversion: the second acquisition has a rank >= one already held.
  void TakeBoth() {
    MutexLock cache(cache_mu_);
    MutexLock store(store_mu_);  // analyze:expect-lock-rank-static
  }

  // Re-entrant self-lock: same mutex, same rank, guaranteed deadlock.
  void Reenter() {
    MutexLock lock(store_mu_);
    MutexLock again(store_mu_);  // analyze:expect-lock-rank-static
  }

  // Transitive inversion: the bad acquisition hides one call away, so the
  // finding must come with the call chain attached.
  void Outer() {
    MutexLock lock(cache_mu_);
    TakeStore();  // analyze:expect-lock-rank-static chain>=2
  }

 private:
  void TakeStore() { MutexLock lock(store_mu_); }

  Mutex store_mu_{kLockRankMemoryStore, "RankInverted::store_mu_"};
  Mutex cache_mu_{kLockRankChunkCache, "RankInverted::cache_mu_"};
};

}  // namespace analyze_fixture
}  // namespace rstore
