// Intentionally-broken hold-across-blocking patterns, compiled (never
// linked) so that `tools/analyze/run.py --self-test` can prove
// blocking-under-lock fires. Do not "fix" this file.

#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace analyze_fixture {

// The Scan bug class, reintroduced: the store's mutex stays held while rows
// are handed to user code two calls down, so a callback that re-enters the
// store deadlocks. MemoryStore::Scan once had exactly this shape; the fix
// (snapshot under lock, invoke outside) is the idiom src/ uses today.
class CallbackUnderLock {
 public:
  using RowFn = std::function<void(const std::string&)>;

  void Scan(const RowFn& fn) {
    MutexLock lock(mu_);
    ScanLocked(fn);  // analyze:expect-blocking-under-lock chain>=3
  }

 private:
  void ScanLocked(const RowFn& fn) {
    for (const auto& [key, value] : rows_) {
      EmitRow(fn, key);
    }
  }

  void EmitRow(const RowFn& fn, const std::string& key) { fn(key); }

  std::map<std::string, std::string> rows_;
  Mutex mu_{kLockRankMemoryStore, "CallbackUnderLock::mu_"};
};

// Holding a lock across a KVStore data-plane call: the store may block on
// replica I/O (or, as here, on its own internal mutex).
class BackendUnderLock {
 public:
  Status Flush() {
    MutexLock lock(mu_);
    return store_.Put("t", "k", "v");  // analyze:expect-blocking-under-lock
  }

 private:
  MemoryStore store_;
  Mutex mu_{kLockRankClusterHints, "BackendUnderLock::mu_"};
};

// Waiting on a condition variable is legal only while holding exactly the
// CondVar's own mutex; parking with a second lock held starves its waiters.
class WaitUnderForeignLock {
 public:
  void Drain() {
    MutexLock stats(stats_mu_);
    MutexLock lock(mu_);
    while (pending_ > 0) {
      cv_.Wait(mu_);  // analyze:expect-blocking-under-lock
    }
  }

 private:
  Mutex stats_mu_{kLockRankClusterHints, "WaitUnderForeignLock::stats_mu_"};
  Mutex mu_{kLockRankMemoryStore, "WaitUnderForeignLock::mu_"};
  CondVar cv_;
  int pending_ = 0;
};

}  // namespace analyze_fixture
}  // namespace rstore
