// Intentionally-broken guarded-field discipline, compiled (never linked) so
// `tools/analyze/run.py --self-test` can prove guarded-field fires. Every
// `analyze:expect-*` marker below must be matched by a finding on its line,
// or the self-test fails (see run.py). Do not "fix" this file.

#include <cstdint>

#include "common/sync.h"

namespace rstore {
namespace analyze_fixture {

// counter_ is declared guarded by mu_; the accesses below run where mu_ is
// provably not must-held.
class GuardedCounter {
 public:
  // Direct: reads the guarded field with no lock anywhere in sight.
  uint64_t RacyRead() {
    return counter_;  // analyze:expect-guarded-field
  }

  // Interprocedural must-hold divergence: BumpImpl() takes no lock itself;
  // Checked() wraps the call in mu_, Unchecked() does not. One lock-free
  // entry path is enough — the finding carries that path as its chain.
  void Checked() {
    MutexLock lock(mu_);
    BumpImpl();
  }
  void Unchecked() { BumpImpl(); }

  // Must-hold (not may-hold) contrast: every caller of ResetImpl() holds
  // mu_, so its guarded access is clean even though it takes no lock —
  // a property Clang's TU-local analysis cannot express without REQUIRES
  // on every intermediate signature.
  void Reset() {
    MutexLock lock(mu_);
    ResetImpl();
  }

 private:
  void BumpImpl() {
    counter_ += 1;  // analyze:expect-guarded-field chain>=2
  }
  void ResetImpl() { counter_ = 0; }  // clean: mu_ is must-held here

  Mutex mu_{kLockRankMemoryStore, "GuardedCounter::mu_"};
  uint64_t counter_ RSTORE_GUARDED_BY(mu_) = 0;
};

}  // namespace analyze_fixture
}  // namespace rstore
