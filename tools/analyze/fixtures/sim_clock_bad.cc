// Intentionally-impure deterministic-path code, compiled (never linked) so
// that `tools/analyze/run.py --self-test` can prove sim-clock-purity fires.
// Do not "fix" this file.

#include <chrono>
#include <cstdint>
#include <random>

namespace rstore {
namespace analyze_fixture {

// A scheduler on the deterministic-simulation path (marked analyze:root the
// way FaultInjector/RetryPolicy/LatencyModel are matched by name in src/)
// that reads the wall clock and true randomness: identical seeds would no
// longer replay identical chaos schedules.
class DriftingScheduler {
 public:
  // Launders a wall-clock read through a private helper, so the finding
  // must carry the chain down to the actual clock read.
  // analyze:root
  int64_t NextDeadline() {
    return NowMicros() + 1000;  // analyze:expect-sim-clock-purity chain>=2
  }

  // analyze:root
  int PickReplica(int n) {
    std::random_device rd;  // analyze:expect-sim-clock-purity
    return static_cast<int>(rd() % static_cast<unsigned>(n));
  }

 private:
  int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace analyze_fixture
}  // namespace rstore
