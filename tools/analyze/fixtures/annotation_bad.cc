// Intentionally-missing annotations, compiled (never linked) so
// `tools/analyze/run.py --self-test` can prove annotation-completeness
// fires. Every `analyze:expect-*` marker below must be matched by a finding
// on its line, or the self-test fails (see run.py). Do not "fix" this file.

#include <atomic>
#include <cstdint>
#include <string>

#include "common/sync.h"

namespace rstore {
namespace analyze_fixture {

// Owns a Mutex, so every mutable member must be guarded, an atomic with an
// explicit `analyze:atomic` protocol marker, or provably immutable after
// construction. Three members below break that; two are clean controls.
class Unannotated {
 public:
  void Rename(const std::string& name) {
    MutexLock lock(mu_);
    // A guarded write of an *unguarded* member: exactly the hole that
    // keeps Clang's checker vacuously happy.
    name_ = name;
  }
  uint64_t Peek() const { return hits_.load(std::memory_order_relaxed); }
  void Record() { hits_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t Budget() const { return budget_; }
  uint64_t Limit() const { return limit_; }
  uint64_t Seed() const { return seed_; }

 private:
  Mutex mu_{kLockRankLeaf, "Unannotated::mu_"};
  std::string name_;  // analyze:expect-annotation-completeness
  std::atomic<uint64_t> hits_{0};  // analyze:expect-annotation-completeness
  mutable uint64_t budget_ = 0;  // analyze:expect-annotation-completeness
  const uint64_t limit_ = 16;  // clean: const
  uint64_t seed_ = 42;  // clean: never written outside construction
};

}  // namespace analyze_fixture
}  // namespace rstore
