"""Merged whole-program model built from per-TU facts.

Takes the facts dicts of every scanned TU (from any frontend) and builds:

  * a function index with resolved call edges (including virtual dispatch
    over the KVStore hierarchy and receiver-typed member calls),
  * resolved lock acquisitions (lock expression -> declared mutex + rank),
  * the bottom-up *may-acquire* fixpoint (which ranks can a call into f end
    up taking, with a witness edge per rank for chain reconstruction),
  * the *blocking* closure (can a call into f reach a user callback, a
    KVStore backend data call, or a CondVar wait), likewise with witnesses.

Resolution policy (the portable frontend emits names, not symbols):

  1. an explicitly qualified call (Class::Fn) resolves by qualified name;
  2. an unqualified call resolves to the caller's own class hierarchy first
     (self-calls, including overrides up and down the hierarchy);
  3. a receiver-qualified call resolves through the receiver's declared
     member type when the extractor captured it (e.g. `nodes_[i]->Put` via
     `std::vector<std::unique_ptr<MemoryStore>> nodes_`), widened to
     subclasses for virtual dispatch;
  4. otherwise a CamelCase callee resolves to every project function with
     that base name (a may-analysis: over-approximate rather than miss), a
     same-file static helper being preferred;
  5. lower_snake calls with an unresolvable receiver are dropped — they are
     std:: container noise (find/size/push_back/...), and linking them to
     project functions by accident would flood every check.

The laundry list of what this misses (function pointers stored in members,
callbacks stashed and invoked later, locks passed by reference) is in
DESIGN.md "Static analysis"; the fixture corpus pins what it must catch.
"""

import os
import re

# Data-plane KVStore interface: calling any of these is "a backend call"
# for the blocking-under-lock check (see kvstore/kv_store.h).
BACKEND_METHODS = frozenset([
    "CreateTable", "Put", "Get", "MultiGet", "MultiGetPartial", "Delete",
    "Scan", "TableSize",
])

BACKEND_ROOT_CLASS = "KVStore"

# Files whose functions are modelled as intrinsics rather than analyzed:
# the sync primitives themselves (their internals use the raw std:: types
# the rest of the codebase is forbidden to touch).
INTRINSIC_FILES = ("src/common/sync.h", "src/common/sync.cc")


class Function:
    __slots__ = ("qual", "cls", "file", "line", "root", "callback_params",
                 "local_mutexes", "local_types", "events", "extractor",
                 "callees", "acquires", "may_acquire", "blocking",
                 "field_accesses", "requires_quals", "must_hold")

    def __init__(self, rec, extractor):
        self.qual = rec["qual"]
        self.cls = rec.get("cls", "")
        self.file = rec["file"]
        self.line = rec["line"]
        self.root = rec.get("root", False)
        self.callback_params = rec.get("callback_params", [])
        self.local_mutexes = rec.get("local_mutexes", {})
        self.local_types = rec.get("local_types", {})
        self.events = rec.get("events", [])
        self.extractor = extractor
        self.callees = []       # (event, [Function]) resolved call edges
        self.acquires = []      # (event, LockRef) resolved acquisitions
        self.may_acquire = {}   # rank -> (LockRef, witness)
        self.blocking = None    # (kind, witness) or None
        self.field_accesses = []  # (event, cls, member_record)
        self.requires_quals = frozenset()  # resolved RSTORE_REQUIRES locks
        self.must_hold = frozenset()  # lock quals held on EVERY entry path

    def __repr__(self):
        return "<fn %s>" % self.qual


class LockRef:
    """A resolved mutex: declaration site + rank."""
    __slots__ = ("qual", "rank_const", "rank", "kind", "file", "line")

    def __init__(self, qual, rank_const, rank, kind, file, line):
        self.qual = qual
        self.rank_const = rank_const
        self.rank = rank
        self.kind = kind
        self.file = file
        self.line = line

    def __repr__(self):
        return "%s (%s=%d)" % (self.qual, self.rank_const, self.rank)


class Program:
    def __init__(self):
        self.ranks = {}
        self.aliases = set()
        self.classes = {}          # qual -> {bases, members, requires}
        self.mutex_decls = []      # LockRef list (member name in qual)
        self.functions = []        # Function list
        self.by_qual = {}          # qual -> [Function] (overloads share)
        self.by_base = {}          # base name -> [Function]
        self.tracked = set()       # classes owning a mutex or an atomic
        self.field_index = {}      # (cls, member) -> [(Function, event)]
        self.in_edges = {}         # Function -> [(caller, event, held set)]
        self.warnings = []

    # -- construction ------------------------------------------------------

    def add_tu(self, tu_facts):
        extractor = tu_facts.get("extractor", "?")
        self.ranks.update(tu_facts.get("ranks", {}))
        self.aliases.update(tu_facts.get("aliases", []))
        for cls, info in tu_facts.get("classes", {}).items():
            entry = self.classes.setdefault(
                cls, {"bases": [], "members": {}, "requires": {}})
            for b in info.get("bases", []):
                if b not in entry["bases"]:
                    entry["bases"].append(b)
            entry["members"].update(info.get("members", {}))
            for method, locks in info.get("requires", {}).items():
                have = entry["requires"].setdefault(method, [])
                for lock in locks:
                    if lock not in have:
                        have.append(lock)
        for m in tu_facts.get("mutexes", []):
            qual = "%s::%s" % (m["cls"], m["member"])
            if any(d.qual == qual for d in self.mutex_decls):
                continue
            self.mutex_decls.append(LockRef(
                qual, m["rank_const"], -1, m.get("kind", "Mutex"),
                tu_facts["tu"], m.get("line", 0)))
        for rec in tu_facts.get("functions", []):
            if rec["file"] in INTRINSIC_FILES:
                continue
            self.functions.append(Function(rec, extractor))

    def link(self):
        """Resolves ranks, call edges, and acquisitions; runs the fixpoints."""
        for d in self.mutex_decls:
            d.rank = self.ranks.get(d.rank_const, -1)
            if d.rank < 0:
                self.warnings.append(
                    "unknown rank constant %s for %s" % (d.rank_const, d.qual))
        # Header TUs are scanned standalone AND their inline functions can be
        # re-extracted identically; dedupe by (qual, file, line).
        seen = set()
        unique = []
        for f in self.functions:
            key = (f.qual, f.file, f.line)
            if key in seen:
                continue
            seen.add(key)
            unique.append(f)
        self.functions = unique
        for f in self.functions:
            self.by_qual.setdefault(f.qual, []).append(f)
            base = f.qual.rsplit("::", 1)[-1]
            self.by_base.setdefault(base, []).append(f)
        self._subclasses = self._build_subclasses()
        self._compute_tracked()
        for f in self.functions:
            self._resolve_function(f)
        self._fix_may_acquire()
        self._fix_blocking()
        self._resolve_fields()
        self._fix_must_hold()

    def _compute_tracked(self):
        """Classes owning shared state: a declared Mutex/SharedMutex or an
        atomic member. Field-level checks only look at these."""
        for d in self.mutex_decls:
            self.tracked.add(d.qual.rsplit("::", 1)[0])
        for cls, info in self.classes.items():
            for rec in info["members"].values():
                if isinstance(rec, dict) and rec.get("atomic"):
                    self.tracked.add(cls)
                    break

    # -- class hierarchy ---------------------------------------------------

    def _build_subclasses(self):
        subs = {}
        for cls, info in self.classes.items():
            for base in info["bases"]:
                subs.setdefault(base, set()).add(cls)
        # Transitive closure.
        changed = True
        while changed:
            changed = False
            for base, ds in subs.items():
                for d in list(ds):
                    for dd in subs.get(d, ()):
                        if dd not in ds:
                            ds.add(dd)
                            changed = True
        return subs

    def hierarchy_of(self, cls):
        """cls plus its ancestors and descendants (virtual dispatch set)."""
        out = {cls}
        # Ancestors.
        frontier = [cls]
        while frontier:
            c = frontier.pop()
            for b in self.classes.get(c, {}).get("bases", []):
                if b not in out:
                    out.add(b)
                    frontier.append(b)
        out |= self._subclasses.get(cls, set())
        return out

    def is_backend_class(self, cls):
        if not cls:
            return False
        return (cls == BACKEND_ROOT_CLASS
                or cls in self._subclasses.get(BACKEND_ROOT_CLASS, ()))

    # -- lock resolution ---------------------------------------------------

    def resolve_lock(self, func, expr):
        """LockRef for a lock expression inside `func`, or None."""
        base = _base_identifier(expr)
        if not base:
            return None
        if base in func.local_mutexes:
            rank_const = func.local_mutexes[base]
            return LockRef("%s::%s" % (func.qual, base), rank_const,
                           self.ranks.get(rank_const, -1), "Mutex",
                           func.file, func.line)
        # Last path component is the member name ("shard.mu" -> "mu").
        member = re.split(r"\.|->", expr)[-1].strip()
        member = _base_identifier(member) or base
        candidates = [d for d in self.mutex_decls
                      if d.qual.rsplit("::", 1)[-1] == member]
        if not candidates:
            return None
        if len(candidates) > 1 and func.cls:
            own = [d for d in candidates
                   if d.qual.rsplit("::", 1)[0] in self.hierarchy_of(func.cls)
                   or d.qual.startswith(func.cls + "::")]
            if own:
                candidates = own
        if len(candidates) > 1:
            self.warnings.append(
                "%s: ambiguous lock '%s' (candidates: %s); using %s"
                % (func.qual, expr, ", ".join(d.qual for d in candidates),
                   candidates[0].qual))
        return candidates[0]

    # -- call resolution ---------------------------------------------------

    def _methods_named(self, classes, name):
        out = []
        for f in self.by_base.get(name, ()):
            if f.cls and f.cls in classes:
                out.append(f)
        return out

    def _classes_named(self, name):
        """Class table keys matching a (possibly unqualified) class name:
        `Shard` finds `ChunkCache::Shard` as well as a top-level `Shard`."""
        if name in self.classes:
            return {name}
        suffix = "::" + name
        return {c for c in self.classes if c.endswith(suffix)}

    def _type_classes(self, type_text):
        """Project classes mentioned in a declared type string."""
        found = set()
        for name in re.findall(r"[A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*",
                                type_text):
            found |= self._classes_named(re.sub(r"\s+", "", name))
        return found

    def _member_type_classes(self, cls, member):
        """Project classes mentioned in the declared type of cls::member,
        searched through the class hierarchy of `cls`."""
        for c in self.hierarchy_of(cls) if cls else ():
            members = self.classes.get(c, {}).get("members", {})
            if member in members:
                rec = members[member]
                type_text = rec["type"] if isinstance(rec, dict) else rec
                return self._type_classes(type_text)
        return set()

    def _resolve_call(self, func, event):
        callee = event["callee"]
        quals = event.get("quals", "")
        recv = event.get("recv", "")

        if quals:
            qual = quals.rstrip(":") + "::" + callee
            qual = qual.replace("rstore::", "")
            if qual in self.by_qual:
                return self.by_qual[qual]
            # Class-qualified call where the class has subclasses.
            cls = qual.rsplit("::", 1)[0]
            targets = self._methods_named(self.hierarchy_of(cls), callee)
            return targets

        if not recv:
            if func.cls:
                own = self._methods_named(self.hierarchy_of(func.cls), callee)
                if own:
                    return own
            # Free function: same-file static helper wins.
            file_qual = os.path.basename(func.file) + "::" + callee
            if file_qual in self.by_qual:
                return self.by_qual[file_qual]
            return self._global_by_name(func, callee)

        # Receiver-typed member call.
        recv_base = _base_identifier(recv)
        classes = set()
        if recv_base:
            classes = self._member_type_classes(func.cls, recv_base)
            if not classes and recv_base in self.classes:
                classes = {recv_base}  # static-ish or value of known class
        if classes:
            dispatch = set()
            for c in classes:
                dispatch |= self.hierarchy_of(c)
            targets = self._methods_named(dispatch, callee)
            if targets:
                return targets
            # Known-backend receiver calling a pure-virtual data method that
            # has no body anywhere (defensive; today all have overrides).
            return []
        # Unknown receiver: CamelCase may-resolution, snake_case drop. The
        # caller itself is excluded — `x->ResetForTest()` inside
        # Foo::ResetForTest is some other object's method, and keeping the
        # self-edge manufactures a recursive re-acquisition finding.
        if callee[0].isupper():
            return [g for g in self._global_by_name(func, callee)
                    if g is not func]
        return []

    def _global_by_name(self, func, callee):
        if not callee[0].isupper():
            # Unreceivered snake_case free call: tolerate unique project
            # matches (helpers like ev_line); drop ambiguous ones.
            matches = self.by_base.get(callee, [])
            return matches if len(matches) == 1 else []
        return list(self.by_base.get(callee, []))

    def _resolve_function(self, func):
        for event in func.events:
            kind = event["kind"]
            if kind == "acquire":
                ref = self.resolve_lock(func, event["lock"])
                if ref is None:
                    self.warnings.append(
                        "%s:%d: unresolved lock '%s' in %s"
                        % (func.file, event["line"], event["lock"], func.qual))
                else:
                    func.acquires.append((event, ref))
            elif kind == "call":
                targets = self._resolve_call(func, event)
                if targets:
                    func.callees.append((event, targets))

    def resolve_held(self, func, event):
        """LockRefs for the lock expressions held at `event`."""
        out = []
        for expr in event.get("held", []):
            ref = self.resolve_lock(func, expr)
            if ref is not None:
                out.append((expr, ref))
        return out

    def held_quals(self, func, event):
        """Resolved lock quals held locally at `event`."""
        return frozenset(ref.qual for _e, ref in self.resolve_held(func,
                                                                   event))

    # -- field resolution --------------------------------------------------

    SYNC_MEMBER_TYPES_RE = re.compile(r"\b(Mutex|SharedMutex|CondVar)\b")

    def _find_member(self, cls, member):
        """(owner class, member record) for `member` looked up through the
        hierarchy of `cls`, or None. Skips pre-v2 plain-string records."""
        for c in self.hierarchy_of(cls) if cls else ():
            rec = self.classes.get(c, {}).get("members", {}).get(member)
            if isinstance(rec, dict):
                return (c, rec)
        return None

    def resolve_field(self, func, event):
        """(owner class, member record) for a field event, or None.

        Bare and `this->` accesses resolve only inside the enclosing class
        hierarchy. Receiver accesses resolve through the receiver's declared
        type (a member of the enclosing class, a class-typed local/param, or
        the class name itself), falling back to a program-wide unique owner.
        Accesses that resolve to an untracked class, to a sync primitive
        member, or not at all are dropped."""
        member = event["member"]
        # The clang frontend resolves the owner exactly.
        cls = event.get("cls", "")
        if cls:
            hit = self._find_member(cls, member)
        else:
            recv = event.get("recv", "")
            if recv in ("", "this"):
                hit = self._find_member(func.cls, member)
            else:
                recv_base = _base_identifier(recv)
                classes = set()
                if recv_base in func.local_types:
                    classes = self._type_classes(func.local_types[recv_base])
                if not classes:
                    classes = self._member_type_classes(func.cls, recv_base)
                if not classes:
                    classes |= self._classes_named(recv_base)
                hit = None
                for c in classes:
                    hit = self._find_member(c, member)
                    if hit:
                        break
                if hit is None:
                    # Program-wide unique owner (tracked or not: an
                    # ambiguous name must drop, or copies of stat structs
                    # would masquerade as the guarded originals).
                    owners = [c for c, info in self.classes.items()
                              if isinstance(info["members"].get(member),
                                            dict)]
                    if len(owners) == 1:
                        hit = self._find_member(owners[0], member)
        if hit is None:
            return None
        owner, rec = hit
        if owner not in self.tracked:
            return None
        if self.SYNC_MEMBER_TYPES_RE.search(rec["type"]):
            return None
        return (owner, rec)

    def _resolve_fields(self):
        for f in self.functions:
            for event in f.events:
                if event["kind"] != "field":
                    continue
                hit = self.resolve_field(f, event)
                if hit is None:
                    continue
                owner, rec = hit
                f.field_accesses.append((event, owner, rec))
                self.field_index.setdefault((owner, event["member"]),
                                            []).append((f, event))

    # -- must-hold fixpoint ------------------------------------------------

    def _requires_quals(self, f):
        """Resolved lock quals from RSTORE_REQUIRES on f's declaration."""
        if not f.cls:
            return frozenset()
        base = f.qual.rsplit("::", 1)[-1]
        exprs = self.classes.get(f.cls, {}).get("requires", {}).get(base, [])
        out = set()
        for expr in exprs:
            ref = self.resolve_lock(f, expr)
            if ref is not None:
                out.add(ref.qual)
        return frozenset(out)

    def _fix_must_hold(self):
        """Greatest fixpoint: must_hold(f) = REQUIRES(f) ∪ the intersection
        over every call site of (must_hold(caller) ∪ locks held at the
        site). Functions with no in-edges are entry points and contribute
        only their REQUIRES clause. None stands for ⊤ (unreached cycles),
        which resolves to "everything" and is vacuously safe.

        This is the dual of may-acquire: may says "some path takes this
        lock", must says "every path into this function already holds it".
        The guarded-field check needs must — a guard held on just one of
        two entry paths is exactly the race."""
        for f in self.functions:
            f.requires_quals = self._requires_quals(f)
        self.in_edges = {}
        for f in self.functions:
            for event, targets in f.callees:
                held = self.held_quals(f, event)
                for g in targets:
                    self.in_edges.setdefault(g, []).append((f, event, held))
        state = {}
        for f in self.functions:
            state[f] = None if f in self.in_edges else f.requires_quals
        changed = True
        while changed:
            changed = False
            for f in self.functions:
                edges = self.in_edges.get(f)
                if not edges:
                    continue
                inter = None
                for (c, _e, held) in edges:
                    xc = state[c]
                    if xc is None:
                        continue  # ⊤ caller: identity for the intersection
                    s = xc | held
                    inter = s if inter is None else (inter & s)
                new = None if inter is None else (f.requires_quals | inter)
                if new != state[f]:
                    state[f] = new
                    changed = True
        universe = frozenset(d.qual for d in self.mutex_decls)
        for f in self.functions:
            f.must_hold = universe if state[f] is None else state[f]

    def unguarded_path(self, func, guard_qual):
        """Call chain (root -> ... -> func) along which `guard_qual` is
        never acquired, explaining why it is not must-held at func."""
        frames = []
        f = func
        visited = {f}
        guard = 0
        while guard < 64:
            guard += 1
            edges = self.in_edges.get(f, [])
            step = None
            for (c, event, held) in edges:
                if c in visited or guard_qual in held:
                    continue
                if guard_qual in c.must_hold:
                    continue
                step = (c, event)
                break
            if step is None:
                break
            c, event = step
            frames.append(_frame(c, event["line"], "calls %s" % f.qual))
            visited.add(c)
            f = c
        frames.reverse()
        return frames

    # -- fixpoints ---------------------------------------------------------

    def _fix_may_acquire(self):
        """may_acquire[rank] = (LockRef, witness). witness is None for a
        direct acquisition or (call_event, callee Function) for a call that
        reaches one — enough to rebuild a full chain."""
        for f in self.functions:
            for event, ref in f.acquires:
                f.may_acquire.setdefault(ref.rank, (ref, None))
        changed = True
        while changed:
            changed = False
            for f in self.functions:
                for event, targets in f.callees:
                    for g in targets:
                        for rank, (ref, _w) in g.may_acquire.items():
                            if rank not in f.may_acquire:
                                f.may_acquire[rank] = (ref, (event, g))
                                changed = True

    def _fix_blocking(self):
        """blocking = (kind, witness): the function may run user callbacks,
        issue KVStore backend calls, or wait on a condvar — directly or via
        a callee. kind in {callback, backend, condvar, call}; witness is the
        event (and callee, for propagated edges)."""
        for f in self.functions:
            base = f.qual.rsplit("::", 1)[-1]
            if (f.cls and self.is_backend_class(f.cls)
                    and base in BACKEND_METHODS):
                f.blocking = ("backend", None)
                continue
            for event in f.events:
                # A leaf-level allow blesses the operation for callers too
                # (see checks.py suppression policy).
                if "blocking-under-lock" in event.get("allow", ()):
                    continue
                if event["kind"] == "callback":
                    f.blocking = ("callback", (event, None))
                    break
                if event["kind"] == "condvar_wait":
                    f.blocking = ("condvar", (event, None))
                    break
        changed = True
        while changed:
            changed = False
            for f in self.functions:
                if f.blocking:
                    continue
                for event, targets in f.callees:
                    for g in targets:
                        if g.blocking:
                            f.blocking = ("call", (event, g))
                            changed = True
                            break
                    if f.blocking:
                        break

    # -- chain reconstruction ----------------------------------------------

    def acquire_chain(self, start_func, rank):
        """Frames from start_func down to the direct acquisition of `rank`."""
        frames = []
        f = start_func
        guard = 0
        while f is not None and guard < 64:
            guard += 1
            entry = f.may_acquire.get(rank)
            if entry is None:
                break
            ref, witness = entry
            if witness is None:
                for event, aref in f.acquires:
                    if aref.rank == rank:
                        frames.append(_frame(f, event["line"],
                                             "acquires %s" % aref))
                        break
                else:
                    frames.append(_frame(f, f.line, "acquires %s" % ref))
                return frames
            event, g = witness
            frames.append(_frame(f, event["line"],
                                 "calls %s" % g.qual))
            f = g
        return frames

    def blocking_chain(self, start_func):
        """Frames from start_func down to the blocking leaf."""
        frames = []
        f = start_func
        guard = 0
        while f is not None and guard < 64:
            guard += 1
            if f.blocking is None:
                break
            kind, witness = f.blocking
            if kind == "backend":
                frames.append(_frame(f, f.line,
                                     "KVStore backend method"))
                return frames
            event, g = witness
            if kind == "callback":
                frames.append(_frame(f, event["line"],
                                     "invokes user callback '%s'"
                                     % event["callee"]))
                return frames
            if kind == "condvar":
                frames.append(_frame(f, event["line"],
                                     "CondVar::Wait(%s)" % event["mutex"]))
                return frames
            frames.append(_frame(f, event["line"], "calls %s" % g.qual))
            f = g
        return frames


def _frame(func, line, note):
    return {"file": func.file, "line": line, "function": func.qual,
            "note": note}


def _base_identifier(expr):
    m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", expr)
    return m.group(1) if m else ""
