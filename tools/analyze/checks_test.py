#!/usr/bin/env python3
"""Unit tests for the analyzer's field-level checks (tools/analyze/checks.py):
a good/bad snippet pair per check, the must-hold vs may-hold divergence case,
cross-TU resolution, and every suppression escape. Snippets run through the
real pipeline (extract -> callgraph -> checks) via temp files, so these tests
cover the portable frontend's field-fact emission too. Run directly or via
ctest (`ctest -R tools.analyze_checks`); stdlib unittest only."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import callgraph  # noqa: E402
import checks  # noqa: E402
import extract  # noqa: E402


def build(*files):
    """(rel_path, text) pairs -> linked Program."""
    program = callgraph.Program()
    with tempfile.TemporaryDirectory() as tmp:
        for rel, text in files:
            path = os.path.join(tmp, rel.replace("/", "_"))
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            program.add_tu(extract.extract_file(path, rel))
    program.link()
    return program


def findings_for(check, *files):
    return [f for f in checks.run_checks(build(*files))
            if f["check"] == check]


def fn(program, name):
    """Function record by qualified-name suffix."""
    for f in program.functions:
        if f.qual == name or f.qual.endswith("::" + name):
            return f
    raise AssertionError("no function %r in %s"
                         % (name, sorted(f.qual for f in program.functions)))


def wrap(body):
    return "namespace rstore {\n%s}  // namespace rstore\n" % body


class GuardedFieldTest(unittest.TestCase):
    CHECK = checks.CHECK_GUARDED_FIELD

    def test_bad_direct_unlocked_access(self):
        text = wrap("""
class Counter {
 public:
  uint64_t Racy() { return counter_; }
 private:
  Mutex mu_;
  uint64_t counter_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")
        found = findings_for(self.CHECK, ("src/a.h", text))
        self.assertEqual(len(found), 1)
        self.assertIn("counter_", found[0]["message"])
        self.assertIn("mu_", found[0]["message"])

    def test_good_access_under_lock(self):
        text = wrap("""
class Counter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    counter_ += 1;
  }
 private:
  Mutex mu_;
  uint64_t counter_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    DIVERGE = wrap("""
class Diverge {
 public:
  void Checked() {
    MutexLock lock(mu_);
    BumpImpl();
  }
  void Unchecked() { BumpImpl(); }
  void Reset() {
    MutexLock lock(mu_);
    ResetImpl();
  }
 private:
  void BumpImpl() { counter_ += 1; }
  void ResetImpl() { counter_ = 0; }
  Mutex mu_;
  uint64_t counter_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")

    def test_must_hold_vs_may_hold_divergence(self):
        # BumpImpl is reached both with and without mu_: may-hold (union)
        # would stay silent, must-hold (intersection) flags it — and the
        # chain names the lock-free entry path. ResetImpl, whose every
        # caller locks, stays clean even though it takes no lock itself.
        found = findings_for(self.CHECK, ("src/a.h", self.DIVERGE))
        self.assertEqual(len(found), 1)
        self.assertIn("BumpImpl", found[0]["function"])
        self.assertGreaterEqual(len(found[0]["chain"]), 2)
        self.assertTrue(any("Unchecked" in fr["function"]
                            for fr in found[0]["chain"]))

    def test_must_hold_fixpoint_values(self):
        program = build(("src/a.h", self.DIVERGE))
        self.assertEqual(fn(program, "Diverge::BumpImpl").must_hold,
                         frozenset())
        self.assertTrue(any(q.endswith("mu_") for q in
                            fn(program, "Diverge::ResetImpl").must_hold))

    def test_good_requires_annotation_counts_as_held(self):
        text = wrap("""
class Req {
 public:
  void CallerHolds() {
    MutexLock lock(mu_);
    Touch();
  }
 private:
  void Touch() RSTORE_REQUIRES(mu_) { counter_ += 1; }
  Mutex mu_;
  uint64_t counter_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_good_constructor_exempt(self):
        text = wrap("""
class Ctor {
 public:
  Ctor() { counter_ = 1; }
 private:
  Mutex mu_;
  uint64_t counter_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_allow_marker_suppresses(self):
        text = wrap("""
class Counter {
 public:
  uint64_t Racy() {
    return counter_;  // analyze:allow-guarded-field
  }
 private:
  Mutex mu_;
  uint64_t counter_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_bad_cross_tu_out_of_line_definition(self):
        header = wrap("""
class Box {
 public:
  void Set(int v);
 private:
  Mutex mu_;
  int value_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")
        cc = wrap("""
void Box::Set(int v) { value_ = v; }
""")
        found = findings_for(self.CHECK, ("src/box.h", header),
                             ("src/box.cc", cc))
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0]["file"], "src/box.cc")


class AnnotationCompletenessTest(unittest.TestCase):
    CHECK = checks.CHECK_ANNOTATION

    def test_bad_unannotated_mutated_field(self):
        text = wrap("""
class Holder {
 public:
  void Set(int v) {
    MutexLock lock(mu_);
    value_ = v;
  }
 private:
  Mutex mu_;
  int value_ = 0;
};
""")
        found = findings_for(self.CHECK, ("src/a.h", text))
        self.assertEqual(len(found), 1)
        self.assertIn("value_", found[0]["function"])

    def test_good_guarded_field(self):
        text = wrap("""
class Holder {
 public:
  void Set(int v) {
    MutexLock lock(mu_);
    value_ = v;
  }
 private:
  Mutex mu_;
  int value_ RSTORE_GUARDED_BY(mu_) = 0;
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_good_immutable_after_construction(self):
        text = wrap("""
class Holder {
 public:
  Holder() { value_ = 1; }
  int Get() const { return value_; }
 private:
  Mutex mu_;
  int value_ = 0;
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_bad_unmarked_atomic(self):
        text = wrap("""
class Holder {
 public:
  void Bump() { n_.fetch_add(1); }
 private:
  Mutex mu_;
  std::atomic<int> n_{0};
};
""")
        found = findings_for(self.CHECK, ("src/a.h", text))
        self.assertEqual(len(found), 1)
        self.assertIn("n_", found[0]["function"])

    def test_good_marked_atomic(self):
        text = wrap("""
class Holder {
 public:
  void Bump() { n_.fetch_add(1); }
 private:
  Mutex mu_;
  std::atomic<int> n_{0};  // analyze:atomic
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_bad_atomic_only_class_is_tracked(self):
        # No mutex anywhere: owning an atomic is enough to demand the
        # protocol marker.
        text = wrap("""
class Tally {
 public:
  void Bump() { n_.fetch_add(1); }
 private:
  std::atomic<int> n_{0};
};
""")
        self.assertEqual(len(findings_for(self.CHECK, ("src/a.h", text))), 1)

    def test_good_untracked_class_ignored(self):
        text = wrap("""
struct Stats {
  int hits = 0;
  void Bump() { hits += 1; }
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])


class AtomicMixedAccessTest(unittest.TestCase):
    CHECK = checks.CHECK_ATOMIC_MIXED

    BAD = wrap("""
class Queue {
 public:
  void Add() {
    MutexLock lock(mu_);
    pending_.fetch_add(1);
  }
  bool Poll() { return pending_.load() != 0; }
 private:
  Mutex mu_;
  std::atomic<int> pending_{0};
};
""")

    def test_bad_locked_and_lock_free(self):
        found = findings_for(self.CHECK, ("src/a.h", self.BAD))
        self.assertEqual(len(found), 1)
        self.assertIn("pending_", found[0]["message"])
        chain_fns = [fr["function"] for fr in found[0]["chain"]]
        self.assertTrue(any("Add" in f for f in chain_fns))
        self.assertTrue(any("Poll" in f for f in chain_fns))

    def test_good_marker_documents_the_protocol(self):
        text = self.BAD.replace("std::atomic<int> pending_{0};",
                                "std::atomic<int> pending_{0};"
                                "  // analyze:atomic")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_good_always_locked(self):
        text = wrap("""
class Queue {
 public:
  void Add() {
    MutexLock lock(mu_);
    pending_.fetch_add(1);
  }
  bool Poll() {
    MutexLock lock(mu_);
    return pending_.load() != 0;
  }
 private:
  Mutex mu_;
  std::atomic<int> pending_{0};
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_good_always_lock_free(self):
        text = wrap("""
class Queue {
 public:
  void Add() { pending_.fetch_add(1); }
  bool Poll() { return pending_.load() != 0; }
 private:
  Mutex mu_;
  std::atomic<int> pending_{0};
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_bad_must_held_caller_counts_as_locked(self):
        # The locked half of the mix comes from the interprocedural
        # must-hold set, not a lock in the accessing function itself.
        text = wrap("""
class Queue {
 public:
  void Add() {
    MutexLock lock(mu_);
    AddImpl();
  }
  bool Poll() { return pending_.load() != 0; }
 private:
  void AddImpl() { pending_.fetch_add(1); }
  Mutex mu_;
  std::atomic<int> pending_{0};
};
""")
        self.assertEqual(len(findings_for(self.CHECK, ("src/a.h", text))), 1)


class CondVarWaitCaptureTest(unittest.TestCase):
    """The predicate overload `Wait(mu, pred)` through an arrow receiver:
    the extractor must capture only the mutex argument (`->` is not a
    closing angle bracket), or the legal wait-on-the-held-mutex pattern
    resolves as a foreign-lock wait."""

    CHECK = checks.CHECK_BLOCKING

    SHARED = """
struct SharedState {
  Mutex mu{kLockRankLeaf, "SharedState::mu"};
  CondVar cv;
  bool ready = false;
};
"""

    def test_split_top_commas_ignores_member_arrows(self):
        self.assertEqual(
            extract._split_top_commas(
                "state_->mu, [this] { return state_->ready; }"),
            ["state_->mu", "[this] { return state_->ready; }"])
        self.assertEqual(extract._split_top_commas("a, b<c, d>, e(f, g)"),
                         ["a", "b<c, d>", "e(f, g)"])

    def test_good_predicate_wait_on_held_mutex(self):
        text = wrap(self.SHARED + """
class FutureLike {
 public:
  void Get() {
    MutexLock lock(state_->mu);
    state_->cv.Wait(state_->mu, [this] { return state_->ready; });
  }
 private:
  SharedState* state_;
};
""")
        self.assertEqual(findings_for(self.CHECK, ("src/a.h", text)), [])

    def test_bad_predicate_wait_under_foreign_lock(self):
        text = wrap(self.SHARED + """
class FutureLike {
 public:
  void Get() {
    MutexLock stats(stats_mu_);
    MutexLock lock(state_->mu);
    state_->cv.Wait(state_->mu, [this] { return state_->ready; });
  }
 private:
  Mutex stats_mu_{kLockRankMetrics, "FutureLike::stats_mu_"};
  SharedState* state_;
};
""")
        found = findings_for(self.CHECK, ("src/a.h", text))
        self.assertEqual(len(found), 1)
        self.assertIn("stats_mu_", found[0]["message"])


class FingerprintTest(unittest.TestCase):
    def test_stable_across_runs(self):
        text = GuardedFieldTest.DIVERGE
        a = findings_for(checks.CHECK_GUARDED_FIELD, ("src/a.h", text))
        b = findings_for(checks.CHECK_GUARDED_FIELD, ("src/a.h", text))
        self.assertEqual([f["fingerprint"] for f in a],
                         [f["fingerprint"] for f in b])


if __name__ == "__main__":
    unittest.main()
