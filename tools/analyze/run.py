#!/usr/bin/env python3
"""Whole-program static analysis for RStore's concurrency discipline.

Two stages (see DESIGN.md "Static analysis"):

  1. per-TU fact extraction (pluggable frontend: the portable pure-Python
     parser, or libclang when python3-clang is installed), cached in
     .analyze-cache/ keyed on source hash + extractor identity;
  2. a merged call-graph analysis running six checks:
       lock-rank-static     ranks must strictly decrease along every
                            acquisition path, including transitive ones
       blocking-under-lock  no user callback, KVStore backend call, or
                            CondVar wait on another mutex reachable while
                            any lock is held (the Scan bug class)
       sim-clock-purity     no wall clock / unseeded randomness reachable
                            from deterministic-simulation roots
       guarded-field        no access to an RSTORE_GUARDED_BY field where
                            the declared guard is not must-held on every
                            acquisition path (interprocedural, cross-TU)
       annotation-completeness
                            every mutable field of a lock-owning class is
                            guarded, an `analyze:atomic` atomic, or provably
                            immutable after construction
       atomic-mixed-access  no unmarked atomic accessed both under a lock
                            and lock-free (the alive_/hint_count_ bug class)

Usage:

  tools/analyze/run.py --all            # analyze src/ (the CI gate)
  tools/analyze/run.py src/kvstore      # analyze a subtree
  tools/analyze/run.py --self-test      # prove the checks on the bad-fixture
                                        # corpus (tools/analyze/fixtures/)
  tools/analyze/run.py --all --write-baseline   # accept current findings
  tools/analyze/run.py --all --incremental      # facts-cache hits vs
                                                # re-extracted TUs (and why)

Known findings live in tools/analyze/baseline.json with a justification
each; `// analyze:allow-<check>` on the offending line suppresses at source.
Exit status: 0 clean, 1 findings/self-test failure, 2 environment errors.
"""

import argparse
import json
import multiprocessing
import os
import re
import sys

ANALYZE_DIR = os.path.dirname(os.path.abspath(__file__))
TOOLS_DIR = os.path.dirname(ANALYZE_DIR)
REPO_ROOT = os.path.dirname(TOOLS_DIR)
for p in (ANALYZE_DIR, TOOLS_DIR):
    if p not in sys.path:
        sys.path.insert(0, p)

import callgraph
import checks as checks_mod
import compile_commands as ccdb
import extract as extract_python
import facts as facts_mod

BASELINE_PATH = os.path.join(ANALYZE_DIR, "baseline.json")
FIXTURES_DIR = os.path.join(ANALYZE_DIR, "fixtures")
DEFAULT_CACHE_DIR = os.path.join(REPO_ROOT, ".analyze-cache")

# Sources the fixture corpus is analyzed against: enough for lock ranks, the
# KVStore hierarchy, and one real backend (so backend-call dispatch has
# bodies) without dragging all of src/ into the self-test.
FIXTURE_CONTEXT = ("src/common/sync.h", "src/kvstore/kv_store.h",
                   "src/kvstore/memory_store.h", "src/kvstore/memory_store.cc")

EXPECT_RE = re.compile(
    r"//\s*analyze:expect-([\w-]+)(?:\s+chain>=(\d+))?")


# -- frontends ---------------------------------------------------------------

def load_extractor(name):
    """(module, resolved_name); exits with guidance when 'clang' is asked
    for but python3-clang is not installed."""
    if name in ("clang", "auto"):
        try:
            import extract_clang
            extract_clang.require_usable()
            return extract_clang, "clang"
        except Exception as exc:  # noqa: BLE001 - any import/probe failure
            if name == "clang":
                print("run.py: libclang frontend unavailable (%s);\n"
                      "  install python3-clang + libclang, or use "
                      "--extractor python" % exc, file=sys.stderr)
                sys.exit(2)
    return extract_python, "python"


def _extract_one(job):
    """Worker: returns (path, facts, status). `status` is "hit" or a
    "miss:<why>" tag for --incremental reporting; on a broken TU the worker
    returns (path, None, "error:<message>") instead of raising, so one bad
    file cannot poison the whole pool (the parent reports it and exits 2)."""
    path, extractor_name, cache_dir = job
    try:
        module, _ = load_extractor(extractor_name)
        with open(path, "rb") as f:
            source = f.read()
        key = facts_mod.facts_cache_key(
            source, module.EXTRACTOR_NAME, module.EXTRACTOR_VERSION)
        cache_path = (os.path.join(cache_dir, key + ".json")
                      if cache_dir else None)
        status = "miss:disabled" if not cache_dir else "miss:new"
        if cache_path and os.path.exists(cache_path):
            try:
                with open(cache_path, "r", encoding="utf-8") as f:
                    cached = json.load(f)
                if cached.get("schema") == facts_mod.SCHEMA_VERSION:
                    return path, cached, "hit"
                status = "miss:schema"
            except (OSError, ValueError):
                status = "miss:corrupt"
        tu_facts = module.extract_file(path, os.path.relpath(path, REPO_ROOT))
        if cache_path:
            os.makedirs(cache_dir, exist_ok=True)
            tmp = cache_path + ".tmp.%d" % os.getpid()
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(tu_facts, f, sort_keys=True)
            os.replace(tmp, cache_path)
        return path, tu_facts, status
    except Exception as exc:  # noqa: BLE001 - reported by the parent
        return path, None, "error:%s: %s" % (type(exc).__name__, exc)


_MISS_WHY = {
    "miss:new": "no cache entry for this source hash",
    "miss:schema": "cache entry has a stale facts schema",
    "miss:corrupt": "cache entry unreadable",
    "miss:disabled": "cache disabled",
}


# -- source collection -------------------------------------------------------

def _walk_sources(root, exts=(".cc", ".h")):
    out = []
    for dirpath, _dirs, files in os.walk(root):
        for name in sorted(files):
            if name.endswith(exts):
                out.append(os.path.join(dirpath, name))
    return out


def collect_sources(args):
    if args.self_test:
        srcs = _walk_sources(FIXTURES_DIR, exts=(".cc",))
        srcs += [os.path.join(REPO_ROOT, p) for p in FIXTURE_CONTEXT]
        return srcs, []
    if args.paths:
        srcs = []
        for p in args.paths:
            full = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
            if os.path.isdir(full):
                srcs += _walk_sources(full)
            elif os.path.isfile(full):
                srcs.append(full)
            else:
                print("run.py: no such path: %s" % p, file=sys.stderr)
                sys.exit(2)
        return sorted(set(srcs)), []
    # --all: TUs from the compilation database restricted to src/, plus all
    # headers under src/ (headers hold the inline bodies and class layouts).
    notes = []
    db = ccdb.find_database(args.build_dir)
    if db:
        srcs = ccdb.source_files(db, under="src")
        notes.append("TU list from %s" % os.path.relpath(db, REPO_ROOT))
    else:
        srcs = _walk_sources(os.path.join(REPO_ROOT, "src"), exts=(".cc",))
        notes.append("no compile_commands.json found; walked src/ instead "
                     "(configure with a preset to pin the TU list)")
    srcs += _walk_sources(os.path.join(REPO_ROOT, "src"), exts=(".h",))
    return sorted(set(srcs)), notes


# -- baseline ----------------------------------------------------------------

def load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return {}
    with open(BASELINE_PATH, "r", encoding="utf-8") as f:
        data = json.load(f)
    return {e["fingerprint"]: e for e in data.get("findings", [])}


def write_baseline(findings):
    entries = [{
        "fingerprint": f["fingerprint"],
        "check": f["check"],
        "function": f["function"],
        "message": f["message"],
        "justification": "TODO: justify or fix",
    } for f in findings]
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump({"comment": "Known analyzer findings. Every entry needs a "
                              "justification; prefer fixing or a source-level "
                              "analyze:allow-<check> for intentional cases.",
                   "findings": entries}, f, indent=2, sort_keys=True)
        f.write("\n")


# -- reporting ---------------------------------------------------------------

def print_finding(fnd, stream=sys.stdout):
    print("%s: %s:%d: %s" % (fnd["check"], fnd["file"], fnd["line"],
                             fnd["message"]), file=stream)
    for frame in fnd["chain"]:
        print("    %s:%d: in %s: %s"
              % (frame["file"], frame["line"], frame["function"],
                 frame["note"]), file=stream)
    print("  fingerprint: %s" % fnd["fingerprint"], file=stream)


# -- self-test ---------------------------------------------------------------

def run_self_test(findings, fixture_paths):
    """Every `// analyze:expect-<check>` marker in the fixtures must be
    matched by a finding of that check anchored on the marker's line (or the
    line after, for markers on their own line), honoring `chain>=N`."""
    expectations = []
    for path in fixture_paths:
        rel = os.path.relpath(path, REPO_ROOT)
        with open(path, "r", encoding="utf-8") as f:
            for ln, line in enumerate(f, start=1):
                for m in EXPECT_RE.finditer(line):
                    expectations.append({
                        "file": rel, "line": ln, "check": m.group(1),
                        "min_chain": int(m.group(2) or 0)})
    if not expectations:
        print("self-test: no analyze:expect-* markers found in %s"
              % FIXTURES_DIR, file=sys.stderr)
        return 1

    failures = []
    matched_fingerprints = set()
    for exp in expectations:
        hits = [f for f in findings
                if f["check"] == exp["check"] and f["file"] == exp["file"]
                and f["line"] in (exp["line"], exp["line"] + 1)
                and len(f["chain"]) >= exp["min_chain"]]
        if hits:
            matched_fingerprints.update(f["fingerprint"] for f in hits)
        else:
            failures.append(exp)

    fired = {f["check"] for f in findings}
    missing_checks = [c for c in checks_mod.ALL_CHECKS if c not in fired]

    print("self-test: %d expectation(s), %d finding(s), %d matched"
          % (len(expectations), len(findings), len(matched_fingerprints)))
    if failures:
        print("\nself-test FAILED; unmatched expectations:", file=sys.stderr)
        for exp in failures:
            want = exp["check"]
            if exp["min_chain"]:
                want += " (chain>=%d)" % exp["min_chain"]
            print("  %s:%d: expected %s" % (exp["file"], exp["line"], want),
                  file=sys.stderr)
        near = [f for f in findings
                if any(f["file"] == e["file"] for e in failures)]
        if near:
            print("\nfindings in the affected fixture(s):", file=sys.stderr)
            for f in near:
                print_finding(f, stream=sys.stderr)
        return 1
    if missing_checks:
        print("self-test FAILED; checks that never fired: %s"
              % ", ".join(missing_checks), file=sys.stderr)
        return 1
    print("self-test OK: all six checks fire on the fixture corpus")
    return 0


# -- main --------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze (default: "
                             "--all behavior over src/)")
    parser.add_argument("--all", action="store_true",
                        help="analyze every TU under src/ from the "
                             "compilation database, plus src/ headers")
    parser.add_argument("--self-test", action="store_true",
                        help="analyze the bad-fixture corpus and assert "
                             "every expected finding fires")
    parser.add_argument("--extractor", choices=("auto", "python", "clang"),
                        default="auto",
                        help="fact-extraction frontend (auto: libclang when "
                             "installed, else the portable parser)")
    parser.add_argument("--jobs", "-j", type=int,
                        default=min(8, os.cpu_count() or 1),
                        help="parallel extraction workers (clamped to >= 1)")
    parser.add_argument("--incremental", action="store_true",
                        help="report facts-cache hits vs re-extracted TUs "
                             "(one line per cache miss, with the reason)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="facts cache directory (empty string disables)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the facts cache")
    parser.add_argument("--build-dir", default=None,
                        help="build tree whose compile_commands.json to use")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite tools/analyze/baseline.json with the "
                             "current findings")
    parser.add_argument("--report", default=None,
                        help="write a machine-readable JSON report here")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="print resolution warnings and per-TU stats")
    args = parser.parse_args()

    if args.self_test and (args.paths or args.all):
        print("run.py: --self-test cannot combine with paths/--all",
              file=sys.stderr)
        return 2

    module, extractor_name = load_extractor(args.extractor)
    cache_dir = "" if args.no_cache else args.cache_dir

    sources, notes = collect_sources(args)
    if args.verbose:
        for note in notes:
            print("note: %s" % note)
        print("extracting %d file(s) with the %s frontend"
              % (len(sources), extractor_name))

    jobs = [(path, extractor_name, cache_dir) for path in sources]
    njobs = max(1, min(args.jobs, len(jobs)))
    if njobs > 1:
        # chunksize=1 keeps the stragglers balanced; map() preserves the
        # sorted source order, so the merged program is deterministic
        # regardless of worker scheduling.
        with multiprocessing.Pool(njobs) as pool:
            results = pool.map(_extract_one, jobs, chunksize=1)
    else:
        results = [_extract_one(job) for job in jobs]

    errors = [(p, s) for p, _f, s in results if s.startswith("error:")]
    if errors:
        for path, status in errors:
            print("run.py: extraction failed: %s: %s"
                  % (os.path.relpath(path, REPO_ROOT), status[len("error:"):]),
                  file=sys.stderr)
        return 2

    if args.incremental or args.verbose:
        hits = sum(1 for _p, _f, s in results if s == "hit")
        print("facts cache: %d hit(s), %d miss(es)"
              % (hits, len(results) - hits))
    if args.incremental:
        for path, _facts, status in results:
            if status != "hit":
                print("  re-extracted %s (%s)"
                      % (os.path.relpath(path, REPO_ROOT),
                         _MISS_WHY.get(status, status)))

    program = callgraph.Program()
    for _path, tu_facts, _status in results:
        program.add_tu(tu_facts)
    program.link()
    findings = checks_mod.run_checks(program)

    if args.verbose and program.warnings:
        print("%d resolution warning(s):" % len(program.warnings))
        for w in sorted(set(program.warnings)):
            print("  warning: %s" % w)

    if args.self_test:
        fixture_paths = _walk_sources(FIXTURES_DIR, exts=(".cc",))
        return run_self_test(findings, fixture_paths)

    if args.write_baseline:
        write_baseline(findings)
        print("wrote %s (%d finding(s)); fill in the justifications"
              % (os.path.relpath(BASELINE_PATH, REPO_ROOT), len(findings)))
        return 0

    baseline = load_baseline()
    new = [f for f in findings if f["fingerprint"] not in baseline]
    known = [f for f in findings if f["fingerprint"] in baseline]
    stale = [fp for fp in baseline if fp not in
             {f["fingerprint"] for f in findings}]

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump({"extractor": extractor_name,
                       "sources": len(sources),
                       "functions": len(program.functions),
                       "findings": findings,
                       "baselined": sorted(f["fingerprint"] for f in known),
                       "stale_baseline": sorted(stale),
                       "warnings": sorted(set(program.warnings))},
                      f, indent=2, sort_keys=True)
            f.write("\n")

    for fnd in new:
        print_finding(fnd)
    if known and args.verbose:
        print("%d baselined finding(s) suppressed" % len(known))
    if stale:
        print("note: %d stale baseline entr%s (fixed findings); prune %s"
              % (len(stale), "y" if len(stale) == 1 else "ies",
                 os.path.relpath(BASELINE_PATH, REPO_ROOT)))
    if new:
        print("\n%d new finding(s) across %d file(s), %d function(s) "
              "analyzed [%s frontend]"
              % (len(new), len(sources), len(program.functions),
                 extractor_name))
        return 1
    print("analyze: clean (%d file(s), %d function(s), %d baselined) "
          "[%s frontend]"
          % (len(sources), len(program.functions), len(known),
             extractor_name))
    return 0


if __name__ == "__main__":
    sys.exit(main())
