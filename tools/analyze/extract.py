"""Portable (pure-Python) fact-extraction frontend.

Parses one C++ file into the facts schema of facts.py without a compiler:
a line-preserving comment/string stripper, a brace-matching structural scan
(namespaces, classes, enums, function definitions), and a per-body event
scan (lock acquisitions, calls, callback invocations, clock/random uses).

This is not a C++ parser; it is tuned to this repository's idiom, which the
repo lint (tools/lint.py) and clang-format keep uniform:

  * locks are the annotated primitives from common/sync.h, acquired via the
    RAII guards (`MutexLock lock(mu_);`) or, rarely, manual `mu.Lock()`;
  * every Mutex/SharedMutex is declared with a kLockRank* constant;
  * callbacks are `std::function` parameters (or a `using` alias of one);
  * one class per qualified name, CamelCase methods, snake_case members.

The libclang frontend (extract_clang.py) produces the same facts with exact
name resolution and is preferred when python3-clang is installed; this
frontend is the portable fallback and the deterministic CI gate until the
two provably agree (see DESIGN.md "Static analysis").
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from lint import strip_comments_and_strings  # noqa: E402  (tools/lint.py)

import facts  # noqa: E402

EXTRACTOR_NAME = "python"
EXTRACTOR_VERSION = 1

# Keywords that can precede a '(' without being a call.
NON_CALL_KEYWORDS = frozenset("""
    if for while switch return sizeof alignof decltype noexcept catch
    static_cast dynamic_cast reinterpret_cast const_cast typeid new delete
    throw case co_await co_return co_yield assert defined alignas
""".split())

# Keywords that may legitimately precede a call expression, so the
# "identifier whitespace identifier(" declaration heuristic must not fire.
PRE_CALL_KEYWORDS = frozenset(
    "return else do case throw co_return co_yield".split())

# Statement-ish keywords that disqualify a block header from being a
# class/struct/function definition.
CONTROL_KEYWORDS = frozenset(
    "if else for while switch do try catch".split())

RAII_GUARDS = {"MutexLock": "MutexLock",
               "ReaderLock": "ReaderLock",
               "WriterLock": "WriterLock"}

WALL_CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bclock\s*\(\s*\)"
    r"|(?<![\w:])time\s*\(|\blocaltime\s*\(|\bgmtime\s*\(|\bStopwatch\b")

RANDOM_RE = re.compile(
    r"\brandom_device\b|(?<![\w:.])s?rand\s*\("
    r"|\b(mt19937(?:_64)?|default_random_engine|minstd_rand0?)\s+\w+\s*[;{]")

ALLOW_MARKER_RE = re.compile(r"analyze:allow-([\w-]+)")
ROOT_MARKER_RE = re.compile(r"analyze:root\b")

MUTEX_DECL_RE = re.compile(
    r"\b(Mutex|SharedMutex)\s+(\w+)\s*(?:\{\s*(kLockRank\w+)[^}]*\})?\s*;")

RAII_ACQUIRE_RE = re.compile(
    r"\b(MutexLock|ReaderLock|WriterLock)\s+\w+\s*[({]\s*([^;)}]+?)\s*[)}]")

CALL_RE = re.compile(r"((?:[A-Za-z_]\w*\s*::\s*)*)([A-Za-z_]\w*)\s*\(")

ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*std\s*::\s*function\s*<")

ENUM_CONST_RE = re.compile(r"\b(kLockRank\w+)\s*=\s*(\d+)")

GUARD_ATTR_RE = re.compile(r"RSTORE_[A-Z_]+\s*\([^()]*\)")


def _blank_preprocessor(text):
    """Blanks out preprocessor directives (incl. line continuations),
    preserving line breaks so offsets stay stable."""
    lines = text.split("\n")
    in_directive = False
    for i, line in enumerate(lines):
        stripped = line.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            lines[i] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


def _line_markers(text):
    """Per-line analyze: markers, read from the original (uncommented) text."""
    allow = {}
    roots = set()
    for idx, line in enumerate(text.splitlines()):
        checks = ALLOW_MARKER_RE.findall(line)
        if checks:
            allow[idx + 1] = checks
        if ROOT_MARKER_RE.search(line):
            roots.add(idx + 1)
    return allow, roots


def _depth_and_lines(text):
    """Per-offset {}-depth (depth AFTER processing the char) and line number
    arrays for the stripped text."""
    depth = [0] * len(text)
    line = [1] * len(text)
    d = 0
    ln = 1
    for i, c in enumerate(text):
        if c == "{":
            d += 1
        elif c == "}":
            d = max(0, d - 1)
        elif c == "\n":
            ln += 1
        depth[i] = d
        line[i] = ln
    return depth, line


def _matching_paren(text, open_pos):
    """Offset of the ')' matching the '(' at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _split_top_commas(text):
    out = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == "," and depth == 0:
            out.append(text[start:i])
            start = i + 1
    out.append(text[start:])
    return [p.strip() for p in out if p.strip()]


FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:operator\s*[^\s\w(]+|~?[A-Za-z_]\w*))\s*$")


def _strip_ns(qual):
    """Drops the project namespace prefix: names are unique without it."""
    for ns in ("rstore::", "std::"):
        if qual.startswith(ns):
            qual = qual[len(ns):]
    return qual


class _Scope:
    __slots__ = ("kind", "name", "header_start", "body_start")

    def __init__(self, kind, name, header_start, body_start):
        self.kind = kind          # ns | class | enum | function | block
        self.name = name
        self.header_start = header_start
        self.body_start = body_start


def extract_file(abs_path, rel_path):
    """Extracts facts from one C++ file. Never raises on weird code; the
    worst case is missing events (documented approximation, see DESIGN.md)."""
    with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
        original = f.read()

    allow_by_line, root_lines = _line_markers(original)
    text = _blank_preprocessor(strip_comments_and_strings(original))
    depth, line_of = _depth_and_lines(text)

    out = {
        "schema": facts.SCHEMA_VERSION,
        "tu": rel_path,
        "extractor": EXTRACTOR_NAME,
        "ranks": {},
        "aliases": ALIAS_RE.findall(text),
        "classes": {},
        "mutexes": [],
        "functions": [],
    }

    file_tag = os.path.basename(rel_path)
    scope_stack = []          # _Scope entries for every open '{'
    stmt_start = 0            # start offset of the current statement

    def class_context():
        names = [s.name for s in scope_stack if s.kind == "class"]
        return "::".join(names)

    def in_function():
        return any(s.kind == "function" for s in scope_stack)

    def classify_header(header, open_pos):
        """What does the '{' at open_pos open, given its header text?"""
        header = header.strip()
        first_word = re.match(r"[A-Za-z_]\w*", header)
        if first_word and first_word.group(0) in CONTROL_KEYWORDS:
            return ("block", None)
        if re.match(r"namespace\b", header):
            m = re.match(r"namespace\s+(\w+)", header)
            return ("ns", m.group(1) if m else "<anon>")
        m = re.search(r"\benum\s+(?:class\s+|struct\s+)?(\w+)", header)
        if m and "(" not in header:
            return ("enum", m.group(1))
        m = re.search(
            r"\b(?:class|struct)\s+(?:RSTORE_\w+\s*(?:\([^)]*\))?\s*)*(\w+)"
            r"\s*(?:final\s*)?(?::|$)", header)
        if m and not header.rstrip().endswith(")"):
            bases = re.findall(
                r"(?:public|protected|private)\s+([\w:]+)",
                header.split(":", 1)[1] if ":" in header else "")
            return ("class", (m.group(1), [_strip_ns(b) for b in bases]))
        # Function definition: a top-level '(' whose matching ')' is followed
        # (modulo qualifiers/init-list) by this '{'.
        paren = header.find("(")
        if paren == -1:
            return ("block", None)
        m = FUNC_NAME_RE.search(header[:paren].rstrip())
        if not m:
            return ("block", None)
        name = re.sub(r"\s+", "", m.group(1))
        if name in NON_CALL_KEYWORDS or name in CONTROL_KEYWORDS:
            return ("block", None)
        close = _matching_paren(header, paren)
        params = header[paren + 1:close] if close != -1 else ""
        return ("function", (name, params))

    # ---- structural scan ---------------------------------------------------

    pending_functions = []    # (scope, qual, cls, params, body_start)

    for i, c in enumerate(text):
        if c == "{":
            header = text[stmt_start:i]
            if in_function():
                scope_stack.append(_Scope("block", None, stmt_start, i + 1))
            else:
                kind, payload = classify_header(header, i)
                if kind == "class":
                    name, bases = payload
                    qual = (class_context() + "::" + name
                            if class_context() else name)
                    out["classes"].setdefault(
                        qual, {"bases": [], "members": {}})
                    out["classes"][qual]["bases"] = bases
                    scope_stack.append(_Scope("class", name, stmt_start, i + 1))
                elif kind == "function":
                    name, params = payload
                    name = _strip_ns(name)
                    cls = class_context()
                    if "::" in name:
                        # Out-of-class definition: Class::Method.
                        cls_part, _, base = name.rpartition("::")
                        cls = cls_part if not cls else cls + "::" + cls_part
                        qual = cls + "::" + base
                    elif cls:
                        qual = cls + "::" + name
                    else:
                        # Free/static helper: qualify by file so same-named
                        # helpers in different TUs stay distinct.
                        qual = file_tag + "::" + name
                    sc = _Scope("function", qual, stmt_start, i + 1)
                    scope_stack.append(sc)
                    pending_functions.append((sc, qual, cls, params, i + 1))
                elif kind == "block":
                    # Outside any function, a bare '{' is a brace initializer
                    # (`Mutex mu_{kLockRank..., "..."};`, constexpr arrays).
                    # Keep the statement open so the terminating ';' hands the
                    # whole declaration to _class_statement.
                    scope_stack.append(_Scope("init", None, stmt_start, i + 1))
                    continue
                else:
                    scope_stack.append(
                        _Scope(kind, payload if isinstance(payload, str)
                               else None, stmt_start, i + 1))
            stmt_start = i + 1
        elif c == "}":
            if scope_stack:
                sc = scope_stack.pop()
                if sc.kind == "init":
                    continue  # initializer: statement continues to its ';'
                if sc.kind == "function":
                    _emit_function(out, text, original, sc, i,
                                   pending_functions, depth, line_of,
                                   allow_by_line, root_lines)
                elif sc.kind == "enum":
                    for name, value in ENUM_CONST_RE.findall(
                            text[sc.body_start:i]):
                        out["ranks"][name] = int(value)
            stmt_start = i + 1
        elif c == ";":
            if not in_function():
                _class_statement(out, text[stmt_start:i + 1],
                                 class_context(), line_of[i])
            stmt_start = i + 1

    return out


def _class_statement(out, stmt, cls, line):
    """Member declarations at class scope: mutexes and typed members."""
    if not cls:
        return
    stmt = GUARD_ATTR_RE.sub(" ", stmt).strip()
    if not stmt or stmt.startswith(("using", "friend", "typedef", "template")):
        return
    m = MUTEX_DECL_RE.search(stmt)
    if m and "(" not in stmt[:m.start()]:
        kind, name, rank_const = m.group(1), m.group(2), m.group(3)
        out["mutexes"].append({
            "member": name, "cls": cls, "kind": kind,
            "rank_const": rank_const or "kLockRankLeaf", "line": line,
        })
        return
    if "(" in stmt:
        return  # method declaration, not a data member
    dm = re.match(r"(?:mutable\s+|static\s+|constexpr\s+|inline\s+|const\s+)*"
                  r"(.+?)\s+(\w+)\s*(?:\{[^;]*\})?\s*(?:=[^;]*)?;$", stmt)
    if dm:
        out["classes"].setdefault(cls, {"bases": [], "members": {}})
        out["classes"][cls]["members"][dm.group(2)] = dm.group(1)


def _callback_params(params_text, aliases):
    """Names of parameters whose type is std::function (or an alias)."""
    names = []
    for param in _split_top_commas(params_text):
        param = param.split("=", 1)[0].strip()
        is_cb = "std::function" in param.replace(" ", "").replace(
            "std ::", "std::") or "function<" in param
        if not is_cb:
            head = param.split("<", 1)[0]
            is_cb = any(re.search(r"\b%s\b" % re.escape(a), head)
                        for a in aliases)
        if not is_cb:
            continue
        pm = re.search(r"(\w+)\s*$", param)
        if pm and pm.group(1) not in ("function",):
            names.append(pm.group(1))
    return names


def _receiver_before(body, pos):
    """The receiver expression for a call at `pos`, e.g. "nodes_[node]" for
    `nodes_[node]->Put(`; empty string for a free call."""
    j = pos - 1
    while j >= 0 and body[j].isspace():
        j -= 1
    if j < 0:
        return ""
    if body[j] == "." :
        end = j - 1
    elif j >= 1 and body[j - 1:j + 1] == "->":
        end = j - 2
    else:
        return ""
    # Walk back over an identifier chain with balanced [...] / (...) groups
    # and '->' / '::' / '.' connectors.
    group_depth = 0
    start = end
    while start >= 0:
        ch = body[start]
        if ch in ")]":
            group_depth += 1
        elif ch in "([":
            if group_depth == 0:
                break
            group_depth -= 1
        elif group_depth == 0 and not (ch.isalnum() or ch in "_."):
            if ch == ">" and start >= 1 and body[start - 1] == "-":
                start -= 1
            elif ch == ":" and start >= 1 and body[start - 1] == ":":
                start -= 1
            else:
                break
        start -= 1
    return body[start + 1:end + 1].strip()


def _base_identifier(expr):
    m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", expr)
    return m.group(1) if m else ""


def _emit_function(out, text, original, scope, close_pos, pending,
                   depth, line_of, allow_by_line, root_lines):
    """Builds the function record (with body events) for a just-closed
    function scope."""
    rec = None
    for entry in reversed(pending):
        if entry[0] is scope:
            rec = entry
            break
    if rec is None:
        return
    pending.remove(rec)
    _, qual, cls, params, body_start = rec
    body = text[body_start:close_pos]
    base_depth = depth[body_start - 1]  # depth inside the body
    header_line = line_of[scope.header_start]
    body_first_line = line_of[body_start - 1]

    func = {
        "qual": qual,
        "cls": cls,
        "file": out["tu"],
        "line": header_line,
        # // analyze:root goes on the line above the signature, on the
        # signature line itself, or on the body's first line.
        "root": any(header_line - 1 <= ln <= body_first_line + 1
                    for ln in root_lines),
        "callback_params": _callback_params(params, out["aliases"]),
        "local_mutexes": {},
        "events": [],
    }

    def ev_line(off):
        return line_of[body_start + off]

    def ev_depth(off):
        return depth[body_start + off]

    def allow_at(off):
        return allow_by_line.get(ev_line(off), [])

    # Local mutex declarations (e.g. ParallelFor's error_mu).
    for m in MUTEX_DECL_RE.finditer(body):
        func["local_mutexes"][m.group(2)] = m.group(3) or "kLockRankLeaf"

    # -- acquisitions: RAII guards, with their release offsets -------------
    acquires = []  # (start_off, release_off, lock_expr, how)
    for m in RAII_ACQUIRE_RE.finditer(body):
        d = ev_depth(m.start())
        release = len(body)
        for j in range(m.end(), len(body)):
            if depth[body_start + j] < d:
                release = j
                break
        acquires.append((m.start(), release, m.group(2).strip(), m.group(1)))

    # Manual mu.Lock()/mu.LockShared() ... mu.Unlock() pairs (rare).
    for m in re.finditer(r"([\w.\[\]>-]+)\s*[.>-]\s*(Lock|LockShared)\s*\(\s*\)",
                         body):
        recv = m.group(1).rstrip(".->")
        release = len(body)
        um = re.search(re.escape(recv) + r"\s*[.>-]+\s*Unlock(?:Shared)?\s*\(",
                       body[m.end():])
        if um:
            release = m.end() + um.start()
        acquires.append((m.start(), release, recv, m.group(2)))

    acquires.sort()

    def held_at(off):
        return [expr for (a, r, expr, _how) in acquires if a < off < r]

    for (a, _r, expr, how) in acquires:
        func["events"].append({
            "kind": "acquire", "lock": expr, "how": how,
            "line": ev_line(a), "held": held_at(a), "allow": allow_at(a),
        })

    # -- calls, callback invocations, condvar waits ------------------------
    for m in CALL_RE.finditer(body):
        quals = re.sub(r"\s+", "", m.group(1) or "")
        callee = m.group(2)
        pos = m.start(1) if m.group(1) else m.start(2)
        if callee in NON_CALL_KEYWORDS or callee in CONTROL_KEYWORDS:
            continue
        if callee in RAII_GUARDS or callee in ("Lock", "LockShared",
                                               "Unlock", "UnlockShared"):
            continue  # handled as acquisitions above
        recv = _receiver_before(body, pos)

        # Declaration heuristic: `Type name(args)` — emit the TYPE as a
        # constructor call instead of the variable name.
        is_decl_ctor = False
        j = pos - 1
        while j >= 0 and body[j].isspace():
            j -= 1
        if j >= 0 and (body[j].isalnum() or body[j] == "_") and not recv:
            pm = re.search(r"([A-Za-z_]\w*)\s*$", body[:j + 1])
            prev_tok = pm.group(1) if pm else ""
            if prev_tok and prev_tok not in PRE_CALL_KEYWORDS:
                if prev_tok in NON_CALL_KEYWORDS:
                    continue
                # Declaration: the call-like token is the variable name; the
                # preceding type may be a project class whose constructor
                # runs here. RAII guards were already emitted as acquires.
                if prev_tok in RAII_GUARDS:
                    continue
                if prev_tok[0].isupper():
                    callee, quals, is_decl_ctor = prev_tok, "", True
                else:
                    continue

        if quals.startswith("std::") or quals.startswith("::"):
            continue

        args_open = m.end() - 1
        args_close = _matching_paren(body, args_open)
        args = body[args_open + 1:args_close] if args_close != -1 else ""

        if callee == "Wait" and recv:
            arg_list = _split_top_commas(args)
            func["events"].append({
                "kind": "condvar_wait", "cv": recv,
                "mutex": arg_list[0] if arg_list else "",
                "line": ev_line(pos), "held": held_at(pos),
                "allow": allow_at(pos),
            })
            continue

        if not recv and callee in func["callback_params"]:
            func["events"].append({
                "kind": "callback", "callee": callee,
                "line": ev_line(pos), "held": held_at(pos),
                "allow": allow_at(pos),
            })
            continue

        # Drop receiver-qualified lower-case calls with unknown receivers at
        # resolution time, not here; the analysis stage has the type tables.
        func["events"].append({
            "kind": "call", "callee": callee, "quals": quals, "recv": recv,
            "is_decl_ctor": is_decl_ctor,
            "line": ev_line(pos), "held": held_at(pos),
            "allow": allow_at(pos),
        })

    # -- wall clock / randomness -------------------------------------------
    for m in WALL_CLOCK_RE.finditer(body):
        pos = m.start()
        func["events"].append({
            "kind": "wall_clock", "what": m.group(0).strip().rstrip("("),
            "line": ev_line(pos), "held": held_at(pos),
            "allow": allow_at(pos),
        })
    for m in RANDOM_RE.finditer(body):
        pos = m.start()
        func["events"].append({
            "kind": "random", "what": m.group(0).strip().rstrip("("),
            "line": ev_line(pos), "held": held_at(pos),
            "allow": allow_at(pos),
        })

    func["events"].sort(key=lambda e: e["line"])
    out["functions"].append(func)
