"""Portable (pure-Python) fact-extraction frontend.

Parses one C++ file into the facts schema of facts.py without a compiler:
a line-preserving comment/string stripper, a brace-matching structural scan
(namespaces, classes, enums, function definitions), and a per-body event
scan (lock acquisitions, calls, callback invocations, clock/random uses).

This is not a C++ parser; it is tuned to this repository's idiom, which the
repo lint (tools/lint.py) and clang-format keep uniform:

  * locks are the annotated primitives from common/sync.h, acquired via the
    RAII guards (`MutexLock lock(mu_);`) or, rarely, manual `mu.Lock()`;
  * every Mutex/SharedMutex is declared with a kLockRank* constant;
  * callbacks are `std::function` parameters (or a `using` alias of one);
  * one class per qualified name, CamelCase methods, snake_case members.

The libclang frontend (extract_clang.py) produces the same facts with exact
name resolution and is preferred when python3-clang is installed; this
frontend is the portable fallback and the deterministic CI gate until the
two provably agree (see DESIGN.md "Static analysis").
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from lint import strip_comments_and_strings  # noqa: E402  (tools/lint.py)

import facts  # noqa: E402

EXTRACTOR_NAME = "python"
EXTRACTOR_VERSION = 3  # v3: `->` no longer closes an angle bracket in arg splits

# Keywords that can precede a '(' without being a call.
NON_CALL_KEYWORDS = frozenset("""
    if for while switch return sizeof alignof decltype noexcept catch
    static_cast dynamic_cast reinterpret_cast const_cast typeid new delete
    throw case co_await co_return co_yield assert defined alignas
""".split())

# Keywords that may legitimately precede a call expression, so the
# "identifier whitespace identifier(" declaration heuristic must not fire.
PRE_CALL_KEYWORDS = frozenset(
    "return else do case throw co_return co_yield".split())

# Statement-ish keywords that disqualify a block header from being a
# class/struct/function definition.
CONTROL_KEYWORDS = frozenset(
    "if else for while switch do try catch".split())

RAII_GUARDS = {"MutexLock": "MutexLock",
               "ReaderLock": "ReaderLock",
               "WriterLock": "WriterLock"}

WALL_CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bclock\s*\(\s*\)"
    r"|(?<![\w:])time\s*\(|\blocaltime\s*\(|\bgmtime\s*\(|\bStopwatch\b")

RANDOM_RE = re.compile(
    r"\brandom_device\b|(?<![\w:.])s?rand\s*\("
    r"|\b(mt19937(?:_64)?|default_random_engine|minstd_rand0?)\s+\w+\s*[;{]")

ALLOW_MARKER_RE = re.compile(r"analyze:allow-([\w-]+)")
ROOT_MARKER_RE = re.compile(r"analyze:root\b")
ATOMIC_MARKER_RE = re.compile(r"analyze:atomic\b")

MUTEX_DECL_RE = re.compile(
    r"\b(Mutex|SharedMutex)\s+(\w+)\s*(?:\{\s*(kLockRank\w+)[^}]*\})?\s*;")

RAII_ACQUIRE_RE = re.compile(
    r"\b(MutexLock|ReaderLock|WriterLock)\s+\w+\s*[({]\s*([^;)}]+?)\s*[)}]")

CALL_RE = re.compile(r"((?:[A-Za-z_]\w*\s*::\s*)*)([A-Za-z_]\w*)\s*\(")

ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*std\s*::\s*function\s*<")

ENUM_CONST_RE = re.compile(r"\b(kLockRank\w+)\s*=\s*(\d+)")

GUARD_ATTR_RE = re.compile(r"RSTORE_[A-Z_]+\s*\([^()]*\)")

GUARDED_BY_RE = re.compile(r"RSTORE_(?:PT_)?GUARDED_BY\s*\(\s*([^()]*?)\s*\)")

REQUIRES_RE = re.compile(r"RSTORE_REQUIRES(?:_SHARED)?\s*\(\s*([^()]*?)\s*\)")

# Method names on a member chain that mutate the object they are called on.
# Used by the field-access scan to classify `x_.push_back(..)` as a write.
MUTATING_METHODS = frozenset("""
    push_back emplace_back pop_back push_front pop_front clear erase insert
    emplace emplace_front resize reserve assign swap store fetch_add fetch_sub
    fetch_and fetch_or fetch_xor exchange compare_exchange_weak
    compare_exchange_strong reset release merge extract
""".split())


def _blank_preprocessor(text):
    """Blanks out preprocessor directives (incl. line continuations),
    preserving line breaks so offsets stay stable."""
    lines = text.split("\n")
    in_directive = False
    for i, line in enumerate(lines):
        stripped = line.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            lines[i] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


def _line_markers(text):
    """Per-line analyze: markers, read from the original (uncommented) text."""
    allow = {}
    roots = set()
    atomics = set()
    for idx, line in enumerate(text.splitlines()):
        checks = ALLOW_MARKER_RE.findall(line)
        if checks:
            allow[idx + 1] = checks
        if ROOT_MARKER_RE.search(line):
            roots.add(idx + 1)
        if ATOMIC_MARKER_RE.search(line):
            atomics.add(idx + 1)
    return allow, roots, atomics


def _depth_and_lines(text):
    """Per-offset {}-depth (depth AFTER processing the char) and line number
    arrays for the stripped text."""
    depth = [0] * len(text)
    line = [1] * len(text)
    d = 0
    ln = 1
    for i, c in enumerate(text):
        if c == "{":
            d += 1
        elif c == "}":
            d = max(0, d - 1)
        elif c == "\n":
            ln += 1
        depth[i] = d
        line[i] = ln
    return depth, line


def _matching_paren(text, open_pos):
    """Offset of the ')' matching the '(' at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _matching_bracket(text, open_pos):
    """Offset of the ']' matching the '[' at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _split_top_commas(text):
    out = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            if c == ">" and i > 0 and text[i - 1] == "-":
                continue  # `->` is a member arrow, not a closing angle
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            out.append(text[start:i])
            start = i + 1
    out.append(text[start:])
    return [p.strip() for p in out if p.strip()]


FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:operator\s*[^\s\w(]+|~?[A-Za-z_]\w*))\s*$")


def _strip_ns(qual):
    """Drops the project namespace prefix: names are unique without it."""
    for ns in ("rstore::", "std::"):
        if qual.startswith(ns):
            qual = qual[len(ns):]
    return qual


class _Scope:
    __slots__ = ("kind", "name", "header_start", "body_start")

    def __init__(self, kind, name, header_start, body_start):
        self.kind = kind          # ns | class | enum | function | block
        self.name = name
        self.header_start = header_start
        self.body_start = body_start


def extract_file(abs_path, rel_path):
    """Extracts facts from one C++ file. Never raises on weird code; the
    worst case is missing events (documented approximation, see DESIGN.md)."""
    with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
        original = f.read()

    allow_by_line, root_lines, atomic_lines = _line_markers(original)
    text = _blank_preprocessor(strip_comments_and_strings(original))
    depth, line_of = _depth_and_lines(text)

    out = {
        "schema": facts.SCHEMA_VERSION,
        "tu": rel_path,
        "extractor": EXTRACTOR_NAME,
        "ranks": {},
        "aliases": ALIAS_RE.findall(text),
        "classes": {},
        "mutexes": [],
        "functions": [],
    }

    file_tag = os.path.basename(rel_path)
    scope_stack = []          # _Scope entries for every open '{'
    stmt_start = 0            # start offset of the current statement

    def class_context():
        names = [s.name for s in scope_stack if s.kind == "class"]
        return "::".join(names)

    def in_function():
        return any(s.kind == "function" for s in scope_stack)

    def classify_header(header, open_pos):
        """What does the '{' at open_pos open, given its header text?"""
        header = header.strip()
        first_word = re.match(r"[A-Za-z_]\w*", header)
        if first_word and first_word.group(0) in CONTROL_KEYWORDS:
            return ("block", None)
        if re.match(r"namespace\b", header):
            m = re.match(r"namespace\s+(\w+)", header)
            return ("ns", m.group(1) if m else "<anon>")
        m = re.search(r"\benum\s+(?:class\s+|struct\s+)?(\w+)", header)
        if m and "(" not in header:
            return ("enum", m.group(1))
        m = re.search(
            r"\b(?:class|struct)\s+(?:RSTORE_\w+\s*(?:\([^)]*\))?\s*)*(\w+)"
            r"\s*(?:final\s*)?(?::|$)", header)
        if m and not header.rstrip().endswith(")"):
            bases = re.findall(
                r"(?:public|protected|private)\s+([\w:]+)",
                header.split(":", 1)[1] if ":" in header else "")
            return ("class", (m.group(1), [_strip_ns(b) for b in bases]))
        # Function definition: a top-level '(' whose matching ')' is followed
        # (modulo qualifiers/init-list) by this '{'.
        paren = header.find("(")
        if paren == -1:
            return ("block", None)
        m = FUNC_NAME_RE.search(header[:paren].rstrip())
        if not m:
            return ("block", None)
        name = re.sub(r"\s+", "", m.group(1))
        if name in NON_CALL_KEYWORDS or name in CONTROL_KEYWORDS:
            return ("block", None)
        close = _matching_paren(header, paren)
        params = header[paren + 1:close] if close != -1 else ""
        return ("function", (name, params))

    # ---- structural scan ---------------------------------------------------

    pending_functions = []    # (scope, qual, cls, params, body_start)

    for i, c in enumerate(text):
        if c == "{":
            header = text[stmt_start:i]
            if in_function():
                scope_stack.append(_Scope("block", None, stmt_start, i + 1))
            else:
                kind, payload = classify_header(header, i)
                if kind == "class":
                    name, bases = payload
                    qual = (class_context() + "::" + name
                            if class_context() else name)
                    out["classes"].setdefault(qual, _new_class())
                    out["classes"][qual]["bases"] = bases
                    scope_stack.append(_Scope("class", name, stmt_start, i + 1))
                elif kind == "function":
                    name, params = payload
                    name = _strip_ns(name)
                    cls = class_context()
                    if "::" in name:
                        # Out-of-class definition: Class::Method.
                        cls_part, _, base = name.rpartition("::")
                        cls = cls_part if not cls else cls + "::" + cls_part
                        qual = cls + "::" + base
                    elif cls:
                        qual = cls + "::" + name
                    else:
                        # Free/static helper: qualify by file so same-named
                        # helpers in different TUs stay distinct.
                        qual = file_tag + "::" + name
                    sc = _Scope("function", qual, stmt_start, i + 1)
                    scope_stack.append(sc)
                    pending_functions.append((sc, qual, cls, params, i + 1))
                elif kind == "block":
                    # Outside any function, a bare '{' is a brace initializer
                    # (`Mutex mu_{kLockRank..., "..."};`, constexpr arrays).
                    # Keep the statement open so the terminating ';' hands the
                    # whole declaration to _class_statement.
                    scope_stack.append(_Scope("init", None, stmt_start, i + 1))
                    continue
                else:
                    scope_stack.append(
                        _Scope(kind, payload if isinstance(payload, str)
                               else None, stmt_start, i + 1))
            stmt_start = i + 1
        elif c == "}":
            if scope_stack:
                sc = scope_stack.pop()
                if sc.kind == "init":
                    continue  # initializer: statement continues to its ';'
                if sc.kind == "function":
                    _emit_function(out, text, original, sc, i,
                                   pending_functions, depth, line_of,
                                   allow_by_line, root_lines)
                elif sc.kind == "enum":
                    for name, value in ENUM_CONST_RE.findall(
                            text[sc.body_start:i]):
                        out["ranks"][name] = int(value)
            stmt_start = i + 1
        elif c == ";":
            if not in_function():
                s = stmt_start
                while s < i and text[s].isspace():
                    s += 1
                _class_statement(out, text[stmt_start:i + 1],
                                 class_context(), line_of[s], line_of[i],
                                 allow_by_line, atomic_lines)
            stmt_start = i + 1

    return out


def _new_class():
    return {"bases": [], "members": {}, "requires": {}}


def _add_requires(out, cls, method, req_args):
    """Records RSTORE_REQUIRES[_SHARED] lock expressions for cls::method."""
    entry = out["classes"].setdefault(cls, _new_class())
    locks = entry["requires"].setdefault(method, [])
    for arg in req_args:
        for lock in _split_top_commas(arg):
            if lock not in locks:
                locks.append(lock)


def _class_statement(out, stmt, cls, first_line, last_line,
                     allow_by_line, atomic_lines):
    """Member declarations at class scope: mutexes, typed members (with
    their GUARDED_BY guard / atomic / const facts), and the REQUIRES map
    of annotated method declarations."""
    if not cls:
        return
    raw = stmt.strip()
    # Access-specifier labels glue onto the following declaration.
    raw = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+\s*", "", raw)
    if not raw or raw.startswith(("using", "friend", "typedef", "template")):
        return
    guard_m = GUARDED_BY_RE.search(raw)
    guard = guard_m.group(1).strip() if guard_m else ""
    req_args = REQUIRES_RE.findall(raw)
    stmt = GUARD_ATTR_RE.sub(" ", raw).strip()
    if not stmt:
        return
    m = MUTEX_DECL_RE.search(stmt)
    if m and "(" not in stmt[:m.start()]:
        kind, name, rank_const = m.group(1), m.group(2), m.group(3)
        out["mutexes"].append({
            "member": name, "cls": cls, "kind": kind,
            "rank_const": rank_const or "kLockRankLeaf", "line": first_line,
        })
        return
    if "(" in stmt:
        # Method declaration: keep its REQUIRES clause for the must-hold
        # seed, keyed by base name.
        if req_args:
            nm = re.search(r"([A-Za-z_]\w*)\s*$", stmt[:stmt.find("(")])
            if nm and nm.group(1) not in NON_CALL_KEYWORDS:
                _add_requires(out, cls, nm.group(1), req_args)
        return
    dm = re.match(r"((?:mutable\s+|static\s+|constexpr\s+|inline\s+"
                  r"|const\s+)*)"
                  r"(.+?)\s+(\w+)\s*(?:\[[^\]]*\]\s*)*"
                  r"(?:\{[^;]*\})?\s*(?:=[^;]*)?;$", stmt)
    if not dm:
        return
    prefix, type_text, name = dm.group(1), dm.group(2).strip(), dm.group(3)
    decl_lines = range(first_line - 1, last_line + 1)
    allow = sorted({c for ln in decl_lines
                    for c in allow_by_line.get(ln, [])})
    out["classes"].setdefault(cls, _new_class())
    out["classes"][cls]["members"][name] = {
        "type": type_text,
        "guard": guard,
        "atomic": bool(re.search(r"\batomic\b", type_text)),
        "atomic_marker": any(ln in atomic_lines for ln in decl_lines),
        "konst": bool(re.search(r"\b(?:const|constexpr|static)\b", prefix)),
        "is_mutable": bool(re.search(r"\bmutable\b", prefix)),
        "file": out["tu"],
        "line": first_line,
        "allow": allow,
    }


def _callback_params(params_text, aliases):
    """Names of parameters whose type is std::function (or an alias)."""
    names = []
    for param in _split_top_commas(params_text):
        param = param.split("=", 1)[0].strip()
        is_cb = "std::function" in param.replace(" ", "").replace(
            "std ::", "std::") or "function<" in param
        if not is_cb:
            head = param.split("<", 1)[0]
            is_cb = any(re.search(r"\b%s\b" % re.escape(a), head)
                        for a in aliases)
        if not is_cb:
            continue
        pm = re.search(r"(\w+)\s*$", param)
        if pm and pm.group(1) not in ("function",):
            names.append(pm.group(1))
    return names


def _receiver_before(body, pos):
    """The receiver expression for a call at `pos`, e.g. "nodes_[node]" for
    `nodes_[node]->Put(`; empty string for a free call."""
    j = pos - 1
    while j >= 0 and body[j].isspace():
        j -= 1
    if j < 0:
        return ""
    if body[j] == "." :
        end = j - 1
    elif j >= 1 and body[j - 1:j + 1] == "->":
        end = j - 2
    else:
        return ""
    # Walk back over an identifier chain with balanced [...] / (...) groups
    # and '->' / '::' / '.' connectors.
    group_depth = 0
    start = end
    while start >= 0:
        ch = body[start]
        if ch in ")]":
            group_depth += 1
        elif ch in "([":
            if group_depth == 0:
                break
            group_depth -= 1
        elif group_depth == 0 and not (ch.isalnum() or ch in "_."):
            if ch == ">" and start >= 1 and body[start - 1] == "-":
                start -= 1
            elif ch == ":" and start >= 1 and body[start - 1] == ":":
                start -= 1
            else:
                break
        start -= 1
    return body[start + 1:end + 1].strip()


def _base_identifier(expr):
    m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", expr)
    return m.group(1) if m else ""


FIELD_TOKEN_RE = re.compile(r"[A-Za-z_]\w*")

LOCAL_DECL_RE = re.compile(
    r"\b(?:const\s+)?([A-Z]\w*(?:::[A-Z]\w*)*)\s*[&*]*\s+(\w+)\s*[=;({]")


def _local_types(params, body):
    """Best-effort map of parameter/local names to their project-class type
    (CamelCase type names only); used to resolve receiver-qualified field
    accesses like `shard.hits` through `Shard& shard = ...`."""
    types = {}
    for param in _split_top_commas(params):
        m = re.match(r"\s*(?:const\s+)?([A-Z]\w*(?:::[A-Z]\w*)*)"
                     r"\s*[&*]*\s+(\w+)\s*$", param.split("=", 1)[0].strip())
        if m and m.group(1) not in RAII_GUARDS:
            types[m.group(2)] = m.group(1)
    for m in LOCAL_DECL_RE.finditer(body):
        if m.group(1) not in RAII_GUARDS and m.group(2) not in types:
            types[m.group(2)] = m.group(1)
    return types


def _scan_field_accesses(body):
    """Field read/write events for one function body.

    A token is a candidate member access when it either carries a receiver
    (`x.y`, `p->y`, `this->y`) or follows the bare trailing-underscore member
    idiom (`stats_`). Calls, qualified names (`Foo::bar`), and keywords are
    skipped. Write detection expands the postfix chain (indexing, member
    hops) and looks for assignment/increment operators or a mutating method
    (`push_back`, `store`, `fetch_add`, ...). Everything else is a read —
    passing a field by non-const reference therefore reads as a read, a
    documented approximation. Resolution to (class, member) happens in the
    analysis stage, which has the merged type tables; unresolvable events
    are dropped there.
    """
    events = []
    n = len(body)
    for m in FIELD_TOKEN_RE.finditer(body):
        tok = m.group(0)
        p, e = m.start(), m.end()
        if tok in NON_CALL_KEYWORDS or tok in CONTROL_KEYWORDS:
            continue
        # Qualified-name halves: `Foo::bar` is a static/enum access.
        q = p - 1
        while q >= 0 and body[q] in " \t\n":
            q -= 1
        if q >= 1 and body[q] == ":" and body[q - 1] == ":":
            continue
        j = e
        while j < n and body[j] in " \t\n":
            j += 1
        if body[j:j + 2] == "::":
            continue
        if j < n and body[j] == "(":
            continue  # call expression (the CALL_RE pass owns it)
        recv = _receiver_before(body, p)
        if recv and not re.match(r"[A-Za-z_(*&]", recv):
            continue  # numeric literal artefact like `1.f`
        if not recv and not tok.endswith("_"):
            continue  # bare locals: members use the trailing underscore
        write = classify_postfix_write(body, e)
        if not write and not recv:
            # Prefix increment on a bare member: `++count_`.
            if q >= 1 and body[q - 1:q + 1] in ("++", "--"):
                write = True
        events.append({"kind": "field", "member": tok, "recv": recv,
                       "cls": "", "write": write, "pos": p})
    return events


def classify_postfix_write(body, start):
    """True when the postfix chain starting at `start` (the offset just past
    a member token or member-ref extent) ends in a mutating operation:
    an assignment/compound-assignment, ++/--, or a mutating method call.
    Expands balanced `[...]` indexing and `.x`/`->x` member hops first."""
    n = len(body)
    write = False
    k = start
    while k < n:
        while k < n and body[k] in " \t\n":
            k += 1
        if k < n and body[k] == "[":
            close = _matching_bracket(body, k)
            if close == -1:
                break
            k = close + 1
            continue
        conn = 0
        if k < n and body[k] == ".":
            conn = 1
        elif body[k:k + 2] == "->":
            conn = 2
        if not conn:
            break
        k2 = k + conn
        while k2 < n and body[k2] in " \t\n":
            k2 += 1
        nm = FIELD_TOKEN_RE.match(body, k2)
        if not nm:
            break
        k3 = nm.end()
        while k3 < n and body[k3] in " \t\n":
            k3 += 1
        if k3 < n and body[k3] == "(":
            if nm.group(0) in MUTATING_METHODS:
                write = True
            return write  # a method call ends the postfix chain
        k = nm.end()
    while k < n and body[k] in " \t\n":
        k += 1
    two = body[k:k + 2]
    if two in ("++", "--"):
        write = True
    elif body[k:k + 1] == "=" and body[k + 1:k + 2] != "=":
        write = True
    elif len(two) == 2 and two[1] == "=" and two[0] in "+-*/%&|^":
        write = True
    elif body[k:k + 3] in ("<<=", ">>="):
        write = True
    return write


def _emit_function(out, text, original, scope, close_pos, pending,
                   depth, line_of, allow_by_line, root_lines):
    """Builds the function record (with body events) for a just-closed
    function scope."""
    rec = None
    for entry in reversed(pending):
        if entry[0] is scope:
            rec = entry
            break
    if rec is None:
        return
    pending.remove(rec)
    _, qual, cls, params, body_start = rec
    body = text[body_start:close_pos]
    base_depth = depth[body_start - 1]  # depth inside the body
    header_line = line_of[scope.header_start]
    body_first_line = line_of[body_start - 1]

    # RSTORE_REQUIRES on an out-of-class definition header counts toward
    # the class's requires map, same as the in-class declaration.
    if cls:
        header_req = REQUIRES_RE.findall(
            text[scope.header_start:body_start - 1])
        if header_req:
            _add_requires(out, cls, qual.rpartition("::")[2], header_req)

    func = {
        "qual": qual,
        "cls": cls,
        "file": out["tu"],
        "line": header_line,
        # // analyze:root goes on the line above the signature, on the
        # signature line itself, or on the body's first line.
        "root": any(header_line - 1 <= ln <= body_first_line + 1
                    for ln in root_lines),
        "callback_params": _callback_params(params, out["aliases"]),
        "local_mutexes": {},
        "local_types": _local_types(params, body),
        "events": [],
    }

    def ev_line(off):
        return line_of[body_start + off]

    def ev_depth(off):
        return depth[body_start + off]

    def allow_at(off):
        return allow_by_line.get(ev_line(off), [])

    # Local mutex declarations (e.g. ParallelFor's error_mu).
    for m in MUTEX_DECL_RE.finditer(body):
        func["local_mutexes"][m.group(2)] = m.group(3) or "kLockRankLeaf"

    # -- acquisitions: RAII guards, with their release offsets -------------
    acquires = []  # (start_off, release_off, lock_expr, how)
    for m in RAII_ACQUIRE_RE.finditer(body):
        d = ev_depth(m.start())
        release = len(body)
        for j in range(m.end(), len(body)):
            if depth[body_start + j] < d:
                release = j
                break
        acquires.append((m.start(), release, m.group(2).strip(), m.group(1)))

    # Manual mu.Lock()/mu.LockShared() ... mu.Unlock() pairs (rare).
    for m in re.finditer(r"([\w.\[\]>-]+)\s*[.>-]\s*(Lock|LockShared)\s*\(\s*\)",
                         body):
        recv = m.group(1).rstrip(".->")
        release = len(body)
        um = re.search(re.escape(recv) + r"\s*[.>-]+\s*Unlock(?:Shared)?\s*\(",
                       body[m.end():])
        if um:
            release = m.end() + um.start()
        acquires.append((m.start(), release, recv, m.group(2)))

    acquires.sort()

    def held_at(off):
        return [expr for (a, r, expr, _how) in acquires if a < off < r]

    for (a, _r, expr, how) in acquires:
        func["events"].append({
            "kind": "acquire", "lock": expr, "how": how,
            "line": ev_line(a), "held": held_at(a), "allow": allow_at(a),
        })

    # -- calls, callback invocations, condvar waits ------------------------
    for m in CALL_RE.finditer(body):
        quals = re.sub(r"\s+", "", m.group(1) or "")
        callee = m.group(2)
        pos = m.start(1) if m.group(1) else m.start(2)
        if callee in NON_CALL_KEYWORDS or callee in CONTROL_KEYWORDS:
            continue
        if callee in RAII_GUARDS or callee in ("Lock", "LockShared",
                                               "Unlock", "UnlockShared"):
            continue  # handled as acquisitions above
        recv = _receiver_before(body, pos)

        # Declaration heuristic: `Type name(args)` — emit the TYPE as a
        # constructor call instead of the variable name.
        is_decl_ctor = False
        j = pos - 1
        while j >= 0 and body[j].isspace():
            j -= 1
        if j >= 0 and (body[j].isalnum() or body[j] == "_") and not recv:
            pm = re.search(r"([A-Za-z_]\w*)\s*$", body[:j + 1])
            prev_tok = pm.group(1) if pm else ""
            if prev_tok and prev_tok not in PRE_CALL_KEYWORDS:
                if prev_tok in NON_CALL_KEYWORDS:
                    continue
                # Declaration: the call-like token is the variable name; the
                # preceding type may be a project class whose constructor
                # runs here. RAII guards were already emitted as acquires.
                if prev_tok in RAII_GUARDS:
                    continue
                if prev_tok[0].isupper():
                    callee, quals, is_decl_ctor = prev_tok, "", True
                else:
                    continue

        if quals.startswith("std::") or quals.startswith("::"):
            continue

        args_open = m.end() - 1
        args_close = _matching_paren(body, args_open)
        args = body[args_open + 1:args_close] if args_close != -1 else ""

        if callee == "Wait" and recv:
            arg_list = _split_top_commas(args)
            func["events"].append({
                "kind": "condvar_wait", "cv": recv,
                "mutex": arg_list[0] if arg_list else "",
                "line": ev_line(pos), "held": held_at(pos),
                "allow": allow_at(pos),
            })
            continue

        if not recv and callee in func["callback_params"]:
            func["events"].append({
                "kind": "callback", "callee": callee,
                "line": ev_line(pos), "held": held_at(pos),
                "allow": allow_at(pos),
            })
            continue

        # Drop receiver-qualified lower-case calls with unknown receivers at
        # resolution time, not here; the analysis stage has the type tables.
        func["events"].append({
            "kind": "call", "callee": callee, "quals": quals, "recv": recv,
            "is_decl_ctor": is_decl_ctor,
            "line": ev_line(pos), "held": held_at(pos),
            "allow": allow_at(pos),
        })

    # -- member-field accesses ---------------------------------------------
    for ev in _scan_field_accesses(body):
        pos = ev.pop("pos")
        ev.update({"line": ev_line(pos), "held": held_at(pos),
                   "allow": allow_at(pos)})
        func["events"].append(ev)

    # -- wall clock / randomness -------------------------------------------
    for m in WALL_CLOCK_RE.finditer(body):
        pos = m.start()
        func["events"].append({
            "kind": "wall_clock", "what": m.group(0).strip().rstrip("("),
            "line": ev_line(pos), "held": held_at(pos),
            "allow": allow_at(pos),
        })
    for m in RANDOM_RE.finditer(body):
        pos = m.start()
        func["events"].append({
            "kind": "random", "what": m.group(0).strip().rstrip("("),
            "line": ev_line(pos), "held": held_at(pos),
            "allow": allow_at(pos),
        })

    func["events"].sort(key=lambda e: e["line"])
    out["functions"].append(func)
