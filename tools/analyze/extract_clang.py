"""libclang (clang.cindex) fact-extraction frontend.

Produces the same facts schema as extract.py but from a real AST, so name
resolution is exact: every call event carries the fully-qualified name of
the callee the compiler resolved, and the analysis stage's heuristics only
kick in for the few edges clang cannot see either (calls through erased
std::function members).

Requires python3-clang + libclang (CI installs them; the dev container may
not have them). run.py probes require_usable() and falls back to the
portable frontend, which remains the deterministic gate until the two
frontends provably agree on src/ (compared in CI as an advisory step).
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import facts  # noqa: E402
from extract import _line_markers  # noqa: E402  (same marker syntax)
from extract import (GUARDED_BY_RE, REQUIRES_RE,  # noqa: E402
                     _new_class, _split_top_commas, classify_postfix_write)
from lint import strip_comments_and_strings  # noqa: E402  (tools/lint.py)

EXTRACTOR_NAME = "clang"
EXTRACTOR_VERSION = 2

RAII_GUARDS = ("MutexLock", "ReaderLock", "WriterLock")
MUTEX_TYPES = ("Mutex", "SharedMutex")

WALL_CLOCK_CALLS = ("steady_clock", "system_clock", "high_resolution_clock")
WALL_CLOCK_FREE = ("gettimeofday", "clock_gettime", "time", "localtime",
                   "gmtime", "clock")
RANDOM_DECLS = ("random_device",)
RANDOM_FREE = ("rand", "srand")
UNSEEDED_ENGINES = ("mt19937", "mt19937_64", "default_random_engine",
                    "minstd_rand", "minstd_rand0")

_index = None


def require_usable():
    """Raises if clang.cindex or libclang is missing/unloadable."""
    global _index
    import clang.cindex  # noqa: F401
    if _index is None:
        _index = clang.cindex.Index.create()


def _cursor_kinds():
    from clang.cindex import CursorKind
    return CursorKind


def _compile_args(abs_path):
    """Compiler args for this TU from compile_commands.json; a generic
    header-parsing command line otherwise."""
    tools_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    import compile_commands as ccdb
    db = ccdb.find_database()
    if db and abs_path.endswith(".cc"):
        for entry in ccdb.load_entries(db):
            if os.path.normpath(entry["file"]) == os.path.normpath(abs_path):
                argv = entry.get("arguments")
                if not argv:
                    argv = entry.get("command", "").split()
                args = []
                skip = False
                for a in argv[1:]:
                    if skip:
                        skip = False
                        continue
                    if a in ("-c", abs_path):
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    args.append(a)
                return args
    repo_root = os.path.dirname(tools_dir)
    return ["-x", "c++", "-std=c++20", "-I", os.path.join(repo_root, "src"),
            "-I", repo_root]


def _strip_ns(name):
    for ns in ("rstore::", "std::"):
        if name.startswith(ns):
            name = name[len(ns):]
    return name


def _qualified(cursor):
    """Fully-qualified name with the project namespace stripped."""
    parts = []
    c = cursor
    ck = _cursor_kinds()
    while c is not None and c.kind != ck.TRANSLATION_UNIT:
        if c.spelling and c.kind != ck.UNEXPOSED_DECL:
            parts.append(c.spelling)
        c = c.semantic_parent
    parts.reverse()
    return _strip_ns("::".join(parts))


def _tokens_text(cursor):
    return " ".join(t.spelling for t in cursor.get_tokens())


def _extent_offsets(cursor):
    return cursor.extent.start.offset, cursor.extent.end.offset


def extract_file(abs_path, rel_path):
    require_usable()
    ck = _cursor_kinds()
    with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
        original = f.read()
    allow_by_line, root_lines, atomic_lines = _line_markers(original)
    # Comment/string-stripped source (offset-preserving) for the textual
    # write-classification of member accesses; the AST alone would need
    # parent links cindex does not expose portably.
    stripped = strip_comments_and_strings(original)

    tu = _index.parse(abs_path, args=_compile_args(abs_path))

    out = {
        "schema": facts.SCHEMA_VERSION,
        "tu": rel_path,
        "extractor": EXTRACTOR_NAME,
        "ranks": {},
        "aliases": [],
        "classes": {},
        "mutexes": [],
        "functions": [],
    }
    file_tag = os.path.basename(rel_path)

    def in_this_file(cursor):
        loc = cursor.location
        return loc.file is not None and os.path.normpath(
            loc.file.name) == os.path.normpath(abs_path)

    def visit(cursor):
        for child in cursor.get_children():
            kind = child.kind
            if kind == ck.ENUM_CONSTANT_DECL:
                if child.spelling.startswith("kLockRank"):
                    # Record from any header so ranks resolve everywhere.
                    out["ranks"][child.spelling] = child.enum_value
            if not in_this_file(child) and kind not in (
                    ck.NAMESPACE, ck.ENUM_DECL):
                continue
            if kind in (ck.CLASS_DECL, ck.STRUCT_DECL) \
                    and child.is_definition():
                _class(child)
                visit(child)
            elif kind in (ck.CXX_METHOD, ck.FUNCTION_DECL, ck.CONSTRUCTOR,
                          ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE) \
                    and child.is_definition():
                _function(child)
            elif kind == ck.TYPE_ALIAS_DECL:
                if "function<" in child.underlying_typedef_type.spelling:
                    out["aliases"].append(child.spelling)
                visit(child)
            else:
                visit(child)

    def _class(cursor):
        qual = _qualified(cursor)
        entry = out["classes"].setdefault(qual, _new_class())
        for child in cursor.get_children():
            if child.kind == ck.CXX_BASE_SPECIFIER:
                base = _strip_ns(child.type.spelling)
                if base not in entry["bases"]:
                    entry["bases"].append(base)
            elif child.kind in (ck.CXX_METHOD, ck.CONSTRUCTOR,
                                ck.DESTRUCTOR):
                # RSTORE_REQUIRES[_SHARED] clauses survive in the lexical
                # tokens (macros are not yet expanded there).
                for req in REQUIRES_RE.findall(_tokens_text(child)):
                    locks = entry["requires"].setdefault(child.spelling, [])
                    for lock in _split_top_commas(req.replace(" ", "")):
                        if lock not in locks:
                            locks.append(lock)
            elif child.kind == ck.FIELD_DECL:
                type_text = _strip_ns(child.type.spelling)
                base_type = type_text.replace("mutable ", "")
                if base_type in MUTEX_TYPES:
                    m = re.search(r"kLockRank\w+", _tokens_text(child))
                    out["mutexes"].append({
                        "member": child.spelling,
                        "cls": qual,
                        "kind": base_type,
                        "rank_const": m.group(0) if m else "kLockRankLeaf",
                        "line": child.location.line,
                    })
                    continue
                decl_tokens = _tokens_text(child)
                gm = GUARDED_BY_RE.search(decl_tokens)
                line = child.location.line
                decl_lines = (line - 1, line, child.extent.end.line)
                try:
                    is_mutable = child.is_mutable_field()
                except AttributeError:
                    is_mutable = "mutable" in decl_tokens.split("=")[0]
                entry["members"][child.spelling] = {
                    "type": type_text,
                    "guard": gm.group(1).replace(" ", "") if gm else "",
                    "atomic": bool(re.search(r"\batomic\b", type_text)),
                    "atomic_marker": any(ln in atomic_lines
                                         for ln in decl_lines),
                    "konst": child.type.is_const_qualified(),
                    "is_mutable": is_mutable,
                    "file": rel_path,
                    "line": line,
                    "allow": sorted({c for ln in decl_lines
                                     for c in allow_by_line.get(ln, [])}),
                }

    def _function(cursor):
        cls_cursor = cursor.semantic_parent
        cls = ""
        if cls_cursor is not None and cls_cursor.kind in (
                ck.CLASS_DECL, ck.STRUCT_DECL):
            cls = _qualified(cls_cursor)
        qual = _qualified(cursor)
        if not cls and "::" not in qual:
            qual = file_tag + "::" + qual
        header_line = cursor.location.line

        callback_params = []
        local_types = {}
        for arg in cursor.get_arguments():
            if "function<" in arg.type.spelling:
                callback_params.append(arg.spelling)
            elif arg.spelling:
                local_types[arg.spelling] = _strip_ns(arg.type.spelling)

        func = {
            "qual": qual,
            "cls": cls,
            "file": rel_path,
            "line": header_line,
            "root": any(header_line - 1 <= ln <= header_line + 2
                        for ln in root_lines),
            "callback_params": callback_params,
            "local_mutexes": {},
            "local_types": local_types,
            "events": [],
        }

        guards = []   # (acq_offset, release_offset, lock_expr)

        def held_at(off):
            return [expr for (a, r, expr) in guards if a < off < r]

        def allow_at(line):
            return allow_by_line.get(line, [])

        def ev(kind, cursor_, **kw):
            line = cursor_.location.line
            off = cursor_.location.offset
            e = {"kind": kind, "line": line, "held": held_at(off),
                 "allow": allow_at(line)}
            e.update(kw)
            func["events"].append(e)

        def first_arg_text(call):
            args = list(call.get_arguments())
            return _tokens_text(args[0]) if args else ""

        def walk(node, scope_end):
            for child in node.get_children():
                kind = child.kind
                if kind == ck.VAR_DECL:
                    tname = _strip_ns(child.type.spelling)
                    if tname in RAII_GUARDS:
                        expr = ""
                        for g in child.get_children():
                            if g.kind in (ck.CALL_EXPR, ck.UNEXPOSED_EXPR):
                                m = re.search(r"\(\s*(.*?)\s*\)$",
                                              _tokens_text(child)
                                              .replace(" ", ""))
                                expr = m.group(1).split(",")[0] if m else ""
                                break
                        if not expr:
                            m = re.search(r"[({]\s*([^,)}]+)",
                                          _tokens_text(child))
                            expr = m.group(1).strip() if m else ""
                        off = child.location.offset
                        guards.append((off, scope_end, expr))
                        ev("acquire", child, lock=expr, how=tname)
                        continue
                    if tname in MUTEX_TYPES:
                        m = re.search(r"kLockRank\w+", _tokens_text(child))
                        func["local_mutexes"][child.spelling] = (
                            m.group(0) if m else "kLockRankLeaf")
                    elif child.spelling:
                        func["local_types"].setdefault(
                            child.spelling, tname)
                    if any(e in child.type.spelling
                           for e in UNSEEDED_ENGINES + RANDOM_DECLS):
                        init = _tokens_text(child)
                        if "random_device" in child.type.spelling \
                                or "(" not in init.split("=")[-1]:
                            ev("random", child,
                               what=_strip_ns(child.type.spelling))
                elif kind == ck.CALL_EXPR:
                    _call(child, scope_end)
                elif kind == ck.MEMBER_REF_EXPR:
                    _field(child)
                if kind == ck.COMPOUND_STMT:
                    walk(child, child.extent.end.offset)
                else:
                    walk(child, scope_end)

        def _call(call, scope_end):
            ref = call.referenced
            name = call.spelling or (ref.spelling if ref else "")
            if not name:
                walk(call, scope_end)
                return
            if name in RAII_GUARDS:
                return  # the VAR_DECL path records the acquisition
            ref_qual = _qualified(ref) if ref else ""
            if name == "now" and any(c in ref_qual
                                     for c in WALL_CLOCK_CALLS):
                ev("wall_clock", call,
                   what=ref_qual.rsplit("::", 2)[-2] + "::now"
                   if "::" in ref_qual else "now")
                return
            if ref_qual.startswith("std::") or ref_qual.startswith("__"):
                if name in WALL_CLOCK_FREE or name in RANDOM_FREE:
                    ev("wall_clock" if name in WALL_CLOCK_FREE else "random",
                       call, what=name)
                walk(call, scope_end)
                return
            if not ref_qual and name in WALL_CLOCK_FREE + RANDOM_FREE:
                ev("wall_clock" if name in WALL_CLOCK_FREE else "random",
                   call, what=name)
                return
            if name in ("Lock", "LockShared") and ref_qual.startswith(
                    tuple(t + "::" for t in MUTEX_TYPES)):
                expr = _receiver_text(call)
                guards.append((call.location.offset, scope_end, expr))
                ev("acquire", call, lock=expr, how=name)
                return
            if name == "Wait" and "CondVar::" in ref_qual:
                ev("condvar_wait", call, cv=_receiver_text(call),
                   mutex=first_arg_text(call))
                walk(call, scope_end)
                return
            if name in callback_params and (
                    ref is None or ref.kind == ck.PARM_DECL):
                ev("callback", call, callee=name)
                walk(call, scope_end)
                return
            if "std::function" in (ref.type.spelling if ref else ""):
                # Calling an erased callable that is not a parameter (e.g. a
                # stored member): still a user callback for blocking checks.
                ev("callback", call, callee=name)
                walk(call, scope_end)
                return
            if ref_qual and ref.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL,
                                         ck.CONSTRUCTOR):
                quals = ref_qual.rsplit("::", 1)[0] + "::" \
                    if "::" in ref_qual else ""
                ev("call", call, callee=name, quals=quals,
                   recv=_receiver_text(call), is_decl_ctor=False)
            walk(call, scope_end)

        def _receiver_text(call):
            for child in call.get_children():
                if child.kind == ck.MEMBER_REF_EXPR:
                    kids = list(child.get_children())
                    if kids:
                        return _tokens_text(kids[0])
                    return ""
            return ""

        def _field(node):
            """A member access that resolved to a data member: emit a field
            event with the exact owning class. Write classification is
            textual (postfix chain after the member-ref extent) because
            cindex exposes no parent links to find the assignment node."""
            ref = node.referenced
            if ref is None or ref.kind != ck.FIELD_DECL:
                return
            owner = ref.semantic_parent
            cls = _qualified(owner) if owner is not None else ""
            kids = list(node.get_children())
            recv = _tokens_text(kids[0]).replace(" ", "") if kids else ""
            end = node.extent.end.offset
            write = classify_postfix_write(stripped, end)
            if not write:
                q = node.extent.start.offset - 1
                while q >= 0 and stripped[q] in " \t\n":
                    q -= 1
                if q >= 1 and stripped[q - 1:q + 1] in ("++", "--"):
                    write = True
            ev("field", node, member=ref.spelling, recv=recv,
               cls=cls, write=write)

        body = None
        for child in cursor.get_children():
            if child.kind == ck.COMPOUND_STMT:
                body = child
        if body is None:
            return
        walk(body, body.extent.end.offset)
        # The walker may visit call-argument subtrees more than once (the
        # _call paths re-walk); field events dedupe on identity.
        seen = set()
        deduped = []
        for e in func["events"]:
            if e["kind"] == "field":
                key = (e["member"], e["cls"], e["line"], e["write"],
                       e["recv"])
                if key in seen:
                    continue
                seen.add(key)
            deduped.append(e)
        func["events"] = deduped
        func["events"].sort(key=lambda e: e["line"])
        out["functions"].append(func)

    visit(tu.cursor)
    out["aliases"] = sorted(set(out["aliases"]))
    return out
