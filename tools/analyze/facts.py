"""Fact schema shared by the tools/analyze frontends and the analysis stage.

A frontend (extract.py's portable parser, or extract_clang.py's libclang
walker) turns one translation unit into a *facts* dict; the analysis stage
(callgraph.py + checks.py) consumes only facts and never looks at C++ again.
Keeping this boundary strict is what makes the facts cacheable per source
hash and the frontends interchangeable.

Facts dict layout (schema SCHEMA_VERSION):

  {
    "schema": int,
    "tu": "src/kvstore/cluster.cc",        # repo-relative path
    "extractor": "python" | "clang",
    "ranks": {"kLockRankCluster": 400, ...},     # enum LockRank constants
    "aliases": ["ChunkResolver", ...],           # using X = std::function<..>
    "classes": {
       "Cluster": {
          "bases": ["KVStore"],
          "members": {
             # One entry per data member. `guard` is the RSTORE_GUARDED_BY
             # expression ("" when unannotated), `atomic` marks
             # std::atomic-typed members (including containers of atomics),
             # `atomic_marker` an `// analyze:atomic` comment documenting a
             # lock-free protocol, `konst` const/constexpr/static members,
             # and `is_mutable` the `mutable` keyword. `file`/`line` pin the
             # declaration for findings; `allow` lists suppressed checks.
             "stats_": {"type": "KVStats", "guard": "mu_", "atomic": false,
                        "atomic_marker": false, "konst": false,
                        "is_mutable": false, "file": "src/...h",
                        "line": 189, "allow": []},
          },
          # Lock expressions from RSTORE_REQUIRES[_SHARED] on method
          # declarations at class scope, keyed by method base name. The
          # must-hold fixpoint seeds from these.
          "requires": {"AppendRecord": ["mu_"]},
       },
    },
    "mutexes": [ {"member": "mu_", "cls": "Cluster",
                   "rank_const": "kLockRankCluster", "kind": "Mutex",
                   "line": 188} ],
    "functions": [ {
       "qual": "Cluster::MultiGetInternal",     # namespaces stripped;
                                                 # file-static helpers are
                                                 # qualified as "<file>::name"
       "cls": "Cluster" | "",
       "file": "src/kvstore/cluster.cc", "line": 123,
       "root": false,                            # // analyze:root marker
       "callback_params": ["fn"],                # std::function-typed params
       "local_mutexes": {"error_mu": "kLockRankParallelError"},
       "local_types": {"shard": "Shard"},        # class-typed params/locals
                                                 # (receiver resolution)
       "events": [ ... ]                         # ordered body events
    } ],
  }

Event kinds (every event has "line", "held" — the list of lock-expression
strings locally held at that point — and "allow", the list of check names a
`// analyze:allow-<check>` comment on that line suppresses):

  acquire       {"lock": "mu_", "how": "MutexLock"|"ReaderLock"|"WriterLock"
                                 |"Lock"|"LockShared"}
  call          {"callee": "Put", "quals": "std::"-style explicit prefix,
                 "recv": "nodes_[node]" or "", "is_decl_ctor": bool}
  callback      {"callee": "fn"}              # invokes a callback parameter
  condvar_wait  {"cv": "cv_", "mutex": "mu_"}
  wall_clock    {"what": "steady_clock::now"}
  random        {"what": "std::random_device"}
  field         {"member": "stats_",          # last path component
                 "recv": "shard" | "this" | "",  # receiver expression
                 "cls": "Cluster" | "",       # "" = resolve at analysis time
                 "write": bool}               # mutation (assign/inc/mutating
                                              # container or atomic method)
"""

import hashlib
import json

# v2: member facts became per-field records (guard/atomic/const/...), class
# entries grew a "requires" map, and function bodies emit "field" events.
# Bumping this reshapes every facts-cache key, so stale v1 caches can never
# mask (or manufacture) field-level findings.
SCHEMA_VERSION = 2


def finding_fingerprint(check, parts):
    """Stable identity of a finding for the baseline file.

    Deliberately excludes line numbers so unrelated edits do not churn the
    baseline; includes function/lock identities so a finding moving to a
    different code path reads as new.
    """
    payload = json.dumps([check] + [str(p) for p in parts], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def facts_cache_key(source_bytes, extractor_name, extractor_version):
    """Cache key for one TU's facts: source content + extractor identity."""
    h = hashlib.sha256()
    h.update(b"schema:%d;" % SCHEMA_VERSION)
    h.update(extractor_name.encode("utf-8"))
    h.update(b";v%d;" % extractor_version)
    h.update(source_bytes)
    return h.hexdigest()[:24]
