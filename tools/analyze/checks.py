"""The whole-program checks over a linked callgraph.Program.

Call-level: lock-rank-static, blocking-under-lock, sim-clock-purity (PR 6).
Field-level: guarded-field (annotated field accessed where its guard is not
must-held), annotation-completeness (mutable member of a lock-owning class
with no guard/atomic-marker/immutability proof), atomic-mixed-access (an
unmarked atomic accessed both under a lock and lock-free).

Each finding is a dict:

  {"check": ..., "fingerprint": ...,        # stable id (no line numbers)
   "file": ..., "line": ..., "function": ...,
   "message": ...,                          # one-line human summary
   "chain": [ {file, line, function, note}, ... ]}   # acquisition → violation

Suppression: a `// analyze:allow-<check>` comment on the anchor line of a
finding (the acquire or call being reported) drops it; for sim-clock-purity
and blocking-under-lock an allow on the *leaf* line (the clock read, the
callback invocation) additionally stops that event from propagating up at
all, which is the right place to bless an intentionally-impure helper once
instead of at every root that reaches it.
"""

import re

from facts import finding_fingerprint

ROOT_QUAL_RE = re.compile(
    r"^(Cluster|FaultInjector|RetryPolicy|LatencyModel|QueryProcessor)::")

CHECK_LOCK_RANK = "lock-rank-static"
CHECK_BLOCKING = "blocking-under-lock"
CHECK_SIM_CLOCK = "sim-clock-purity"
CHECK_GUARDED_FIELD = "guarded-field"
CHECK_ANNOTATION = "annotation-completeness"
CHECK_ATOMIC_MIXED = "atomic-mixed-access"

ALL_CHECKS = (CHECK_LOCK_RANK, CHECK_BLOCKING, CHECK_SIM_CLOCK,
              CHECK_GUARDED_FIELD, CHECK_ANNOTATION, CHECK_ATOMIC_MIXED)


def run_checks(program):
    findings = []
    findings += check_lock_rank(program)
    findings += check_blocking_under_lock(program)
    findings += check_sim_clock_purity(program)
    findings += check_guarded_field(program)
    findings += check_annotation_completeness(program)
    findings += check_atomic_mixed_access(program)
    findings.sort(key=lambda f: (f["check"], f["file"], f["line"],
                                 f["fingerprint"]))
    return findings


def _allowed(event, check):
    return check in event.get("allow", ())


def _finding(check, func, line, message, chain, parts):
    return {
        "check": check,
        "fingerprint": finding_fingerprint(check, parts),
        "file": func.file,
        "line": line,
        "function": func.qual,
        "message": message,
        "chain": chain,
    }


def _min_held(held_refs):
    """(expr, LockRef) of the lowest-ranked lock currently held."""
    return min(held_refs, key=lambda er: er[1].rank)


# -- lock-rank-static --------------------------------------------------------

def check_lock_rank(program):
    """Lock ranks must strictly decrease along every acquisition path.

    Direct: acquiring rank b while holding rank a with b >= a (b == a also
    covers re-entrant self-locking). Transitive: calling, while holding rank
    a, a function whose may-acquire set contains any rank >= a.
    """
    findings = []
    seen = set()
    for f in program.functions:
        for event, ref in f.acquires:
            if _allowed(event, CHECK_LOCK_RANK):
                continue
            held = program.resolve_held(f, event)
            for expr, held_ref in held:
                if ref.rank < held_ref.rank:
                    continue
                if held_ref.qual == ref.qual:
                    what = "re-acquires %s (rank %d) it already holds" % (
                        ref.qual, ref.rank)
                else:
                    what = ("holding %s (rank %d) acquires %s (rank %d)"
                            % (held_ref.qual, held_ref.rank,
                               ref.qual, ref.rank))
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "acquires %s" % ref}]
                fnd = _finding(CHECK_LOCK_RANK, f, event["line"],
                               "%s %s" % (f.qual, what), chain,
                               [f.qual, held_ref.qual, ref.qual])
                if fnd["fingerprint"] not in seen:
                    seen.add(fnd["fingerprint"])
                    findings.append(fnd)
        for event, targets in f.callees:
            if _allowed(event, CHECK_LOCK_RANK):
                continue
            held = program.resolve_held(f, event)
            if not held:
                continue
            _expr, low = _min_held(held)
            for g in targets:
                for rank in sorted(g.may_acquire):
                    if rank < low.rank:
                        continue
                    acq_ref, _w = g.may_acquire[rank]
                    chain = [{"file": f.file, "line": event["line"],
                              "function": f.qual,
                              "note": "holding %s (rank %d), calls %s"
                                      % (low.qual, low.rank, g.qual)}]
                    chain += program.acquire_chain(g, rank)
                    fnd = _finding(
                        CHECK_LOCK_RANK, f, event["line"],
                        "%s holding %s (rank %d) may reach acquisition of "
                        "%s (rank %d) via %s"
                        % (f.qual, low.qual, low.rank, acq_ref.qual,
                           acq_ref.rank, g.qual),
                        chain, [f.qual, low.qual, acq_ref.qual, g.qual])
                    if fnd["fingerprint"] not in seen:
                        seen.add(fnd["fingerprint"])
                        findings.append(fnd)
    return findings


# -- blocking-under-lock -----------------------------------------------------

def check_blocking_under_lock(program):
    """No lock may be held across a potentially-unbounded operation: a user
    callback, a KVStore backend data call, or a CondVar wait on a different
    mutex. This is the Scan bug class (a Scan callback re-entering the store
    while the store's own mutex was held deadlocked the node)."""
    findings = []
    seen = set()
    for f in program.functions:
        for event in f.events:
            kind = event["kind"]
            if kind == "callback":
                if _allowed(event, CHECK_BLOCKING):
                    continue
                held = program.resolve_held(f, event)
                if not held:
                    continue
                _e, low = _min_held(held)
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "holding %s, invokes user callback '%s'"
                                  % (low.qual, event["callee"])}]
                fnd = _finding(
                    CHECK_BLOCKING, f, event["line"],
                    "%s invokes user callback '%s' while holding %s"
                    % (f.qual, event["callee"], low.qual),
                    chain, [f.qual, low.qual, "callback:" + event["callee"]])
                _add(findings, seen, fnd)
            elif kind == "condvar_wait":
                if _allowed(event, CHECK_BLOCKING):
                    continue
                held = program.resolve_held(f, event)
                wait_mu = program.resolve_lock(f, event["mutex"])
                others = [(e, r) for e, r in held
                          if wait_mu is None or r.qual != wait_mu.qual]
                if not others:
                    continue  # Wait(mu) holding only mu is the legal pattern.
                _e, low = _min_held(others)
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "holding %s, waits on CondVar with %s"
                                  % (low.qual, event["mutex"])}]
                fnd = _finding(
                    CHECK_BLOCKING, f, event["line"],
                    "%s waits on a CondVar (mutex %s) while also holding %s"
                    % (f.qual, event["mutex"], low.qual),
                    chain, [f.qual, low.qual, "condvar:" + event["mutex"]])
                _add(findings, seen, fnd)
        for event, targets in f.callees:
            if _allowed(event, CHECK_BLOCKING):
                continue
            held = program.resolve_held(f, event)
            if not held:
                continue
            _e, low = _min_held(held)
            for g in targets:
                if not g.blocking:
                    continue
                kind, _w = g.blocking
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "holding %s (rank %d), calls %s"
                                  % (low.qual, low.rank, g.qual)}]
                chain += program.blocking_chain(g)
                leaf = chain[-1]["note"] if chain else kind
                fnd = _finding(
                    CHECK_BLOCKING, f, event["line"],
                    "%s holding %s may reach a blocking operation via %s "
                    "(%s)" % (f.qual, low.qual, g.qual, leaf),
                    chain, [f.qual, low.qual, g.qual,
                            chain[-1]["function"] if chain else kind])
                _add(findings, seen, fnd)
    return findings


# -- sim-clock-purity --------------------------------------------------------

def check_sim_clock_purity(program):
    """Deterministic-simulation surfaces (Cluster, FaultInjector, RetryPolicy,
    LatencyModel, QueryProcessor, plus `// analyze:root`-marked functions)
    must not reach wall-clock reads or unseeded randomness — replayable chaos
    schedules (DESIGN.md "Fault-tolerant coordination") depend on it."""
    impure = {}  # Function -> (event-or-None, callee-or-None, what)
    for f in program.functions:
        for event in f.events:
            if event["kind"] in ("wall_clock", "random"):
                if _allowed(event, CHECK_SIM_CLOCK):
                    continue
                impure[f] = (event, None, event["what"])
                break
    changed = True
    while changed:
        changed = False
        for f in program.functions:
            if f in impure:
                continue
            for event, targets in f.callees:
                if _allowed(event, CHECK_SIM_CLOCK):
                    continue
                for g in targets:
                    if g in impure:
                        impure[f] = (event, g, impure[g][2])
                        changed = True
                        break
                if f in impure:
                    break

    findings = []
    seen = set()
    for f in program.functions:
        if f not in impure:
            continue
        if not (f.root or ROOT_QUAL_RE.match(f.qual)):
            continue
        chain = []
        cur, guard = f, 0
        while cur is not None and guard < 64:
            guard += 1
            event, callee, what = impure[cur]
            if callee is None:
                chain.append({"file": cur.file, "line": event["line"],
                              "function": cur.qual,
                              "note": "uses %s" % what})
                break
            chain.append({"file": cur.file, "line": event["line"],
                          "function": cur.qual,
                          "note": "calls %s" % callee.qual})
            cur = callee
        what = impure[f][2]
        leaf = chain[-1]["function"] if chain else f.qual
        anchor = chain[0]["line"] if chain else f.line
        fnd = _finding(
            CHECK_SIM_CLOCK, f, anchor,
            "%s (deterministic-path root) may reach %s in %s"
            % (f.qual, what, leaf),
            chain, [f.qual, leaf, what])
        _add(findings, seen, fnd)
    return findings


def _add(findings, seen, fnd):
    if fnd["fingerprint"] not in seen:
        seen.add(fnd["fingerprint"])
        findings.append(fnd)


# -- field-level checks ------------------------------------------------------

def _is_ctor_dtor(func):
    """Constructors/destructors run before the object is shared (and after
    it stops being shared); field-level checks exempt them, same as Clang's
    thread-safety analysis."""
    if not func.cls:
        return False
    base = func.qual.rsplit("::", 1)[-1]
    cls_base = func.cls.rsplit("::", 1)[-1]
    return base == cls_base or base == "~" + cls_base


def _guard_qual(program, owner, guard_expr):
    """Resolved qual of a GUARDED_BY expression, relative to the class that
    declares the guarded field (`mu_` on Cluster::stats_ -> Cluster::mu_,
    `mu` on ChunkCache::Shard fields -> ChunkCache::Shard::mu)."""
    member = re.split(r"\.|->", guard_expr)[-1].strip()
    member = re.match(r"[A-Za-z_]\w*", member)
    if not member:
        return None
    member = member.group(0)
    exact = owner + "::" + member
    cands = [d for d in program.mutex_decls
             if d.qual.rsplit("::", 1)[-1] == member]
    for d in cands:
        if d.qual == exact:
            return d.qual
    hierarchy = program.hierarchy_of(owner)
    for d in cands:
        if d.qual.rsplit("::", 1)[0] in hierarchy:
            return d.qual
    return cands[0].qual if cands else None


def check_guarded_field(program):
    """Every access to an RSTORE_GUARDED_BY field must happen where the
    declared guard is held — either locally at the access site or on every
    path into the function (the must-hold set). This is interprocedural and
    cross-TU: Clang's -Wthread-safety proves the same property only inside
    one TU and gives up at un-annotated function boundaries; here a helper
    is safe if all of its callers lock, and a single lock-free entry path is
    a finding with that path as the chain."""
    findings = []
    seen = set()
    for f in program.functions:
        if _is_ctor_dtor(f):
            continue
        for event, owner, rec in f.field_accesses:
            if not rec.get("guard"):
                continue
            if _allowed(event, CHECK_GUARDED_FIELD) \
                    or CHECK_GUARDED_FIELD in rec.get("allow", ()):
                continue
            guard = _guard_qual(program, owner, rec["guard"])
            if guard is None:
                program.warnings.append(
                    "%s: unresolved guard '%s' on %s::%s"
                    % (rec.get("file", "?"), rec["guard"], owner,
                       event["member"]))
                continue
            held = program.held_quals(f, event)
            if guard in held or guard in f.must_hold:
                continue
            access = "writes" if event.get("write") else "reads"
            chain = program.unguarded_path(f, guard)
            chain.append({"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "%s %s::%s without %s"
                                  % (access, owner, event["member"], guard)})
            field_qual = "%s::%s" % (owner, event["member"])
            fnd = _finding(
                CHECK_GUARDED_FIELD, f, event["line"],
                "%s %s %s (guarded by %s) but %s is not must-held"
                % (f.qual, access, field_qual, guard, guard),
                chain, [f.qual, field_qual, guard,
                        "write" if event.get("write") else "read"])
            _add(findings, seen, fnd)
    return findings


def check_annotation_completeness(program):
    """Every mutable member of a lock-owning (tracked) class must be either
    RSTORE_GUARDED_BY-annotated, a std::atomic carrying an explicit
    `// analyze:atomic` protocol marker, or provably immutable after
    construction (no writes outside constructors/destructors anywhere in
    the program, and not declared `mutable`). Closes the
    "forgot-to-annotate" hole that keeps Clang's checker vacuously happy."""
    findings = []
    seen = set()
    for cls in sorted(program.tracked):
        members = program.classes.get(cls, {}).get("members", {})
        for name, rec in sorted(members.items()):
            if not isinstance(rec, dict):
                continue
            if rec.get("konst") or rec.get("guard"):
                continue
            if CHECK_ANNOTATION in rec.get("allow", ()):
                continue
            field_qual = "%s::%s" % (cls, name)
            accesses = program.field_index.get((cls, name), [])
            if rec.get("atomic"):
                if rec.get("atomic_marker"):
                    continue
                message = ("%s is std::atomic but carries no "
                           "`// analyze:atomic` marker documenting its "
                           "lock-free protocol" % field_qual)
            else:
                writes = [(g, e) for (g, e) in accesses
                          if e.get("write") and not _is_ctor_dtor(g)]
                if not writes and not rec.get("is_mutable"):
                    continue  # immutable after construction
                if writes:
                    wg, we = writes[0]
                    why = ("written in %s (%s:%d)"
                           % (wg.qual, wg.file, we["line"]))
                else:
                    why = "declared `mutable`"
                message = ("%s is mutable shared state of a lock-owning "
                           "class but has no RSTORE_GUARDED_BY annotation "
                           "(%s)" % (field_qual, why))
            chain = [{"file": rec.get("file", "?"),
                      "line": rec.get("line", 0),
                      "function": field_qual, "note": "declared here"}]
            for g, e in accesses:
                if e.get("write") and not _is_ctor_dtor(g):
                    chain.append({"file": g.file, "line": e["line"],
                                  "function": g.qual,
                                  "note": "writes %s" % field_qual})
                    break
            fnd = {
                "check": CHECK_ANNOTATION,
                "fingerprint": finding_fingerprint(
                    CHECK_ANNOTATION, [field_qual]),
                "file": rec.get("file", "?"),
                "line": rec.get("line", 0),
                "function": field_qual,
                "message": message,
                "chain": chain,
            }
            _add(findings, seen, fnd)
    return findings


def check_atomic_mixed_access(program):
    """An unmarked atomic field accessed both while holding a lock and
    lock-free is running two synchronization protocols at once — the
    `alive_`/`hint_count_` bug class: readers see torn *protocol* state
    (e.g. a counter updated under a mutex but polled lock-free as if it
    were independently consistent). The `// analyze:atomic` marker is the
    documented way to bless an intentional lock-free protocol."""
    findings = []
    seen = set()
    for (cls, name), accesses in sorted(program.field_index.items()):
        rec = program.classes.get(cls, {}).get("members", {}).get(name)
        if not isinstance(rec, dict) or not rec.get("atomic"):
            continue
        if rec.get("atomic_marker") or rec.get("guard"):
            continue
        if CHECK_ATOMIC_MIXED in rec.get("allow", ()):
            continue
        locked = []
        lockfree = []
        for g, e in accesses:
            if _allowed(e, CHECK_ATOMIC_MIXED) or _is_ctor_dtor(g):
                continue
            if program.held_quals(g, e) or g.must_hold:
                locked.append((g, e))
            else:
                lockfree.append((g, e))
        if not locked or not lockfree:
            continue
        field_qual = "%s::%s" % (cls, name)
        lg, le = locked[0]
        fg, fe = lockfree[0]
        chain = [
            {"file": lg.file, "line": le["line"], "function": lg.qual,
             "note": "accesses %s under a lock" % field_qual},
            {"file": fg.file, "line": fe["line"], "function": fg.qual,
             "note": "accesses %s lock-free" % field_qual},
        ]
        fnd = _finding(
            CHECK_ATOMIC_MIXED, lg, le["line"],
            "%s is accessed both under a lock (%s) and lock-free (%s) "
            "with no `// analyze:atomic` protocol marker"
            % (field_qual, lg.qual, fg.qual),
            chain, [field_qual, lg.qual, fg.qual])
        _add(findings, seen, fnd)
    return findings
