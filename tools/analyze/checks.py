"""The three whole-program checks over a linked callgraph.Program.

Each finding is a dict:

  {"check": ..., "fingerprint": ...,        # stable id (no line numbers)
   "file": ..., "line": ..., "function": ...,
   "message": ...,                          # one-line human summary
   "chain": [ {file, line, function, note}, ... ]}   # acquisition → violation

Suppression: a `// analyze:allow-<check>` comment on the anchor line of a
finding (the acquire or call being reported) drops it; for sim-clock-purity
and blocking-under-lock an allow on the *leaf* line (the clock read, the
callback invocation) additionally stops that event from propagating up at
all, which is the right place to bless an intentionally-impure helper once
instead of at every root that reaches it.
"""

import re

from facts import finding_fingerprint

ROOT_QUAL_RE = re.compile(
    r"^(Cluster|FaultInjector|RetryPolicy|LatencyModel|QueryProcessor)::")

CHECK_LOCK_RANK = "lock-rank-static"
CHECK_BLOCKING = "blocking-under-lock"
CHECK_SIM_CLOCK = "sim-clock-purity"

ALL_CHECKS = (CHECK_LOCK_RANK, CHECK_BLOCKING, CHECK_SIM_CLOCK)


def run_checks(program):
    findings = []
    findings += check_lock_rank(program)
    findings += check_blocking_under_lock(program)
    findings += check_sim_clock_purity(program)
    findings.sort(key=lambda f: (f["check"], f["file"], f["line"],
                                 f["fingerprint"]))
    return findings


def _allowed(event, check):
    return check in event.get("allow", ())


def _finding(check, func, line, message, chain, parts):
    return {
        "check": check,
        "fingerprint": finding_fingerprint(check, parts),
        "file": func.file,
        "line": line,
        "function": func.qual,
        "message": message,
        "chain": chain,
    }


def _min_held(held_refs):
    """(expr, LockRef) of the lowest-ranked lock currently held."""
    return min(held_refs, key=lambda er: er[1].rank)


# -- lock-rank-static --------------------------------------------------------

def check_lock_rank(program):
    """Lock ranks must strictly decrease along every acquisition path.

    Direct: acquiring rank b while holding rank a with b >= a (b == a also
    covers re-entrant self-locking). Transitive: calling, while holding rank
    a, a function whose may-acquire set contains any rank >= a.
    """
    findings = []
    seen = set()
    for f in program.functions:
        for event, ref in f.acquires:
            if _allowed(event, CHECK_LOCK_RANK):
                continue
            held = program.resolve_held(f, event)
            for expr, held_ref in held:
                if ref.rank < held_ref.rank:
                    continue
                if held_ref.qual == ref.qual:
                    what = "re-acquires %s (rank %d) it already holds" % (
                        ref.qual, ref.rank)
                else:
                    what = ("holding %s (rank %d) acquires %s (rank %d)"
                            % (held_ref.qual, held_ref.rank,
                               ref.qual, ref.rank))
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "acquires %s" % ref}]
                fnd = _finding(CHECK_LOCK_RANK, f, event["line"],
                               "%s %s" % (f.qual, what), chain,
                               [f.qual, held_ref.qual, ref.qual])
                if fnd["fingerprint"] not in seen:
                    seen.add(fnd["fingerprint"])
                    findings.append(fnd)
        for event, targets in f.callees:
            if _allowed(event, CHECK_LOCK_RANK):
                continue
            held = program.resolve_held(f, event)
            if not held:
                continue
            _expr, low = _min_held(held)
            for g in targets:
                for rank in sorted(g.may_acquire):
                    if rank < low.rank:
                        continue
                    acq_ref, _w = g.may_acquire[rank]
                    chain = [{"file": f.file, "line": event["line"],
                              "function": f.qual,
                              "note": "holding %s (rank %d), calls %s"
                                      % (low.qual, low.rank, g.qual)}]
                    chain += program.acquire_chain(g, rank)
                    fnd = _finding(
                        CHECK_LOCK_RANK, f, event["line"],
                        "%s holding %s (rank %d) may reach acquisition of "
                        "%s (rank %d) via %s"
                        % (f.qual, low.qual, low.rank, acq_ref.qual,
                           acq_ref.rank, g.qual),
                        chain, [f.qual, low.qual, acq_ref.qual, g.qual])
                    if fnd["fingerprint"] not in seen:
                        seen.add(fnd["fingerprint"])
                        findings.append(fnd)
    return findings


# -- blocking-under-lock -----------------------------------------------------

def check_blocking_under_lock(program):
    """No lock may be held across a potentially-unbounded operation: a user
    callback, a KVStore backend data call, or a CondVar wait on a different
    mutex. This is the Scan bug class (a Scan callback re-entering the store
    while the store's own mutex was held deadlocked the node)."""
    findings = []
    seen = set()
    for f in program.functions:
        for event in f.events:
            kind = event["kind"]
            if kind == "callback":
                if _allowed(event, CHECK_BLOCKING):
                    continue
                held = program.resolve_held(f, event)
                if not held:
                    continue
                _e, low = _min_held(held)
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "holding %s, invokes user callback '%s'"
                                  % (low.qual, event["callee"])}]
                fnd = _finding(
                    CHECK_BLOCKING, f, event["line"],
                    "%s invokes user callback '%s' while holding %s"
                    % (f.qual, event["callee"], low.qual),
                    chain, [f.qual, low.qual, "callback:" + event["callee"]])
                _add(findings, seen, fnd)
            elif kind == "condvar_wait":
                if _allowed(event, CHECK_BLOCKING):
                    continue
                held = program.resolve_held(f, event)
                wait_mu = program.resolve_lock(f, event["mutex"])
                others = [(e, r) for e, r in held
                          if wait_mu is None or r.qual != wait_mu.qual]
                if not others:
                    continue  # Wait(mu) holding only mu is the legal pattern.
                _e, low = _min_held(others)
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "holding %s, waits on CondVar with %s"
                                  % (low.qual, event["mutex"])}]
                fnd = _finding(
                    CHECK_BLOCKING, f, event["line"],
                    "%s waits on a CondVar (mutex %s) while also holding %s"
                    % (f.qual, event["mutex"], low.qual),
                    chain, [f.qual, low.qual, "condvar:" + event["mutex"]])
                _add(findings, seen, fnd)
        for event, targets in f.callees:
            if _allowed(event, CHECK_BLOCKING):
                continue
            held = program.resolve_held(f, event)
            if not held:
                continue
            _e, low = _min_held(held)
            for g in targets:
                if not g.blocking:
                    continue
                kind, _w = g.blocking
                chain = [{"file": f.file, "line": event["line"],
                          "function": f.qual,
                          "note": "holding %s (rank %d), calls %s"
                                  % (low.qual, low.rank, g.qual)}]
                chain += program.blocking_chain(g)
                leaf = chain[-1]["note"] if chain else kind
                fnd = _finding(
                    CHECK_BLOCKING, f, event["line"],
                    "%s holding %s may reach a blocking operation via %s "
                    "(%s)" % (f.qual, low.qual, g.qual, leaf),
                    chain, [f.qual, low.qual, g.qual,
                            chain[-1]["function"] if chain else kind])
                _add(findings, seen, fnd)
    return findings


# -- sim-clock-purity --------------------------------------------------------

def check_sim_clock_purity(program):
    """Deterministic-simulation surfaces (Cluster, FaultInjector, RetryPolicy,
    LatencyModel, QueryProcessor, plus `// analyze:root`-marked functions)
    must not reach wall-clock reads or unseeded randomness — replayable chaos
    schedules (DESIGN.md "Fault-tolerant coordination") depend on it."""
    impure = {}  # Function -> (event-or-None, callee-or-None, what)
    for f in program.functions:
        for event in f.events:
            if event["kind"] in ("wall_clock", "random"):
                if _allowed(event, CHECK_SIM_CLOCK):
                    continue
                impure[f] = (event, None, event["what"])
                break
    changed = True
    while changed:
        changed = False
        for f in program.functions:
            if f in impure:
                continue
            for event, targets in f.callees:
                if _allowed(event, CHECK_SIM_CLOCK):
                    continue
                for g in targets:
                    if g in impure:
                        impure[f] = (event, g, impure[g][2])
                        changed = True
                        break
                if f in impure:
                    break

    findings = []
    seen = set()
    for f in program.functions:
        if f not in impure:
            continue
        if not (f.root or ROOT_QUAL_RE.match(f.qual)):
            continue
        chain = []
        cur, guard = f, 0
        while cur is not None and guard < 64:
            guard += 1
            event, callee, what = impure[cur]
            if callee is None:
                chain.append({"file": cur.file, "line": event["line"],
                              "function": cur.qual,
                              "note": "uses %s" % what})
                break
            chain.append({"file": cur.file, "line": event["line"],
                          "function": cur.qual,
                          "note": "calls %s" % callee.qual})
            cur = callee
        what = impure[f][2]
        leaf = chain[-1]["function"] if chain else f.qual
        anchor = chain[0]["line"] if chain else f.line
        fnd = _finding(
            CHECK_SIM_CLOCK, f, anchor,
            "%s (deterministic-path root) may reach %s in %s"
            % (f.qual, what, leaf),
            chain, [f.qual, leaf, what])
        _add(findings, seen, fnd)
    return findings


def _add(findings, seen, fnd):
    if fnd["fingerprint"] not in seen:
        seen.add(fnd["fingerprint"])
        findings.append(fnd)
