#!/usr/bin/env python3
"""Repository lint checks that clang-tidy does not cover.

Enforced rules (over src/, tests/, and bench/ by default):

  include-guard   Headers use #ifndef/#define/#endif guards named
                  RSTORE_<PATH>_H_, where <PATH> is the file's repo-relative
                  path with the leading src/ dropped, upper-cased, with '/'
                  and '.' mapped to '_' (src/core/chunk.h ->
                  RSTORE_CORE_CHUNK_H_; tests/core/util.h ->
                  RSTORE_TESTS_CORE_UTIL_H_).
  naked-new       No `new` expressions outside smart-pointer factories;
                  ownership goes through std::make_unique/make_shared or
                  containers.
  stream-logging  No std::cout / std::cerr / printf-family in src/ outside
                  the logging implementation; use RSTORE_LOG.
  assert          No C `assert(...)`; use RSTORE_CHECK (always-on invariants)
                  or RSTORE_DCHECK (debug-only, hot paths) from
                  common/logging.h.
  raw-sync        No raw std::mutex / std::shared_mutex / std::lock_guard /
                  std::unique_lock / std::condition_variable (etc.) outside
                  src/common/sync.h; use the annotated primitives
                  (rstore::Mutex, MutexLock, ReaderLock, CondVar, ...) so
                  Clang -Wthread-safety and the lock-rank registry see every
                  acquisition. Append `// lint:allow-raw-sync` to a line to
                  suppress (e.g. interop with an external API).
  raw-timing      No ad-hoc std::chrono in src/core or src/kvstore; time flows
                  through common/stopwatch.h (wall time) and common/trace.h
                  (span clocks) so measurements stay exportable and the
                  simulated clock cannot be confused with the real one.
                  Append `// lint:allow-raw-timing` to a line to suppress.
  alive-poke      No direct `alive_` access outside src/kvstore/cluster.{h,cc}
                  and src/kvstore/fault_injector.{h,cc}: node liveness must
                  flow through SetNodeAlive/IsNodeAlive (which replay hinted
                  handoffs and keep the fault timeline deterministic), never
                  by poking the flag vector. Append `// lint:allow-alive-poke`
                  to a line to suppress.
  scoped-span-math
                  No manual duration math on trace-span timestamps
                  (sim_start_us/sim_end_us) in src/ outside common/trace.*
                  and common/flight_recorder.*: latency decomposition flows
                  through the QueryStats attribution fields, whose
                  conservation invariant is machine-checked — ad-hoc span
                  arithmetic is unaudited. Append `// lint:allow-span-math`
                  to a line to suppress.

Usage:
  tools/lint.py [paths...]      # default: src/ tests/ bench/
  tools/lint.py --jobs 8        # parallel scan
  tools/lint.py --list-checks

Exit status is 0 when clean, 1 when any violation is found.
"""

import argparse
import multiprocessing
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Files allowed to talk to stdio directly: the logging sink itself.
STREAM_ALLOWLIST = {
    os.path.join("src", "common", "logging.h"),
    os.path.join("src", "common", "logging.cc"),
}

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line breaks.

    Keeps offsets stable so violation line numbers match the original file.
    A lexer-grade pass is overkill for these checks; this handles //, block
    comments, and quoted literals, which is what the codebase contains.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            if end == -1:
                end = n
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel_path):
    """src/core/chunk.h -> RSTORE_CORE_CHUNK_H_; outside src/ the tree name
    stays in the guard: tests/core/util.h -> RSTORE_TESTS_CORE_UTIL_H_."""
    norm = rel_path.replace(os.sep, "/")
    if norm.startswith("src/"):
        norm = norm[len("src/"):]
    stem = re.sub(r"[/.]", "_", norm)
    return "RSTORE_" + stem.upper() + "_"


def check_include_guard(rel_path, text, stripped):
    if not rel_path.endswith((".h", ".hpp")):
        return []
    guard = expected_guard(rel_path)
    lines = stripped.splitlines()
    ifndef_re = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
    violations = []
    for idx, line in enumerate(lines):
        m = ifndef_re.match(line)
        if not m:
            if line.strip():
                violations.append(
                    (idx + 1, "include-guard",
                     "first preprocessor line must be '#ifndef %s'" % guard))
                return violations
            continue
        found = m.group(1)
        if found != guard:
            violations.append(
                (idx + 1, "include-guard",
                 "guard is '%s', expected '%s'" % (found, guard)))
            return violations
        define_ok = idx + 1 < len(lines) and re.match(
            r"^\s*#\s*define\s+%s\s*$" % re.escape(guard), lines[idx + 1])
        if not define_ok:
            violations.append(
                (idx + 2, "include-guard",
                 "'#define %s' must immediately follow the #ifndef" % guard))
        return violations
    violations.append((1, "include-guard", "missing include guard"))
    return violations


NEW_ANY_RE = re.compile(r"(?<![\w.>])new\b")
# A `new` handed straight to a smart-pointer constructor in the same
# expression is owned from birth — the factory-with-private-constructor
# idiom, where make_unique cannot reach the constructor. Only `new`
# expressions without an immediate owner are flagged.
OWNED_NEW_RE = re.compile(
    r"(unique_ptr|shared_ptr)\s*<[^;]*\(\s*new\b")


def check_naked_new(rel_path, text, stripped):
    violations = []
    for idx, line in enumerate(stripped.splitlines()):
        if NEW_ANY_RE.search(line) and not OWNED_NEW_RE.search(line):
            violations.append(
                (idx + 1, "naked-new",
                 "raw `new` — use std::make_unique/make_shared (or wrap in "
                 "a smart pointer within the same expression)"))
    return violations


STREAM_RE = re.compile(
    r"std\s*::\s*(cout|cerr)\b|(?<![\w:])(printf|fprintf|puts)\s*\(")


def check_stream_logging(rel_path, text, stripped):
    if rel_path.replace("/", os.sep) in STREAM_ALLOWLIST:
        return []
    violations = []
    for idx, line in enumerate(stripped.splitlines()):
        m = STREAM_RE.search(line)
        if m:
            violations.append(
                (idx + 1, "stream-logging",
                 "direct stdio ('%s') — use RSTORE_LOG from "
                 "common/logging.h" % m.group(0).strip()))
    return violations


ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")


def check_assert(rel_path, text, stripped):
    violations = []
    for idx, line in enumerate(stripped.splitlines()):
        if ASSERT_RE.search(line):
            violations.append(
                (idx + 1, "assert",
                 "C assert() — use RSTORE_CHECK or RSTORE_DCHECK"))
    return violations


# Only the annotated wrappers may touch the std primitives directly;
# everything else must go through common/sync.h so Clang's thread-safety
# analysis and the debug lock-rank registry observe every acquisition.
RAW_SYNC_RE = re.compile(
    r"std\s*::\s*(mutex|shared_mutex|timed_mutex|shared_timed_mutex|"
    r"recursive_mutex|recursive_timed_mutex|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock|condition_variable|condition_variable_any)\b")

RAW_SYNC_ALLOWLIST = {
    os.path.join("src", "common", "sync.h"),
    os.path.join("src", "common", "sync.cc"),
}

RAW_SYNC_SUPPRESSION = "lint:allow-raw-sync"


def check_raw_sync(rel_path, text, stripped):
    if rel_path.replace("/", os.sep) in RAW_SYNC_ALLOWLIST:
        return []
    violations = []
    original_lines = text.splitlines()
    for idx, line in enumerate(stripped.splitlines()):
        m = RAW_SYNC_RE.search(line)
        if not m:
            continue
        # The suppression lives in a comment, which stripping blanked out;
        # look it up in the original line.
        if idx < len(original_lines) and \
                RAW_SYNC_SUPPRESSION in original_lines[idx]:
            continue
        violations.append(
            (idx + 1, "raw-sync",
             "raw std::%s — use the annotated primitives in common/sync.h "
             "(rstore::Mutex/MutexLock/ReaderLock/CondVar); append "
             "`// %s` to suppress" % (m.group(1), RAW_SYNC_SUPPRESSION)))
    return violations


# The core and kvstore layers must not read clocks ad hoc: wall time goes
# through common/stopwatch.h, per-query time through common/trace.h (both
# live in src/common and may use std::chrono freely). This keeps every
# measurement exportable through the metrics/trace machinery and prevents
# real-clock reads from leaking into simulated-time accounting.
RAW_TIMING_RE = re.compile(r"std\s*::\s*chrono\b")

RAW_TIMING_DIRS = (
    os.path.join("src", "core") + os.sep,
    os.path.join("src", "kvstore") + os.sep,
)

RAW_TIMING_SUPPRESSION = "lint:allow-raw-timing"


def check_raw_timing(rel_path, text, stripped):
    if not rel_path.replace("/", os.sep).startswith(RAW_TIMING_DIRS):
        return []
    violations = []
    original_lines = text.splitlines()
    for idx, line in enumerate(stripped.splitlines()):
        if not RAW_TIMING_RE.search(line):
            continue
        if idx < len(original_lines) and \
                RAW_TIMING_SUPPRESSION in original_lines[idx]:
            continue
        violations.append(
            (idx + 1, "raw-timing",
             "ad-hoc std::chrono — use Stopwatch (common/stopwatch.h) or "
             "TraceContext (common/trace.h); append `// %s` to suppress"
             % RAW_TIMING_SUPPRESSION))
    return violations


# Node liveness is owned by the cluster coordinator: SetNodeAlive replays
# hinted handoffs on recovery, and the fault injector folds crash windows
# into the same view. Any other code flipping `alive_` directly would skip
# the replay and silently desynchronize the deterministic fault timeline.
ALIVE_POKE_RE = re.compile(r"\balive_\b")

ALIVE_POKE_ALLOWLIST = {
    os.path.join("src", "kvstore", "cluster.h"),
    os.path.join("src", "kvstore", "cluster.cc"),
    os.path.join("src", "kvstore", "fault_injector.h"),
    os.path.join("src", "kvstore", "fault_injector.cc"),
}

ALIVE_POKE_SUPPRESSION = "lint:allow-alive-poke"

# Latency attribution is the one sanctioned channel for "where did the time
# go": QueryStats::{queue_wait,service,retry_penalty,hedge_delta}_us, which
# the conservation invariant keeps honest. Production code doing its own
# duration math on raw trace-span timestamps (sim_start_us/sim_end_us)
# re-derives latencies outside that algebra, where nothing checks that the
# pieces sum to the whole. Only the trace clock itself and the flight
# recorder may touch the raw timestamps arithmetically; tests may too (they
# assert the span semantics).
SPAN_MATH_RE = re.compile(
    r"sim_(?:start|end)_us\s*[-+]|[-+]\s*[\w.>]*\bsim_(?:start|end)_us")

SPAN_MATH_ALLOWLIST = {
    os.path.join("src", "common", "trace.h"),
    os.path.join("src", "common", "trace.cc"),
    os.path.join("src", "common", "flight_recorder.h"),
    os.path.join("src", "common", "flight_recorder.cc"),
}

SPAN_MATH_SUPPRESSION = "lint:allow-span-math"


def check_scoped_span_math(rel_path, text, stripped):
    norm = rel_path.replace("/", os.sep)
    if not norm.startswith("src" + os.sep):
        return []
    if norm in SPAN_MATH_ALLOWLIST:
        return []
    violations = []
    original_lines = text.splitlines()
    for idx, line in enumerate(stripped.splitlines()):
        if not SPAN_MATH_RE.search(line):
            continue
        if idx < len(original_lines) and \
                SPAN_MATH_SUPPRESSION in original_lines[idx]:
            continue
        violations.append(
            (idx + 1, "scoped-span-math",
             "manual duration math on trace-span timestamps — latency "
             "decomposition flows through the QueryStats attribution "
             "fields (conservation-checked), not ad-hoc span arithmetic; "
             "append `// %s` to suppress" % SPAN_MATH_SUPPRESSION))
    return violations


def check_alive_poke(rel_path, text, stripped):
    if rel_path.replace("/", os.sep) in ALIVE_POKE_ALLOWLIST:
        return []
    violations = []
    original_lines = text.splitlines()
    for idx, line in enumerate(stripped.splitlines()):
        if not ALIVE_POKE_RE.search(line):
            continue
        if idx < len(original_lines) and \
                ALIVE_POKE_SUPPRESSION in original_lines[idx]:
            continue
        violations.append(
            (idx + 1, "alive-poke",
             "direct `alive_` access — node liveness goes through "
             "Cluster::SetNodeAlive/IsNodeAlive so hint replay and the "
             "fault timeline stay consistent; append `// %s` to suppress"
             % ALIVE_POKE_SUPPRESSION))
    return violations


CHECKS = [
    ("include-guard", check_include_guard),
    ("naked-new", check_naked_new),
    ("stream-logging", check_stream_logging),
    ("assert", check_assert),
    ("raw-sync", check_raw_sync),
    ("raw-timing", check_raw_timing),
    ("alive-poke", check_alive_poke),
    ("scoped-span-math", check_scoped_span_math),
]


def lint_file(rel_path):
    abs_path = os.path.join(REPO_ROOT, rel_path)
    try:
        with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [(0, "io", str(e))]
    stripped = strip_comments_and_strings(text)
    violations = []
    for _, fn in CHECKS:
        violations.extend(fn(rel_path, text, stripped))
    return violations


def collect_files(paths):
    files = []
    for p in paths:
        abs_p = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(abs_p):
            files.append(os.path.relpath(abs_p, REPO_ROOT))
        else:
            for dirpath, _, names in os.walk(abs_p):
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(
                            os.path.relpath(os.path.join(dirpath, name),
                                            REPO_ROOT))
    return sorted(set(files))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/ tests/ bench/)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="lint files with N parallel workers")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check names and exit")
    args = parser.parse_args()

    if args.list_checks:
        for name, _ in CHECKS:
            print(name)
        return 0

    paths = args.paths or ["src", "tests", "bench"]
    files = collect_files(paths)
    if not files:
        print("lint.py: no C++ files found under: %s" % " ".join(paths),
              file=sys.stderr)
        return 1

    if args.jobs > 1 and len(files) > 1:
        with multiprocessing.Pool(args.jobs) as pool:
            all_violations = pool.map(lint_file, files)
    else:
        all_violations = [lint_file(f) for f in files]

    total = 0
    for rel_path, file_violations in zip(files, all_violations):
        for line, check, message in file_violations:
            total += 1
            print("%s:%d: [%s] %s" % (rel_path, line, check, message))
    if total:
        print("\nlint.py: %d violation(s) in %d file(s) scanned"
              % (total, len(files)), file=sys.stderr)
        return 1
    print("lint.py: %d file(s) clean" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
