#!/usr/bin/env python3
"""Render a flight-recorder dump into a tail-latency attribution report.

The flight recorder (src/common/flight_recorder.h) keeps the N slowest and
the N most recent queries, each carrying its latency attribution —

    queue_wait + service + retry_penalty - hedge_delta == total

— plus its span tree, and a bounded per-node saturation time series.
bench_traffic writes its dump to flight_traffic.json; the shell's
`slowlog json` command prints the same shape.

The report answers the tail-latency question directly: for each slow query,
which component dominated (queued behind saturated nodes? genuinely large?
burned on retries?), and which nodes were backlogged while it ran.
Conservation is re-checked on every record; a dump that violates it is a
producer bug and fails the run.

Usage:
  tools/latency_report.py flight_traffic.json [--top 10]
  tools/latency_report.py --self-test      # golden-dump regression check

Exit status: 1 on conservation violations, unreadable input, or self-test
failure; else 0.
"""

import argparse
import json
import os
import sys

ATTRIBUTION_FIELDS = ("queue_wait_us", "service_us", "retry_penalty_us",
                      "hedge_delta_us")


def conservation_violations(records):
    """Records whose attribution fails to sum to their total, exactly."""
    out = []
    for r in records:
        lhs = (r["queue_wait_us"] + r["service_us"] + r["retry_penalty_us"] -
               r["hedge_delta_us"])
        if lhs != r["total_us"]:
            out.append((r["id"], lhs, r["total_us"]))
    return out


def dominant_component(record):
    """The attribution component that explains most of the query's time."""
    parts = [("queue_wait", record["queue_wait_us"]),
             ("service", record["service_us"]),
             ("retry_penalty", record["retry_penalty_us"])]
    return max(parts, key=lambda kv: kv[1])[0]


def pct(part, total):
    return 100.0 * part / total if total else 0.0


def render_records(title, records):
    lines = ["%s (%d):" % (title, len(records))]
    header = "%6s  %-18s %9s  %6s %6s %6s %6s  %-13s %s" % (
        "id", "name", "total_us", "queue%", "svc%", "retry%", "hedge%",
        "dominant", "flags")
    lines.append(header)
    lines.append("-" * len(header))
    for r in records:
        flags = []
        if r["retries"]:
            flags.append("retries=%d" % r["retries"])
        if r["hedge_wins"]:
            flags.append("hedge_wins=%d" % r["hedge_wins"])
        if r["timeouts"]:
            flags.append("timeouts=%d" % r["timeouts"])
        if r["missing_chunks"]:
            flags.append("missing=%d" % r["missing_chunks"])
        if r["degradation"]:
            flags.append("degraded")
        total = r["total_us"]
        lines.append("%6d  %-18s %9d  %6.1f %6.1f %6.1f %6.1f  %-13s %s" % (
            r["id"], r["name"][:18], total,
            pct(r["queue_wait_us"], total), pct(r["service_us"], total),
            pct(r["retry_penalty_us"], total), pct(r["hedge_delta_us"], total),
            dominant_component(r), " ".join(flags)))
    return lines


def render_saturation(samples):
    """Per-node backlog summary of the saturation time series."""
    by_node = {}
    for s in samples:
        by_node.setdefault(s["node"], []).append(s["backlog_us"])
    lines = ["saturation samples (%d, %d nodes):" % (len(samples),
                                                     len(by_node))]
    lines.append("%6s %9s %12s %12s" % ("node", "samples", "max_backlog",
                                        "mean_backlog"))
    for node in sorted(by_node):
        backlogs = by_node[node]
        lines.append("%6d %9d %12d %12.1f" % (node, len(backlogs),
                                              max(backlogs),
                                              sum(backlogs) / len(backlogs)))
    return lines


def render_report(dump, top):
    slowest = dump.get("slowest", [])[:top]
    recent = dump.get("recent", [])[:top]
    samples = dump.get("samples", [])
    lines = []
    lines.extend(render_records("slowest queries", slowest))
    lines.append("")
    lines.extend(render_records("recent queries", recent))
    if samples:
        lines.append("")
        lines.extend(render_saturation(samples))
    # The one-line takeaway: how much of the total tail is queueing.
    total = sum(r["total_us"] for r in slowest)
    queued = sum(r["queue_wait_us"] for r in slowest)
    if total:
        lines.append("")
        lines.append("tail summary: %.1f%% of the slowest queries' time was "
                     "queue wait" % pct(queued, total))
    return "\n".join(lines)


def self_test():
    """Regression check against the committed golden dump."""
    golden_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "testdata", "flight_golden.json")
    with open(golden_path, encoding="utf-8") as f:
        dump = json.load(f)

    def check(cond, what):
        if not cond:
            raise AssertionError("self-test: %s" % what)

    records = dump["slowest"] + dump["recent"]
    check(conservation_violations(records) == [],
          "golden dump must conserve attribution")
    # A record that does not conserve must be flagged.
    bad = dict(records[0])
    bad["queue_wait_us"] += 1
    check(conservation_violations([bad]) == [(41, 9601, 9600)],
          "checker must flag a non-conserving record")

    check(dominant_component(dump["slowest"][0]) == "queue_wait",
          "slowest golden query is queue-dominated")
    check(dominant_component(dump["slowest"][1]) == "service",
          "second golden query is service-dominated")

    report = render_report(dump, top=10)
    for needle in [
            "get_record_async",  # the queue-dominated tail query...
            "queue_wait",        # ...attributed to queueing
            "hedge_wins=1",      # the hedged query's flags survive
            "degraded",
            "max_backlog",
            "53.0% of the slowest queries' time was queue wait",
    ]:
        check(needle in report, "report must contain %r" % needle)
    sat = "\n".join(render_saturation(dump["samples"]))
    check("     3         2          250        175.0" in sat,
          "node 3's backlog summary (max 250, mean 175)")
    print("latency_report self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Render a flight-recorder dump.")
    parser.add_argument("dump", nargs="?", help="flight dump JSON path")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per table (default 10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run against the committed golden dump")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.dump:
        parser.error("a dump path is required (or --self-test)")
    try:
        with open(args.dump, encoding="utf-8") as f:
            dump = json.load(f)
    except (OSError, ValueError) as e:
        print("latency_report: cannot read %s: %s" % (args.dump, e),
              file=sys.stderr)
        return 1

    violations = conservation_violations(
        dump.get("slowest", []) + dump.get("recent", []))
    for qid, lhs, total in violations:
        print("latency_report: query %d violates conservation "
              "(%d != %d)" % (qid, lhs, total), file=sys.stderr)
    print(render_report(dump, args.top))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
