#!/usr/bin/env python3
"""Locate (and lightly query) the repo's compile_commands.json.

Every CMake preset exports a compilation database (the root CMakeLists sets
CMAKE_EXPORT_COMPILE_COMMANDS), so clang-tidy, tools/analyze, and editors all
share one source of truth for "which TUs exist and how they are compiled".
This module is the one place that knows where to look for it.

As a library:

    from compile_commands import find_database, load_entries
    path = find_database()            # newest DB across known build dirs
    entries = load_entries(path)      # [{file, directory, command|arguments}]

As a CLI:

    tools/compile_commands.py            # print the chosen DB path
    tools/compile_commands.py --list     # print the TU source files, one/line
    tools/compile_commands.py --build-dir build-asan   # restrict the search

Exit status is 1 when no database can be found (the error says how to
generate one).
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Build trees the presets (CMakePresets.json) and CI jobs are known to use,
# in preference order when their databases have equal mtimes.
KNOWN_BUILD_DIRS = (
    "build",
    "build-asan",
    "build-tsan",
    "build-clang",
    "build-cov",
)

DB_NAME = "compile_commands.json"


def candidate_paths(build_dir=None):
    """Possible database paths, most-preferred first."""
    if build_dir:
        return [os.path.join(REPO_ROOT, build_dir, DB_NAME)]
    paths = [os.path.join(REPO_ROOT, d, DB_NAME) for d in KNOWN_BUILD_DIRS]
    # Any other build*/ directory someone configured by hand.
    try:
        for name in sorted(os.listdir(REPO_ROOT)):
            if name.startswith("build") and name not in KNOWN_BUILD_DIRS:
                p = os.path.join(REPO_ROOT, name, DB_NAME)
                if p not in paths:
                    paths.append(p)
    except OSError:
        pass
    return paths


def find_database(build_dir=None):
    """Returns the path of the freshest compile_commands.json, or None.

    Freshness (mtime) wins so that the DB tracking the most recent configure
    is used when several build trees exist.
    """
    best = None
    best_mtime = -1.0
    for path in candidate_paths(build_dir):
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            continue
        if mtime > best_mtime:
            best = path
            best_mtime = mtime
    return best


def load_entries(path):
    """Parses the database into its entry dicts (file paths absolutized)."""
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    for entry in entries:
        src = entry.get("file", "")
        if src and not os.path.isabs(src):
            entry["file"] = os.path.normpath(
                os.path.join(entry.get("directory", ""), src))
    return entries


def source_files(path, under=None):
    """TU source files recorded in the DB, optionally restricted to a
    directory prefix relative to the repo root (e.g. "src")."""
    files = []
    prefix = os.path.join(REPO_ROOT, under) + os.sep if under else None
    for entry in load_entries(path):
        src = os.path.normpath(entry["file"])
        if prefix and not src.startswith(prefix):
            continue
        files.append(src)
    return sorted(set(files))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=None,
                        help="restrict the search to one build directory "
                             "(relative to the repo root)")
    parser.add_argument("--list", action="store_true",
                        help="print the TU source files instead of the path")
    parser.add_argument("--under", default=None,
                        help="with --list, restrict to sources under this "
                             "repo-relative directory (e.g. src)")
    args = parser.parse_args()

    path = find_database(args.build_dir)
    if path is None:
        print("compile_commands.py: no %s found; configure first, e.g.\n"
              "  cmake --preset relwithdebinfo" % DB_NAME, file=sys.stderr)
        return 1
    if args.list:
        for src in source_files(path, args.under):
            print(os.path.relpath(src, REPO_ROOT))
    else:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
