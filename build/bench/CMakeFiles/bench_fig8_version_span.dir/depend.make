# Empty dependencies file for bench_fig8_version_span.
# This may be replaced when dependencies are built.
