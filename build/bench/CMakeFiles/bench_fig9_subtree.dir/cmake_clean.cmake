file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_subtree.dir/bench_fig9_subtree.cc.o"
  "CMakeFiles/bench_fig9_subtree.dir/bench_fig9_subtree.cc.o.d"
  "bench_fig9_subtree"
  "bench_fig9_subtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
