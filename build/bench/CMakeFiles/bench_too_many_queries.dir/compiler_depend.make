# Empty compiler generated dependencies file for bench_too_many_queries.
# This may be replaced when dependencies are built.
