file(REMOVE_RECURSE
  "CMakeFiles/bench_too_many_queries.dir/bench_too_many_queries.cc.o"
  "CMakeFiles/bench_too_many_queries.dir/bench_too_many_queries.cc.o.d"
  "bench_too_many_queries"
  "bench_too_many_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_too_many_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
