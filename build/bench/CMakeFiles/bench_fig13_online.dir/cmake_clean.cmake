file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_online.dir/bench_fig13_online.cc.o"
  "CMakeFiles/bench_fig13_online.dir/bench_fig13_online.cc.o.d"
  "bench_fig13_online"
  "bench_fig13_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
