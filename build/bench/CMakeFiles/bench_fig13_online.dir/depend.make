# Empty dependencies file for bench_fig13_online.
# This may be replaced when dependencies are built.
