# Empty dependencies file for bench_fig11_query.
# This may be replaced when dependencies are built.
