file(REMOVE_RECURSE
  "CMakeFiles/compress_test.dir/compress/bitmap_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/bitmap_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/delta_codec_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/delta_codec_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/lz_codec_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/lz_codec_test.cc.o.d"
  "compress_test"
  "compress_test.pdb"
  "compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
