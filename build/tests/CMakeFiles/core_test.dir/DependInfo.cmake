
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/chunk_test.cc" "tests/CMakeFiles/core_test.dir/core/chunk_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/chunk_test.cc.o.d"
  "/root/repo/tests/core/delta_compression_test.cc" "tests/CMakeFiles/core_test.dir/core/delta_compression_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/delta_compression_test.cc.o.d"
  "/root/repo/tests/core/diff_test.cc" "tests/CMakeFiles/core_test.dir/core/diff_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/diff_test.cc.o.d"
  "/root/repo/tests/core/durability_test.cc" "tests/CMakeFiles/core_test.dir/core/durability_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/durability_test.cc.o.d"
  "/root/repo/tests/core/failure_test.cc" "tests/CMakeFiles/core_test.dir/core/failure_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/failure_test.cc.o.d"
  "/root/repo/tests/core/fuzz_decode_test.cc" "tests/CMakeFiles/core_test.dir/core/fuzz_decode_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/fuzz_decode_test.cc.o.d"
  "/root/repo/tests/core/lossy_projection_test.cc" "tests/CMakeFiles/core_test.dir/core/lossy_projection_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/lossy_projection_test.cc.o.d"
  "/root/repo/tests/core/online_test.cc" "tests/CMakeFiles/core_test.dir/core/online_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/online_test.cc.o.d"
  "/root/repo/tests/core/partitioner_test.cc" "tests/CMakeFiles/core_test.dir/core/partitioner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/partitioner_test.cc.o.d"
  "/root/repo/tests/core/placement_test.cc" "tests/CMakeFiles/core_test.dir/core/placement_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/placement_test.cc.o.d"
  "/root/repo/tests/core/property_test.cc" "tests/CMakeFiles/core_test.dir/core/property_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/property_test.cc.o.d"
  "/root/repo/tests/core/report_test.cc" "tests/CMakeFiles/core_test.dir/core/report_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_test.cc.o.d"
  "/root/repo/tests/core/rstore_test.cc" "tests/CMakeFiles/core_test.dir/core/rstore_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rstore_test.cc.o.d"
  "/root/repo/tests/core/sub_chunk_builder_test.cc" "tests/CMakeFiles/core_test.dir/core/sub_chunk_builder_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sub_chunk_builder_test.cc.o.d"
  "/root/repo/tests/core/sub_chunk_test.cc" "tests/CMakeFiles/core_test.dir/core/sub_chunk_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sub_chunk_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/rstore_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/rstore_json.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rstore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rstore_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/rstore_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/version/CMakeFiles/rstore_version.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
