# Empty compiler generated dependencies file for rstore_compress.
# This may be replaced when dependencies are built.
