file(REMOVE_RECURSE
  "CMakeFiles/rstore_compress.dir/bitmap.cc.o"
  "CMakeFiles/rstore_compress.dir/bitmap.cc.o.d"
  "CMakeFiles/rstore_compress.dir/compressor.cc.o"
  "CMakeFiles/rstore_compress.dir/compressor.cc.o.d"
  "CMakeFiles/rstore_compress.dir/delta_codec.cc.o"
  "CMakeFiles/rstore_compress.dir/delta_codec.cc.o.d"
  "CMakeFiles/rstore_compress.dir/lz_codec.cc.o"
  "CMakeFiles/rstore_compress.dir/lz_codec.cc.o.d"
  "librstore_compress.a"
  "librstore_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
