file(REMOVE_RECURSE
  "librstore_compress.a"
)
