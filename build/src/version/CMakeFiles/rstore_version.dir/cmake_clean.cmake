file(REMOVE_RECURSE
  "CMakeFiles/rstore_version.dir/dataset.cc.o"
  "CMakeFiles/rstore_version.dir/dataset.cc.o.d"
  "CMakeFiles/rstore_version.dir/delta.cc.o"
  "CMakeFiles/rstore_version.dir/delta.cc.o.d"
  "CMakeFiles/rstore_version.dir/tree_transform.cc.o"
  "CMakeFiles/rstore_version.dir/tree_transform.cc.o.d"
  "CMakeFiles/rstore_version.dir/version_graph.cc.o"
  "CMakeFiles/rstore_version.dir/version_graph.cc.o.d"
  "librstore_version.a"
  "librstore_version.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_version.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
