# Empty dependencies file for rstore_version.
# This may be replaced when dependencies are built.
