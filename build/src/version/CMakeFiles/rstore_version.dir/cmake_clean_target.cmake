file(REMOVE_RECURSE
  "librstore_version.a"
)
