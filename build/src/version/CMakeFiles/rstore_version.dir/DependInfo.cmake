
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/version/dataset.cc" "src/version/CMakeFiles/rstore_version.dir/dataset.cc.o" "gcc" "src/version/CMakeFiles/rstore_version.dir/dataset.cc.o.d"
  "/root/repo/src/version/delta.cc" "src/version/CMakeFiles/rstore_version.dir/delta.cc.o" "gcc" "src/version/CMakeFiles/rstore_version.dir/delta.cc.o.d"
  "/root/repo/src/version/tree_transform.cc" "src/version/CMakeFiles/rstore_version.dir/tree_transform.cc.o" "gcc" "src/version/CMakeFiles/rstore_version.dir/tree_transform.cc.o.d"
  "/root/repo/src/version/version_graph.cc" "src/version/CMakeFiles/rstore_version.dir/version_graph.cc.o" "gcc" "src/version/CMakeFiles/rstore_version.dir/version_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
