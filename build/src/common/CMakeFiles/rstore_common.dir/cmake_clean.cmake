file(REMOVE_RECURSE
  "CMakeFiles/rstore_common.dir/coding.cc.o"
  "CMakeFiles/rstore_common.dir/coding.cc.o.d"
  "CMakeFiles/rstore_common.dir/hash.cc.o"
  "CMakeFiles/rstore_common.dir/hash.cc.o.d"
  "CMakeFiles/rstore_common.dir/logging.cc.o"
  "CMakeFiles/rstore_common.dir/logging.cc.o.d"
  "CMakeFiles/rstore_common.dir/random.cc.o"
  "CMakeFiles/rstore_common.dir/random.cc.o.d"
  "CMakeFiles/rstore_common.dir/status.cc.o"
  "CMakeFiles/rstore_common.dir/status.cc.o.d"
  "CMakeFiles/rstore_common.dir/string_util.cc.o"
  "CMakeFiles/rstore_common.dir/string_util.cc.o.d"
  "librstore_common.a"
  "librstore_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
