# Empty compiler generated dependencies file for rstore_common.
# This may be replaced when dependencies are built.
