file(REMOVE_RECURSE
  "librstore_common.a"
)
