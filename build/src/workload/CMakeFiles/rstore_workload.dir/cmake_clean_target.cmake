file(REMOVE_RECURSE
  "librstore_workload.a"
)
