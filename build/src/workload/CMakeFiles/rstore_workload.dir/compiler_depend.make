# Empty compiler generated dependencies file for rstore_workload.
# This may be replaced when dependencies are built.
