file(REMOVE_RECURSE
  "CMakeFiles/rstore_workload.dir/dataset_catalog.cc.o"
  "CMakeFiles/rstore_workload.dir/dataset_catalog.cc.o.d"
  "CMakeFiles/rstore_workload.dir/dataset_generator.cc.o"
  "CMakeFiles/rstore_workload.dir/dataset_generator.cc.o.d"
  "CMakeFiles/rstore_workload.dir/query_workload.cc.o"
  "CMakeFiles/rstore_workload.dir/query_workload.cc.o.d"
  "CMakeFiles/rstore_workload.dir/record_generator.cc.o"
  "CMakeFiles/rstore_workload.dir/record_generator.cc.o.d"
  "librstore_workload.a"
  "librstore_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
