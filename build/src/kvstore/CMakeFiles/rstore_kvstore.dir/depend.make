# Empty dependencies file for rstore_kvstore.
# This may be replaced when dependencies are built.
