file(REMOVE_RECURSE
  "librstore_kvstore.a"
)
