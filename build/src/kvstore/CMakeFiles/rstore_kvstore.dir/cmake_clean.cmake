file(REMOVE_RECURSE
  "CMakeFiles/rstore_kvstore.dir/cluster.cc.o"
  "CMakeFiles/rstore_kvstore.dir/cluster.cc.o.d"
  "CMakeFiles/rstore_kvstore.dir/file_store.cc.o"
  "CMakeFiles/rstore_kvstore.dir/file_store.cc.o.d"
  "CMakeFiles/rstore_kvstore.dir/hash_ring.cc.o"
  "CMakeFiles/rstore_kvstore.dir/hash_ring.cc.o.d"
  "CMakeFiles/rstore_kvstore.dir/latency_model.cc.o"
  "CMakeFiles/rstore_kvstore.dir/latency_model.cc.o.d"
  "CMakeFiles/rstore_kvstore.dir/memory_store.cc.o"
  "CMakeFiles/rstore_kvstore.dir/memory_store.cc.o.d"
  "librstore_kvstore.a"
  "librstore_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
