
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/cluster.cc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/cluster.cc.o" "gcc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/cluster.cc.o.d"
  "/root/repo/src/kvstore/file_store.cc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/file_store.cc.o" "gcc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/file_store.cc.o.d"
  "/root/repo/src/kvstore/hash_ring.cc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/hash_ring.cc.o" "gcc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/hash_ring.cc.o.d"
  "/root/repo/src/kvstore/latency_model.cc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/latency_model.cc.o" "gcc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/latency_model.cc.o.d"
  "/root/repo/src/kvstore/memory_store.cc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/memory_store.cc.o" "gcc" "src/kvstore/CMakeFiles/rstore_kvstore.dir/memory_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
