file(REMOVE_RECURSE
  "librstore_core.a"
)
