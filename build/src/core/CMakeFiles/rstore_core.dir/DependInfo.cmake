
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_partitioner.cc" "src/core/CMakeFiles/rstore_core.dir/baseline_partitioner.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/baseline_partitioner.cc.o.d"
  "/root/repo/src/core/bottom_up_partitioner.cc" "src/core/CMakeFiles/rstore_core.dir/bottom_up_partitioner.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/bottom_up_partitioner.cc.o.d"
  "/root/repo/src/core/branch_manager.cc" "src/core/CMakeFiles/rstore_core.dir/branch_manager.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/branch_manager.cc.o.d"
  "/root/repo/src/core/chunk.cc" "src/core/CMakeFiles/rstore_core.dir/chunk.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/chunk.cc.o.d"
  "/root/repo/src/core/chunk_map.cc" "src/core/CMakeFiles/rstore_core.dir/chunk_map.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/chunk_map.cc.o.d"
  "/root/repo/src/core/delta_store.cc" "src/core/CMakeFiles/rstore_core.dir/delta_store.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/delta_store.cc.o.d"
  "/root/repo/src/core/item_index.cc" "src/core/CMakeFiles/rstore_core.dir/item_index.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/item_index.cc.o.d"
  "/root/repo/src/core/options.cc" "src/core/CMakeFiles/rstore_core.dir/options.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/options.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/core/CMakeFiles/rstore_core.dir/partitioner.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/partitioner.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/rstore_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/placement.cc.o.d"
  "/root/repo/src/core/query_processor.cc" "src/core/CMakeFiles/rstore_core.dir/query_processor.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/query_processor.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/rstore_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/report.cc.o.d"
  "/root/repo/src/core/rstore.cc" "src/core/CMakeFiles/rstore_core.dir/rstore.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/rstore.cc.o.d"
  "/root/repo/src/core/shingle_partitioner.cc" "src/core/CMakeFiles/rstore_core.dir/shingle_partitioner.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/shingle_partitioner.cc.o.d"
  "/root/repo/src/core/store_catalog.cc" "src/core/CMakeFiles/rstore_core.dir/store_catalog.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/store_catalog.cc.o.d"
  "/root/repo/src/core/sub_chunk.cc" "src/core/CMakeFiles/rstore_core.dir/sub_chunk.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/sub_chunk.cc.o.d"
  "/root/repo/src/core/sub_chunk_builder.cc" "src/core/CMakeFiles/rstore_core.dir/sub_chunk_builder.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/sub_chunk_builder.cc.o.d"
  "/root/repo/src/core/traversal_partitioner.cc" "src/core/CMakeFiles/rstore_core.dir/traversal_partitioner.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/traversal_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rstore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rstore_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/rstore_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/version/CMakeFiles/rstore_version.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
