file(REMOVE_RECURSE
  "CMakeFiles/rstore_json.dir/json_parser.cc.o"
  "CMakeFiles/rstore_json.dir/json_parser.cc.o.d"
  "CMakeFiles/rstore_json.dir/json_value.cc.o"
  "CMakeFiles/rstore_json.dir/json_value.cc.o.d"
  "CMakeFiles/rstore_json.dir/json_writer.cc.o"
  "CMakeFiles/rstore_json.dir/json_writer.cc.o.d"
  "librstore_json.a"
  "librstore_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
