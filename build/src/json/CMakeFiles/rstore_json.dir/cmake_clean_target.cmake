file(REMOVE_RECURSE
  "librstore_json.a"
)
