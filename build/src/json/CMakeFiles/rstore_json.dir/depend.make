# Empty dependencies file for rstore_json.
# This may be replaced when dependencies are built.
