file(REMOVE_RECURSE
  "CMakeFiles/rstore_shell.dir/rstore_shell.cpp.o"
  "CMakeFiles/rstore_shell.dir/rstore_shell.cpp.o.d"
  "rstore_shell"
  "rstore_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
