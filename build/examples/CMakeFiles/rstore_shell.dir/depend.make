# Empty dependencies file for rstore_shell.
# This may be replaced when dependencies are built.
