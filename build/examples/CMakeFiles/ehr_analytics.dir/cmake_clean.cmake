file(REMOVE_RECURSE
  "CMakeFiles/ehr_analytics.dir/ehr_analytics.cpp.o"
  "CMakeFiles/ehr_analytics.dir/ehr_analytics.cpp.o.d"
  "ehr_analytics"
  "ehr_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehr_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
