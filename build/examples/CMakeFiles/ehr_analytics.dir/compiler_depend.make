# Empty compiler generated dependencies file for ehr_analytics.
# This may be replaced when dependencies are built.
