file(REMOVE_RECURSE
  "CMakeFiles/time_travel_audit.dir/time_travel_audit.cpp.o"
  "CMakeFiles/time_travel_audit.dir/time_travel_audit.cpp.o.d"
  "time_travel_audit"
  "time_travel_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_travel_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
