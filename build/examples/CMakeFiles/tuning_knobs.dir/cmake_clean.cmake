file(REMOVE_RECURSE
  "CMakeFiles/tuning_knobs.dir/tuning_knobs.cpp.o"
  "CMakeFiles/tuning_knobs.dir/tuning_knobs.cpp.o.d"
  "tuning_knobs"
  "tuning_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
