# Empty dependencies file for tuning_knobs.
# This may be replaced when dependencies are built.
