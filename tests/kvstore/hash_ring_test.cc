#include "kvstore/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

namespace rstore {
namespace {

TEST(HashRingTest, ValidatePassesForFreshRings) {
  EXPECT_TRUE(HashRing(1, 1, 0).Validate().ok());
  EXPECT_TRUE(HashRing(8, 64, 42).Validate().ok());
  EXPECT_TRUE(HashRing(16, 128, 7).Validate().ok());
}

TEST(HashRingTest, OwnerIsStable) {
  HashRing ring(8, 64, 42);
  for (int i = 0; i < 100; ++i) {
    std::string key = "key" + std::to_string(i);
    EXPECT_EQ(ring.Owner(Slice(key)), ring.Owner(Slice(key)));
  }
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing ring(1, 16, 1);
  for (int i = 0; i < 50; ++i) {
    std::string key = "k" + std::to_string(i);
    EXPECT_EQ(ring.Owner(Slice(key)), 0u);
  }
}

TEST(HashRingTest, LoadIsRoughlyBalanced) {
  HashRing ring(4, 128, 7);
  std::map<uint32_t, int> counts;
  const int kKeys = 40000;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "record/" + std::to_string(i);
    ++counts[ring.Owner(Slice(key))];
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, kKeys / 4 * 0.75) << "node " << node;
    EXPECT_LT(count, kKeys / 4 * 1.25) << "node " << node;
  }
}

TEST(HashRingTest, ReplicasAreDistinctAndLedByOwner) {
  HashRing ring(6, 64, 3);
  for (int i = 0; i < 200; ++i) {
    std::string key = "k" + std::to_string(i);
    auto replicas = ring.Replicas(Slice(key), 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], ring.Owner(Slice(key)));
    std::set<uint32_t> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(HashRingTest, ReplicaCountClampedToNodes) {
  HashRing ring(2, 32, 9);
  auto replicas = ring.Replicas(Slice("x"), 5);
  EXPECT_EQ(replicas.size(), 2u);
}

TEST(HashRingTest, ConsistencyUnderGrowth) {
  // Core consistent-hashing property: adding a node moves only ~1/(n+1)
  // of the keys.
  HashRing before(4, 128, 11);
  HashRing after(5, 128, 11);
  const int kKeys = 20000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "doc:" + std::to_string(i);
    if (before.Owner(Slice(key)) != after.Owner(Slice(key))) ++moved;
  }
  // Expected ~20% move to the new node; far below the ~80% a mod-N scheme
  // would reshuffle.
  EXPECT_LT(moved, kKeys * 0.30);
  EXPECT_GT(moved, kKeys * 0.10);
}

TEST(HashRingTest, DifferentSeedsGiveDifferentPlacements) {
  HashRing a(8, 64, 1), b(8, 64, 2);
  int same = 0;
  const int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "k" + std::to_string(i);
    if (a.Owner(Slice(key)) == b.Owner(Slice(key))) ++same;
  }
  // Agreement should be near chance (1/8), not near 1.
  EXPECT_LT(same, kKeys / 4);
}

}  // namespace
}  // namespace rstore
