// TSan-targeted stress over the fault-tolerance machinery: concurrent
// traffic through the retry/hedge paths while nodes flap and hint queues
// fill and drain. The fault injector's decisions are pure hashes, so the
// only shared mutable state is the tick counter, the hint queues, and the
// stats — exactly what this test hammers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/cluster.h"

namespace rstore {
namespace {

ClusterOptions FaultStressOptions() {
  ClusterOptions options;
  options.num_nodes = 4;
  options.replication_factor = 2;
  options.faults.default_profile.transient_error_rate = 0.1;
  options.faults.default_profile.slow_rate = 0.1;
  options.faults.default_profile.slow_multiplier = 5.0;
  options.latency.hedge_threshold_us = 2000;
  options.retry.max_attempts = 4;
  return options;
}

TEST(FaultConcurrencyTest, RetriesAndHedgesUnderConcurrentTraffic) {
  Cluster cluster(FaultStressOptions());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  constexpr int kSeeds = 64;
  std::vector<std::string> seed_keys;
  for (int i = 0; i < kSeeds; ++i) {
    seed_keys.push_back("seed" + std::to_string(i));
    ASSERT_TRUE(cluster.Put("t", seed_keys.back(), std::string(64, 'b')).ok());
  }

  // Reads may see IOError when retries exhaust on every replica or routing
  // races with the flapper (see cluster_concurrency_test.cc); any other
  // failure — wrong value, short batch, wrong status — counts as an error.
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {  // writers: distinct key ranges
      for (int i = 0; i < 300; ++i) {
        std::string key = "w" + std::to_string(t) + "/" + std::to_string(i);
        Status s = cluster.Put("t", key, std::string(48, 'x'));
        while (!s.ok() && s.IsIOError()) {
          s = cluster.Put("t", key, std::string(48, 'x'));
        }
        if (!s.ok()) errors.fetch_add(1);
      }
    });
    threads.emplace_back([&] {  // readers
      for (int i = 0; i < 300; ++i) {
        auto r = cluster.Get("t", seed_keys[static_cast<size_t>(i % kSeeds)]);
        if (r.ok()) {
          if (*r != std::string(64, 'b')) errors.fetch_add(1);
        } else if (!r.status().IsIOError()) {
          errors.fetch_add(1);
        }
        std::map<std::string, std::string> out;
        Status s = cluster.MultiGet(
            "t", {seed_keys[0], seed_keys[1], seed_keys[2]}, &out);
        if (s.ok()) {
          if (out.size() != 3) errors.fetch_add(1);
        } else if (!s.IsIOError()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {  // flapper: one node down at a time
    uint32_t node = 0;
    while (!stop.load()) {
      cluster.SetNodeAlive(node, false);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      cluster.SetNodeAlive(node, true);
      node = (node + 1) % cluster.num_nodes();
    }
  });
  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads.back().join();

  EXPECT_EQ(errors.load(), 0);
  // Final recovery replayed every staged hint (SetNodeAlive(node, true)
  // drains synchronously), so the ledger balances.
  KVStats stats = cluster.stats();
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_TRUE(cluster.IsNodeAlive(n));
    EXPECT_EQ(cluster.PendingHints(n), 0u);
  }
  EXPECT_EQ(stats.handoff_replays, stats.handoff_hints);
  EXPECT_GT(stats.retries, 0u);
}

TEST(FaultConcurrencyTest, HintReplayRacesWithWritesWithoutLosingTheLastWrite) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.replication_factor = 2;
  options.latency = ZeroLatencyModel();
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  constexpr int kWrites = 500;
  std::atomic<bool> stop{false};
  std::thread flapper([&] {
    uint32_t node = 0;
    while (!stop.load()) {
      cluster.SetNodeAlive(node, false);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      cluster.SetNodeAlive(node, true);
      node = (node + 1) % 2;
    }
  });
  std::atomic<int> errors{0};
  for (int i = 0; i < kWrites; ++i) {
    Status s = cluster.Put("t", "hot", "v" + std::to_string(i));
    while (!s.ok() && s.IsIOError()) {  // routing race: retry
      s = cluster.Put("t", "hot", "v" + std::to_string(i));
    }
    if (!s.ok()) errors.fetch_add(1);
  }
  stop.store(true);
  flapper.join();
  ASSERT_EQ(errors.load(), 0);

  // Quiesce: revive both nodes (replaying any staged hints) and issue one
  // final single-threaded write. With no outage and no pending hints it
  // lands directly on both replicas, so each must serve it afterwards — the
  // old coordinator lost exactly this write whenever a replica had flapped.
  for (uint32_t n = 0; n < 2; ++n) cluster.SetNodeAlive(n, true);
  ASSERT_EQ(cluster.PendingHints(0), 0u);
  ASSERT_EQ(cluster.PendingHints(1), 0u);
  ASSERT_TRUE(cluster.Put("t", "hot", "final").ok());
  for (uint32_t down = 0; down < 2; ++down) {
    cluster.SetNodeAlive(down, false);  // force the read onto the other node
    auto r = cluster.Get("t", "hot");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "final") << "replica " << (1 - down) << " lost the write";
    cluster.SetNodeAlive(down, true);
  }
}

}  // namespace
}  // namespace rstore
