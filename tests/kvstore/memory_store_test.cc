#include "kvstore/memory_store.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

TEST(MemoryStoreTest, PutGetRoundTrip) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  ASSERT_TRUE(store.Put("t", "k1", "v1").ok());
  auto r = store.Get("t", "k1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v1");
}

TEST(MemoryStoreTest, GetMissingKeyIsNotFound) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  EXPECT_TRUE(store.Get("t", "nope").status().IsNotFound());
}

TEST(MemoryStoreTest, MissingTableIsNotFound) {
  MemoryStore store;
  EXPECT_TRUE(store.Put("missing", "k", "v").IsNotFound());
  EXPECT_TRUE(store.Get("missing", "k").status().IsNotFound());
  EXPECT_TRUE(store.Delete("missing", "k").IsNotFound());
  EXPECT_TRUE(store.TableSize("missing").status().IsNotFound());
}

TEST(MemoryStoreTest, CreateTableIdempotent) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  ASSERT_TRUE(store.Put("t", "k", "v").ok());
  ASSERT_TRUE(store.CreateTable("t").ok());  // must not clear
  EXPECT_TRUE(store.Get("t", "k").ok());
}

TEST(MemoryStoreTest, OverwriteReplacesValue) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  ASSERT_TRUE(store.Put("t", "k", "old").ok());
  ASSERT_TRUE(store.Put("t", "k", "new").ok());
  EXPECT_EQ(*store.Get("t", "k"), "new");
  EXPECT_EQ(*store.TableSize("t"), 1u);
}

TEST(MemoryStoreTest, DeleteRemovesKey) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  ASSERT_TRUE(store.Put("t", "k", "v").ok());
  ASSERT_TRUE(store.Delete("t", "k").ok());
  EXPECT_TRUE(store.Get("t", "k").status().IsNotFound());
  // Deleting an absent key is OK (idempotent).
  EXPECT_TRUE(store.Delete("t", "k").ok());
}

TEST(MemoryStoreTest, MultiGetSkipsMissing) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  ASSERT_TRUE(store.Put("t", "a", "1").ok());
  ASSERT_TRUE(store.Put("t", "c", "3").ok());
  std::map<std::string, std::string> out;
  ASSERT_TRUE(store.MultiGet("t", {"a", "b", "c"}, &out).ok());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out["a"], "1");
  EXPECT_EQ(out["c"], "3");
  EXPECT_EQ(out.count("b"), 0u);
}

TEST(MemoryStoreTest, TablesAreIsolated) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t1").ok());
  ASSERT_TRUE(store.CreateTable("t2").ok());
  ASSERT_TRUE(store.Put("t1", "k", "v1").ok());
  ASSERT_TRUE(store.Put("t2", "k", "v2").ok());
  EXPECT_EQ(*store.Get("t1", "k"), "v1");
  EXPECT_EQ(*store.Get("t2", "k"), "v2");
}

TEST(MemoryStoreTest, ScanVisitsAllEntries) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        store.Put("t", "k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  int count = 0;
  ASSERT_TRUE(store
                  .Scan("t",
                        [&](Slice key, Slice value) {
                          ++count;
                          EXPECT_EQ(key.ToString().substr(0, 1), "k");
                          EXPECT_EQ(value.ToString().substr(0, 1), "v");
                        })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST(MemoryStoreTest, BinaryKeysAndValues) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  std::string key("\x00\x01\xff", 3);
  std::string value("\xde\xad\x00\xbe\xef", 5);
  ASSERT_TRUE(store.Put("t", key, value).ok());
  auto r = store.Get("t", key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, value);
}

TEST(MemoryStoreTest, StatsTracking) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  ASSERT_TRUE(store.Put("t", "key", "value").ok());  // 3 + 5 bytes written
  (void)store.Get("t", "key");                       // 5 bytes read
  std::map<std::string, std::string> out;
  (void)store.MultiGet("t", {"key", "nope"}, &out);
  KVStats s = store.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.multiget_batches, 1u);
  EXPECT_EQ(s.keys_requested, 3u);  // 1 get + 2 multiget keys
  EXPECT_EQ(s.bytes_written, 8u);
  EXPECT_EQ(s.bytes_read, 10u);
  store.ResetStats();
  EXPECT_EQ(store.stats().puts, 0u);
}

TEST(MemoryStoreTest, TotalBytes) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  EXPECT_EQ(store.TotalBytes(), 0u);
  ASSERT_TRUE(store.Put("t", "ab", "cdef").ok());
  EXPECT_EQ(store.TotalBytes(), 6u);
}

// Regression: Scan used to hold mu_ while invoking the callback, so any
// callback that called back into the store self-deadlocked (the debug
// lock-rank registry aborts on the re-entrant acquire). Scan now iterates a
// snapshot with the lock released.
TEST(MemoryStoreTest, ScanCallbackMayReenterStore) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        store.Put("t", "k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  int checked = 0;
  ASSERT_TRUE(store
                  .Scan("t",
                        [&](Slice key, Slice value) {
                          auto r = store.Get("t", key.ToString());
                          ASSERT_TRUE(r.ok());
                          EXPECT_EQ(*r, value.ToString());
                          // Mutating mid-scan must not deadlock either; the
                          // snapshot keeps this iteration stable.
                          ASSERT_TRUE(
                              store.Put("t", "extra/" + key.ToString(), "x")
                                  .ok());
                          ++checked;
                        })
                  .ok());
  EXPECT_EQ(checked, 10);
  EXPECT_EQ(*store.TableSize("t"), 20u);
}

// WriteBatch is a group commit under one lock acquisition, but its visible
// semantics — end state, put/byte counters — must equal a loop of Puts,
// because ingest stats are asserted identical across batched and serial
// write paths.
TEST(MemoryStoreTest, WriteBatchMatchesIndividualPuts) {
  std::vector<std::pair<std::string, std::string>> entries = {
      {"a", "1"}, {"b", "22"}, {"c", "333"}};

  MemoryStore batched;
  ASSERT_TRUE(batched.CreateTable("t").ok());
  ASSERT_TRUE(batched.WriteBatch("t", entries).ok());

  MemoryStore serial;
  ASSERT_TRUE(serial.CreateTable("t").ok());
  for (const auto& [key, value] : entries) {
    ASSERT_TRUE(serial.Put("t", key, value).ok());
  }

  EXPECT_EQ(batched.stats().puts, serial.stats().puts);
  EXPECT_EQ(batched.stats().bytes_written, serial.stats().bytes_written);
  EXPECT_EQ(*batched.TableSize("t"), 3u);
  for (const auto& [key, value] : entries) {
    auto got = batched.Get("t", key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, value);
  }
  // Later entries win on duplicate keys, like sequential Puts.
  ASSERT_TRUE(batched.WriteBatch("t", {{"a", "x"}, {"a", "y"}}).ok());
  EXPECT_EQ(*batched.Get("t", "a"), "y");
  // Unknown table fails up front.
  EXPECT_TRUE(batched.WriteBatch("missing", entries).IsNotFound());
}

}  // namespace
}  // namespace rstore
