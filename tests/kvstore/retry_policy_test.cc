// RetryPolicy backoff arithmetic: exponential growth, the cap, and the
// deterministic jitter mapping. All values are simulated micros — the same
// token must always produce the same backoff, or fault timelines would not
// replay.

#include "kvstore/retry_policy.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

TEST(RetryPolicyTest, ExponentialCurveWithoutJitter) {
  RetryPolicy policy;
  policy.base_backoff_us = 500;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 50'000;
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(policy.BackoffMicros(1, 0.5), 500u);
  EXPECT_EQ(policy.BackoffMicros(2, 0.5), 1000u);
  EXPECT_EQ(policy.BackoffMicros(3, 0.5), 2000u);
  EXPECT_EQ(policy.BackoffMicros(4, 0.5), 4000u);
}

TEST(RetryPolicyTest, BackoffIsCappedAtMax) {
  RetryPolicy policy;
  policy.base_backoff_us = 500;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 1500;
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(policy.BackoffMicros(2, 0.5), 1000u);
  EXPECT_EQ(policy.BackoffMicros(3, 0.5), 1500u);
  EXPECT_EQ(policy.BackoffMicros(10, 0.5), 1500u);
}

TEST(RetryPolicyTest, JitterStaysWithinTheConfiguredBand) {
  RetryPolicy policy;
  policy.base_backoff_us = 1000;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.1;
  // token 0 maps to -jitter, token -> 1 maps towards +jitter, 0.5 is exact.
  EXPECT_EQ(policy.BackoffMicros(1, 0.0), 900u);
  EXPECT_EQ(policy.BackoffMicros(1, 0.5), 1000u);
  EXPECT_EQ(policy.BackoffMicros(1, 0.999999), 1100u);
  for (double token = 0.0; token < 1.0; token += 0.05) {
    const uint64_t backoff = policy.BackoffMicros(1, token);
    EXPECT_GE(backoff, 900u);
    EXPECT_LE(backoff, 1100u);
  }
}

TEST(RetryPolicyTest, SameTokenSameBackoff) {
  RetryPolicy policy;
  for (uint32_t retry = 1; retry < 6; ++retry) {
    EXPECT_EQ(policy.BackoffMicros(retry, 0.37),
              policy.BackoffMicros(retry, 0.37));
  }
}

}  // namespace
}  // namespace rstore
