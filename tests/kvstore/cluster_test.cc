#include "kvstore/cluster.h"

#include <gtest/gtest.h>

#include "kvstore/latency_model.h"

namespace rstore {
namespace {

ClusterOptions FastOptions(uint32_t nodes, uint32_t rf = 1) {
  ClusterOptions o;
  o.num_nodes = nodes;
  o.replication_factor = rf;
  o.latency = ZeroLatencyModel();
  return o;
}

TEST(LatencyModelTest, NodeServiceCost) {
  LatencyModel m;
  m.request_overhead_us = 600;
  m.per_byte_ns = 50.0;
  m.node_concurrency = 1;
  EXPECT_EQ(m.NodeServiceMicros(0, 0), 0u);
  EXPECT_EQ(m.NodeServiceMicros(1, 0), 600u);
  // 1 request + 1 MB: 600us + 1e6 * 50ns = 600 + 50000 us.
  EXPECT_EQ(m.NodeServiceMicros(1, 1000000), 50600u);
  // Concurrency 4 divides elapsed time.
  m.node_concurrency = 4;
  EXPECT_EQ(m.NodeServiceMicros(4, 0), 600u);
}

TEST(ClusterTest, PutGetAcrossNodes) {
  Cluster cluster(FastOptions(4));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 100; ++i) {
    std::string k = "k" + std::to_string(i);
    ASSERT_TRUE(cluster.Put("t", k, "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 100; ++i) {
    std::string k = "k" + std::to_string(i);
    auto r = cluster.Get("t", k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, "v" + std::to_string(i));
  }
}

TEST(ClusterTest, DataIsSpreadAcrossNodes) {
  Cluster cluster(FastOptions(4));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        cluster.Put("t", "key" + std::to_string(i), std::string(100, 'x'))
            .ok());
  }
  int nodes_with_data = 0;
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.NodeBytes(n) > 0) ++nodes_with_data;
  }
  EXPECT_EQ(nodes_with_data, 4);
}

TEST(ClusterTest, MultiGetCollectsFromAllNodes) {
  Cluster cluster(FastOptions(8));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    std::string k = "k" + std::to_string(i);
    keys.push_back(k);
    ASSERT_TRUE(cluster.Put("t", k, "value-" + k).ok());
  }
  keys.push_back("missing-key");
  std::map<std::string, std::string> out;
  ASSERT_TRUE(cluster.MultiGet("t", keys, &out).ok());
  EXPECT_EQ(out.size(), 200u);
  EXPECT_EQ(out["k42"], "value-k42");
}

TEST(ClusterTest, DeleteWorks) {
  Cluster cluster(FastOptions(3));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "k", "v").ok());
  ASSERT_TRUE(cluster.Delete("t", "k").ok());
  EXPECT_TRUE(cluster.Get("t", "k").status().IsNotFound());
}

TEST(ClusterTest, ScanVisitsEachKeyOnce) {
  Cluster cluster(FastOptions(4, /*rf=*/3));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(cluster.Put("t", "k" + std::to_string(i), "v").ok());
  }
  std::map<std::string, int> seen;
  ASSERT_TRUE(
      cluster.Scan("t", [&](Slice key, Slice) { ++seen[key.ToString()]; })
          .ok());
  EXPECT_EQ(seen.size(), 300u);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << key;
  }
  EXPECT_EQ(*cluster.TableSize("t"), 300u);
}

TEST(ClusterTest, ReplicationSurvivesNodeFailure) {
  Cluster cluster(FastOptions(4, /*rf=*/3));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.Put("t", "k" + std::to_string(i), "v").ok());
  }
  // Kill one node: every key still readable via replicas.
  cluster.SetNodeAlive(0, false);
  EXPECT_FALSE(cluster.IsNodeAlive(0));
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster.Get("t", "k" + std::to_string(i)).ok()) << i;
  }
  // Kill a second node: rf=3 still covers every key.
  cluster.SetNodeAlive(1, false);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster.Get("t", "k" + std::to_string(i)).ok()) << i;
  }
}

TEST(ClusterTest, UnreplicatedDataLostOnFailure) {
  Cluster cluster(FastOptions(4, /*rf=*/1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.Put("t", "k" + std::to_string(i), "v").ok());
  }
  cluster.SetNodeAlive(2, false);
  int io_errors = 0;
  for (int i = 0; i < 200; ++i) {
    auto r = cluster.Get("t", "k" + std::to_string(i));
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsIOError());
      ++io_errors;
    }
  }
  // Roughly a quarter of the keys lived only on node 2.
  EXPECT_GT(io_errors, 20);
  EXPECT_LT(io_errors, 100);
}

TEST(ClusterTest, FailedNodeRecovers) {
  Cluster cluster(FastOptions(2, /*rf=*/2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "k", "v1").ok());
  cluster.SetNodeAlive(0, false);
  // Write while node 0 is down: node 1 gets it directly, node 0 gets a
  // hinted-handoff entry replayed on recovery — so the recovered node never
  // serves the stale v1 (see ClusterFaultTest for the full handoff suite).
  ASSERT_TRUE(cluster.Put("t", "k", "v2").ok());
  cluster.SetNodeAlive(0, true);
  auto r = cluster.Get("t", "k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v2");
}

TEST(ClusterTest, SimulatedLatencyCharged) {
  ClusterOptions o;
  o.num_nodes = 2;
  o.latency.request_overhead_us = 1000;
  o.latency.coordinator_overhead_us = 500;
  o.latency.per_byte_ns = 0;
  o.latency.node_concurrency = 1;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "k", "v").ok());
  uint64_t after_put = cluster.stats().simulated_micros;
  EXPECT_EQ(after_put, 1500u);
  (void)cluster.Get("t", "k");
  EXPECT_EQ(cluster.stats().simulated_micros, 3000u);
}

TEST(ClusterTest, MultiGetLatencyIsMaxOverNodesNotSum) {
  // 100 keys spread over 4 nodes with 1ms per request: serial would be
  // 100ms; parallel-across-nodes should be roughly max-per-node (~25-40
  // requests) * 1ms.
  ClusterOptions o;
  o.num_nodes = 4;
  o.latency.request_overhead_us = 1000;
  o.latency.coordinator_overhead_us = 0;
  o.latency.per_byte_ns = 0;
  o.latency.node_concurrency = 1;
  Cluster cluster(o);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    std::string k = "k" + std::to_string(i);
    keys.push_back(k);
    ASSERT_TRUE(cluster.Put("t", k, "v").ok());
  }
  cluster.ResetStats();
  std::map<std::string, std::string> out;
  ASSERT_TRUE(cluster.MultiGet("t", keys, &out).ok());
  uint64_t us = cluster.stats().simulated_micros;
  EXPECT_LT(us, 60000u);   // far below the 100ms serial bound
  EXPECT_GE(us, 25000u);   // at least the perfectly-balanced share
}

TEST(ClusterTest, StatsAccumulate) {
  Cluster cluster(FastOptions(2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "key", "12345").ok());
  (void)cluster.Get("t", "key");
  std::map<std::string, std::string> out;
  (void)cluster.MultiGet("t", {"key"}, &out);
  KVStats s = cluster.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.multiget_batches, 1u);
  EXPECT_EQ(s.keys_requested, 2u);
  EXPECT_EQ(s.bytes_read, 10u);
  EXPECT_EQ(s.bytes_written, 8u);
}

TEST(ClusterTest, AllReplicasDownIsIOError) {
  Cluster cluster(FastOptions(1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "k", "v").ok());
  cluster.SetNodeAlive(0, false);
  EXPECT_TRUE(cluster.Get("t", "k").status().IsIOError());
  EXPECT_TRUE(cluster.Put("t", "k", "v").IsIOError());
  std::map<std::string, std::string> out;
  EXPECT_TRUE(cluster.MultiGet("t", {"k"}, &out).IsIOError());
}

class ClusterSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClusterSizeTest, AllKeysReachableAtAnyClusterSize) {
  Cluster cluster(FastOptions(GetParam()));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cluster.Put("t", "k" + std::to_string(i),
                            std::to_string(i * 7))
                    .ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto r = cluster.Get("t", "k" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, std::to_string(i * 7));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizeTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace rstore
