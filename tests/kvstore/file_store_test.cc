#include "kvstore/file_store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/rstore.h"
#include "core_test_util.h"

namespace rstore {
namespace {

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rstore_fs_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(FileStoreTest, BasicOperations) {
  auto store = FileStore::Open(dir_.string());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->CreateTable("t").ok());
  ASSERT_TRUE((*store)->Put("t", "k1", "v1").ok());
  ASSERT_TRUE((*store)->Put("t", "k2", "v2").ok());
  EXPECT_EQ(*(*store)->Get("t", "k1"), "v1");
  EXPECT_TRUE((*store)->Get("t", "missing").status().IsNotFound());
  ASSERT_TRUE((*store)->Delete("t", "k1").ok());
  EXPECT_TRUE((*store)->Get("t", "k1").status().IsNotFound());
  EXPECT_EQ(*(*store)->TableSize("t"), 1u);
}

TEST_F(FileStoreTest, DataSurvivesReopen) {
  {
    auto store = FileStore::Open(dir_.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->CreateTable("t").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)
                      ->Put("t", "key" + std::to_string(i),
                            "value" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE((*store)->Delete("t", "key50").ok());
    ASSERT_TRUE((*store)->Put("t", "key51", "overwritten").ok());
  }
  auto reopened = FileStore::Open(dir_.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->TableSize("t"), 99u);
  EXPECT_EQ(*(*reopened)->Get("t", "key0"), "value0");
  EXPECT_EQ(*(*reopened)->Get("t", "key51"), "overwritten");
  EXPECT_TRUE((*reopened)->Get("t", "key50").status().IsNotFound());
}

TEST_F(FileStoreTest, BinaryTableNamesAndKeys) {
  std::string table("bin\x01/..\\table", 13);
  std::string key("\x00\xff key", 6);
  std::string value("\xde\xad\xbe\xef", 4);
  {
    auto store = FileStore::Open(dir_.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->CreateTable(table).ok());
    ASSERT_TRUE((*store)->Put(table, key, value).ok());
  }
  auto reopened = FileStore::Open(dir_.string());
  ASSERT_TRUE(reopened.ok());
  auto got = (*reopened)->Get(table, key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
}

TEST_F(FileStoreTest, TruncatedTailTolerated) {
  std::string log_path;
  {
    auto store = FileStore::Open(dir_.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->CreateTable("t").ok());
    ASSERT_TRUE((*store)->Put("t", "a", "1").ok());
    ASSERT_TRUE((*store)->Put("t", "b", "2").ok());
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      log_path = entry.path().string();
    }
  }
  // Simulate a crash mid-append: chop bytes off the tail.
  auto size = std::filesystem::file_size(log_path);
  std::filesystem::resize_file(log_path, size - 3);
  auto reopened = FileStore::Open(dir_.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // First record intact, second (truncated) dropped.
  EXPECT_EQ(*(*reopened)->Get("t", "a"), "1");
  EXPECT_TRUE((*reopened)->Get("t", "b").status().IsNotFound());
  // The store remains writable after tail truncation.
  ASSERT_TRUE((*reopened)->Put("t", "c", "3").ok());
  auto again = FileStore::Open(dir_.string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*(*again)->Get("t", "c"), "3");
}

TEST_F(FileStoreTest, CompactShrinksLog) {
  auto store = FileStore::Open(dir_.string());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->CreateTable("t").ok());
  // Overwrite the same key many times: log accumulates dead versions.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        (*store)->Put("t", "hot", "value" + std::to_string(i)).ok());
  }
  auto saved = (*store)->Compact("t");
  ASSERT_TRUE(saved.ok());
  EXPECT_GT(*saved, 0u);
  EXPECT_EQ(*(*store)->Get("t", "hot"), "value199");
  // Still consistent after reopen.
  store->reset();
  auto reopened = FileStore::Open(dir_.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("t", "hot"), "value199");
}

TEST_F(FileStoreTest, RStoreRunsOnFileBackend) {
  // End-to-end: the full RStore stack over the durable backend, including
  // recovery of both layers after "restart".
  testing::ExampleData data = testing::MakeChain(15, 8, 2);
  Options options;
  options.chunk_capacity_bytes = 600;
  {
    auto backend = FileStore::Open(dir_.string());
    ASSERT_TRUE(backend.ok());
    auto store = RStore::Open(backend->get(), options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto backend = FileStore::Open(dir_.string());
  ASSERT_TRUE(backend.ok());
  auto store = RStore::Reopen(backend->get(), options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto got = (*store)->GetVersion(14);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), data.dataset.MaterializeVersion(14).size());
  EXPECT_TRUE((*store)->VerifyIntegrity().ok());
}

// Regression: like MemoryStore, FileStore::Scan held mu_ across the user
// callback, deadlocking any callback that re-entered the store. Scan now
// snapshots the table first.
TEST_F(FileStoreTest, ScanCallbackMayReenterStore) {
  auto store = FileStore::Open(dir_.string());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->CreateTable("t").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*store)
                    ->Put("t", "k" + std::to_string(i),
                          "v" + std::to_string(i))
                    .ok());
  }
  int checked = 0;
  ASSERT_TRUE((*store)
                  ->Scan("t",
                         [&](Slice key, Slice value) {
                           auto r = (*store)->Get("t", key.ToString());
                           ASSERT_TRUE(r.ok());
                           EXPECT_EQ(*r, value.ToString());
                           ++checked;
                         })
                  .ok());
  EXPECT_EQ(checked, 8);
}

// Group commit: WriteBatch appends every record and fsyncs the log once at
// the end, but what lands on disk must be indistinguishable from a loop of
// Puts — including across a close-and-reopen, which replays the log.
TEST_F(FileStoreTest, WriteBatchDurableAcrossReopen) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 16; ++i) {
    entries.emplace_back("key" + std::to_string(i),
                         "value" + std::to_string(i));
  }
  {
    auto store = FileStore::Open(dir_.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->CreateTable("t").ok());
    ASSERT_TRUE((*store)->WriteBatch("t", entries).ok());
    EXPECT_EQ((*store)->stats().puts, entries.size());
    // Later entries win on duplicate keys, like sequential Puts.
    ASSERT_TRUE((*store)->WriteBatch("t", {{"key0", "a"}, {"key0", "b"}})
                    .ok());
    EXPECT_TRUE(
        (*store)->WriteBatch("missing", entries).IsNotFound());
  }
  auto reopened = FileStore::Open(dir_.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->TableSize("t"), entries.size());
  for (int i = 1; i < 16; ++i) {
    auto got = (*reopened)->Get("t", "key" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "value" + std::to_string(i));
  }
  EXPECT_EQ(*(*reopened)->Get("t", "key0"), "b");
}

}  // namespace
}  // namespace rstore
