// Thread-safety smoke tests: MemoryStore and Cluster claim mutex-protected
// concurrent access; hammer them from several threads and check nothing is
// lost or corrupted.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kvstore/cluster.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

TEST(ConcurrencyTest, MemoryStoreParallelPutsAllLand) {
  MemoryStore store;
  ASSERT_TRUE(store.CreateTable("t").ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "k" + std::to_string(t) + "/" + std::to_string(i);
        if (!store.Put("t", key, key + "-value").ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*store.TableSize("t"),
            static_cast<uint64_t>(kThreads * kPerThread));
  // Spot-check values.
  for (int t = 0; t < kThreads; ++t) {
    std::string key = "k" + std::to_string(t) + "/499";
    auto r = store.Get("t", key);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, key + "-value");
  }
}

TEST(ConcurrencyTest, ClusterMixedReadersAndWriters) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.replication_factor = 2;
  options.latency = ZeroLatencyModel();
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  // Seed.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        cluster.Put("t", "seed" + std::to_string(i), "base").ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {  // writers
      for (int i = 0; i < 300; ++i) {
        std::string key = "w" + std::to_string(t) + "/" + std::to_string(i);
        if (!cluster.Put("t", key, std::string(64, 'x')).ok()) ++errors;
      }
    });
    threads.emplace_back([&] {  // readers
      for (int i = 0; i < 300; ++i) {
        auto r = cluster.Get("t", "seed" + std::to_string(i % 200));
        if (!r.ok() || *r != "base") ++errors;
        std::map<std::string, std::string> out;
        if (!cluster
                 .MultiGet("t", {"seed1", "seed2", "seed3"}, &out)
                 .ok() ||
            out.size() != 3) {
          ++errors;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  KVStats stats = cluster.stats();
  EXPECT_EQ(stats.puts, 200u + 4 * 300u);
  EXPECT_EQ(stats.multiget_batches, 4 * 300u);
}

}  // namespace
}  // namespace rstore
