// Coordinator fault tolerance: deterministic retries, hedged reads,
// simulated-deadline timeouts, and hinted handoff. Everything here replays —
// the same ClusterOptions produce the same counters and the same simulated
// micros run after run, which is what makes the chaos CI sweep meaningful.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "kvstore/cluster.h"
#include "kvstore/latency_model.h"

namespace rstore {
namespace {

ClusterOptions FastFaultOptions(uint32_t nodes, uint32_t rf) {
  ClusterOptions o;
  o.num_nodes = nodes;
  o.replication_factor = rf;
  o.latency = ZeroLatencyModel();
  return o;
}

// ---------------------------------------------------------------------------
// Retries.

KVStats RunTransientErrorWorkload(const ClusterOptions& options) {
  Cluster cluster(options);
  EXPECT_TRUE(cluster.CreateTable("t").ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back("k" + std::to_string(i));
    EXPECT_TRUE(cluster.Put("t", keys.back(), "value" + std::to_string(i)).ok());
  }
  std::map<std::string, std::string> out;
  EXPECT_TRUE(cluster.MultiGet("t", keys, &out).ok());
  EXPECT_EQ(out.size(), keys.size());
  for (int i = 0; i < 50; ++i) {
    auto r = cluster.Get("t", keys[static_cast<size_t>(i)]);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, "value" + std::to_string(i));
  }
  return cluster.stats();
}

TEST(ClusterFaultTest, TransientErrorsAreRetriedDeterministically) {
  ClusterOptions options = FastFaultOptions(2, 2);
  options.faults.default_profile.transient_error_rate = 0.3;
  options.retry.max_attempts = 5;

  const KVStats a = RunTransientErrorWorkload(options);
  EXPECT_GT(a.retries, 0u);
  // Backoff between attempts is charged to the simulated clock even under a
  // zero-cost latency model.
  EXPECT_GT(a.simulated_micros, 0u);

  // Same schedule, same timeline: every counter replays exactly.
  const KVStats b = RunTransientErrorWorkload(options);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.simulated_micros, b.simulated_micros);

  // A different seed is a different timeline.
  options.faults.seed ^= 0x5EEDull;
  const KVStats c = RunTransientErrorWorkload(options);
  EXPECT_TRUE(a.retries != c.retries ||
              a.simulated_micros != c.simulated_micros);
}

TEST(ClusterFaultTest, RetryBackoffReconcilesWithSimulatedClock) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.replication_factor = 2;
  options.faults.per_node[0].transient_error_rate = 1.0;  // node 0 always errs
  options.retry.max_attempts = 2;
  options.retry.base_backoff_us = 500;
  options.retry.jitter_fraction = 0.0;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  const std::string value(32, 'x');
  for (int i = 0; i < 10; ++i) {
    // Writes to node 0 exhaust their attempts and fall back to a hint, which
    // replays at the next operation (node 0 is up, just flaky).
    ASSERT_TRUE(cluster.Put("t", "k" + std::to_string(i), value).ok());
  }

  const LatencyModel& m = options.latency;
  const uint64_t service_us = m.NodeServiceMicros(1, value.size());
  // A key whose primary replica is node 0 exhausts two attempts (each costs
  // the 600 us round trip, with a flat 500 us backoff between them), then
  // fails over; one whose primary is node 1 is served directly.
  const uint64_t exhaust_us = m.request_overhead_us + 500 +
                              m.request_overhead_us;
  int with_failover = 0, direct = 0;
  for (int i = 0; i < 10; ++i) {
    const KVStats before = cluster.stats();
    auto r = cluster.Get("t", "k" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, value);
    const KVStats after = cluster.stats();
    const uint64_t charged = after.simulated_micros - before.simulated_micros;
    if (after.retries > before.retries) {
      ++with_failover;
      EXPECT_EQ(after.retries - before.retries, 1u);
      EXPECT_EQ(charged, m.coordinator_overhead_us + exhaust_us + service_us);
    } else {
      ++direct;
      EXPECT_EQ(charged, m.coordinator_overhead_us + service_us);
    }
  }
  // The ring spreads keys over both nodes, so both paths are exercised.
  EXPECT_GT(with_failover, 0);
  EXPECT_GT(direct, 0);
}

// ---------------------------------------------------------------------------
// Hedged reads.

TEST(ClusterFaultTest, HedgedReadsWinAgainstASlowReplica) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.replication_factor = 2;
  options.faults.per_node[0].slow_rate = 1.0;
  options.faults.per_node[0].slow_multiplier = 50.0;
  options.latency.hedge_threshold_us = 5000;
  Cluster hedged(options);
  ClusterOptions no_hedge = options;
  no_hedge.latency.hedge_threshold_us = 0;
  Cluster unhedged(no_hedge);

  ASSERT_TRUE(hedged.CreateTable("t").ok());
  ASSERT_TRUE(unhedged.CreateTable("t").ok());
  std::vector<std::string> keys;
  const std::string value(64, 'v');
  for (int i = 0; i < 24; ++i) {
    keys.push_back("key" + std::to_string(i));
    ASSERT_TRUE(hedged.Put("t", keys.back(), value).ok());
    ASSERT_TRUE(unhedged.Put("t", keys.back(), value).ok());
  }
  hedged.ResetStats();
  unhedged.ResetStats();

  std::map<std::string, std::string> out;
  ASSERT_TRUE(hedged.MultiGet("t", keys, &out).ok());
  EXPECT_EQ(out.size(), keys.size());
  std::map<std::string, std::string> out2;
  ASSERT_TRUE(unhedged.MultiGet("t", keys, &out2).ok());
  EXPECT_EQ(out, out2);  // hedging never changes results, only latency

  const KVStats h = hedged.stats();
  EXPECT_GT(h.hedges, 0u);
  EXPECT_GT(h.hedge_wins, 0u);
  EXPECT_EQ(unhedged.stats().hedges, 0u);
  // The winning hedge bounds the batch by the healthy replica's service
  // time, so the hedged batch is strictly cheaper.
  EXPECT_LT(h.simulated_micros, unhedged.stats().simulated_micros);
}

// ---------------------------------------------------------------------------
// Timeouts.

TEST(ClusterFaultTest, TimedOutRequestsFailOverToTheNextReplica) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.replication_factor = 2;
  options.faults.per_node[0].slow_rate = 1.0;
  options.faults.per_node[0].slow_multiplier = 100.0;
  options.retry.request_timeout_us = 20'000;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 24; ++i) {
    keys.push_back("key" + std::to_string(i));
    ASSERT_TRUE(cluster.Put("t", keys.back(), std::string(64, 'v')).ok());
  }
  std::map<std::string, std::string> out;
  ASSERT_TRUE(cluster.MultiGet("t", keys, &out).ok());
  // Every key is served despite the slow replica: the coordinator abandons
  // node 0's share at the deadline and retries it on node 1.
  EXPECT_EQ(out.size(), keys.size());
  const KVStats stats = cluster.stats();
  EXPECT_GT(stats.timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Hinted handoff.

// Regression: before hinted handoff, a write issued while a replica was down
// was silently lost on that replica — after recovery it could serve the
// stale value. The hint queue heals the replica, so the recovered node must
// serve the newest write.
TEST(ClusterFaultTest, HintedHandoffHealsSilentWriteLoss) {
  Cluster cluster(FastFaultOptions(2, 2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "k", "v1").ok());

  cluster.SetNodeAlive(0, false);
  ASSERT_TRUE(cluster.Put("t", "k", "v2").ok());
  EXPECT_EQ(cluster.PendingHints(0), 1u);

  cluster.SetNodeAlive(0, true);  // replays the hint synchronously
  EXPECT_EQ(cluster.PendingHints(0), 0u);

  cluster.SetNodeAlive(1, false);  // force reads onto the recovered node
  auto r = cluster.Get("t", "k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v2");

  const KVStats stats = cluster.stats();
  EXPECT_EQ(stats.handoff_hints, 1u);
  EXPECT_EQ(stats.handoff_replays, 1u);
}

TEST(ClusterFaultTest, DeleteHintsReplayOnRecovery) {
  Cluster cluster(FastFaultOptions(2, 2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "k", "v1").ok());

  cluster.SetNodeAlive(0, false);
  ASSERT_TRUE(cluster.Delete("t", "k").ok());
  EXPECT_EQ(cluster.PendingHints(0), 1u);

  cluster.SetNodeAlive(0, true);
  cluster.SetNodeAlive(1, false);
  EXPECT_TRUE(cluster.Get("t", "k").status().IsNotFound());
}

TEST(ClusterFaultTest, HintsAreDroppedWhenTheWholeWriteFails) {
  Cluster cluster(FastFaultOptions(1, 1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  cluster.SetNodeAlive(0, false);
  Status s = cluster.Put("t", "k", "v");
  EXPECT_TRUE(s.IsIOError());
  // A hint is a promise about a write that succeeded somewhere; a write that
  // succeeded nowhere must not resurrect later.
  EXPECT_EQ(cluster.PendingHints(0), 0u);
  cluster.SetNodeAlive(0, true);
  EXPECT_TRUE(cluster.Get("t", "k").status().IsNotFound());
}

TEST(ClusterFaultTest, CrashWindowIsBackfilledAfterItCloses) {
  ClusterOptions options = FastFaultOptions(2, 2);
  options.faults.per_node[0].crash_windows = {{2, 4}};  // ticks 2 and 3
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  ASSERT_TRUE(cluster.Put("t", "k", "v1").ok());  // tick 0
  ASSERT_TRUE(cluster.Put("t", "k", "v2").ok());  // tick 1
  ASSERT_TRUE(cluster.Put("t", "k", "v3").ok());  // tick 2: node 0 crashed
  EXPECT_EQ(cluster.PendingHints(0), 1u);

  auto r = cluster.Get("t", "k");  // tick 3: still crashed, replica serves
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v3");
  EXPECT_EQ(cluster.PendingHints(0), 1u);

  r = cluster.Get("t", "k");  // tick 4: window over, hint replays first
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v3");
  EXPECT_EQ(cluster.PendingHints(0), 0u);

  cluster.SetNodeAlive(1, false);
  r = cluster.Get("t", "k");  // served by the backfilled node 0
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v3");
  EXPECT_EQ(cluster.stats().handoff_replays, 1u);
}

// ---------------------------------------------------------------------------
// Partial reads and scans over dead nodes.

TEST(ClusterFaultTest, MultiGetPartialReportsUnavailableKeys) {
  Cluster cluster(FastFaultOptions(4, 1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back("k" + std::to_string(i));
    ASSERT_TRUE(cluster.Put("t", keys.back(), "value" + std::to_string(i)).ok());
  }
  cluster.SetNodeAlive(2, false);

  // Strict MultiGet fails the whole batch.
  std::map<std::string, std::string> strict_out;
  EXPECT_TRUE(cluster.MultiGet("t", keys, &strict_out).IsIOError());

  // Partial mode serves what it can and reports the rest, key by key.
  std::map<std::string, std::string> out;
  std::vector<KeyReadFailure> failures;
  ASSERT_TRUE(cluster.MultiGetPartial("t", keys, &out, &failures,
                                      /*trace=*/nullptr).ok());
  EXPECT_FALSE(out.empty());
  EXPECT_FALSE(failures.empty());
  EXPECT_EQ(out.size() + failures.size(), keys.size());
  std::set<std::string> failed_keys;
  for (const KeyReadFailure& f : failures) {
    EXPECT_TRUE(f.status.IsIOError()) << f.status.ToString();
    EXPECT_EQ(out.count(f.key), 0u);
    failed_keys.insert(f.key);
  }
  EXPECT_EQ(failed_keys.size(), failures.size());
  for (const auto& [key, value] : out) {
    EXPECT_EQ(value, "value" + key.substr(1));
  }

  // The reported keys are exactly the dead node's: all of them serve again
  // once it returns.
  cluster.SetNodeAlive(2, true);
  for (const std::string& key : failed_keys) {
    auto r = cluster.Get("t", key);
    ASSERT_TRUE(r.ok()) << key;
    EXPECT_EQ(*r, "value" + key.substr(1));
  }
}

TEST(ClusterFaultTest, ScanSkipsKeysWithNoServingReplica) {
  Cluster cluster(FastFaultOptions(4, 1));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back("k" + std::to_string(i));
    ASSERT_TRUE(cluster.Put("t", keys.back(), "v").ok());
  }
  cluster.SetNodeAlive(2, false);
  std::map<std::string, std::string> out;
  std::vector<KeyReadFailure> failures;
  ASSERT_TRUE(cluster.MultiGetPartial("t", keys, &out, &failures,
                                      /*trace=*/nullptr).ok());
  // An unreplicated scan over a dead node degrades exactly like a partial
  // read: it reports the keys the cluster can currently see, once each.
  std::set<std::string> scanned;
  ASSERT_TRUE(cluster.Scan("t", [&](Slice key, Slice) {
    EXPECT_TRUE(scanned.insert(key.ToString()).second);
  }).ok());
  EXPECT_EQ(scanned.size(), out.size());
  EXPECT_LT(scanned.size(), keys.size());
  for (const auto& [key, value] : out) EXPECT_EQ(scanned.count(key), 1u);
}

TEST(ClusterFaultTest, ReplicatedScanStillSeesEveryKeyOnce) {
  Cluster cluster(FastFaultOptions(4, 2));
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster.Put("t", "k" + std::to_string(i), "v").ok());
  }
  cluster.SetNodeAlive(0, false);
  std::set<std::string> scanned;
  ASSERT_TRUE(cluster.Scan("t", [&](Slice key, Slice) {
    EXPECT_TRUE(scanned.insert(key.ToString()).second);
  }).ok());
  EXPECT_EQ(scanned.size(), 100u);
}

}  // namespace
}  // namespace rstore
