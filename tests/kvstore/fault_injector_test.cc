// The FaultInjector's contract is determinism: every decision is a pure
// function of (seed, node, tick, attempt, salt), so a schedule replays the
// identical fault timeline in every process and on every thread. The chaos
// equivalence harness (tests/core/chaos_test.cc) stands on these properties.

#include "kvstore/fault_injector.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

TEST(FaultInjectorTest, DefaultScheduleIsInert) {
  FaultInjector injector(FaultInjectorOptions(), 4);
  EXPECT_FALSE(injector.enabled());
  for (uint32_t node = 0; node < 4; ++node) {
    for (uint64_t tick = 0; tick < 16; ++tick) {
      EXPECT_FALSE(injector.Crashed(node, tick));
      const FaultDecision d = injector.Decide(node, tick, 0);
      EXPECT_EQ(d.kind, FaultKind::kOk);
      EXPECT_EQ(d.slow_multiplier, 1.0);
    }
  }
}

TEST(FaultInjectorTest, AnyFaultEnablesInjection) {
  FaultInjectorOptions options;
  options.per_node[2].slow_rate = 0.5;
  FaultInjector injector(options, 4);
  EXPECT_TRUE(injector.enabled());
}

TEST(FaultInjectorTest, DecisionsAreDeterministicAcrossInstances) {
  FaultInjectorOptions options;
  options.seed = 0xC0FFEEull;
  options.default_profile.transient_error_rate = 0.3;
  options.default_profile.slow_rate = 0.3;
  options.default_profile.slow_multiplier = 5.0;
  FaultInjector a(options, 3);
  FaultInjector b(options, 3);
  for (uint32_t node = 0; node < 3; ++node) {
    for (uint64_t tick = 0; tick < 64; ++tick) {
      for (uint32_t attempt = 0; attempt < 3; ++attempt) {
        for (uint32_t salt = 0; salt < 4; ++salt) {
          const FaultDecision da = a.Decide(node, tick, attempt, salt);
          const FaultDecision db = b.Decide(node, tick, attempt, salt);
          EXPECT_EQ(da.kind, db.kind);
          EXPECT_EQ(da.slow_multiplier, db.slow_multiplier);
          EXPECT_EQ(a.UniformAt(node, tick, attempt, salt),
                    b.UniformAt(node, tick, attempt, salt));
        }
      }
    }
  }
}

TEST(FaultInjectorTest, SeedChangesTheTimeline) {
  FaultInjectorOptions options;
  options.default_profile.transient_error_rate = 0.5;
  FaultInjector a(options, 1);
  options.seed ^= 0xDEADBEEFull;
  FaultInjector b(options, 1);
  int differing = 0;
  for (uint64_t tick = 0; tick < 256; ++tick) {
    if (a.Decide(0, tick, 0).kind != b.Decide(0, tick, 0).kind) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ErrorRateApproximatelyHonored) {
  FaultInjectorOptions options;
  options.default_profile.transient_error_rate = 0.25;
  FaultInjector injector(options, 1);
  int errors = 0;
  const int kTrials = 20000;
  for (int tick = 0; tick < kTrials; ++tick) {
    if (injector.Decide(0, tick, 0).kind == FaultKind::kTransientError) {
      ++errors;
    }
  }
  const double rate = static_cast<double>(errors) / kTrials;
  EXPECT_GT(rate, 0.22);
  EXPECT_LT(rate, 0.28);
}

TEST(FaultInjectorTest, SlowDecisionsCarryTheMultiplier) {
  FaultInjectorOptions options;
  options.default_profile.slow_rate = 1.0;
  options.default_profile.slow_multiplier = 8.0;
  FaultInjector injector(options, 1);
  for (uint64_t tick = 0; tick < 32; ++tick) {
    const FaultDecision d = injector.Decide(0, tick, 0);
    EXPECT_EQ(d.kind, FaultKind::kSlow);
    EXPECT_EQ(d.slow_multiplier, 8.0);
  }
}

TEST(FaultInjectorTest, TransientErrorTakesPriorityOverSlow) {
  FaultInjectorOptions options;
  options.default_profile.transient_error_rate = 1.0;
  options.default_profile.slow_rate = 1.0;
  options.default_profile.slow_multiplier = 8.0;
  FaultInjector injector(options, 1);
  EXPECT_EQ(injector.Decide(0, 0, 0).kind, FaultKind::kTransientError);
}

TEST(FaultInjectorTest, CrashWindowsAreHalfOpen) {
  FaultInjectorOptions options;
  options.default_profile.crash_windows = {{3, 5}, {9, 10}};
  FaultInjector injector(options, 2);
  EXPECT_TRUE(injector.enabled());
  for (uint32_t node = 0; node < 2; ++node) {
    EXPECT_FALSE(injector.Crashed(node, 2));
    EXPECT_TRUE(injector.Crashed(node, 3));
    EXPECT_TRUE(injector.Crashed(node, 4));
    EXPECT_FALSE(injector.Crashed(node, 5));
    EXPECT_TRUE(injector.Crashed(node, 9));
    EXPECT_FALSE(injector.Crashed(node, 10));
  }
}

TEST(FaultInjectorTest, ActiveFromTickSparesEarlierOperations) {
  FaultInjectorOptions options;
  options.default_profile.transient_error_rate = 1.0;
  options.default_profile.slow_rate = 1.0;
  options.default_profile.slow_multiplier = 4.0;
  options.default_profile.active_from_tick = 100;
  FaultInjector injector(options, 2);
  EXPECT_TRUE(injector.enabled());
  for (uint64_t tick = 0; tick < 100; ++tick) {
    EXPECT_EQ(injector.Decide(0, tick, 0).kind, FaultKind::kOk) << tick;
  }
  // From the activation tick on, rate 1.0 means every attempt faults.
  for (uint64_t tick = 100; tick < 120; ++tick) {
    EXPECT_NE(injector.Decide(0, tick, 0).kind, FaultKind::kOk) << tick;
  }
}

TEST(FaultInjectorTest, PerNodeProfileReplacesTheDefault) {
  FaultInjectorOptions options;
  options.default_profile.transient_error_rate = 1.0;
  options.per_node[1] = NodeFaultProfile{};  // node 1 is healthy
  FaultInjector injector(options, 2);
  EXPECT_EQ(injector.Decide(0, 0, 0).kind, FaultKind::kTransientError);
  EXPECT_EQ(injector.Decide(1, 0, 0).kind, FaultKind::kOk);
  EXPECT_EQ(injector.profile(0).transient_error_rate, 1.0);
  EXPECT_EQ(injector.profile(1).transient_error_rate, 0.0);
}

TEST(FaultInjectorTest, UniformIsInRangeAndVariesByCoordinate) {
  FaultInjector injector(FaultInjectorOptions(), 2);
  int distinct = 0;
  double last = -1.0;
  for (uint64_t tick = 0; tick < 128; ++tick) {
    const double u = injector.UniformAt(0, tick, 0, 0);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    if (u != last) ++distinct;
    last = u;
  }
  EXPECT_GT(distinct, 100);
  // Salt decorrelates streams at the same (node, tick, attempt).
  EXPECT_NE(injector.UniformAt(0, 7, 0, 0), injector.UniformAt(0, 7, 0, 1));
}

TEST(FaultInjectorTest, TickCounterIsMonotonic) {
  FaultInjector injector(FaultInjectorOptions(), 1);
  EXPECT_EQ(injector.CurrentTick(), 0u);
  EXPECT_EQ(injector.NextTick(), 0u);
  EXPECT_EQ(injector.NextTick(), 1u);
  EXPECT_EQ(injector.CurrentTick(), 2u);
}

}  // namespace
}  // namespace rstore
