// TSan-targeted stress tests: concurrent get/put/multiget/scan traffic
// against the Cluster while nodes are flapped down/up. Run under the
// `debug-tsan` preset in CI (the job's -R filter matches "Cluster" and
// "Concurrency"); in plain builds it still shakes out plain logic races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/cluster.h"

namespace rstore {
namespace {

ClusterOptions StressOptions() {
  ClusterOptions options;
  options.num_nodes = 4;
  options.replication_factor = 2;
  options.latency = ZeroLatencyModel();
  return options;
}

TEST(ClusterConcurrencyTest, TrafficWhileNodesFlap) {
  Cluster cluster(StressOptions());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  constexpr int kSeeds = 128;
  for (int i = 0; i < kSeeds; ++i) {
    ASSERT_TRUE(cluster.Put("t", "seed" + std::to_string(i), "base").ok());
  }

  // With replication_factor = 2 and at most one node down at a time, every
  // seed key always has an alive replica holding "base". A request can
  // still see transient IOError("all replicas down"): liveness is checked
  // per replica in sequence, so replica A can flap back up and B go down
  // between the two checks. That routing race is inherent to
  // snapshot-based failover and tolerated (writers retry); anything else —
  // a wrong value, a short multiget, a non-IOError status — is a failure.
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> writer_puts{0};
  std::atomic<int> ok_multigets{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {  // writers: distinct key ranges
      for (int i = 0; i < 400; ++i) {
        std::string key = "w" + std::to_string(t) + "/" + std::to_string(i);
        Status s = cluster.Put("t", key, std::string(48, 'x'));
        while (!s.ok() && s.IsIOError()) {  // transient: retry
          s = cluster.Put("t", key, std::string(48, 'x'));
        }
        if (s.ok()) {
          writer_puts.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
    threads.emplace_back([&] {  // readers: seed keys only
      for (int i = 0; i < 400; ++i) {
        auto r = cluster.Get("t", "seed" + std::to_string(i % kSeeds));
        if (r.ok()) {
          if (*r != "base") errors.fetch_add(1);
        } else if (!r.status().IsIOError()) {
          errors.fetch_add(1);
        }
        std::map<std::string, std::string> out;
        Status s = cluster.MultiGet("t", {"seed0", "seed1", "seed2"}, &out);
        if (s.ok()) {
          ok_multigets.fetch_add(1);
          if (out.size() != 3) errors.fetch_add(1);
        } else if (!s.IsIOError()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {  // chaos: one node down at a time
    uint32_t node = 0;
    while (!stop.load()) {
      cluster.SetNodeAlive(node, false);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      cluster.SetNodeAlive(node, true);
      node = (node + 1) % cluster.num_nodes();
    }
  });

  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads.back().join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(writer_puts.load(), 3 * 400);
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_TRUE(cluster.IsNodeAlive(n));
  }
  KVStats stats = cluster.stats();
  // Stats count only requests that reached service: puts retry until they
  // do, while a multiget that hit the routing race is not a batch served.
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kSeeds + 3 * 400));
  EXPECT_EQ(stats.multiget_batches,
            static_cast<uint64_t>(ok_multigets.load()));
}

TEST(ClusterConcurrencyTest, ScanRunsConcurrentlyWithWrites) {
  Cluster cluster(StressOptions());
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(cluster.Put("t", "stable" + std::to_string(i), "v").ok());
  }
  std::atomic<int> errors{0};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      if (!cluster.Put("t", "hot" + std::to_string(i), "v").ok()) {
        errors.fetch_add(1);
      }
    }
  });
  std::thread scanner([&] {
    for (int i = 0; i < 50; ++i) {
      size_t seen = 0;
      Status s = cluster.Scan("t", [&](Slice, Slice) { ++seen; });
      // Every scan sees at least the pre-seeded stable keys.
      if (!s.ok() || seen < 64) errors.fetch_add(1);
    }
  });
  writer.join();
  scanner.join();
  EXPECT_EQ(errors.load(), 0);
}

// Regression: Scan used to hold the node's store mutex while invoking the
// callback, so a callback that re-entered the cluster (e.g. a Get routed to
// the same node) self-deadlocked. With snapshot scans the lock is dropped
// first; the debug lock-rank registry flags the old behaviour instantly.
TEST(ClusterConcurrencyTest, ScanCallbackMayReenterCluster) {
  ClusterOptions options = StressOptions();
  options.replication_factor = 1;  // every key lives on exactly one node
  Cluster cluster(options);
  ASSERT_TRUE(cluster.CreateTable("t").ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cluster.Put("t", "k" + std::to_string(i),
                            "v" + std::to_string(i)).ok());
  }
  int checked = 0;
  Status s = cluster.Scan("t", [&](Slice key, Slice value) {
    // Re-enter the cluster (and necessarily the same node for this key).
    auto r = cluster.Get("t", key.ToString());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, value.ToString());
    ++checked;
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(checked, 32);
}

}  // namespace
}  // namespace rstore
