// Randomized property tests over generated datasets: for random workload
// shapes, every algorithm must produce a complete, capacity-respecting
// layout whose query results are byte-identical to ground truth, with spans
// consistent between the a-priori computation and the live projections.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/partitioner.h"
#include "core/rstore.h"
#include "core/sub_chunk_builder.h"
#include "core_test_util.h"
#include "kvstore/cluster.h"
#include "kvstore/memory_store.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace rstore {
namespace {

using workload::DatasetConfig;
using workload::GeneratedDataset;
using workload::GenerateDataset;
using workload::Query;
using workload::QueryWorkloadGenerator;

DatasetConfig RandomConfig(uint64_t seed) {
  Random rng(seed * 2654435761ull + 17);
  DatasetConfig config;
  config.name = "prop" + std::to_string(seed);
  config.num_versions = 10 + static_cast<uint32_t>(rng.Uniform(40));
  config.records_per_version = 30 + static_cast<uint32_t>(rng.Uniform(150));
  config.update_fraction = 0.02 + rng.NextDouble() * 0.3;
  config.zipf_updates = rng.Bernoulli(0.5);
  config.branch_probability = rng.Bernoulli(0.5) ? rng.NextDouble() * 0.5 : 0;
  config.insert_fraction = rng.NextDouble() * 0.02;
  config.delete_fraction = rng.NextDouble() * 0.02;
  config.record_size_bytes = 100 + static_cast<uint32_t>(rng.Uniform(400));
  config.pd = 0.02 + rng.NextDouble() * 0.2;
  config.seed = seed;
  return config;
}

class RandomizedDatasetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedDatasetTest, GeneratedDatasetAlwaysValidates) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Status s = gen.dataset.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
  // Every record has a payload; counts agree.
  EXPECT_EQ(gen.payloads.size(), gen.dataset.CountDistinctRecords());
}

TEST_P(RandomizedDatasetTest, SubChunksPartitionTheRecordSet) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Random rng(GetParam());
  Options options;
  options.max_sub_chunk_records = 1 + static_cast<uint32_t>(rng.Uniform(8));
  RecordVersionMap rv = gen.dataset.BuildRecordVersionMap();
  auto built = BuildSubChunks(gen.dataset, gen.payloads, rv, options);
  ASSERT_TRUE(built.ok());
  std::set<CompositeKey> seen;
  for (const SubChunk& sc : built->sub_chunks) {
    EXPECT_LE(sc.num_records(), options.max_sub_chunk_records);
    for (const CompositeKey& ck : sc.keys()) {
      EXPECT_TRUE(seen.insert(ck).second);
    }
  }
  EXPECT_EQ(seen.size(), gen.dataset.CountDistinctRecords());
}

TEST_P(RandomizedDatasetTest, AllQueriesMatchGroundTruthEndToEnd) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Random rng(GetParam() ^ 0xabcdef);
  Options options;
  // Random knob settings, random algorithm.
  const PartitionAlgorithm algorithms[] = {
      PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
      PartitionAlgorithm::kDepthFirst, PartitionAlgorithm::kBreadthFirst,
      PartitionAlgorithm::kDeltaBaseline,
      PartitionAlgorithm::kSubChunkBaseline,
      PartitionAlgorithm::kSingleAddressSpace};
  options.algorithm = algorithms[rng.Uniform(7)];
  options.chunk_capacity_bytes = 512 + rng.Uniform(8192);
  options.max_sub_chunk_records = 1 + static_cast<uint32_t>(rng.Uniform(6));
  options.subtree_limit = rng.Bernoulli(0.3)
                              ? 1 + static_cast<uint32_t>(rng.Uniform(10))
                              : 0;
  SCOPED_TRACE(std::string("algorithm=") +
               PartitionAlgorithmName(options.algorithm));

  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(gen.dataset, gen.payloads).ok());

  // Q1 on three random versions.
  QueryWorkloadGenerator qgen(&gen.dataset, GetParam());
  for (const Query& q : qgen.FullVersionQueries(3)) {
    auto got = (*store)->GetVersion(q.version);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    std::map<std::string, std::string> expected;
    for (const CompositeKey& ck :
         gen.dataset.MaterializeVersion(q.version)) {
      expected[ck.key] = gen.payloads.at(ck);
    }
    std::map<std::string, std::string> actual;
    for (const Record& r : *got) actual[r.key.key] = r.payload;
    ASSERT_EQ(actual, expected) << "V" << q.version;
  }
  // Q2 random ranges.
  for (const Query& q : qgen.RangeQueries(3, 0.2)) {
    auto got = (*store)->GetRange(q.version, q.key_lo, q.key_hi);
    ASSERT_TRUE(got.ok());
    std::map<std::string, std::string> expected;
    for (const CompositeKey& ck :
         gen.dataset.MaterializeVersion(q.version)) {
      if (ck.key >= q.key_lo && ck.key <= q.key_hi) {
        expected[ck.key] = gen.payloads.at(ck);
      }
    }
    std::map<std::string, std::string> actual;
    for (const Record& r : *got) actual[r.key.key] = r.payload;
    ASSERT_EQ(actual, expected);
  }
  // Q3 random keys: every composite key with that primary key, in order.
  for (const Query& q : qgen.EvolutionQueries(3)) {
    auto got = (*store)->GetHistory(q.key);
    ASSERT_TRUE(got.ok());
    std::set<CompositeKey> expected;
    for (const auto& [ck, payload] : gen.payloads) {
      if (ck.key == q.key) expected.insert(ck);
    }
    ASSERT_EQ(got->size(), expected.size()) << q.key;
    for (const Record& r : *got) {
      EXPECT_TRUE(expected.count(r.key));
      EXPECT_EQ(r.payload, gen.payloads.at(r.key));
    }
  }
  // Point queries: present keys resolve to the version-visible record.
  for (const Query& q : qgen.PointQueries(5)) {
    auto members = gen.dataset.MaterializeVersion(q.version);
    const CompositeKey* visible = nullptr;
    for (const CompositeKey& ck : members) {
      if (ck.key == q.key) {
        visible = &ck;
        break;
      }
    }
    auto got = (*store)->GetRecord(q.key, q.version);
    if (visible == nullptr) {
      EXPECT_TRUE(got.status().IsNotFound());
    } else {
      ASSERT_TRUE(got.ok()) << q.key << " V" << q.version;
      EXPECT_EQ(got->key, *visible);
      EXPECT_EQ(got->payload, gen.payloads.at(*visible));
    }
  }
}

TEST_P(RandomizedDatasetTest, ChunkCapacityInvariantHolds) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Options options;
  options.chunk_capacity_bytes = 2048;
  options.max_sub_chunk_records = 2;
  RecordVersionMap rv = gen.dataset.BuildRecordVersionMap();
  auto built = BuildSubChunks(gen.dataset, gen.payloads, rv, options);
  ASSERT_TRUE(built.ok());
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
        PartitionAlgorithm::kDepthFirst}) {
    auto partitioner = CreatePartitioner(algorithm);
    PartitionInput input;
    input.dataset = &gen.dataset;
    input.items = &built->items;
    input.options = options;
    auto p = partitioner->Partition(input);
    ASSERT_TRUE(p.ok());
    uint64_t hard_limit = options.chunk_capacity_bytes +
                          options.chunk_capacity_bytes / 4;
    for (const auto& chunk : p->chunks) {
      if (chunk.size() <= 1) continue;  // oversized singletons exempt
      uint64_t bytes = 0;
      for (uint32_t item : chunk) bytes += built->items[item].bytes;
      EXPECT_LE(bytes, hard_limit) << PartitionAlgorithmName(algorithm);
    }
  }
}

// The cached-vs-uncached equivalence harness: for every layout and
// partitioner, the same seeded workload replayed against an uncached store
// and against one with a deliberately tiny cache (constant eviction churn)
// must produce byte-identical results, with the cache counters partitioning
// the span exactly.
TEST_P(RandomizedDatasetTest, CachedQueriesMatchUncachedAcrossAllAlgorithms) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  const PartitionAlgorithm algorithms[] = {
      PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
      PartitionAlgorithm::kDepthFirst, PartitionAlgorithm::kBreadthFirst,
      PartitionAlgorithm::kDeltaBaseline,
      PartitionAlgorithm::kSubChunkBaseline,
      PartitionAlgorithm::kSingleAddressSpace};
  for (PartitionAlgorithm algorithm : algorithms) {
    SCOPED_TRACE(std::string("algorithm=") +
                 PartitionAlgorithmName(algorithm));
    Options options;
    options.algorithm = algorithm;
    options.chunk_capacity_bytes = 4096;

    MemoryStore uncached_backend;
    auto uncached = RStore::Open(&uncached_backend, options);
    ASSERT_TRUE(uncached.ok());
    ASSERT_TRUE((*uncached)->BulkLoad(gen.dataset, gen.payloads).ok());
    auto base = testing::ReplayQueryWorkload(uncached->get(), gen.dataset,
                                             GetParam());
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    // No cache attached: the cache counters must stay untouched.
    EXPECT_EQ(base->stats.cache_hits, 0u);
    EXPECT_EQ(base->stats.cache_misses, 0u);

    // A cache far smaller than the working set forces eviction churn on
    // every query; correctness must be unaffected.
    Options cached_options = options;
    cached_options.cache_capacity_bytes = 16 << 10;
    cached_options.cache_shards = 2;
    MemoryStore cached_backend;
    auto cached = RStore::Open(&cached_backend, cached_options);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE((*cached)->BulkLoad(gen.dataset, gen.payloads).ok());
    auto replay = testing::ReplayQueryWorkload(cached->get(), gen.dataset,
                                               GetParam());
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();

    EXPECT_EQ(replay->results, base->results);
    // The span is cache-independent, and every chunk resolution is exactly
    // one hit or one miss.
    EXPECT_EQ(replay->stats.chunks_fetched, base->stats.chunks_fetched);
    EXPECT_EQ(replay->stats.cache_hits + replay->stats.cache_misses,
              replay->stats.chunks_fetched);
    ASSERT_NE((*cached)->chunk_cache(), nullptr);
    Status valid = (*cached)->chunk_cache()->Validate();
    EXPECT_TRUE(valid.ok()) << valid.ToString();
  }
}

// The async-vs-sync equivalence harness: for every partitioning algorithm
// (and so every chunk layout), the same seeded workload replayed through the
// continuation-based async engine must be byte-identical to the synchronous
// replay, with the per-query accounting — chunks fetched, bytes, simulated
// time, cache hits and misses — agreeing counter for counter. Pipelining
// may only reorder work, never change what a query reads or what it costs.
TEST_P(RandomizedDatasetTest, AsyncQueriesMatchSyncAcrossAllAlgorithms) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  const PartitionAlgorithm algorithms[] = {
      PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
      PartitionAlgorithm::kDepthFirst, PartitionAlgorithm::kBreadthFirst,
      PartitionAlgorithm::kDeltaBaseline,
      PartitionAlgorithm::kSubChunkBaseline,
      PartitionAlgorithm::kSingleAddressSpace};
  for (PartitionAlgorithm algorithm : algorithms) {
    SCOPED_TRACE(std::string("algorithm=") +
                 PartitionAlgorithmName(algorithm));
    Options options;
    options.algorithm = algorithm;
    options.chunk_capacity_bytes = 4096;

    // Uncached, against one store: sync baseline first, then the async
    // burst replay (every query in flight at once).
    MemoryStore backend;
    auto store = RStore::Open(&backend, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->BulkLoad(gen.dataset, gen.payloads).ok());
    auto sync = testing::ReplayQueryWorkload(store->get(), gen.dataset,
                                             GetParam());
    ASSERT_TRUE(sync.ok()) << sync.status().ToString();
    Executor executor;
    auto async = testing::ReplayQueryWorkloadAsync(
        store->get(), &executor, gen.dataset, GetParam());
    ASSERT_TRUE(async.ok()) << async.status().ToString();
    EXPECT_EQ(async->results, sync->results);
    EXPECT_EQ(async->stats.chunks_fetched, sync->stats.chunks_fetched);
    EXPECT_EQ(async->stats.bytes_fetched, sync->stats.bytes_fetched);
    EXPECT_EQ(async->stats.simulated_micros, sync->stats.simulated_micros);
    EXPECT_EQ(async->stats.cache_hits, 0u);
    EXPECT_EQ(async->stats.cache_misses, 0u);

    // Cached, on two fresh stores (one per engine) so each replay sees the
    // same cold cache: the hit/miss sequence must agree stroke for stroke.
    Options cached_options = options;
    cached_options.cache_capacity_bytes = 16 << 10;
    cached_options.cache_shards = 2;
    MemoryStore sync_backend;
    auto sync_store = RStore::Open(&sync_backend, cached_options);
    ASSERT_TRUE(sync_store.ok());
    ASSERT_TRUE((*sync_store)->BulkLoad(gen.dataset, gen.payloads).ok());
    auto cached_sync = testing::ReplayQueryWorkload(
        sync_store->get(), gen.dataset, GetParam());
    ASSERT_TRUE(cached_sync.ok()) << cached_sync.status().ToString();

    MemoryStore async_backend;
    auto async_store = RStore::Open(&async_backend, cached_options);
    ASSERT_TRUE(async_store.ok());
    ASSERT_TRUE((*async_store)->BulkLoad(gen.dataset, gen.payloads).ok());
    Executor cached_executor;
    auto cached_async = testing::ReplayQueryWorkloadAsync(
        async_store->get(), &cached_executor, gen.dataset, GetParam());
    ASSERT_TRUE(cached_async.ok()) << cached_async.status().ToString();

    EXPECT_EQ(cached_async->results, sync->results);
    EXPECT_EQ(cached_async->stats.chunks_fetched,
              cached_sync->stats.chunks_fetched);
    EXPECT_EQ(cached_async->stats.cache_hits, cached_sync->stats.cache_hits);
    EXPECT_EQ(cached_async->stats.cache_misses,
              cached_sync->stats.cache_misses);
    EXPECT_EQ(cached_async->stats.cache_hits +
                  cached_async->stats.cache_misses,
              cached_async->stats.chunks_fetched);
    ASSERT_NE((*async_store)->chunk_cache(), nullptr);
    Status valid = (*async_store)->chunk_cache()->Validate();
    EXPECT_TRUE(valid.ok()) << valid.ToString();
  }
}

// Over the simulated cluster, the async engine drained after every
// submission must replay the synchronous timeline *exactly*: with no
// overlap there is no queueing, so each batch starts at the instant the
// sync engine would have issued it and the simulated microseconds agree to
// the digit — the anchor that pins async latencies to the latency model.
TEST_P(RandomizedDatasetTest, SequentialAsyncReplaysSyncTimelineOnCluster) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Options options;
  options.chunk_capacity_bytes = 4096;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 6;
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(gen.dataset, gen.payloads).ok());

  auto sync = testing::ReplayQueryWorkload(store->get(), gen.dataset,
                                           GetParam());
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  Executor executor;
  auto async = testing::ReplayQueryWorkloadAsync(
      store->get(), &executor, gen.dataset, GetParam(), /*window=*/1);
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  EXPECT_EQ(async->results, sync->results);
  EXPECT_EQ(async->stats.chunks_fetched, sync->stats.chunks_fetched);
  EXPECT_EQ(async->stats.bytes_fetched, sync->stats.bytes_fetched);
  EXPECT_EQ(async->stats.simulated_micros, sync->stats.simulated_micros);
}

// Online invalidation: a cache warmed before a commit must never serve a
// chunk whose map the online partitioner has since rewritten (paper §4). The
// cache is sized to hold everything, so without the generation-keyed
// invalidation the stale entries WOULD be served.
TEST_P(RandomizedDatasetTest, CacheInvalidatedByOnlineMapRewrites) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Options options;
  options.cache_capacity_bytes = 64 << 20;  // everything stays resident
  options.online_batch_size = 1;            // every commit partitions at once
  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(gen.dataset, gen.payloads).ok());

  // Warm the cache over every version, twice — the second pass must hit.
  QueryStats warm_stats;
  VersionId num_versions = gen.dataset.graph.size();
  for (int pass = 0; pass < 2; ++pass) {
    for (VersionId v = 0; v < num_versions; ++v) {
      ASSERT_TRUE((*store)->GetVersion(v, &warm_stats).ok());
    }
  }
  EXPECT_GT(warm_stats.cache_hits, 0u);

  // Commit an update to every key of the latest version: the new records
  // land in fresh chunks, but the *maps* of every chunk holding a carried-
  // over record are rewritten (and their cached copies invalidated).
  VersionId parent = num_versions - 1;
  VersionMembership members = gen.dataset.MaterializeVersion(parent);
  CommitDelta delta;
  std::map<std::string, std::string> expected;
  size_t updates = 0;
  for (const CompositeKey& ck : members) {
    if (updates < 5) {
      std::string payload = "updated-" + ck.key;
      delta.upserts.push_back(Record{CompositeKey(ck.key, 0), payload});
      expected[ck.key] = payload;
      ++updates;
    } else {
      expected[ck.key] = gen.payloads.at(ck);
    }
  }
  ASSERT_GT(updates, 0u);
  auto committed = (*store)->Commit(parent, std::move(delta));
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();

  // The new version reads correctly — carried-over records are only visible
  // through the rewritten maps, so a stale cached chunk would drop them.
  auto got = (*store)->GetVersion(*committed);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  std::map<std::string, std::string> actual;
  for (const Record& r : *got) actual[r.key.key] = r.payload;
  EXPECT_EQ(actual, expected);

  // Pre-existing versions still read correctly through the new maps.
  for (VersionId v = 0; v < num_versions; ++v) {
    auto old_got = (*store)->GetVersion(v);
    ASSERT_TRUE(old_got.ok());
    std::map<std::string, std::string> old_actual;
    for (const Record& r : *old_got) old_actual[r.key.key] = r.payload;
    std::map<std::string, std::string> old_expected;
    for (const CompositeKey& ck : gen.dataset.MaterializeVersion(v)) {
      old_expected[ck.key] = gen.payloads.at(ck);
    }
    EXPECT_EQ(old_actual, old_expected) << "V" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDatasetTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace rstore
