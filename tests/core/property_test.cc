// Randomized property tests over generated datasets: for random workload
// shapes, every algorithm must produce a complete, capacity-respecting
// layout whose query results are byte-identical to ground truth, with spans
// consistent between the a-priori computation and the live projections.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/partitioner.h"
#include "core/rstore.h"
#include "core/sub_chunk_builder.h"
#include "kvstore/memory_store.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace rstore {
namespace {

using workload::DatasetConfig;
using workload::GeneratedDataset;
using workload::GenerateDataset;
using workload::Query;
using workload::QueryWorkloadGenerator;

DatasetConfig RandomConfig(uint64_t seed) {
  Random rng(seed * 2654435761ull + 17);
  DatasetConfig config;
  config.name = "prop" + std::to_string(seed);
  config.num_versions = 10 + static_cast<uint32_t>(rng.Uniform(40));
  config.records_per_version = 30 + static_cast<uint32_t>(rng.Uniform(150));
  config.update_fraction = 0.02 + rng.NextDouble() * 0.3;
  config.zipf_updates = rng.Bernoulli(0.5);
  config.branch_probability = rng.Bernoulli(0.5) ? rng.NextDouble() * 0.5 : 0;
  config.insert_fraction = rng.NextDouble() * 0.02;
  config.delete_fraction = rng.NextDouble() * 0.02;
  config.record_size_bytes = 100 + static_cast<uint32_t>(rng.Uniform(400));
  config.pd = 0.02 + rng.NextDouble() * 0.2;
  config.seed = seed;
  return config;
}

class RandomizedDatasetTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedDatasetTest, GeneratedDatasetAlwaysValidates) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Status s = gen.dataset.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
  // Every record has a payload; counts agree.
  EXPECT_EQ(gen.payloads.size(), gen.dataset.CountDistinctRecords());
}

TEST_P(RandomizedDatasetTest, SubChunksPartitionTheRecordSet) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Random rng(GetParam());
  Options options;
  options.max_sub_chunk_records = 1 + static_cast<uint32_t>(rng.Uniform(8));
  RecordVersionMap rv = gen.dataset.BuildRecordVersionMap();
  auto built = BuildSubChunks(gen.dataset, gen.payloads, rv, options);
  ASSERT_TRUE(built.ok());
  std::set<CompositeKey> seen;
  for (const SubChunk& sc : built->sub_chunks) {
    EXPECT_LE(sc.num_records(), options.max_sub_chunk_records);
    for (const CompositeKey& ck : sc.keys()) {
      EXPECT_TRUE(seen.insert(ck).second);
    }
  }
  EXPECT_EQ(seen.size(), gen.dataset.CountDistinctRecords());
}

TEST_P(RandomizedDatasetTest, AllQueriesMatchGroundTruthEndToEnd) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Random rng(GetParam() ^ 0xabcdef);
  Options options;
  // Random knob settings, random algorithm.
  const PartitionAlgorithm algorithms[] = {
      PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
      PartitionAlgorithm::kDepthFirst, PartitionAlgorithm::kBreadthFirst,
      PartitionAlgorithm::kDeltaBaseline,
      PartitionAlgorithm::kSubChunkBaseline,
      PartitionAlgorithm::kSingleAddressSpace};
  options.algorithm = algorithms[rng.Uniform(7)];
  options.chunk_capacity_bytes = 512 + rng.Uniform(8192);
  options.max_sub_chunk_records = 1 + static_cast<uint32_t>(rng.Uniform(6));
  options.subtree_limit = rng.Bernoulli(0.3)
                              ? 1 + static_cast<uint32_t>(rng.Uniform(10))
                              : 0;
  SCOPED_TRACE(std::string("algorithm=") +
               PartitionAlgorithmName(options.algorithm));

  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(gen.dataset, gen.payloads).ok());

  // Q1 on three random versions.
  QueryWorkloadGenerator qgen(&gen.dataset, GetParam());
  for (const Query& q : qgen.FullVersionQueries(3)) {
    auto got = (*store)->GetVersion(q.version);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    std::map<std::string, std::string> expected;
    for (const CompositeKey& ck :
         gen.dataset.MaterializeVersion(q.version)) {
      expected[ck.key] = gen.payloads.at(ck);
    }
    std::map<std::string, std::string> actual;
    for (const Record& r : *got) actual[r.key.key] = r.payload;
    ASSERT_EQ(actual, expected) << "V" << q.version;
  }
  // Q2 random ranges.
  for (const Query& q : qgen.RangeQueries(3, 0.2)) {
    auto got = (*store)->GetRange(q.version, q.key_lo, q.key_hi);
    ASSERT_TRUE(got.ok());
    std::map<std::string, std::string> expected;
    for (const CompositeKey& ck :
         gen.dataset.MaterializeVersion(q.version)) {
      if (ck.key >= q.key_lo && ck.key <= q.key_hi) {
        expected[ck.key] = gen.payloads.at(ck);
      }
    }
    std::map<std::string, std::string> actual;
    for (const Record& r : *got) actual[r.key.key] = r.payload;
    ASSERT_EQ(actual, expected);
  }
  // Q3 random keys: every composite key with that primary key, in order.
  for (const Query& q : qgen.EvolutionQueries(3)) {
    auto got = (*store)->GetHistory(q.key);
    ASSERT_TRUE(got.ok());
    std::set<CompositeKey> expected;
    for (const auto& [ck, payload] : gen.payloads) {
      if (ck.key == q.key) expected.insert(ck);
    }
    ASSERT_EQ(got->size(), expected.size()) << q.key;
    for (const Record& r : *got) {
      EXPECT_TRUE(expected.count(r.key));
      EXPECT_EQ(r.payload, gen.payloads.at(r.key));
    }
  }
  // Point queries: present keys resolve to the version-visible record.
  for (const Query& q : qgen.PointQueries(5)) {
    auto members = gen.dataset.MaterializeVersion(q.version);
    const CompositeKey* visible = nullptr;
    for (const CompositeKey& ck : members) {
      if (ck.key == q.key) {
        visible = &ck;
        break;
      }
    }
    auto got = (*store)->GetRecord(q.key, q.version);
    if (visible == nullptr) {
      EXPECT_TRUE(got.status().IsNotFound());
    } else {
      ASSERT_TRUE(got.ok()) << q.key << " V" << q.version;
      EXPECT_EQ(got->key, *visible);
      EXPECT_EQ(got->payload, gen.payloads.at(*visible));
    }
  }
}

TEST_P(RandomizedDatasetTest, ChunkCapacityInvariantHolds) {
  GeneratedDataset gen = GenerateDataset(RandomConfig(GetParam()));
  Options options;
  options.chunk_capacity_bytes = 2048;
  options.max_sub_chunk_records = 2;
  RecordVersionMap rv = gen.dataset.BuildRecordVersionMap();
  auto built = BuildSubChunks(gen.dataset, gen.payloads, rv, options);
  ASSERT_TRUE(built.ok());
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
        PartitionAlgorithm::kDepthFirst}) {
    auto partitioner = CreatePartitioner(algorithm);
    PartitionInput input;
    input.dataset = &gen.dataset;
    input.items = &built->items;
    input.options = options;
    auto p = partitioner->Partition(input);
    ASSERT_TRUE(p.ok());
    uint64_t hard_limit = options.chunk_capacity_bytes +
                          options.chunk_capacity_bytes / 4;
    for (const auto& chunk : p->chunks) {
      if (chunk.size() <= 1) continue;  // oversized singletons exempt
      uint64_t bytes = 0;
      for (uint32_t item : chunk) bytes += built->items[item].bytes;
      EXPECT_LE(bytes, hard_limit) << PartitionAlgorithmName(algorithm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDatasetTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace rstore
