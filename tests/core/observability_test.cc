// End-to-end observability: a traced full-version query over the simulated
// cluster must produce a span tree whose simulated durations reconcile
// exactly with the latency model's charges (KVStats::simulated_micros), and
// whose Chrome trace-event export is schema-valid JSON. This is the
// contract that makes `trace <query>` output trustworthy: the trace is not
// a parallel bookkeeping system, it is the same numbers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/report.h"
#include "core_test_util.h"
#include "json/json_parser.h"
#include "kvstore/cluster.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

struct TracedQuery {
  Cluster cluster;
  std::unique_ptr<RStore> store;
  QueryStats stats;
  TraceContext trace;
  uint64_t charged_micros = 0;

  TracedQuery() : cluster(ClusterOptions()) {}
};

/// Loads a chain dataset into a 4-node cluster and runs one traced
/// full-version query, capturing the cluster-side charge alongside.
std::unique_ptr<TracedQuery> RunTracedGetVersion() {
  auto out = std::make_unique<TracedQuery>();
  ExampleData data = MakeChain(12, 8, 3);
  Options options;
  options.chunk_capacity_bytes = 600;
  auto store = RStore::Open(&out->cluster, options);
  EXPECT_TRUE(store.ok());
  out->store = std::move(*store);
  EXPECT_TRUE(out->store->BulkLoad(data.dataset, data.payloads).ok());

  const uint64_t before = out->cluster.stats().simulated_micros;
  auto records =
      out->store->GetVersion(11, &out->stats, &out->trace);
  EXPECT_TRUE(records.ok());
  EXPECT_FALSE(records->empty());
  out->charged_micros = out->cluster.stats().simulated_micros - before;
  return out;
}

TEST(ObservabilityTest, TraceReconcilesWithClusterCharges) {
  auto q = RunTracedGetVersion();
  const std::vector<TraceSpan>& spans = q->trace.spans();
  ASSERT_FALSE(spans.empty());

  // The root span covers the whole query and its simulated duration is
  // exactly what the cluster charged during the call.
  EXPECT_EQ(spans[0].name, "query.get_version");
  EXPECT_EQ(spans[0].parent, TraceSpan::kNoParent);
  EXPECT_GT(q->charged_micros, 0u);
  EXPECT_EQ(spans[0].sim_duration_us(), q->charged_micros);
  EXPECT_EQ(q->stats.simulated_micros, q->charged_micros);

  // Each kvs.multiget span charges coordinator overhead plus the slowest of
  // its per-node children, which all start at the batch's simulated instant.
  const LatencyModel latency = ClusterOptions().latency;
  uint64_t multiget_micros = 0;
  size_t multigets = 0, node_spans = 0;
  for (const TraceSpan& span : spans) {
    if (span.name != "kvs.multiget") continue;
    ++multigets;
    multiget_micros += span.sim_duration_us();
    uint64_t slowest_child = 0;
    for (const TraceSpan& child : spans) {
      if (child.parent != span.id) continue;
      ASSERT_EQ(child.name.rfind("node", 0), 0u) << child.name;
      ++node_spans;
      EXPECT_EQ(child.sim_start_us, span.sim_start_us);
      slowest_child = std::max(slowest_child, child.sim_duration_us());
    }
    EXPECT_GT(slowest_child, 0u);
    EXPECT_EQ(span.sim_duration_us(),
              latency.coordinator_overhead_us + slowest_child);
  }
  EXPECT_GT(multigets, 0u);
  EXPECT_GT(node_spans, 0u);
  // All of the query's simulated cost is attributed to multiget batches —
  // the trace does not invent or drop charges.
  EXPECT_EQ(multiget_micros, q->charged_micros);
}

TEST(ObservabilityTest, SpanTreeIsWellFormed) {
  auto q = RunTracedGetVersion();
  const std::vector<TraceSpan>& spans = q->trace.spans();
  for (const TraceSpan& span : spans) {
    // Closed spans have coherent stamps on both clocks.
    EXPECT_GE(span.wall_end_us, span.wall_start_us) << span.name;
    EXPECT_GE(span.sim_end_us, span.sim_start_us) << span.name;
    if (span.parent == TraceSpan::kNoParent) continue;
    ASSERT_LT(span.parent, span.id) << "parents precede children";
    const TraceSpan& parent = spans[span.parent];
    EXPECT_EQ(span.depth, parent.depth + 1);
    // Parent/child simulated-time containment.
    EXPECT_GE(span.sim_start_us, parent.sim_start_us) << span.name;
    EXPECT_LE(span.sim_end_us, parent.sim_end_us) << span.name;
  }
}

TEST(ObservabilityTest, ChromeTraceExportIsSchemaValid) {
  auto q = RunTracedGetVersion();
  auto parsed = json::Parse(q->trace.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->as_array().size(),
            2u + 2 * q->trace.spans().size());
  size_t simulated_events = 0;
  for (const json::Value& event : events->as_array()) {
    ASSERT_NE(event.Find("ph"), nullptr);
    const std::string& ph = event.Find("ph")->as_string();
    if (ph == "M") continue;  // track-name metadata
    ASSERT_EQ(ph, "X");
    EXPECT_GE(event.Find("ts")->as_int(), 0);
    EXPECT_GE(event.Find("dur")->as_int(), 0);
    const int64_t pid = event.Find("pid")->as_int();
    ASSERT_TRUE(pid == 1 || pid == 2);
    if (pid == 2) ++simulated_events;
    const json::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    const json::Value* span_id = args->Find("span_id");
    ASSERT_NE(span_id, nullptr);
    ASSERT_LT(span_id->as_int(),
              static_cast<int64_t>(q->trace.spans().size()));
    // Non-root events name their parent, closing the loop for tools that
    // rebuild the tree from the flat event list.
    const TraceSpan& span = q->trace.spans()[span_id->as_int()];
    if (span.parent != TraceSpan::kNoParent) {
      ASSERT_NE(args->Find("parent_id"), nullptr);
      EXPECT_EQ(args->Find("parent_id")->as_int(), span.parent);
    }
  }
  EXPECT_EQ(simulated_events, q->trace.spans().size());
}

// Under an active fault schedule the trace gains node<N>.retry<k> and
// node<N>.hedge children, and the reconciliation contract must still hold
// exactly: the root's simulated duration is the cluster's charge, every
// batch charges coordinator overhead plus its latest child event, and no
// child escapes its parent's interval.
TEST(ObservabilityTest, FaultPathTraceReconcilesWithCharges) {
  ClusterOptions cluster_options;
  cluster_options.replication_factor = 2;
  cluster_options.faults.default_profile.transient_error_rate = 0.2;
  // Every request is slow (x10), so every batch group crosses the hedge
  // threshold deterministically — the hedge path is exercised on each run.
  // (A one-key group models ~160us of pipelined service, 1600us slowed;
  // the threshold sits between those, above any un-slowed group.)
  cluster_options.faults.default_profile.slow_rate = 1.0;
  cluster_options.faults.default_profile.slow_multiplier = 10.0;
  cluster_options.latency.hedge_threshold_us = 1000;
  cluster_options.retry.max_attempts = 4;
  Cluster cluster(cluster_options);
  ExampleData data = MakeChain(12, 8, 3);
  Options options;
  options.chunk_capacity_bytes = 600;
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  QueryStats stats;
  TraceContext trace;
  const uint64_t before = cluster.stats().simulated_micros;
  auto records = (*store)->GetVersion(11, &stats, &trace);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  const uint64_t charged = cluster.stats().simulated_micros - before;

  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].sim_duration_us(), charged);
  EXPECT_EQ(stats.simulated_micros, charged);

  const LatencyModel& latency = cluster_options.latency;
  uint64_t multiget_micros = 0;
  size_t fault_spans = 0;
  for (const TraceSpan& span : spans) {
    if (span.name != "kvs.multiget") continue;
    multiget_micros += span.sim_duration_us();
    uint64_t latest_child_end = span.sim_start_us;
    size_t children = 0;
    for (const TraceSpan& child : spans) {
      if (child.parent != span.id) continue;
      ++children;
      ASSERT_EQ(child.name.rfind("node", 0), 0u) << child.name;
      if (child.name.find(".retry") != std::string::npos ||
          child.name.find(".hedge") != std::string::npos) {
        ++fault_spans;
      }
      // Containment: retries, hedges and abandoned requests all close
      // inside the batch's charged interval.
      EXPECT_GE(child.sim_start_us, span.sim_start_us) << child.name;
      EXPECT_LE(child.sim_end_us, span.sim_end_us) << child.name;
      latest_child_end = std::max(latest_child_end, child.sim_end_us);
    }
    ASSERT_GT(children, 0u);
    // Exactly coordinator overhead plus the batch's latest event — retry
    // chains and hedges shift events later, but never invent time the
    // cluster did not charge.
    EXPECT_EQ(span.sim_duration_us(),
              latency.coordinator_overhead_us +
                  (latest_child_end - span.sim_start_us));
  }
  EXPECT_EQ(multiget_micros, charged);
  // The schedule actually produced retry/hedge sub-spans (the cluster-side
  // counters agree), so the assertions above covered the fault paths.
  EXPECT_GT(fault_spans, 0u);
  const KVStats kv = cluster.stats();
  EXPECT_GT(kv.retries, 0u);
  EXPECT_GT(kv.hedges, 0u);
}

TEST(ObservabilityTest, RegistryCountersFoldIntoStoreReport) {
  MetricsRegistry::Default().ResetForTest();
  auto q = RunTracedGetVersion();

  // The instrumentation points fired during load + query.
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  auto counter = [&snapshot](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(counter("rstore_query_queries_total"), 1u);
  EXPECT_GT(counter("rstore_kvs_multiget_batches_total"), 0u);
  EXPECT_EQ(counter("rstore_kvs_simulated_micros_total"),
            q->cluster.stats().simulated_micros);

  // And the report surfaces them as metrics/<subsystem> layers.
  auto report = BuildStoreReport(*q->store, &q->cluster);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::string text = report->ToString();
  EXPECT_NE(text.find("metrics/kvs:"), std::string::npos);
  EXPECT_NE(text.find("metrics/query:"), std::string::npos);
  EXPECT_NE(text.find("metrics/write:"), std::string::npos);
  EXPECT_NE(text.find("queries_total=1"), std::string::npos);
}

}  // namespace
}  // namespace rstore
