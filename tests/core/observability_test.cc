// End-to-end observability: a traced full-version query over the simulated
// cluster must produce a span tree whose simulated durations reconcile
// exactly with the latency model's charges (KVStats::simulated_micros), and
// whose Chrome trace-event export is schema-valid JSON. This is the
// contract that makes `trace <query>` output trustworthy: the trace is not
// a parallel bookkeeping system, it is the same numbers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/executor.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/report.h"
#include "core_test_util.h"
#include "json/json_parser.h"
#include "kvstore/cluster.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

struct TracedQuery {
  Cluster cluster;
  std::unique_ptr<RStore> store;
  QueryStats stats;
  TraceContext trace;
  uint64_t charged_micros = 0;

  TracedQuery() : cluster(ClusterOptions()) {}
};

/// Loads a chain dataset into a 4-node cluster and runs one traced
/// full-version query, capturing the cluster-side charge alongside.
std::unique_ptr<TracedQuery> RunTracedGetVersion() {
  auto out = std::make_unique<TracedQuery>();
  ExampleData data = MakeChain(12, 8, 3);
  Options options;
  options.chunk_capacity_bytes = 600;
  auto store = RStore::Open(&out->cluster, options);
  EXPECT_TRUE(store.ok());
  out->store = std::move(*store);
  EXPECT_TRUE(out->store->BulkLoad(data.dataset, data.payloads).ok());

  const uint64_t before = out->cluster.stats().simulated_micros;
  auto records =
      out->store->GetVersion(11, &out->stats, &out->trace);
  EXPECT_TRUE(records.ok());
  EXPECT_FALSE(records->empty());
  out->charged_micros = out->cluster.stats().simulated_micros - before;
  return out;
}

TEST(ObservabilityTest, TraceReconcilesWithClusterCharges) {
  auto q = RunTracedGetVersion();
  const std::vector<TraceSpan>& spans = q->trace.spans();
  ASSERT_FALSE(spans.empty());

  // The root span covers the whole query and its simulated duration is
  // exactly what the cluster charged during the call.
  EXPECT_EQ(spans[0].name, "query.get_version");
  EXPECT_EQ(spans[0].parent, TraceSpan::kNoParent);
  EXPECT_GT(q->charged_micros, 0u);
  EXPECT_EQ(spans[0].sim_duration_us(), q->charged_micros);
  EXPECT_EQ(q->stats.simulated_micros, q->charged_micros);

  // Each kvs.multiget span charges coordinator overhead plus the slowest of
  // its per-node children, which all start at the batch's simulated instant.
  const LatencyModel latency = ClusterOptions().latency;
  uint64_t multiget_micros = 0;
  size_t multigets = 0, node_spans = 0;
  for (const TraceSpan& span : spans) {
    if (span.name != "kvs.multiget") continue;
    ++multigets;
    multiget_micros += span.sim_duration_us();
    uint64_t slowest_child = 0;
    for (const TraceSpan& child : spans) {
      if (child.parent != span.id) continue;
      ASSERT_EQ(child.name.rfind("node", 0), 0u) << child.name;
      ++node_spans;
      EXPECT_EQ(child.sim_start_us, span.sim_start_us);
      slowest_child = std::max(slowest_child, child.sim_duration_us());
    }
    EXPECT_GT(slowest_child, 0u);
    EXPECT_EQ(span.sim_duration_us(),
              latency.coordinator_overhead_us + slowest_child);
  }
  EXPECT_GT(multigets, 0u);
  EXPECT_GT(node_spans, 0u);
  // All of the query's simulated cost is attributed to multiget batches —
  // the trace does not invent or drop charges.
  EXPECT_EQ(multiget_micros, q->charged_micros);
}

TEST(ObservabilityTest, SpanTreeIsWellFormed) {
  auto q = RunTracedGetVersion();
  const std::vector<TraceSpan>& spans = q->trace.spans();
  for (const TraceSpan& span : spans) {
    // Closed spans have coherent stamps on both clocks.
    EXPECT_GE(span.wall_end_us, span.wall_start_us) << span.name;
    EXPECT_GE(span.sim_end_us, span.sim_start_us) << span.name;
    if (span.parent == TraceSpan::kNoParent) continue;
    ASSERT_LT(span.parent, span.id) << "parents precede children";
    const TraceSpan& parent = spans[span.parent];
    EXPECT_EQ(span.depth, parent.depth + 1);
    // Parent/child simulated-time containment.
    EXPECT_GE(span.sim_start_us, parent.sim_start_us) << span.name;
    EXPECT_LE(span.sim_end_us, parent.sim_end_us) << span.name;
  }
}

TEST(ObservabilityTest, ChromeTraceExportIsSchemaValid) {
  auto q = RunTracedGetVersion();
  auto parsed = json::Parse(q->trace.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->as_array().size(),
            2u + 2 * q->trace.spans().size());
  size_t simulated_events = 0;
  for (const json::Value& event : events->as_array()) {
    ASSERT_NE(event.Find("ph"), nullptr);
    const std::string& ph = event.Find("ph")->as_string();
    if (ph == "M") continue;  // track-name metadata
    ASSERT_EQ(ph, "X");
    EXPECT_GE(event.Find("ts")->as_int(), 0);
    EXPECT_GE(event.Find("dur")->as_int(), 0);
    const int64_t pid = event.Find("pid")->as_int();
    ASSERT_TRUE(pid == 1 || pid == 2);
    if (pid == 2) ++simulated_events;
    const json::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    const json::Value* span_id = args->Find("span_id");
    ASSERT_NE(span_id, nullptr);
    ASSERT_LT(span_id->as_int(),
              static_cast<int64_t>(q->trace.spans().size()));
    // Non-root events name their parent, closing the loop for tools that
    // rebuild the tree from the flat event list.
    const TraceSpan& span = q->trace.spans()[span_id->as_int()];
    if (span.parent != TraceSpan::kNoParent) {
      ASSERT_NE(args->Find("parent_id"), nullptr);
      EXPECT_EQ(args->Find("parent_id")->as_int(), span.parent);
    }
  }
  EXPECT_EQ(simulated_events, q->trace.spans().size());
}

// Under an active fault schedule the trace gains node<N>.retry<k> and
// node<N>.hedge children, and the reconciliation contract must still hold
// exactly: the root's simulated duration is the cluster's charge, every
// batch charges coordinator overhead plus its latest child event, and no
// child escapes its parent's interval.
TEST(ObservabilityTest, FaultPathTraceReconcilesWithCharges) {
  ClusterOptions cluster_options;
  cluster_options.replication_factor = 2;
  cluster_options.faults.default_profile.transient_error_rate = 0.2;
  // Every request is slow (x10), so every batch group crosses the hedge
  // threshold deterministically — the hedge path is exercised on each run.
  // (A one-key group models ~160us of pipelined service, 1600us slowed;
  // the threshold sits between those, above any un-slowed group.)
  cluster_options.faults.default_profile.slow_rate = 1.0;
  cluster_options.faults.default_profile.slow_multiplier = 10.0;
  cluster_options.latency.hedge_threshold_us = 1000;
  cluster_options.retry.max_attempts = 4;
  Cluster cluster(cluster_options);
  ExampleData data = MakeChain(12, 8, 3);
  Options options;
  options.chunk_capacity_bytes = 600;
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  QueryStats stats;
  TraceContext trace;
  const uint64_t before = cluster.stats().simulated_micros;
  auto records = (*store)->GetVersion(11, &stats, &trace);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  const uint64_t charged = cluster.stats().simulated_micros - before;

  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].sim_duration_us(), charged);
  EXPECT_EQ(stats.simulated_micros, charged);

  const LatencyModel& latency = cluster_options.latency;
  uint64_t multiget_micros = 0;
  size_t fault_spans = 0;
  for (const TraceSpan& span : spans) {
    if (span.name != "kvs.multiget") continue;
    multiget_micros += span.sim_duration_us();
    uint64_t latest_child_end = span.sim_start_us;
    size_t children = 0;
    for (const TraceSpan& child : spans) {
      if (child.parent != span.id) continue;
      ++children;
      ASSERT_EQ(child.name.rfind("node", 0), 0u) << child.name;
      if (child.name.find(".retry") != std::string::npos ||
          child.name.find(".hedge") != std::string::npos) {
        ++fault_spans;
      }
      // Containment: retries, hedges and abandoned requests all close
      // inside the batch's charged interval.
      EXPECT_GE(child.sim_start_us, span.sim_start_us) << child.name;
      EXPECT_LE(child.sim_end_us, span.sim_end_us) << child.name;
      latest_child_end = std::max(latest_child_end, child.sim_end_us);
    }
    ASSERT_GT(children, 0u);
    // Exactly coordinator overhead plus the batch's latest event — retry
    // chains and hedges shift events later, but never invent time the
    // cluster did not charge.
    EXPECT_EQ(span.sim_duration_us(),
              latency.coordinator_overhead_us +
                  (latest_child_end - span.sim_start_us));
  }
  EXPECT_EQ(multiget_micros, charged);
  // The schedule actually produced retry/hedge sub-spans (the cluster-side
  // counters agree), so the assertions above covered the fault paths.
  EXPECT_GT(fault_spans, 0u);
  const KVStats kv = cluster.stats();
  EXPECT_GT(kv.retries, 0u);
  EXPECT_GT(kv.hedges, 0u);
}

// The async engine keeps the same reconciliation contract per query even
// when queries overlap: each in-flight query carries its own TraceContext,
// whose root span must equal that query's QueryStats::simulated_micros
// (queueing behind other queries' batches included), with every micro
// attributed to a kvs.multiget sub-span. Across queries, the per-query
// charges must sum to exactly what the cluster charged — concurrency moves
// time around, it never invents or drops any.
TEST(ObservabilityTest, AsyncTracesReconcilePerQueryUnderConcurrency) {
  Cluster cluster((ClusterOptions()));
  ExampleData data = MakeChain(12, 8, 3);
  Options options;
  options.chunk_capacity_bytes = 600;
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  constexpr size_t kInFlight = 4;
  Executor executor;
  std::vector<TraceContext> traces(kInFlight);
  std::vector<AsyncQueryResult> results(kInFlight);
  const uint64_t before = cluster.stats().simulated_micros;
  for (size_t i = 0; i < kInFlight; ++i) {
    (*store)
        ->GetVersionAsync(&executor, static_cast<VersionId>(8 + i),
                          &traces[i])
        .OnReady([&results, i](const AsyncQueryResult& r) { results[i] = r; });
  }
  executor.RunUntilIdle();
  const uint64_t cluster_charged = cluster.stats().simulated_micros - before;

  uint64_t total_query_micros = 0;
  for (size_t i = 0; i < kInFlight; ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
    EXPECT_FALSE(results[i].records.empty());
    const std::vector<TraceSpan>& spans = traces[i].spans();
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans[0].name, "query.get_version");
    EXPECT_EQ(spans[0].sim_duration_us(), results[i].stats.simulated_micros);
    total_query_micros += results[i].stats.simulated_micros;

    uint64_t multiget_micros = 0;
    size_t node_spans = 0;
    for (const TraceSpan& span : spans) {
      // Well-formed tree: children close inside their parents on the
      // simulated clock even though batches interleave across queries.
      if (span.parent != TraceSpan::kNoParent) {
        const TraceSpan& parent = spans[span.parent];
        EXPECT_GE(span.sim_start_us, parent.sim_start_us) << span.name;
        EXPECT_LE(span.sim_end_us, parent.sim_end_us) << span.name;
      }
      if (span.name == "kvs.multiget") {
        multiget_micros += span.sim_duration_us();
      } else if (span.name.rfind("node", 0) == 0) {
        ++node_spans;
      }
    }
    EXPECT_GT(node_spans, 0u);
    // All of this query's simulated cost lives in its multiget sub-spans.
    EXPECT_EQ(multiget_micros, results[i].stats.simulated_micros);
  }
  // And the per-query charges partition the cluster's charge exactly.
  EXPECT_EQ(total_query_micros, cluster_charged);
}

/// One cluster whose node 1 serves everything 10x slow: only its batches
/// cross the 1000us hedge threshold, so every hedge is a genuine race
/// between a slowed primary and a clean replica.
ClusterOptions SlowNodeOptions() {
  ClusterOptions o;
  o.replication_factor = 2;
  o.latency.hedge_threshold_us = 1000;
  o.faults.per_node[1].slow_rate = 1.0;
  o.faults.per_node[1].slow_multiplier = 10.0;
  return o;
}

// Hedge accounting on the async path: a hedge *win* may only be counted
// when the speculative attempt — delayed by its target's own FIFO queue —
// actually completes before the primary. With an idle cluster the clean
// replica beats the 10x-slowed primary (wins count up); with the cluster
// saturated by concurrent queries, hedge targets are busy and some races
// are lost (wins < hedges). Either way results stay byte-identical.
TEST(ObservabilityTest, AsyncHedgeWinsOnlyCountWhenTheHedgeActuallyWins) {
  ExampleData data = MakeChain(12, 8, 3);
  Options options;
  options.chunk_capacity_bytes = 600;

  // Baseline bytes for every version from a clean sync store: slowness and
  // hedging must never change what a query returns.
  Cluster clean((ClusterOptions()));
  auto clean_store = RStore::Open(&clean, options);
  ASSERT_TRUE(clean_store.ok());
  ASSERT_TRUE((*clean_store)->BulkLoad(data.dataset, data.payloads).ok());
  std::vector<std::string> expected(12);
  for (VersionId v = 0; v < 12; ++v) {
    auto got = (*clean_store)->GetVersion(v);
    ASSERT_TRUE(got.ok());
    expected[v] = testing::SerializeRecords(*got);
  }

  // One query at a time against the slow-node cluster: every hedge target
  // is idle, so the clean replica always overtakes the 10x primary — every
  // hedge must be counted a win.
  {
    Cluster cluster(SlowNodeOptions());
    auto store = RStore::Open(&cluster, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    Executor executor;
    for (VersionId v = 0; v < 12; ++v) {
      AsyncQueryResult result;
      (*store)
          ->GetVersionAsync(&executor, v)
          .OnReady([&result](const AsyncQueryResult& r) { result = r; });
      executor.RunUntilIdle();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(testing::SerializeRecords(result.records), expected[v])
          << "V" << v;
    }
    const KVStats kv = cluster.stats();
    EXPECT_GT(kv.hedges, 0u);
    EXPECT_EQ(kv.hedge_wins, kv.hedges);
  }

  // A uniformly slow cluster saturated by every version at once: hedges
  // still fire (every batch crosses the threshold), but their targets sit
  // behind queues of equally slow primary work, so some races are lost —
  // and losing hedges must not be counted as wins the way they would be if
  // the model pretended the speculative attempt started instantly.
  {
    ClusterOptions slow_everywhere;
    slow_everywhere.replication_factor = 2;
    slow_everywhere.latency.hedge_threshold_us = 1000;
    slow_everywhere.faults.default_profile.slow_rate = 1.0;
    slow_everywhere.faults.default_profile.slow_multiplier = 10.0;
    Cluster cluster(slow_everywhere);
    auto store = RStore::Open(&cluster, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    Executor executor;
    std::vector<AsyncQueryResult> results(12);
    for (VersionId v = 0; v < 12; ++v) {
      (*store)
          ->GetVersionAsync(&executor, v)
          .OnReady([&results, v](const AsyncQueryResult& r) {
            results[v] = r;
          });
    }
    executor.RunUntilIdle();
    for (VersionId v = 0; v < 12; ++v) {
      ASSERT_TRUE(results[v].status.ok()) << results[v].status.ToString();
      EXPECT_EQ(testing::SerializeRecords(results[v].records), expected[v])
          << "V" << v;
    }
    const KVStats kv = cluster.stats();
    EXPECT_GT(kv.hedges, 0u);
    EXPECT_LT(kv.hedge_wins, kv.hedges);
  }
}

/// Stages `versions - 1` commits without draining, then brackets the final
/// commit — the one that trips online_batch_size and drains the batch —
/// with cluster stats. Staging itself touches no backend, so the bracketed
/// delta is exactly the drain's charge.
struct TracedIngest {
  Cluster cluster;
  std::unique_ptr<RStore> store;
  TraceContext trace;
  uint64_t charged_micros = 0;

  TracedIngest() : cluster(ClusterOptions()) {}
};

std::unique_ptr<TracedIngest> RunTracedBatchDrain(uint32_t ingest_shards) {
  auto out = std::make_unique<TracedIngest>();
  const ExampleData data = MakeChain(8, 8, 3);
  const uint32_t versions = data.dataset.graph.size();
  Options options;
  options.chunk_capacity_bytes = 600;
  options.online_batch_size = versions;
  options.ingest_shards = ingest_shards;
  auto store = RStore::Open(&out->cluster, options);
  EXPECT_TRUE(store.ok());
  out->store = std::move(*store);
  for (VersionId v = 0; v < versions; ++v) {
    CommitDelta delta;
    for (const CompositeKey& ck : data.dataset.deltas[v].added) {
      delta.upserts.push_back(Record{ck, data.payloads.at(ck)});
    }
    VersionId parent =
        v == 0 ? kInvalidVersion : data.dataset.graph.PrimaryParent(v);
    if (v + 1 == versions) {
      const uint64_t before = out->cluster.stats().simulated_micros;
      auto r = out->store->Commit(parent, std::move(delta), &out->trace);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out->charged_micros =
          out->cluster.stats().simulated_micros - before;
    } else {
      auto r = out->store->Commit(parent, std::move(delta));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  return out;
}

// The write-path counterpart of TraceReconcilesWithClusterCharges: a batch
// drain's "write.process_batch" root span covers the drain's entire
// simulated cost, the phase spans sit under it, and the flight recorder's
// "process_batch" record repeats the same numbers and the same span tree.
// Holding at shard count 1 and 4 — sharding must not change the charge.
TEST(ObservabilityTest, IngestSpanReconcilesWithBackendCharge) {
  uint64_t serial_charge = 0;
  for (uint32_t shards : {1u, 4u}) {
    SCOPED_TRACE("ingest_shards=" + std::to_string(shards));
    auto ingest = RunTracedBatchDrain(shards);
    const std::vector<TraceSpan>& spans = ingest->trace.spans();
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans[0].name, "write.process_batch");
    EXPECT_EQ(spans[0].parent, TraceSpan::kNoParent);
    EXPECT_GT(ingest->charged_micros, 0u);
    EXPECT_EQ(spans[0].sim_duration_us(), ingest->charged_micros);
    bool saw_index = false, saw_encode = false;
    for (const TraceSpan& span : spans) {
      if (span.name == "write.index_update") saw_index = true;
      if (span.name == "write.encode_and_put") saw_encode = true;
      if (span.parent != TraceSpan::kNoParent) {
        EXPECT_GE(span.sim_start_us, spans[span.parent].sim_start_us);
        EXPECT_LE(span.sim_end_us, spans[span.parent].sim_end_us);
      }
    }
    EXPECT_TRUE(saw_index);
    EXPECT_TRUE(saw_encode);

    // The flight record of this drain (newest "process_batch" entry)
    // carries the same total, a consistent attribution decomposition, and
    // the span tree re-based to depth 0.
    // Recent() returns a snapshot by value; keep it alive while inspecting.
    const std::vector<FlightRecord> recent = FlightRecorder::Default().Recent();
    const FlightRecord* record = nullptr;
    for (const FlightRecord& r : recent) {
      if (r.name == "process_batch") {
        record = &r;
        break;
      }
    }
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->total_us, ingest->charged_micros);
    EXPECT_EQ(record->queue_wait_us + record->service_us +
                  record->retry_penalty_us - record->hedge_delta_us,
              record->total_us);
    ASSERT_EQ(record->spans.size(), spans.size());
    EXPECT_EQ(record->spans[0].name, "write.process_batch");
    EXPECT_EQ(record->spans[0].depth, 0u);

    if (shards == 1) {
      serial_charge = ingest->charged_micros;
    } else {
      // Writes are issued from the one calling thread in shard order, so
      // the simulated charge is identical to serial ingest.
      EXPECT_EQ(ingest->charged_micros, serial_charge);
    }
  }
}

// Every drain reaches the flight recorder, even when no caller passes a
// TraceContext: ProcessBatch falls back to a local context, so untraced
// Commit-driven drains still log a record with a full span tree.
TEST(ObservabilityTest, UntracedBatchDrainStillRecordsFlight) {
  Cluster cluster((ClusterOptions()));
  const ExampleData data = MakeChain(6, 6, 2);
  Options options;
  options.chunk_capacity_bytes = 600;
  options.online_batch_size = 2;
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  const uint64_t marker = FlightRecorder::Default().NextQueryId();
  for (VersionId v = 0; v < 6; ++v) {
    CommitDelta delta;
    for (const CompositeKey& ck : data.dataset.deltas[v].added) {
      delta.upserts.push_back(Record{ck, data.payloads.at(ck)});
    }
    VersionId parent =
        v == 0 ? kInvalidVersion : data.dataset.graph.PrimaryParent(v);
    ASSERT_TRUE((*store)->Commit(parent, std::move(delta)).ok());
  }
  // 6 commits at batch size 2: three drains, each with its own record and
  // a span tree rooted at write.process_batch.
  size_t drains = 0;
  for (const FlightRecord& r : FlightRecorder::Default().Recent()) {
    if (r.id <= marker) break;  // Recent() is newest-first
    if (r.name != "process_batch") continue;
    ++drains;
    ASSERT_FALSE(r.spans.empty());
    EXPECT_EQ(r.spans[0].name, "write.process_batch");
    EXPECT_EQ(r.spans[0].depth, 0u);
  }
  EXPECT_EQ(drains, 3u);
}

TEST(ObservabilityTest, RegistryCountersFoldIntoStoreReport) {
  MetricsRegistry::Default().ResetForTest();
  auto q = RunTracedGetVersion();

  // The instrumentation points fired during load + query.
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  auto counter = [&snapshot](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(counter("rstore_query_queries_total"), 1u);
  EXPECT_GT(counter("rstore_kvs_multiget_batches_total"), 0u);
  EXPECT_EQ(counter("rstore_kvs_simulated_micros_total"),
            q->cluster.stats().simulated_micros);

  // And the report surfaces them as metrics/<subsystem> layers.
  auto report = BuildStoreReport(*q->store, &q->cluster);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::string text = report->ToString();
  EXPECT_NE(text.find("metrics/kvs:"), std::string::npos);
  EXPECT_NE(text.find("metrics/query:"), std::string::npos);
  EXPECT_NE(text.find("metrics/write:"), std::string::npos);
  EXPECT_NE(text.find("queries_total=1"), std::string::npos);
}

}  // namespace
}  // namespace rstore
