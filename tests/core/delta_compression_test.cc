// Record-level delta compression for the DELTA baseline (paper Table 1's
// c*d storage factor): updated records are stored as deltas against their
// predecessors and resolved during chain replay.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

uint64_t StoredBytes(MemoryStore* backend, const Options& options) {
  uint64_t total = 0;
  (void)backend->Scan(options.chunk_table,
                      [&](Slice, Slice v) { total += v.size(); });
  return total;
}

ExampleData SimilarPayloadChain() {
  // Large records with tiny per-version changes: the case record-level
  // deltas exist for. The shared body is pseudo-random so plain LZ within a
  // record cannot fake the benefit.
  ExampleData data = MakeChain(40, 6, 2);
  Random rng(99);
  std::string body;
  for (int i = 0; i < 1200; ++i) {
    body.push_back(static_cast<char>('!' + rng.Uniform(90)));
  }
  for (auto& [ck, payload] : data.payloads) {
    payload = body;
    // Small version-specific edit.
    std::string marker = ck.key + "#" + std::to_string(ck.version);
    payload.replace(ck.version % 900, marker.size(), marker);
  }
  return data;
}

TEST(DeltaCompressionTest, ShrinksDeltaBaselineStorage) {
  ExampleData data = SimilarPayloadChain();
  Options with;
  with.algorithm = PartitionAlgorithm::kDeltaBaseline;
  with.chunk_capacity_bytes = 8 << 10;
  with.delta_baseline_record_compression = true;
  Options without = with;
  without.delta_baseline_record_compression = false;

  MemoryStore backend_with, backend_without;
  auto store_with = RStore::Open(&backend_with, with);
  auto store_without = RStore::Open(&backend_without, without);
  ASSERT_TRUE(store_with.ok());
  ASSERT_TRUE(store_without.ok());
  ASSERT_TRUE((*store_with)->BulkLoad(data.dataset, data.payloads).ok());
  ASSERT_TRUE((*store_without)->BulkLoad(data.dataset, data.payloads).ok());

  uint64_t compressed = StoredBytes(&backend_with, with);
  uint64_t raw = StoredBytes(&backend_without, without);
  // ~79 updated 1.2KB records shrink to small deltas.
  EXPECT_LT(compressed, raw / 2)
      << "compressed=" << compressed << " raw=" << raw;
}

TEST(DeltaCompressionTest, ChainReplayReconstructsExactly) {
  ExampleData data = SimilarPayloadChain();
  Options options;
  options.algorithm = PartitionAlgorithm::kDeltaBaseline;
  options.chunk_capacity_bytes = 8 << 10;
  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  for (VersionId v : {VersionId{0}, VersionId{20}, VersionId{39}}) {
    auto got = (*store)->GetVersion(v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    std::map<std::string, std::string> actual;
    for (const Record& r : *got) actual[r.key.key] = r.payload;
    std::map<std::string, std::string> expected;
    for (const CompositeKey& ck : data.dataset.MaterializeVersion(v)) {
      expected[ck.key] = data.payloads.at(ck);
    }
    EXPECT_EQ(actual, expected) << "V" << v;
  }
  // Evolution and point queries replay chains too.
  auto history = (*store)->GetHistory("key1002");
  ASSERT_TRUE(history.ok());
  ASSERT_GT(history->size(), 3u);
  for (const Record& r : *history) {
    EXPECT_EQ(r.payload, data.payloads.at(r.key));
  }
  auto point = (*store)->GetRecord("key1002", 30);
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->payload, data.payloads.at(point->key));
}

TEST(DeltaCompressionTest, OnlineCommitsFallBackGracefully) {
  // Parent payloads from earlier batches are not in the write store; those
  // records are stored whole but everything must still reconstruct.
  ExampleData data = SimilarPayloadChain();
  Options options;
  options.algorithm = PartitionAlgorithm::kDeltaBaseline;
  options.chunk_capacity_bytes = 8 << 10;
  options.online_batch_size = 7;
  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  for (VersionId v = 0; v < data.dataset.graph.size(); ++v) {
    CommitDelta delta;
    std::map<std::string, bool> added;
    for (const CompositeKey& ck : data.dataset.deltas[v].added) {
      added[ck.key] = true;
      delta.upserts.push_back(Record{ck, data.payloads.at(ck)});
    }
    for (const CompositeKey& ck : data.dataset.deltas[v].removed) {
      if (!added.count(ck.key)) delta.deletes.push_back(ck.key);
    }
    VersionId parent =
        v == 0 ? kInvalidVersion : data.dataset.graph.PrimaryParent(v);
    ASSERT_TRUE((*store)->Commit(parent, std::move(delta)).ok()) << v;
  }
  ASSERT_TRUE((*store)->Flush().ok());
  auto got = (*store)->GetVersion(39);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (const Record& r : *got) {
    EXPECT_EQ(r.payload, data.payloads.at(r.key));
  }
}

TEST(DeltaCompressionTest, SubChunkExternalParentRoundTrip) {
  std::string base(800, 'b');
  std::string target = base;
  target.replace(100, 10, "CHANGEDXYZ");
  SubChunk::Member member;
  member.key = CompositeKey("K", 5);
  member.payload = target;
  member.external_parent = CompositeKey("K", 2);
  member.external_parent_payload = base;
  auto sc = SubChunk::Build({std::move(member)}, CompressionType::kLZ);
  ASSERT_TRUE(sc.ok());
  EXPECT_TRUE(sc->HasExternalParents());
  // Small delta instead of the whole record.
  EXPECT_LT(sc->serialized_size(), 200u);

  // Extraction without a resolver fails cleanly.
  EXPECT_FALSE(sc->ExtractPayload(CompositeKey("K", 5)).ok());
  // With a resolver it reconstructs exactly, surviving encode/decode.
  std::string encoded;
  sc->EncodeTo(&encoded);
  Slice in(encoded);
  SubChunk decoded;
  ASSERT_TRUE(SubChunk::DecodeFrom(&in, &decoded).ok());
  EXPECT_TRUE(decoded.HasExternalParents());
  auto resolver = [&](const CompositeKey& ck) -> Result<std::string> {
    EXPECT_EQ(ck, CompositeKey("K", 2));
    return base;
  };
  auto payload = decoded.ExtractPayload(CompositeKey("K", 5), resolver);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(*payload, target);
}

}  // namespace
}  // namespace rstore
