#ifndef RSTORE_TESTS_CORE_CORE_TEST_UTIL_H_
#define RSTORE_TESTS_CORE_CORE_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/record.h"
#include "version/dataset.h"

namespace rstore {
namespace testing {

/// The paper's Example 2 dataset (Fig. 1): five versions, nine distinct
/// records, with deterministic payloads.
struct ExampleData {
  VersionedDataset dataset;
  RecordPayloadMap payloads;
};

inline std::string PayloadFor(const CompositeKey& ck) {
  // JSON-ish payload, distinct per record, long enough to exercise
  // compression paths.
  std::string body = "{\"key\":\"" + ck.key + "\",\"origin\":" +
                     std::to_string(ck.version) + ",\"data\":\"";
  for (int i = 0; i < 8; ++i) body += ck.key + "-" + std::to_string(i) + " ";
  body += "\"}";
  return body;
}

inline ExampleData MakeExample2() {
  ExampleData out;
  VersionedDataset& ds = out.dataset;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({1});
  (void)*ds.graph.AddVersion({2});
  ds.deltas.resize(5);
  for (int k = 0; k < 4; ++k) {
    ds.deltas[0].added.emplace_back("K" + std::to_string(k), 0);
  }
  ds.deltas[1].added = {{"K3", 1}, {"K4", 1}};
  ds.deltas[1].removed = {{"K3", 0}};
  ds.deltas[2].added = {{"K3", 2}, {"K5", 2}};
  ds.deltas[2].removed = {{"K3", 0}, {"K2", 0}};
  ds.deltas[3].removed = {{"K2", 0}};
  ds.deltas[4].added = {{"K3", 4}};
  ds.deltas[4].removed = {{"K3", 2}};
  for (const VersionDelta& delta : ds.deltas) {
    for (const CompositeKey& ck : delta.added) {
      out.payloads[ck] = PayloadFor(ck);
    }
  }
  return out;
}

/// A linear chain: `versions` versions over `keys` primary keys, updating
/// `updates_per_version` round-robin keys each step.
inline ExampleData MakeChain(uint32_t versions, uint32_t keys,
                             uint32_t updates_per_version) {
  ExampleData out;
  VersionedDataset& ds = out.dataset;
  ds.graph.AddRoot();
  ds.deltas.resize(1);
  std::vector<CompositeKey> current;
  for (uint32_t k = 0; k < keys; ++k) {
    CompositeKey ck("key" + std::to_string(1000 + k), 0);
    ds.deltas[0].added.push_back(ck);
    current.push_back(ck);
  }
  for (VersionId v = 1; v < versions; ++v) {
    (void)*ds.graph.AddVersion({v - 1});
    VersionDelta delta;
    for (uint32_t u = 0; u < updates_per_version; ++u) {
      uint32_t key_index = (v * updates_per_version + u) % keys;
      delta.removed.push_back(current[key_index]);
      CompositeKey updated(current[key_index].key, v);
      delta.added.push_back(updated);
      current[key_index] = updated;
    }
    ds.deltas.push_back(std::move(delta));
  }
  for (const VersionDelta& delta : ds.deltas) {
    for (const CompositeKey& ck : delta.added) {
      out.payloads[ck] = PayloadFor(ck);
    }
  }
  return out;
}

}  // namespace testing
}  // namespace rstore

#endif  // RSTORE_TESTS_CORE_CORE_TEST_UTIL_H_
