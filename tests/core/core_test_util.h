#ifndef RSTORE_TESTS_CORE_CORE_TEST_UTIL_H_
#define RSTORE_TESTS_CORE_CORE_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "core/record.h"
#include "core/rstore.h"
#include "version/dataset.h"
#include "workload/query_workload.h"

namespace rstore {
namespace testing {

/// The paper's Example 2 dataset (Fig. 1): five versions, nine distinct
/// records, with deterministic payloads.
struct ExampleData {
  VersionedDataset dataset;
  RecordPayloadMap payloads;
};

inline std::string PayloadFor(const CompositeKey& ck) {
  // JSON-ish payload, distinct per record, long enough to exercise
  // compression paths.
  std::string body = "{\"key\":\"" + ck.key + "\",\"origin\":" +
                     std::to_string(ck.version) + ",\"data\":\"";
  for (int i = 0; i < 8; ++i) body += ck.key + "-" + std::to_string(i) + " ";
  body += "\"}";
  return body;
}

inline ExampleData MakeExample2() {
  ExampleData out;
  VersionedDataset& ds = out.dataset;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({1});
  (void)*ds.graph.AddVersion({2});
  ds.deltas.resize(5);
  for (int k = 0; k < 4; ++k) {
    ds.deltas[0].added.emplace_back("K" + std::to_string(k), 0);
  }
  ds.deltas[1].added = {{"K3", 1}, {"K4", 1}};
  ds.deltas[1].removed = {{"K3", 0}};
  ds.deltas[2].added = {{"K3", 2}, {"K5", 2}};
  ds.deltas[2].removed = {{"K3", 0}, {"K2", 0}};
  ds.deltas[3].removed = {{"K2", 0}};
  ds.deltas[4].added = {{"K3", 4}};
  ds.deltas[4].removed = {{"K3", 2}};
  for (const VersionDelta& delta : ds.deltas) {
    for (const CompositeKey& ck : delta.added) {
      out.payloads[ck] = PayloadFor(ck);
    }
  }
  return out;
}

/// A linear chain: `versions` versions over `keys` primary keys, updating
/// `updates_per_version` round-robin keys each step.
inline ExampleData MakeChain(uint32_t versions, uint32_t keys,
                             uint32_t updates_per_version) {
  ExampleData out;
  VersionedDataset& ds = out.dataset;
  ds.graph.AddRoot();
  ds.deltas.resize(1);
  std::vector<CompositeKey> current;
  for (uint32_t k = 0; k < keys; ++k) {
    CompositeKey ck("key" + std::to_string(1000 + k), 0);
    ds.deltas[0].added.push_back(ck);
    current.push_back(ck);
  }
  for (VersionId v = 1; v < versions; ++v) {
    (void)*ds.graph.AddVersion({v - 1});
    VersionDelta delta;
    for (uint32_t u = 0; u < updates_per_version; ++u) {
      uint32_t key_index = (v * updates_per_version + u) % keys;
      delta.removed.push_back(current[key_index]);
      CompositeKey updated(current[key_index].key, v);
      delta.added.push_back(updated);
      current[key_index] = updated;
    }
    ds.deltas.push_back(std::move(delta));
  }
  for (const VersionDelta& delta : ds.deltas) {
    for (const CompositeKey& ck : delta.added) {
      out.payloads[ck] = PayloadFor(ck);
    }
  }
  return out;
}

/// Canonical byte serialization of a query result. Query results are
/// deterministically ordered, so two stores that agree record for record
/// produce identical bytes.
inline std::string SerializeRecords(const std::vector<Record>& records) {
  std::string out;
  for (const Record& r : records) {
    out += r.key.key;
    out += '\x1f';
    out += std::to_string(r.key.version);
    out += '\x1f';
    out += r.payload;
    out += '\x1e';
  }
  return out;
}

/// The outcome of replaying a fixed query workload against one store: one
/// canonical serialization per executed query, plus the accumulated
/// QueryStats. Two stores configured differently (e.g. cache on vs. off)
/// replayed with the same seed must produce byte-identical `results`.
struct WorkloadReplay {
  std::vector<std::string> results;
  QueryStats stats;
};

/// The deterministic mixed query list derived from `seed`: full-version,
/// range, evolution and point queries, repeated `passes` times so a cache
/// on the read path sees genuine re-use (the first pass cold, later warm).
/// Both the sync and the async replay walk this same list, which is what
/// makes their outputs comparable position by position.
inline std::vector<workload::Query> BuildReplayQueries(
    const VersionedDataset& dataset, uint64_t seed, int passes = 2) {
  workload::QueryWorkloadGenerator qgen(&dataset, seed);
  const std::vector<workload::Query> full = qgen.FullVersionQueries(3);
  const std::vector<workload::Query> ranges = qgen.RangeQueries(3, 0.2);
  const std::vector<workload::Query> evolutions = qgen.EvolutionQueries(3);
  const std::vector<workload::Query> points = qgen.PointQueries(5);
  std::vector<workload::Query> out;
  for (int pass = 0; pass < passes; ++pass) {
    out.insert(out.end(), full.begin(), full.end());
    out.insert(out.end(), ranges.begin(), ranges.end());
    out.insert(out.end(), evolutions.begin(), evolutions.end());
    out.insert(out.end(), points.begin(), points.end());
  }
  return out;
}

/// Replays the deterministic mixed query workload derived from `seed`
/// against `store` through the synchronous API.
inline Result<WorkloadReplay> ReplayQueryWorkload(
    RStore* store, const VersionedDataset& dataset, uint64_t seed,
    int passes = 2) {
  WorkloadReplay out;
  for (const workload::Query& q : BuildReplayQueries(dataset, seed, passes)) {
    switch (q.kind) {
      case workload::Query::Kind::kFullVersion: {
        auto got = store->GetVersion(q.version, &out.stats);
        if (!got.ok()) return got.status();
        out.results.push_back("v:" + SerializeRecords(*got));
        break;
      }
      case workload::Query::Kind::kRange: {
        auto got = store->GetRange(q.version, q.key_lo, q.key_hi, &out.stats);
        if (!got.ok()) return got.status();
        out.results.push_back("r:" + SerializeRecords(*got));
        break;
      }
      case workload::Query::Kind::kEvolution: {
        auto got = store->GetHistory(q.key, &out.stats);
        if (!got.ok()) return got.status();
        out.results.push_back("h:" + SerializeRecords(*got));
        break;
      }
      case workload::Query::Kind::kPoint: {
        auto got = store->GetRecord(q.key, q.version, &out.stats);
        if (got.status().IsNotFound()) {
          out.results.push_back("p:notfound");
        } else {
          if (!got.ok()) return got.status();
          out.results.push_back("p:" + SerializeRecords({*got}));
        }
        break;
      }
    }
  }
  return out;
}

/// Replays the same workload through the async API on `executor`.
/// `window` = 0 submits every query up front (maximum overlap); `window`
/// = 1 drains the executor after each submission — the sequential mode
/// whose timeline must equal the synchronous engine's exactly. Results are
/// recorded by submission index, so `results` is position-comparable with
/// the synchronous replay regardless of completion order.
inline Result<WorkloadReplay> ReplayQueryWorkloadAsync(
    RStore* store, Executor* executor, const VersionedDataset& dataset,
    uint64_t seed, size_t window = 0, int passes = 2) {
  const std::vector<workload::Query> queries =
      BuildReplayQueries(dataset, seed, passes);
  WorkloadReplay out;
  out.results.resize(queries.size());
  Status first_error = Status::OK();
  auto fail = [&first_error](const Status& s) {
    if (first_error.ok()) first_error = s;
  };
  for (size_t i = 0; i < queries.size(); ++i) {
    const workload::Query& q = queries[i];
    switch (q.kind) {
      case workload::Query::Kind::kFullVersion:
        store->GetVersionAsync(executor, q.version)
            .OnReady([&out, &fail, i](const AsyncQueryResult& r) {
              if (!r.status.ok()) return fail(r.status);
              out.stats += r.stats;
              out.results[i] = "v:" + SerializeRecords(r.records);
            });
        break;
      case workload::Query::Kind::kRange:
        store->GetRangeAsync(executor, q.version, q.key_lo, q.key_hi)
            .OnReady([&out, &fail, i](const AsyncQueryResult& r) {
              if (!r.status.ok()) return fail(r.status);
              out.stats += r.stats;
              out.results[i] = "r:" + SerializeRecords(r.records);
            });
        break;
      case workload::Query::Kind::kEvolution:
        store->GetHistoryAsync(executor, q.key)
            .OnReady([&out, &fail, i](const AsyncQueryResult& r) {
              if (!r.status.ok()) return fail(r.status);
              out.stats += r.stats;
              out.results[i] = "h:" + SerializeRecords(r.records);
            });
        break;
      case workload::Query::Kind::kPoint:
        store->GetRecordAsync(executor, q.key, q.version)
            .OnReady([&out, &fail, i](const AsyncRecordResult& r) {
              if (r.status.IsNotFound()) {
                out.stats += r.stats;
                out.results[i] = "p:notfound";
                return;
              }
              if (!r.status.ok()) return fail(r.status);
              out.stats += r.stats;
              out.results[i] = "p:" + SerializeRecords({r.record});
            });
        break;
    }
    if (window == 1) executor->RunUntilIdle();
  }
  executor->RunUntilIdle();
  if (!first_error.ok()) return first_error;
  return out;
}

}  // namespace testing
}  // namespace rstore

#endif  // RSTORE_TESTS_CORE_CORE_TEST_UTIL_H_
