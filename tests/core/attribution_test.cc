// Property test for the latency-attribution algebra: for every query, on
// every partitioner, through both engines, cached or not, faulted or not,
// the attribution must conserve — queue_wait + service + retry_penalty -
// hedge_delta equals the query's simulated_micros, exactly. The flight
// recorder, the exemplars and the bench's per-class breakdowns all read
// these four fields; conservation is what makes them an attribution rather
// than four unrelated counters.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/executor.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/cluster.h"

namespace rstore {
namespace {

using testing::BuildReplayQueries;
using testing::ExampleData;
using testing::MakeChain;

constexpr PartitionAlgorithm kAllAlgorithms[] = {
    PartitionAlgorithm::kBottomUp,        PartitionAlgorithm::kShingle,
    PartitionAlgorithm::kDepthFirst,      PartitionAlgorithm::kBreadthFirst,
    PartitionAlgorithm::kDeltaBaseline,   PartitionAlgorithm::kSubChunkBaseline,
    PartitionAlgorithm::kSingleAddressSpace,
};

/// The chaos suite's fault schedule: transient errors and latency spikes
/// everywhere, crash windows on two of the five nodes (rf=3 keeps every key
/// served, so strict queries still succeed).
FaultInjectorOptions ChaosSchedule(uint64_t seed) {
  FaultInjectorOptions f;
  f.seed = seed;
  f.default_profile.transient_error_rate = 0.04;
  f.default_profile.slow_rate = 0.2;
  f.default_profile.slow_multiplier = 20.0;
  f.per_node[1] = f.default_profile;
  f.per_node[1].crash_windows = {{10, 40}, {90, 130}};
  f.per_node[3] = f.default_profile;
  f.per_node[3].crash_windows = {{25, 70}};
  return f;
}

/// fault_seed == 0 means a clean cluster; any other value applies the chaos
/// schedule rooted at that seed.
ClusterOptions MakeClusterOptions(uint64_t fault_seed) {
  ClusterOptions o;
  o.num_nodes = 5;
  o.replication_factor = 3;
  if (fault_seed != 0) {
    o.latency.hedge_threshold_us = 3000;
    o.retry.max_attempts = 4;
    o.faults = ChaosSchedule(fault_seed);
  }
  return o;
}

void ExpectConserved(const QueryStats& qs, const std::string& what) {
  EXPECT_EQ(qs.queue_wait_us + qs.service_us + qs.retry_penalty_us -
                qs.hedge_delta_us,
            qs.simulated_micros)
      << what << ": " << qs.queue_wait_us << " + " << qs.service_us << " + "
      << qs.retry_penalty_us << " - " << qs.hedge_delta_us
      << " != " << qs.simulated_micros;
}

/// Replays the deterministic mixed workload one query at a time through the
/// sync API (fresh QueryStats per query, so the invariant is per-query, not
/// just in aggregate), then pushes the same list through the async engine
/// with every query in flight at once — the regime where queue_wait_us is
/// actually nonzero — checking each completion's stats.
void CheckConservationEverywhere(PartitionAlgorithm algorithm,
                                 uint64_t fault_seed, bool cached) {
  SCOPED_TRACE(std::string(PartitionAlgorithmName(algorithm)) +
               (cached ? " cached" : " uncached") +
               " fault_seed=" + std::to_string(fault_seed));
  ExampleData data = MakeChain(16, 12, 4);
  Cluster cluster(MakeClusterOptions(fault_seed));
  Options options;
  options.algorithm = algorithm;
  options.chunk_capacity_bytes = 700;
  if (cached) options.cache_capacity_bytes = 1 << 20;
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Two passes over the query mix: with a cache configured, the second pass
  // runs warm — conservation must hold for zero-backend-work queries too.
  const std::vector<workload::Query> queries =
      BuildReplayQueries(data.dataset, /*seed=*/42);

  uint64_t total_service = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const workload::Query& q = queries[i];
    QueryStats qs;
    switch (q.kind) {
      case workload::Query::Kind::kFullVersion:
        ASSERT_TRUE((*store)->GetVersion(q.version, &qs).ok());
        break;
      case workload::Query::Kind::kRange:
        ASSERT_TRUE(
            (*store)->GetRange(q.version, q.key_lo, q.key_hi, &qs).ok());
        break;
      case workload::Query::Kind::kEvolution:
        ASSERT_TRUE((*store)->GetHistory(q.key, &qs).ok());
        break;
      case workload::Query::Kind::kPoint: {
        auto got = (*store)->GetRecord(q.key, q.version, &qs);
        ASSERT_TRUE(got.ok() || got.status().IsNotFound())
            << got.status().ToString();
        break;
      }
    }
    ExpectConserved(qs, "sync query " + std::to_string(i));
    total_service += qs.service_us;
  }
  EXPECT_GT(total_service, 0u);  // the invariant wasn't vacuously 0 == 0

  Executor executor(0);
  size_t completed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const workload::Query& q = queries[i];
    auto check = [&completed, i](const Status& status, const QueryStats& qs) {
      EXPECT_TRUE(status.ok() || status.IsNotFound()) << status.ToString();
      ExpectConserved(qs, "async query " + std::to_string(i));
      ++completed;
    };
    switch (q.kind) {
      case workload::Query::Kind::kFullVersion:
        (*store)->GetVersionAsync(&executor, q.version)
            .OnReady([check](const AsyncQueryResult& r) {
              check(r.status, r.stats);
            });
        break;
      case workload::Query::Kind::kRange:
        (*store)->GetRangeAsync(&executor, q.version, q.key_lo, q.key_hi)
            .OnReady([check](const AsyncQueryResult& r) {
              check(r.status, r.stats);
            });
        break;
      case workload::Query::Kind::kEvolution:
        (*store)->GetHistoryAsync(&executor, q.key)
            .OnReady([check](const AsyncQueryResult& r) {
              check(r.status, r.stats);
            });
        break;
      case workload::Query::Kind::kPoint:
        (*store)->GetRecordAsync(&executor, q.key, q.version)
            .OnReady([check](const AsyncRecordResult& r) {
              check(r.status, r.stats);
            });
        break;
    }
  }
  executor.RunUntilIdle();
  EXPECT_EQ(completed, queries.size());
}

TEST(AttributionConservationTest, HoldsForEveryPartitioner) {
  for (PartitionAlgorithm algorithm : kAllAlgorithms) {
    for (uint64_t fault_seed : {uint64_t{0}, uint64_t{1}}) {
      CheckConservationEverywhere(algorithm, fault_seed, /*cached=*/false);
    }
  }
}

TEST(AttributionConservationTest, HoldsAcrossChaosSeedsAndCacheModes) {
  for (uint64_t fault_seed : {0, 1, 2, 3, 4, 5}) {
    for (bool cached : {false, true}) {
      CheckConservationEverywhere(PartitionAlgorithm::kBottomUp,
                                  static_cast<uint64_t>(fault_seed), cached);
    }
  }
}

}  // namespace
}  // namespace rstore
