// Unit tests for the sharded LRU chunk cache: recency order, byte-budget
// enforcement, oversized-entry rejection, counter accuracy, and the
// Validate() structural invariants under randomized operation mixes.

#include "core/chunk_cache.h"

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <vector>

#include "common/random.h"

namespace rstore {

// Friend of ChunkCache: corrupts single-shard caches from the inside so each
// Validate() detection branch can be shown to actually fire. Every helper
// assumes num_shards == 1 (shard 0 holds everything).
class ChunkCacheTestPeer {
 public:
  // index loses an entry the LRU list still holds -> size mismatch.
  static void DropIndexEntry(ChunkCache* cache) {
    ChunkCache::Shard& shard = cache->shards_[0];
    MutexLock lock(shard.mu);
    shard.index.erase(shard.index.begin());
  }

  // The front entry's index slot points at the second node -> back-pointer
  // disagreement. Needs at least two resident entries.
  static void RebindIndexEntry(ChunkCache* cache) {
    ChunkCache::Shard& shard = cache->shards_[0];
    MutexLock lock(shard.mu);
    shard.index[shard.lru.front().key] = std::next(shard.lru.begin());
  }

  static void NullOutFrontChunk(ChunkCache* cache) {
    ChunkCache::Shard& shard = cache->shards_[0];
    MutexLock lock(shard.mu);
    shard.lru.front().chunk = nullptr;
  }

  // Entry charge changes without the shard total following -> drift.
  static void SkewFrontCharge(ChunkCache* cache) {
    ChunkCache::Shard& shard = cache->shards_[0];
    MutexLock lock(shard.mu);
    shard.lru.front().charge += 1;
  }

  // Entry charge and shard total stay consistent but blow the budget.
  static void InflatePastBudget(ChunkCache* cache) {
    ChunkCache::Shard& shard = cache->shards_[0];
    MutexLock lock(shard.mu);
    uint64_t delta = cache->shard_capacity_;
    shard.lru.front().charge += delta;
    shard.charged += delta;
  }
};

namespace {

ChunkCacheKey Key(ChunkId chunk, uint64_t generation = 0,
                  uint64_t owner = 1) {
  return ChunkCacheKey{owner, chunk, generation};
}

std::shared_ptr<const Chunk> FakeChunk(ChunkId id) {
  return std::make_shared<Chunk>(id);
}

TEST(ChunkCacheTest, LookupReturnsInsertedChunk) {
  ChunkCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(1), FakeChunk(1), 100);
  auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id(), 1u);
  // A different generation of the same chunk is a different entry.
  EXPECT_EQ(cache.Lookup(Key(1, /*generation=*/1)), nullptr);
  // As is the same chunk under a different owner.
  EXPECT_EQ(cache.Lookup(Key(1, 0, /*owner=*/2)), nullptr);
}

TEST(ChunkCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard so recency is globally ordered.
  ChunkCache cache(/*capacity_bytes=*/100, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 40);
  cache.Insert(Key(2), FakeChunk(2), 40);
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(3), FakeChunk(3), 40);
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_NE(cache.Lookup(Key(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ChunkCacheTest, ChargedBytesNeverExceedCapacity) {
  ChunkCache cache(/*capacity_bytes=*/200, /*num_shards=*/1);
  for (ChunkId id = 0; id < 50; ++id) {
    cache.Insert(Key(id), FakeChunk(id), 30 + id % 40);
    EXPECT_LE(cache.stats().charged_bytes, cache.capacity_bytes());
  }
  EXPECT_TRUE(cache.Validate().ok());
}

TEST(ChunkCacheTest, OversizedEntryIsRejected) {
  // 4 shards x 64 bytes each: a 100-byte entry can never fit one shard.
  ChunkCache cache(/*capacity_bytes=*/256, /*num_shards=*/4);
  EXPECT_EQ(cache.shard_capacity_bytes(), 64u);
  cache.Insert(Key(1), FakeChunk(1), 100);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.rejected_inserts, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.charged_bytes, 0u);

  // A rejected replace drops the stale resident entry rather than keeping
  // a copy the caller just tried to supersede.
  cache.Insert(Key(2), FakeChunk(2), 10);
  ASSERT_NE(cache.Lookup(Key(2)), nullptr);
  cache.Insert(Key(2), FakeChunk(2), 100);
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_TRUE(cache.Validate().ok());
}

TEST(ChunkCacheTest, ReplacingAnEntryAdjustsTheCharge) {
  ChunkCache cache(/*capacity_bytes=*/100, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 60);
  EXPECT_EQ(cache.stats().charged_bytes, 60u);
  cache.Insert(Key(1), FakeChunk(1), 20);
  ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.charged_bytes, 20u);
  EXPECT_EQ(stats.entries, 1u);
  // The replace freed 60 bytes, so another 80-byte entry fits alongside.
  cache.Insert(Key(2), FakeChunk(2), 80);
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_NE(cache.Lookup(Key(2)), nullptr);
}

TEST(ChunkCacheTest, CountersAreExact) {
  ChunkCache cache(/*capacity_bytes=*/100, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 50);
  cache.Insert(Key(2), FakeChunk(2), 50);
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);   // hit
  ASSERT_EQ(cache.Lookup(Key(9)), nullptr);   // miss
  cache.Insert(Key(3), FakeChunk(3), 50);     // evicts 2 (LRU)
  ASSERT_EQ(cache.Lookup(Key(2)), nullptr);   // miss
  ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.rejected_inserts, 0u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.charged_bytes, 100u);
  EXPECT_EQ(stats.capacity_bytes, 100u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);
}

TEST(ChunkCacheTest, EvictedEntrySurvivesOutstandingReference) {
  ChunkCache cache(/*capacity_bytes=*/50, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 50);
  std::shared_ptr<const Chunk> held = cache.Lookup(Key(1));
  ASSERT_NE(held, nullptr);
  cache.Insert(Key(2), FakeChunk(2), 50);  // evicts 1
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  // The shared_ptr handed out earlier keeps the chunk alive.
  EXPECT_EQ(held->id(), 1u);
}

TEST(ChunkCacheTest, EraseAndClear) {
  ChunkCache cache(/*capacity_bytes=*/1024, /*num_shards=*/2);
  cache.Insert(Key(1), FakeChunk(1), 10);
  cache.Insert(Key(2), FakeChunk(2), 10);
  cache.Erase(Key(1));
  cache.Erase(Key(42));  // absent: no-op
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_NE(cache.Lookup(Key(2)), nullptr);
  cache.Clear();
  ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.charged_bytes, 0u);
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_TRUE(cache.Validate().ok());
}

TEST(ChunkCacheTest, NullChunkInsertIsIgnored) {
  ChunkCache cache(/*capacity_bytes=*/100, /*num_shards=*/1);
  cache.Insert(Key(1), nullptr, 10);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ChunkCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ChunkCache cache(/*capacity_bytes=*/1000, /*num_shards=*/3);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_EQ(cache.shard_capacity_bytes(), 250u);
  ChunkCache one(/*capacity_bytes=*/10, /*num_shards=*/0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(ChunkCacheTest, OwnerIdsAreDistinct) {
  ChunkCache cache(/*capacity_bytes=*/100);
  uint64_t a = cache.NewOwnerId();
  uint64_t b = cache.NewOwnerId();
  EXPECT_NE(a, b);
}

TEST(ChunkCacheTest, ValidateHoldsUnderRandomizedOperations) {
  Random rng(20240807);
  ChunkCache cache(/*capacity_bytes=*/500, /*num_shards=*/4);
  for (int op = 0; op < 5000; ++op) {
    ChunkCacheKey key = Key(rng.Uniform(32), rng.Uniform(3));
    switch (rng.Uniform(4)) {
      case 0:
      case 1:
        cache.Insert(key, FakeChunk(key.chunk), 1 + rng.Uniform(150));
        break;
      case 2:
        (void)cache.Lookup(key);
        break;
      case 3:
        cache.Erase(key);
        break;
    }
    if (op % 512 == 0) {
      Status s = cache.Validate();
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }
  Status s = cache.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
  ChunkCacheStats stats = cache.stats();
  EXPECT_LE(stats.charged_bytes, stats.capacity_bytes);
}

// Each corruption class Validate() claims to detect, injected through the
// test peer and shown to produce kCorruption with the expected diagnosis.
// All caches are single-shard so the peer knows where the entries live.

TEST(ChunkCacheValidateTest, DetectsIndexLruSizeMismatch) {
  ChunkCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 10);
  ASSERT_TRUE(cache.Validate().ok());
  ChunkCacheTestPeer::DropIndexEntry(&cache);
  Status s = cache.Validate();
  ASSERT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("size mismatch"), std::string::npos)
      << s.ToString();
}

TEST(ChunkCacheValidateTest, DetectsRewiredIndexEntry) {
  ChunkCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 10);
  cache.Insert(Key(2), FakeChunk(2), 10);
  ASSERT_TRUE(cache.Validate().ok());
  ChunkCacheTestPeer::RebindIndexEntry(&cache);
  Status s = cache.Validate();
  ASSERT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("not indexed"), std::string::npos)
      << s.ToString();
}

TEST(ChunkCacheValidateTest, DetectsResidentNullChunk) {
  ChunkCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 10);
  ChunkCacheTestPeer::NullOutFrontChunk(&cache);
  Status s = cache.Validate();
  ASSERT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("null chunk"), std::string::npos)
      << s.ToString();
}

TEST(ChunkCacheValidateTest, DetectsChargeAccountingDrift) {
  ChunkCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 10);
  ChunkCacheTestPeer::SkewFrontCharge(&cache);
  Status s = cache.Validate();
  ASSERT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("drifted"), std::string::npos) << s.ToString();
}

TEST(ChunkCacheValidateTest, DetectsBudgetOverrun) {
  ChunkCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  cache.Insert(Key(1), FakeChunk(1), 10);
  ChunkCacheTestPeer::InflatePastBudget(&cache);
  Status s = cache.Validate();
  ASSERT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("over budget"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace rstore
