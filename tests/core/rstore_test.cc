#include "core/rstore.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core_test_util.h"
#include "kvstore/cluster.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;
using testing::MakeExample2;
using testing::PayloadFor;

Options SmallChunkOptions(PartitionAlgorithm algorithm) {
  Options options;
  options.algorithm = algorithm;
  options.chunk_capacity_bytes = 600;
  return options;
}

/// Ground truth: the expected (key -> payload) contents of a version.
std::map<std::string, std::string> ExpectedVersion(const ExampleData& data,
                                                   VersionId v) {
  std::map<std::string, std::string> out;
  for (const CompositeKey& ck : data.dataset.MaterializeVersion(v)) {
    out[ck.key] = data.payloads.at(ck);
  }
  return out;
}

std::map<std::string, std::string> ToMap(const std::vector<Record>& records) {
  std::map<std::string, std::string> out;
  for (const Record& r : records) out[r.key.key] = r.payload;
  return out;
}

constexpr PartitionAlgorithm kAllAlgorithms[] = {
    PartitionAlgorithm::kBottomUp,        PartitionAlgorithm::kShingle,
    PartitionAlgorithm::kDepthFirst,      PartitionAlgorithm::kBreadthFirst,
    PartitionAlgorithm::kDeltaBaseline,   PartitionAlgorithm::kSubChunkBaseline,
    PartitionAlgorithm::kSingleAddressSpace,
};

class RStoreAllAlgorithmsTest
    : public ::testing::TestWithParam<PartitionAlgorithm> {};

// Differential test: every algorithm and baseline must return byte-identical
// query results; they differ only in layout and cost.
TEST_P(RStoreAllAlgorithmsTest, QueriesMatchGroundTruth) {
  ExampleData data = MakeChain(25, 12, 3);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallChunkOptions(GetParam()));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  for (VersionId v : {VersionId{0}, VersionId{7}, VersionId{24}}) {
    auto got = (*store)->GetVersion(v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(ToMap(*got), ExpectedVersion(data, v)) << "V" << v;
  }

  // Range: middle slice of the key space.
  auto range = (*store)->GetRange(24, "key1003", "key1007");
  ASSERT_TRUE(range.ok());
  auto expected = ExpectedVersion(data, 24);
  std::map<std::string, std::string> expected_range;
  for (auto& [key, payload] : expected) {
    if (key >= "key1003" && key <= "key1007") expected_range[key] = payload;
  }
  EXPECT_EQ(ToMap(*range), expected_range);

  // History of one key: all of its composite keys, ascending.
  auto history = (*store)->GetHistory("key1005");
  ASSERT_TRUE(history.ok());
  std::vector<CompositeKey> expected_history;
  for (const auto& [ck, payload] : data.payloads) {
    if (ck.key == "key1005") expected_history.push_back(ck);
  }
  std::sort(expected_history.begin(), expected_history.end());
  ASSERT_EQ(history->size(), expected_history.size());
  for (size_t i = 0; i < history->size(); ++i) {
    EXPECT_EQ((*history)[i].key, expected_history[i]);
    EXPECT_EQ((*history)[i].payload, data.payloads.at(expected_history[i]));
  }

  // Point lookups, present and absent.
  auto rec = (*store)->GetRecord("key1005", 20);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->payload, ExpectedVersion(data, 20).at("key1005"));
  EXPECT_TRUE(
      (*store)->GetRecord("no-such-key", 20).status().IsNotFound());
}

TEST_P(RStoreAllAlgorithmsTest, SpanAccountingMatchesQueryStats) {
  ExampleData data = MakeChain(20, 10, 2);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallChunkOptions(GetParam()));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Sum of per-query chunk fetches over all versions == TotalVersionSpan.
  uint64_t fetched = 0;
  for (VersionId v = 0; v < 20; ++v) {
    QueryStats stats;
    ASSERT_TRUE((*store)->GetVersion(v, &stats).ok());
    fetched += stats.chunks_fetched;
  }
  EXPECT_EQ(fetched, (*store)->TotalVersionSpan());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, RStoreAllAlgorithmsTest, ::testing::ValuesIn(kAllAlgorithms),
    [](const ::testing::TestParamInfo<PartitionAlgorithm>& info) {
      std::string name = PartitionAlgorithmName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RStoreTest, OpenValidation) {
  EXPECT_FALSE(RStore::Open(nullptr, Options()).ok());
  MemoryStore backend;
  Options bad;
  bad.chunk_capacity_bytes = 0;
  EXPECT_FALSE(RStore::Open(&backend, bad).ok());
}

TEST(RStoreTest, BulkLoadTwiceFails) {
  ExampleData data = MakeExample2();
  MemoryStore backend;
  auto store =
      RStore::Open(&backend, SmallChunkOptions(PartitionAlgorithm::kBottomUp));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  EXPECT_TRUE(
      (*store)->BulkLoad(data.dataset, data.payloads).IsInvalidArgument());
}

TEST(RStoreTest, BulkLoadWithMergesViaTreeTransform) {
  ExampleData data;
  VersionedDataset& ds = data.dataset;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({1, 2});  // merge picks up C@2
  ds.deltas.resize(4);
  ds.deltas[0].added = {{"A", 0}};
  ds.deltas[1].added = {{"B", 1}};
  ds.deltas[2].added = {{"C", 2}};
  ds.deltas[3].added = {{"C", 2}};
  for (const auto& d : ds.deltas) {
    for (const auto& ck : d.added) data.payloads[ck] = PayloadFor(ck);
  }
  MemoryStore backend;
  auto store =
      RStore::Open(&backend, SmallChunkOptions(PartitionAlgorithm::kBottomUp));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Merge version contains A, B and (renamed) C with C@2's payload.
  auto v3 = (*store)->GetVersion(3);
  ASSERT_TRUE(v3.ok());
  auto contents = ToMap(*v3);
  EXPECT_EQ(contents.size(), 3u);
  EXPECT_EQ(contents.at("C"), PayloadFor(CompositeKey("C", 2)));
  // Original graph keeps the merge edge.
  EXPECT_TRUE((*store)->graph().IsMerge(3));
  EXPECT_TRUE((*store)->dataset().graph.IsTree());
}

TEST(RStoreTest, CommitBuildsHistoryFromScratch) {
  MemoryStore backend;
  Options options = SmallChunkOptions(PartitionAlgorithm::kBottomUp);
  options.online_batch_size = 4;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  RStore& s = **store;

  CommitDelta root;
  root.upserts.push_back({CompositeKey("patient/1", 0), "{\"age\":50}"});
  root.upserts.push_back({CompositeKey("patient/2", 0), "{\"age\":61}"});
  auto v0 = s.Commit(kInvalidVersion, std::move(root));
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(*v0, 0u);

  CommitDelta second;
  second.upserts.push_back({CompositeKey("patient/1", 0), "{\"age\":51}"});
  second.upserts.push_back({CompositeKey("patient/3", 0), "{\"age\":33}"});
  auto v1 = s.Commit(*v0, std::move(second));
  ASSERT_TRUE(v1.ok());

  CommitDelta third;
  third.deletes.push_back("patient/2");
  auto v2 = s.Commit(*v1, std::move(third));
  ASSERT_TRUE(v2.ok());

  auto r0 = s.GetVersion(*v0);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_EQ(ToMap(*r0),
            (std::map<std::string, std::string>{
                {"patient/1", "{\"age\":50}"}, {"patient/2", "{\"age\":61}"}}));
  auto r2 = s.GetVersion(*v2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ToMap(*r2),
            (std::map<std::string, std::string>{
                {"patient/1", "{\"age\":51}"}, {"patient/3", "{\"age\":33}"}}));

  auto history = s.GetHistory("patient/1");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 2u);
  EXPECT_EQ((*history)[0].payload, "{\"age\":50}");
  EXPECT_EQ((*history)[1].payload, "{\"age\":51}");
}

TEST(RStoreTest, CommitValidation) {
  MemoryStore backend;
  auto store =
      RStore::Open(&backend, SmallChunkOptions(PartitionAlgorithm::kBottomUp));
  ASSERT_TRUE(store.ok());
  RStore& s = **store;
  // First commit must use kInvalidVersion.
  CommitDelta c;
  c.upserts.push_back({CompositeKey("a", 0), "1"});
  EXPECT_TRUE(s.Commit(5, CommitDelta(c)).status().IsInvalidArgument());
  ASSERT_TRUE(s.Commit(kInvalidVersion, CommitDelta(c)).ok());
  // Unknown parent.
  EXPECT_TRUE(s.Commit(9, CommitDelta(c)).status().IsInvalidArgument());
  // Duplicate key in one commit.
  CommitDelta dup;
  dup.upserts.push_back({CompositeKey("x", 0), "1"});
  dup.upserts.push_back({CompositeKey("x", 0), "2"});
  EXPECT_TRUE(s.Commit(0, std::move(dup)).status().IsInvalidArgument());
  // Deleting an absent key.
  CommitDelta del;
  del.deletes.push_back("nope");
  EXPECT_TRUE(s.Commit(0, std::move(del)).status().IsInvalidArgument());
}

TEST(RStoreTest, BranchedCommits) {
  MemoryStore backend;
  auto store =
      RStore::Open(&backend, SmallChunkOptions(PartitionAlgorithm::kBottomUp));
  ASSERT_TRUE(store.ok());
  RStore& s = **store;
  CommitDelta root;
  root.upserts.push_back({CompositeKey("doc", 0), "base"});
  VersionId v0 = *s.Commit(kInvalidVersion, std::move(root));
  // Two children of v0 (a branch point).
  CommitDelta left;
  left.upserts.push_back({CompositeKey("doc", 0), "left-edit"});
  VersionId vl = *s.Commit(v0, std::move(left));
  CommitDelta right;
  right.upserts.push_back({CompositeKey("doc", 0), "right-edit"});
  VersionId vr = *s.Commit(v0, std::move(right));

  EXPECT_EQ(s.GetRecord("doc", v0)->payload, "base");
  EXPECT_EQ(s.GetRecord("doc", vl)->payload, "left-edit");
  EXPECT_EQ(s.GetRecord("doc", vr)->payload, "right-edit");
  auto history = s.GetHistory("doc");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 3u);
}

TEST(RStoreTest, OnlineBatchingDefersPartitioning) {
  MemoryStore backend;
  Options options = SmallChunkOptions(PartitionAlgorithm::kBottomUp);
  options.online_batch_size = 100;  // never auto-flushes in this test
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  RStore& s = **store;
  CommitDelta root;
  root.upserts.push_back({CompositeKey("k", 0), "v0"});
  VersionId v0 = *s.Commit(kInvalidVersion, std::move(root));
  (void)v0;
  EXPECT_EQ(s.NumChunks(), 0u);  // still staged
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_GT(s.NumChunks(), 0u);
  // Idempotent flush.
  ASSERT_TRUE(s.Flush().ok());
}

TEST(RStoreTest, MixedBulkLoadAndCommits) {
  ExampleData data = MakeChain(10, 6, 2);
  MemoryStore backend;
  Options options = SmallChunkOptions(PartitionAlgorithm::kBottomUp);
  options.online_batch_size = 2;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  RStore& s = **store;
  ASSERT_TRUE(s.BulkLoad(data.dataset, data.payloads).ok());

  // Extend history online from the last bulk version.
  VersionId tip = 9;
  for (int i = 0; i < 5; ++i) {
    CommitDelta c;
    c.upserts.push_back(
        {CompositeKey("key1001", 0), "updated-" + std::to_string(i)});
    auto v = s.Commit(tip, std::move(c));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    tip = *v;
  }
  EXPECT_EQ(s.GetRecord("key1001", tip)->payload, "updated-4");
  // Pre-existing keys still visible at the new tip.
  auto full = s.GetVersion(tip);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 6u);
  // And the old version still reconstructs exactly.
  auto v4 = s.GetVersion(4);
  ASSERT_TRUE(v4.ok());
  EXPECT_EQ(ToMap(*v4), ExpectedVersion(data, 4));
}

TEST(RStoreTest, WorksOnDistributedCluster) {
  ExampleData data = MakeChain(15, 8, 2);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 2;
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster,
                            SmallChunkOptions(PartitionAlgorithm::kBottomUp));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  QueryStats stats;
  auto got = (*store)->GetVersion(14, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToMap(*got), ExpectedVersion(data, 14));
  EXPECT_GT(stats.chunks_fetched, 0u);
  EXPECT_GT(stats.simulated_micros, 0u);
  // Survives a node failure thanks to replication.
  cluster.SetNodeAlive(0, false);
  auto again = (*store)->GetVersion(14);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ToMap(*again), ExpectedVersion(data, 14));
}

TEST(RStoreTest, CompressionRatioReported) {
  ExampleData data = MakeChain(30, 5, 2);
  // Highly-compressible payloads with small per-version diffs.
  for (auto& [ck, payload] : data.payloads) {
    payload = std::string(1500, 'z') + ck.ToString();
  }
  MemoryStore backend;
  Options options = SmallChunkOptions(PartitionAlgorithm::kBottomUp);
  options.max_sub_chunk_records = 8;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  EXPECT_GT((*store)->CompressionRatio(), 3.0);
  // Data still round-trips.
  auto got = (*store)->GetVersion(29);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToMap(*got), ExpectedVersion(data, 29));
}

TEST(RStoreTest, ProjectionsPersistAndReload) {
  ExampleData data = MakeChain(12, 6, 2);
  MemoryStore backend;
  auto store =
      RStore::Open(&backend, SmallChunkOptions(PartitionAlgorithm::kBottomUp));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  StoreCatalog reloaded;
  ASSERT_TRUE(
      reloaded.LoadProjections(&backend, Options().index_table).ok());
  for (VersionId v = 0; v < 12; ++v) {
    EXPECT_EQ(reloaded.ChunksOfVersion(v),
              (*store)->catalog().ChunksOfVersion(v))
        << v;
  }
  EXPECT_EQ(reloaded.ChunksOfKey("key1002"),
            (*store)->catalog().ChunksOfKey("key1002"));
}

TEST(RStoreTest, ProjectionMemoryFootprintIsSmall) {
  ExampleData data = MakeChain(50, 20, 4);
  MemoryStore backend;
  auto store =
      RStore::Open(&backend, SmallChunkOptions(PartitionAlgorithm::kBottomUp));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  uint64_t data_bytes = 0;
  for (const auto& [ck, payload] : data.payloads) data_bytes += payload.size();
  // The paper's §2.4 point: indexes are a small fraction of the data.
  EXPECT_LT((*store)->catalog().ProjectionMemoryBytes(), data_bytes);
}

}  // namespace
}  // namespace rstore
