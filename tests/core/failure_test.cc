// RStore-level failure behaviour: backend outages and partial data loss must
// surface as loud errors, never as silently wrong query results.

#include <gtest/gtest.h>

#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/cluster.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

Options SmallOptions() {
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 600;
  return options;
}

TEST(FailureTest, UnreplicatedNodeLossFailsQueriesLoudly) {
  ExampleData data = MakeChain(20, 10, 3);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 1;  // no redundancy
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  cluster.SetNodeAlive(1, false);
  // Some versions' chunks lived on node 1: those queries must error.
  int failures = 0;
  for (VersionId v = 0; v < 20; ++v) {
    auto r = (*store)->GetVersion(v);
    if (!r.ok()) {
      ++failures;
      EXPECT_TRUE(r.status().IsIOError() || r.status().IsCorruption())
          << r.status().ToString();
    } else {
      // Whatever still answers must be complete and correct.
      EXPECT_EQ(r->size(), data.dataset.MaterializeVersion(v).size());
    }
  }
  EXPECT_GT(failures, 0);
}

TEST(FailureTest, ReplicatedStoreMasksSingleNodeLoss) {
  ExampleData data = MakeChain(20, 10, 3);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 3;
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  cluster.SetNodeAlive(0, false);
  cluster.SetNodeAlive(3, false);  // rf=3 tolerates two failures
  for (VersionId v = 0; v < 20; ++v) {
    auto r = (*store)->GetVersion(v);
    ASSERT_TRUE(r.ok()) << "V" << v << ": " << r.status().ToString();
    EXPECT_EQ(r->size(), data.dataset.MaterializeVersion(v).size());
  }
}

TEST(FailureTest, CommitFailsWhenAllReplicasDown) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  Cluster cluster(cluster_options);
  Options options = SmallOptions();
  options.online_batch_size = 1;  // flush immediately
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  cluster.SetNodeAlive(0, false);
  CommitDelta delta;
  delta.upserts.push_back({{"k", 0}, "v"});
  auto r = (*store)->Commit(kInvalidVersion, std::move(delta));
  EXPECT_FALSE(r.ok());
}

// Best-effort mode: the same outage that fails strict queries loudly now
// degrades gracefully — queries return every record the cluster can still
// serve and name the chunks they could not fetch.
TEST(FailureTest, BestEffortReadsReturnPartialResultsWithReport) {
  ExampleData data = MakeChain(20, 10, 3);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 1;  // no redundancy
  Cluster cluster(cluster_options);
  Options options = SmallOptions();
  options.read_mode = ReadMode::kBestEffort;
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  cluster.SetNodeAlive(1, false);
  QueryStats stats;
  int degraded = 0, shorter = 0;
  for (VersionId v = 0; v < 20; ++v) {
    QueryDegradation report;
    auto r = (*store)->GetVersion(v, &stats, nullptr, &report);
    ASSERT_TRUE(r.ok()) << "V" << v << ": " << r.status().ToString();
    const size_t full = data.dataset.MaterializeVersion(v).size();
    EXPECT_LE(r->size(), full);
    if (report.degraded()) {
      ++degraded;
      EXPECT_EQ(report.messages.size(), report.missing_chunks.size());
      if (r->size() < full) ++shorter;
      // Whatever was returned is correct, just incomplete.
      for (const Record& rec : *r) {
        EXPECT_EQ(rec.payload, data.payloads.at(rec.key));
      }
    } else {
      EXPECT_EQ(r->size(), full);
    }
  }
  EXPECT_GT(degraded, 0);
  EXPECT_GT(shorter, 0);
  EXPECT_GT(stats.missing_chunks, 0u);

  // Range queries degrade the same way.
  QueryDegradation range_report;
  auto range = (*store)->GetRange(19, "key1000", "key1009", nullptr, nullptr,
                                  &range_report);
  ASSERT_TRUE(range.ok()) << range.status().ToString();

  // Recovery heals: reports come back empty and results complete.
  cluster.SetNodeAlive(1, true);
  for (VersionId v = 0; v < 20; ++v) {
    QueryDegradation report;
    auto r = (*store)->GetVersion(v, nullptr, nullptr, &report);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(report.degraded());
    EXPECT_EQ(r->size(), data.dataset.MaterializeVersion(v).size());
  }
}

// Point and history queries have no partial form: best-effort mode leaves
// them strict (a point lookup is either the record or an error).
TEST(FailureTest, PointAndHistoryQueriesStayStrictInBestEffortMode) {
  ExampleData data = MakeChain(20, 10, 3);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 1;
  Cluster cluster(cluster_options);
  Options options = SmallOptions();
  options.read_mode = ReadMode::kBestEffort;
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  cluster.SetNodeAlive(1, false);
  int failures = 0;
  for (int k = 0; k < 10; ++k) {
    const std::string key = "key" + std::to_string(1000 + k);
    for (VersionId v = 0; v < 20; v += 4) {
      auto point = (*store)->GetRecord(key, v);
      if (!point.ok() && !point.status().IsNotFound()) {
        ++failures;
        EXPECT_TRUE(point.status().IsIOError() ||
                    point.status().IsCorruption())
            << point.status().ToString();
      }
    }
    // A key's history spans chunks across the whole version range, so the
    // dead node's share is almost surely needed — and must fail loudly.
    auto history = (*store)->GetHistory(key);
    if (!history.ok()) {
      ++failures;
      EXPECT_TRUE(history.status().IsIOError() ||
                  history.status().IsCorruption())
          << history.status().ToString();
    }
  }
  EXPECT_GT(failures, 0);
}

// Regression: a commit flushed while a replica was down used to lose those
// chunk writes on that replica silently — after the other replica died, the
// "recovered" node served a store with holes. Hinted handoff backfills the
// recovering replica, so the full version must survive the second outage.
TEST(FailureTest, CommitDuringReplicaOutageIsHealedByHintedHandoff) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 2;
  cluster_options.replication_factor = 2;
  Cluster cluster(cluster_options);
  Options options = SmallOptions();
  options.online_batch_size = 1;  // flush each commit immediately
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());

  CommitDelta base;
  for (int k = 0; k < 8; ++k) {
    base.upserts.push_back(
        {{"doc" + std::to_string(k), 0}, "base" + std::to_string(k)});
  }
  auto v0 = (*store)->Commit(kInvalidVersion, std::move(base));
  ASSERT_TRUE(v0.ok());

  // Node 0 is down while the second commit's chunks are written.
  cluster.SetNodeAlive(0, false);
  CommitDelta update;
  update.upserts.push_back({{"doc3", 0}, "updated"});
  auto v1 = (*store)->Commit(*v0, std::move(update));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE((*store)->Flush().ok());

  // Recovery replays the hints; then the *other* replica dies.
  cluster.SetNodeAlive(0, true);
  EXPECT_EQ(cluster.PendingHints(0), 0u);
  cluster.SetNodeAlive(1, false);

  auto records = (*store)->GetVersion(*v1);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 8u);
  bool found_updated = false;
  for (const Record& rec : *records) {
    if (rec.key.key == "doc3") {
      found_updated = true;
      EXPECT_EQ(rec.payload, "updated");
    }
  }
  EXPECT_TRUE(found_updated);
  EXPECT_GT(cluster.stats().handoff_replays, 0u);
}

TEST(FailureTest, QueriesOnUnknownVersionsRejected) {
  ExampleData data = MakeChain(5, 5, 1);
  ClusterOptions cluster_options;
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  EXPECT_TRUE((*store)->GetVersion(99).status().IsInvalidArgument());
  EXPECT_TRUE(
      (*store)->GetRange(99, "a", "z").status().IsInvalidArgument());
  EXPECT_TRUE((*store)->GetRecord("key1000", 99).status().IsInvalidArgument());
  // Inverted range.
  EXPECT_TRUE((*store)->GetRange(1, "z", "a").status().IsInvalidArgument());
  // Unknown key history: empty result, not an error.
  auto history = (*store)->GetHistory("no-such-key");
  ASSERT_TRUE(history.ok());
  EXPECT_TRUE(history->empty());
}

}  // namespace
}  // namespace rstore
