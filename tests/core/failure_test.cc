// RStore-level failure behaviour: backend outages and partial data loss must
// surface as loud errors, never as silently wrong query results.

#include <gtest/gtest.h>

#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/cluster.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

Options SmallOptions() {
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 600;
  return options;
}

TEST(FailureTest, UnreplicatedNodeLossFailsQueriesLoudly) {
  ExampleData data = MakeChain(20, 10, 3);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 1;  // no redundancy
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  cluster.SetNodeAlive(1, false);
  // Some versions' chunks lived on node 1: those queries must error.
  int failures = 0;
  for (VersionId v = 0; v < 20; ++v) {
    auto r = (*store)->GetVersion(v);
    if (!r.ok()) {
      ++failures;
      EXPECT_TRUE(r.status().IsIOError() || r.status().IsCorruption())
          << r.status().ToString();
    } else {
      // Whatever still answers must be complete and correct.
      EXPECT_EQ(r->size(), data.dataset.MaterializeVersion(v).size());
    }
  }
  EXPECT_GT(failures, 0);
}

TEST(FailureTest, ReplicatedStoreMasksSingleNodeLoss) {
  ExampleData data = MakeChain(20, 10, 3);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 3;
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  cluster.SetNodeAlive(0, false);
  cluster.SetNodeAlive(3, false);  // rf=3 tolerates two failures
  for (VersionId v = 0; v < 20; ++v) {
    auto r = (*store)->GetVersion(v);
    ASSERT_TRUE(r.ok()) << "V" << v << ": " << r.status().ToString();
    EXPECT_EQ(r->size(), data.dataset.MaterializeVersion(v).size());
  }
}

TEST(FailureTest, CommitFailsWhenAllReplicasDown) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  Cluster cluster(cluster_options);
  Options options = SmallOptions();
  options.online_batch_size = 1;  // flush immediately
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  cluster.SetNodeAlive(0, false);
  CommitDelta delta;
  delta.upserts.push_back({{"k", 0}, "v"});
  auto r = (*store)->Commit(kInvalidVersion, std::move(delta));
  EXPECT_FALSE(r.ok());
}

TEST(FailureTest, QueriesOnUnknownVersionsRejected) {
  ExampleData data = MakeChain(5, 5, 1);
  ClusterOptions cluster_options;
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  EXPECT_TRUE((*store)->GetVersion(99).status().IsInvalidArgument());
  EXPECT_TRUE(
      (*store)->GetRange(99, "a", "z").status().IsInvalidArgument());
  EXPECT_TRUE((*store)->GetRecord("key1000", 99).status().IsInvalidArgument());
  // Inverted range.
  EXPECT_TRUE((*store)->GetRange(1, "z", "a").status().IsInvalidArgument());
  // Unknown key history: empty result, not an error.
  auto history = (*store)->GetHistory("no-such-key");
  ASSERT_TRUE(history.ok());
  EXPECT_TRUE(history->empty());
}

}  // namespace
}  // namespace rstore
