#include "core/sub_chunk_builder.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core_test_util.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;
using testing::MakeExample2;

SubChunkBuildResult Build(const ExampleData& data, uint32_t k) {
  Options options;
  options.max_sub_chunk_records = k;
  RecordVersionMap rv = data.dataset.BuildRecordVersionMap();
  auto result = BuildSubChunks(data.dataset, data.payloads, rv, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *std::move(result);
}

TEST(SubChunkBuilderTest, KOneIsOneRecordPerSubChunk) {
  ExampleData data = MakeExample2();
  SubChunkBuildResult result = Build(data, 1);
  EXPECT_EQ(result.sub_chunks.size(), 9u);  // 9 distinct records
  for (const SubChunk& sc : result.sub_chunks) {
    EXPECT_EQ(sc.num_records(), 1u);
  }
}

TEST(SubChunkBuilderTest, AllRecordsCoveredExactlyOnce) {
  ExampleData data = MakeChain(30, 10, 3);
  for (uint32_t k : {1u, 2u, 3u, 5u, 100u}) {
    SubChunkBuildResult result = Build(data, k);
    std::set<CompositeKey> seen;
    for (const SubChunk& sc : result.sub_chunks) {
      EXPECT_LE(sc.num_records(), k);
      for (const CompositeKey& ck : sc.keys()) {
        EXPECT_TRUE(seen.insert(ck).second) << ck.ToString();
      }
    }
    EXPECT_EQ(seen.size(), data.dataset.CountDistinctRecords()) << "k=" << k;
  }
}

TEST(SubChunkBuilderTest, MembersShareKeyAndAreConnected) {
  ExampleData data = MakeChain(40, 8, 4);
  SubChunkBuildResult result = Build(data, 4);
  bool found_multi = false;
  for (const SubChunk& sc : result.sub_chunks) {
    if (sc.num_records() > 1) found_multi = true;
    std::set<std::string> keys;
    for (const CompositeKey& ck : sc.keys()) keys.insert(ck.key);
    EXPECT_EQ(keys.size(), 1u);
    // Connectivity: on a chain, member versions of one key must be
    // consecutive in that key's update sequence. Verify head is earliest.
    for (size_t i = 1; i < sc.keys().size(); ++i) {
      EXPECT_GT(sc.keys()[i].version, sc.keys()[0].version);
    }
  }
  EXPECT_TRUE(found_multi);
}

TEST(SubChunkBuilderTest, PayloadsRoundTripThroughSubChunks) {
  ExampleData data = MakeChain(25, 6, 3);
  SubChunkBuildResult result = Build(data, 3);
  for (const SubChunk& sc : result.sub_chunks) {
    for (const CompositeKey& ck : sc.keys()) {
      auto payload = sc.ExtractPayload(ck);
      ASSERT_TRUE(payload.ok());
      EXPECT_EQ(*payload, data.payloads.at(ck)) << ck.ToString();
    }
  }
}

TEST(SubChunkBuilderTest, ItemVersionsAreUnionOfMemberVersions) {
  ExampleData data = MakeExample2();
  RecordVersionMap rv = data.dataset.BuildRecordVersionMap();
  Options options;
  options.max_sub_chunk_records = 3;
  auto result = BuildSubChunks(data.dataset, data.payloads, rv, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), result->sub_chunks.size());
  for (size_t i = 0; i < result->items.size(); ++i) {
    const PlacementItem& item = result->items[i];
    const SubChunk& sc = result->sub_chunks[i];
    EXPECT_EQ(item.id, sc.id());
    EXPECT_EQ(item.origin_version, sc.id().version);
    std::set<VersionId> expected;
    for (const CompositeKey& ck : sc.keys()) {
      for (VersionId v : rv.at(ck)) expected.insert(v);
    }
    std::set<VersionId> actual(item.versions.begin(), item.versions.end());
    EXPECT_EQ(actual, expected);
    EXPECT_GT(item.bytes, 0u);
  }
}

TEST(SubChunkBuilderTest, LargerKImprovesCompressionOnSimilarRecords) {
  // The Fig. 10 mechanism: more same-key versions per sub-chunk => smaller
  // total compressed size (records are near-identical across updates in
  // MakeChain's PayloadFor... actually payloads differ per version, so use
  // custom near-identical payloads).
  ExampleData data = MakeChain(40, 4, 2);
  for (auto& [ck, payload] : data.payloads) {
    // Re-generate: large shared body + tiny per-version tail.
    payload = std::string(2000, 'x') + ck.key + std::to_string(ck.version);
  }
  SubChunkBuildResult k1 = Build(data, 1);
  SubChunkBuildResult k10 = Build(data, 10);
  EXPECT_LT(k10.total_compressed_bytes(), k1.total_compressed_bytes());
  EXPECT_GT(k10.compression_ratio(), k1.compression_ratio());
  EXPECT_EQ(k10.total_uncompressed_bytes(), k1.total_uncompressed_bytes());
}

TEST(SubChunkBuilderTest, MissingPayloadIsError) {
  ExampleData data = MakeExample2();
  data.payloads.erase(CompositeKey("K3", 1));
  RecordVersionMap rv = data.dataset.BuildRecordVersionMap();
  Options options;
  auto result = BuildSubChunks(data.dataset, data.payloads, rv, options);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SubChunkBuilderTest, BranchedKeyHistoryStaysConnected) {
  // One key updated along two branches: sub-chunks must never group the two
  // branch tips without their common ancestor (paper Fig. 7 constraint).
  ExampleData data;
  VersionedDataset& ds = data.dataset;
  ds.graph.AddRoot();                  // V0: K@0
  (void)*ds.graph.AddVersion({0});     // V1: K -> K@1 (branch A)
  (void)*ds.graph.AddVersion({0});     // V2: K -> K@2 (branch B)
  ds.deltas.resize(3);
  ds.deltas[0].added = {{"K", 0}};
  ds.deltas[1].added = {{"K", 1}};
  ds.deltas[1].removed = {{"K", 0}};
  ds.deltas[2].added = {{"K", 2}};
  ds.deltas[2].removed = {{"K", 0}};
  ASSERT_TRUE(ds.Validate().ok());
  for (const VersionDelta& d : ds.deltas) {
    for (const CompositeKey& ck : d.added) {
      data.payloads[ck] = testing::PayloadFor(ck);
    }
  }
  SubChunkBuildResult result = Build(data, 2);
  // k=2 over a 3-node star: the pair must contain the root K@0 (a pair
  // {K@1, K@2} would be disconnected).
  for (const SubChunk& sc : result.sub_chunks) {
    if (sc.num_records() == 2) {
      EXPECT_TRUE(sc.Contains(CompositeKey("K", 0)));
    }
  }
}

}  // namespace
}  // namespace rstore
