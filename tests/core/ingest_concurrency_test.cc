// TSan-targeted stress over the threaded ingest pipeline: many encoder
// threads racing a strict in-order writer, repeated across iterations, plus
// a full sharded store ingest whose bytes must match serial even while the
// sanitizer perturbs scheduling. CI's TSan job matches this binary by the
// IngestConcurrency suite name.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/ingest_pipeline.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

TEST(IngestConcurrencyTest, ManyEncodersOneWriterPreservesOrder) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    const uint32_t num_shards = 32;
    IngestPipelineOptions options;
    options.num_shards = num_shards;
    options.pipeline_depth = 1 + iteration % 6;
    options.max_threads = 2 + iteration % 7;

    // Each encode fills a slot only it may touch; the writer checks the
    // slot was filled before its shard is consumed (encode happens-before
    // write for the same shard).
    std::vector<uint64_t> slots(num_shards, 0);
    Random rng(7777 + iteration);
    std::vector<uint32_t> spin(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      spin[s] = 100 + static_cast<uint32_t>(rng.Uniform(5000));
    }
    std::atomic<uint32_t> encodes{0};
    auto encode = [&](uint32_t shard) {
      // Uneven busy work so shard completion order scrambles.
      uint64_t acc = 1;
      for (uint32_t i = 0; i < spin[shard]; ++i) {
        acc += acc >> 3;
        std::atomic_signal_fence(std::memory_order_seq_cst);
      }
      (void)acc;
      slots[shard] = 1000 + shard;
      encodes.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    };
    std::vector<uint32_t> writes;
    auto write = [&](uint32_t shard) {
      EXPECT_EQ(slots[shard], 1000u + shard);
      writes.push_back(shard);
      return Status::OK();
    };
    ASSERT_TRUE(RunIngestPipeline(options, encode, write).ok());
    EXPECT_EQ(encodes.load(), num_shards);
    ASSERT_EQ(writes.size(), num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) EXPECT_EQ(writes[s], s);
  }
}

TEST(IngestConcurrencyTest, EncodeFailureUnderContentionStopsCleanly) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    IngestPipelineOptions options;
    options.num_shards = 24;
    options.pipeline_depth = 3;
    options.max_threads = 4;
    const uint32_t bad_shard = 3 + iteration % 20;
    auto encode = [bad_shard](uint32_t shard) {
      if (shard == bad_shard) return Status::Corruption("injected");
      return Status::OK();
    };
    std::vector<uint32_t> writes;
    auto write = [&writes](uint32_t shard) {
      writes.push_back(shard);
      return Status::OK();
    };
    Status status = RunIngestPipeline(options, encode, write);
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsCorruption());
    // Never writes at or past the failed shard, and always a prefix.
    ASSERT_LE(writes.size(), bad_shard);
    for (size_t i = 0; i < writes.size(); ++i) {
      EXPECT_EQ(writes[i], static_cast<uint32_t>(i));
    }
  }
}

TEST(IngestConcurrencyTest, EncoderExceptionPropagatesToCaller) {
  IngestPipelineOptions options;
  options.num_shards = 12;
  options.pipeline_depth = 4;
  options.max_threads = 4;
  auto encode = [](uint32_t shard) -> Status {
    if (shard == 7) throw std::runtime_error("boom");
    return Status::OK();
  };
  auto write = [](uint32_t) { return Status::OK(); };
  EXPECT_THROW((void)RunIngestPipeline(options, encode, write),
               std::runtime_error);
}

TEST(IngestConcurrencyTest, ShardedStoreIngestMatchesSerialUnderStress) {
  const ExampleData data = MakeChain(24, 16, 5);
  auto run = [&data](uint32_t shards) {
    Options options;
    options.chunk_capacity_bytes = 700;
    options.max_sub_chunk_records = 4;
    options.ingest_shards = shards;
    MemoryStore backend;
    auto store = RStore::Open(&backend, options);
    EXPECT_TRUE(store.ok());
    EXPECT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    std::string dump;
    for (const std::string& table :
         {options.chunk_table, options.index_table}) {
      EXPECT_TRUE(backend
                      .Scan(table,
                            [&dump](Slice key, Slice value) {
                              dump += key.ToString();
                              dump += '\x1f';
                              dump += value.ToString();
                              dump += '\x1e';
                            })
                      .ok());
    }
    return dump;
  };
  const std::string serial = run(1);
  ASSERT_FALSE(serial.empty());
  for (int iteration = 0; iteration < 6; ++iteration) {
    EXPECT_EQ(run(2 + iteration % 7), serial) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace rstore
