#include "core/sub_chunk.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

SubChunk::Member MakeMember(const std::string& key, VersionId v,
                            uint32_t parent, const std::string& payload) {
  SubChunk::Member m;
  m.key = CompositeKey(key, v);
  m.parent_index = parent;
  m.payload = payload;
  return m;
}

TEST(SubChunkTest, SingleRecordRoundTrip) {
  auto sc = SubChunk::Build({MakeMember("K1", 0, 0, "hello world payload")},
                            CompressionType::kLZ);
  ASSERT_TRUE(sc.ok());
  EXPECT_EQ(sc->num_records(), 1u);
  EXPECT_EQ(sc->id(), CompositeKey("K1", 0));
  EXPECT_TRUE(sc->Contains(CompositeKey("K1", 0)));
  EXPECT_FALSE(sc->Contains(CompositeKey("K1", 1)));
  auto payload = sc->ExtractPayload(CompositeKey("K1", 0));
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "hello world payload");
}

TEST(SubChunkTest, MultiVersionChainRoundTrip) {
  std::string v0(2000, 'a');
  std::string v1 = v0;
  v1[500] = 'b';
  std::string v2 = v1;
  v2[1500] = 'c';
  auto sc = SubChunk::Build({MakeMember("K", 0, 0, v0),
                             MakeMember("K", 1, 0, v1),
                             MakeMember("K", 2, 1, v2)},
                            CompressionType::kLZ);
  ASSERT_TRUE(sc.ok());
  EXPECT_EQ(sc->num_records(), 3u);
  EXPECT_EQ(*sc->ExtractPayload(CompositeKey("K", 0)), v0);
  EXPECT_EQ(*sc->ExtractPayload(CompositeKey("K", 1)), v1);
  EXPECT_EQ(*sc->ExtractPayload(CompositeKey("K", 2)), v2);
}

TEST(SubChunkTest, DeltaEncodingCompressesSimilarVersions) {
  // Three near-identical 4 KB records together must be far smaller than 3x
  // one record (the whole point of sub-chunking, paper §3.4).
  std::string base;
  for (int i = 0; i < 200; ++i) {
    base += "{\"field" + std::to_string(i) + "\":" + std::to_string(i * 7) +
            "},";
  }
  std::string v1 = base;
  v1.replace(100, 5, "XXXXX");
  std::string v2 = v1;
  v2.replace(3000, 5, "YYYYY");

  auto single =
      SubChunk::Build({MakeMember("K", 0, 0, base)}, CompressionType::kLZ);
  auto grouped = SubChunk::Build({MakeMember("K", 0, 0, base),
                                  MakeMember("K", 1, 0, v1),
                                  MakeMember("K", 2, 1, v2)},
                                 CompressionType::kLZ);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(grouped.ok());
  EXPECT_LT(grouped->serialized_size(), single->serialized_size() * 2);
  EXPECT_EQ(grouped->uncompressed_bytes(),
            base.size() + v1.size() + v2.size());
}

TEST(SubChunkTest, SiblingsDeltaAgainstCommonParent) {
  // Fig. 7 constraint: siblings delta against their common parent, so
  // grouping parent + two siblings works without sibling-to-sibling deltas.
  std::string parent(1000, 'p');
  std::string sib1 = parent;
  sib1[10] = '1';
  std::string sib2 = parent;
  sib2[900] = '2';
  auto sc = SubChunk::Build({MakeMember("K", 0, 0, parent),
                             MakeMember("K", 3, 0, sib1),
                             MakeMember("K", 5, 0, sib2)},
                            CompressionType::kLZ);
  ASSERT_TRUE(sc.ok());
  EXPECT_EQ(*sc->ExtractPayload(CompositeKey("K", 3)), sib1);
  EXPECT_EQ(*sc->ExtractPayload(CompositeKey("K", 5)), sib2);
}

TEST(SubChunkTest, BuildValidation) {
  EXPECT_TRUE(SubChunk::Build({}, CompressionType::kNone)
                  .status()
                  .IsInvalidArgument());
  // Head must be its own parent.
  EXPECT_FALSE(
      SubChunk::Build({MakeMember("K", 0, 1, "x")}, CompressionType::kNone)
          .ok());
  // Forward parent reference.
  EXPECT_FALSE(SubChunk::Build({MakeMember("K", 0, 0, "x"),
                                MakeMember("K", 1, 1, "y")},
                               CompressionType::kNone)
                   .ok());
  // Mixed primary keys.
  EXPECT_FALSE(SubChunk::Build({MakeMember("A", 0, 0, "x"),
                                MakeMember("B", 1, 0, "y")},
                               CompressionType::kNone)
                   .ok());
}

TEST(SubChunkTest, EncodeDecodeRoundTrip) {
  std::string p0 = "payload zero with some content";
  std::string p1 = "payload one with other content";
  auto sc = SubChunk::Build(
      {MakeMember("K9", 2, 0, p0), MakeMember("K9", 7, 0, p1)},
      CompressionType::kLZ);
  ASSERT_TRUE(sc.ok());
  std::string buf;
  sc->EncodeTo(&buf);
  EXPECT_EQ(buf.size(), sc->serialized_size());
  Slice in(buf);
  SubChunk decoded;
  ASSERT_TRUE(SubChunk::DecodeFrom(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.keys(), sc->keys());
  EXPECT_EQ(*decoded.ExtractPayload(CompositeKey("K9", 2)), p0);
  EXPECT_EQ(*decoded.ExtractPayload(CompositeKey("K9", 7)), p1);
  EXPECT_EQ(decoded.uncompressed_bytes(), p0.size() + p1.size());
}

TEST(SubChunkTest, DecodeRejectsCorruption) {
  auto sc = SubChunk::Build({MakeMember("K", 0, 0, "data data data")},
                            CompressionType::kLZ);
  ASSERT_TRUE(sc.ok());
  std::string buf;
  sc->EncodeTo(&buf);
  for (size_t cut : {size_t{0}, size_t{1}, buf.size() / 2, buf.size() - 1}) {
    Slice in(buf.data(), cut);
    SubChunk decoded;
    EXPECT_FALSE(SubChunk::DecodeFrom(&in, &decoded).ok()) << cut;
  }
}

TEST(SubChunkTest, ExtractMissingRecordIsNotFound) {
  auto sc =
      SubChunk::Build({MakeMember("K", 0, 0, "x")}, CompressionType::kNone);
  ASSERT_TRUE(sc.ok());
  EXPECT_TRUE(
      sc->ExtractPayload(CompositeKey("K", 9)).status().IsNotFound());
}

TEST(SubChunkTest, EmptyPayloadsSupported) {
  auto sc = SubChunk::Build(
      {MakeMember("K", 0, 0, ""), MakeMember("K", 1, 0, "")},
      CompressionType::kLZ);
  ASSERT_TRUE(sc.ok());
  EXPECT_EQ(*sc->ExtractPayload(CompositeKey("K", 0)), "");
  EXPECT_EQ(*sc->ExtractPayload(CompositeKey("K", 1)), "");
}

}  // namespace
}  // namespace rstore
