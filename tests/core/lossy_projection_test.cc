// The lossy-projection artifact (paper §2.4): "it is possible for us to
// retrieve a chunk and, after analyzing the chunk map, discover that it
// contains no records of interest". These tests construct that situation
// deliberately and check both correctness and span accounting.

#include <gtest/gtest.h>

#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

// Hand-built layout: key "X" has records in V0 (X@0, replaced in V2) and key
// "Y" only in V0. A point query for Y at V2 index-ANDs
// chunks(Y) ∩ chunks(V2); if X@0 and Y@0 share a chunk, that chunk is in
// both projections via different records, so the intersection can include a
// chunk that holds no Y-record visible at... (Y@0 IS visible at V2 here, so
// instead query X at a version where only the OTHER chunk has it.)
TEST(LossyProjectionTest, IntersectionMayFetchIrrelevantChunks) {
  // Dataset: V0 = {X@0, Y@0}; V1 = V0 with X updated -> X@1; V2 = V1 with Y
  // updated -> Y@2.
  testing::ExampleData data;
  VersionedDataset& ds = data.dataset;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({1});
  ds.deltas.resize(3);
  ds.deltas[0].added = {{"X", 0}, {"Y", 0}};
  ds.deltas[1].added = {{"X", 1}};
  ds.deltas[1].removed = {{"X", 0}};
  ds.deltas[2].added = {{"Y", 2}};
  ds.deltas[2].removed = {{"Y", 0}};
  ASSERT_TRUE(ds.Validate().ok());
  for (const auto& d : ds.deltas) {
    for (const auto& ck : d.added) {
      data.payloads[ck] = testing::PayloadFor(ck);
    }
  }
  // Single-address layout: every record its own chunk, so projections are
  // exact per record but the key->chunks list spans all the key's versions.
  Options options;
  options.algorithm = PartitionAlgorithm::kSingleAddressSpace;
  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  // Point query X @ V2: chunks(X) = {chunk(X@0), chunk(X@1)};
  // chunks(V2) includes chunk(X@1) and chunk(X@0)? X@0 is dead at V2, so
  // chunks(V2) = {chunk(X@1), chunk(Y@2)}. Intersection = {chunk(X@1)}:
  // exact here. Query X @ V1 instead: chunks(V1) = {chunk(X@1), chunk(Y@0)};
  // intersection with chunks(X) = {chunk(X@1)} — also exact. The lossiness
  // needs multi-record chunks; rebuild with BOTTOM-UP and a capacity that
  // packs X@0 and Y@0 together.
  QueryStats stats;
  auto rec = (*store)->GetRecord("X", 2, &stats);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->key, CompositeKey("X", 1));
  EXPECT_EQ(stats.chunks_fetched, 1u);
}

TEST(LossyProjectionTest, SharedChunkCausesExtraFetchButCorrectResult) {
  // Force X@0 and Y@0 into ONE chunk (big capacity, BOTTOM-UP) and X@1 into
  // another. Then for "Y at V1": chunks(Y) = {C0}; chunks(V1) ⊇ {C0 (Y@0
  // alive), C1}. Intersection = {C0} — fine. For "X at V1": chunks(X) =
  // {C0, C1}; chunks(V1) = {C0, C1}; intersection = both, but only C1 holds
  // the visible X@1 — C0 is fetched and discarded: the paper's artifact.
  testing::ExampleData data;
  VersionedDataset& ds = data.dataset;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  ds.deltas.resize(2);
  ds.deltas[0].added = {{"X", 0}, {"Y", 0}};
  ds.deltas[1].added = {{"X", 1}};
  ds.deltas[1].removed = {{"X", 0}};
  ASSERT_TRUE(ds.Validate().ok());
  for (const auto& d : ds.deltas) {
    for (const auto& ck : d.added) {
      data.payloads[ck] = testing::PayloadFor(ck);
    }
  }
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 64 << 10;  // everything could fit...
  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  QueryStats stats;
  auto rec = (*store)->GetRecord("X", 1, &stats);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // Correctness regardless of layout:
  EXPECT_EQ(rec->key, CompositeKey("X", 1));
  EXPECT_EQ(rec->payload, data.payloads.at(CompositeKey("X", 1)));
  // Span accounting reflects every fetched chunk, including any that turned
  // out to hold no visible X record.
  uint64_t expected = 0;
  {
    std::vector<ChunkId> by_key = (*store)->catalog().ChunksOfKey("X");
    std::vector<ChunkId> by_version =
        (*store)->catalog().ChunksOfVersion(1);
    for (ChunkId id : by_key) {
      for (ChunkId vid : by_version) {
        if (id == vid) ++expected;
      }
    }
  }
  EXPECT_EQ(stats.chunks_fetched, expected);
  EXPECT_GE(expected, 1u);
}

}  // namespace
}  // namespace rstore
