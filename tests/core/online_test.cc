// Tests for the online ingest path (§4): delta store batching, chunk-map
// rewrites across batches, repartitioning, and online-vs-offline parity.

#include <gtest/gtest.h>

#include <map>

#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"
#include "workload/dataset_generator.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

Options SmallOptions(uint32_t batch) {
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 600;
  options.online_batch_size = batch;
  return options;
}

/// Commits every version of `data` into `store` in generation order.
void CommitAll(RStore* store, const ExampleData& data) {
  for (VersionId v = 0; v < data.dataset.graph.size(); ++v) {
    CommitDelta delta;
    std::map<std::string, bool> added;
    for (const CompositeKey& ck : data.dataset.deltas[v].added) {
      added[ck.key] = true;
      delta.upserts.push_back(Record{ck, data.payloads.at(ck)});
    }
    for (const CompositeKey& ck : data.dataset.deltas[v].removed) {
      if (!added.count(ck.key)) delta.deletes.push_back(ck.key);
    }
    VersionId parent =
        v == 0 ? kInvalidVersion : data.dataset.graph.PrimaryParent(v);
    auto r = store->Commit(parent, std::move(delta));
    ASSERT_TRUE(r.ok()) << v << ": " << r.status().ToString();
    ASSERT_EQ(*r, v);
  }
}

std::map<std::string, std::string> ExpectedVersion(const ExampleData& data,
                                                   VersionId v) {
  std::map<std::string, std::string> out;
  for (const CompositeKey& ck : data.dataset.MaterializeVersion(v)) {
    out[ck.key] = data.payloads.at(ck);
  }
  return out;
}

std::map<std::string, std::string> ToMap(const std::vector<Record>& records) {
  std::map<std::string, std::string> out;
  for (const Record& r : records) out[r.key.key] = r.payload;
  return out;
}

class BatchSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BatchSizeTest, OnlineCommitsMatchGroundTruthAtAnyBatchSize) {
  ExampleData data = MakeChain(30, 10, 3);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions(GetParam()));
  ASSERT_TRUE(store.ok());
  CommitAll(store->get(), data);
  ASSERT_TRUE((*store)->Flush().ok());
  for (VersionId v : {VersionId{0}, VersionId{13}, VersionId{29}}) {
    auto got = (*store)->GetVersion(v);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToMap(*got), ExpectedVersion(data, v)) << "V" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeTest,
                         ::testing::Values(1, 2, 7, 30, 100));

TEST(OnlineTest, ChunkMapsRewrittenForInheritedRecords) {
  // A record committed in batch 1 and inherited by versions in batch 2 must
  // appear in those versions' query results — this exercises the §4 path
  // that rewrites existing chunk maps once per batch.
  ExampleData data = MakeChain(20, 8, 2);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions(5));
  ASSERT_TRUE(store.ok());
  CommitAll(store->get(), data);
  ASSERT_TRUE((*store)->Flush().ok());
  // The last version inherits root-era records across 4 batch boundaries.
  auto got = (*store)->GetVersion(19);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToMap(*got), ExpectedVersion(data, 19));
  // Every version span accounted by the projections equals per-query
  // fetches.
  uint64_t fetched = 0;
  for (VersionId v = 0; v < 20; ++v) {
    QueryStats stats;
    ASSERT_TRUE((*store)->GetVersion(v, &stats).ok());
    fetched += stats.chunks_fetched;
  }
  EXPECT_EQ(fetched, (*store)->TotalVersionSpan());
}

TEST(OnlineTest, OnlineSpanAtLeastOfflineSpanOnChains) {
  // On a linear chain the offline BOTTOM-UP layout is the quality ceiling;
  // online batching must not beat it (and typically trails it).
  ExampleData data = MakeChain(60, 30, 4);
  MemoryStore offline_backend;
  auto offline = RStore::Open(&offline_backend, SmallOptions(1000));
  ASSERT_TRUE(offline.ok());
  ASSERT_TRUE((*offline)->BulkLoad(data.dataset, data.payloads).ok());
  uint64_t offline_span = (*offline)->TotalVersionSpan();

  MemoryStore online_backend;
  auto online = RStore::Open(&online_backend, SmallOptions(10));
  ASSERT_TRUE(online.ok());
  CommitAll(online->get(), data);
  ASSERT_TRUE((*online)->Flush().ok());
  uint64_t online_span = (*online)->TotalVersionSpan();
  EXPECT_GE(online_span, offline_span);
  // ... but within a sane factor (paper Fig. 13: small penalties).
  EXPECT_LT(online_span, offline_span * 2);
}

TEST(OnlineTest, RepartitionRestoresOfflineQuality) {
  ExampleData data = MakeChain(60, 30, 4);
  MemoryStore offline_backend;
  auto offline = RStore::Open(&offline_backend, SmallOptions(1000));
  ASSERT_TRUE(offline.ok());
  ASSERT_TRUE((*offline)->BulkLoad(data.dataset, data.payloads).ok());
  uint64_t offline_span = (*offline)->TotalVersionSpan();

  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions(5));
  ASSERT_TRUE(store.ok());
  CommitAll(store->get(), data);
  ASSERT_TRUE((*store)->Flush().ok());
  uint64_t online_span = (*store)->TotalVersionSpan();

  Status s = (*store)->Repartition();
  ASSERT_TRUE(s.ok()) << s.ToString();
  uint64_t repartitioned_span = (*store)->TotalVersionSpan();
  EXPECT_LE(repartitioned_span, online_span);
  EXPECT_EQ(repartitioned_span, offline_span);

  // Data integrity preserved through the rebuild.
  for (VersionId v : {VersionId{0}, VersionId{30}, VersionId{59}}) {
    auto got = (*store)->GetVersion(v);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToMap(*got), ExpectedVersion(data, v)) << "V" << v;
  }
  auto history = (*store)->GetHistory("key1003");
  ASSERT_TRUE(history.ok());
  EXPECT_GT(history->size(), 1u);
}

TEST(OnlineTest, RepartitionOnEmptyStoreIsNoOp) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions(4));
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Repartition().ok());
}

TEST(OnlineTest, RepartitionWithCompressedSubChunks) {
  ExampleData data = MakeChain(25, 5, 2);
  for (auto& [ck, payload] : data.payloads) {
    payload = std::string(800, 'b') + ck.ToString();
  }
  MemoryStore backend;
  Options options = SmallOptions(6);
  options.max_sub_chunk_records = 4;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  CommitAll(store->get(), data);
  ASSERT_TRUE((*store)->Repartition().ok());
  for (VersionId v : {VersionId{3}, VersionId{24}}) {
    auto got = (*store)->GetVersion(v);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToMap(*got), ExpectedVersion(data, v));
  }
}

TEST(OnlineTest, DeltaStoreAccounting) {
  DeltaStore ds;
  EXPECT_TRUE(ds.empty());
  PendingCommit commit;
  commit.version = 0;
  commit.delta.added = {{"a", 0}};
  ds.Stage(std::move(commit), {Record{{"a", 0}, "12345"}});
  EXPECT_EQ(ds.pending_versions(), 1u);
  EXPECT_EQ(ds.payload_bytes(), 5u);
  EXPECT_EQ(ds.payloads().at(CompositeKey("a", 0)), "12345");
  ds.Clear();
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.payload_bytes(), 0u);
}

TEST(OnlineTest, BranchedCommitsAcrossBatches) {
  // Branches interleaved with batch boundaries: children of versions from
  // earlier batches.
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions(3));
  ASSERT_TRUE(store.ok());
  RStore& db = **store;
  CommitDelta root;
  root.upserts.push_back({{"doc", 0}, "v0"});
  VersionId v0 = *db.Commit(kInvalidVersion, std::move(root));
  std::vector<VersionId> tips;
  for (int branch = 0; branch < 5; ++branch) {
    CommitDelta c;
    c.upserts.push_back(
        {{"doc", 0}, "branch-" + std::to_string(branch)});
    c.upserts.push_back(
        {{"extra-" + std::to_string(branch), 0}, "payload"});
    tips.push_back(*db.Commit(v0, std::move(c)));
  }
  ASSERT_TRUE(db.Flush().ok());
  for (int branch = 0; branch < 5; ++branch) {
    auto got = db.GetRecord("doc", tips[branch]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->payload, "branch-" + std::to_string(branch));
    auto full = db.GetVersion(tips[branch]);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full->size(), 2u);
  }
}

}  // namespace
}  // namespace rstore
