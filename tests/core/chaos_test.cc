// Chaos equivalence harness: the repo's core availability property, run
// end-to-end. Under any seeded fault schedule in which every key retains at
// least one serving replica (rf=3 with at most two nodes crashed at once),
// strict-mode queries must return byte-identical results to a fault-free
// run — faults may cost simulated time, never correctness. And because every
// fault decision is a pure hash of (seed, node, tick, attempt, salt), the
// same seed must replay the identical retry/hedge/handoff counters.
//
// CI's chaos job sweeps this suite across seeds with
// `RSTORE_CHAOS_SEED=<n> ctest -L Chaos`; without the variable the suite
// covers seeds 1..5 in-process.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/executor.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/cluster.h"
#include "workload/traffic.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;
using testing::ReplayQueryWorkload;

constexpr uint64_t kWorkloadSeed = 42;

/// Transient errors, latency spikes and crash windows everywhere, plus
/// crash windows on exactly two of the five nodes — with rf=3, any key keeps
/// at least one serving replica at every tick.
FaultInjectorOptions ChaosSchedule(uint64_t seed) {
  FaultInjectorOptions f;
  f.seed = seed;
  f.default_profile.transient_error_rate = 0.04;
  f.default_profile.slow_rate = 0.2;
  f.default_profile.slow_multiplier = 20.0;
  f.per_node[1] = f.default_profile;
  f.per_node[1].crash_windows = {{10, 40}, {90, 130}};
  f.per_node[3] = f.default_profile;
  f.per_node[3].crash_windows = {{25, 70}};
  return f;
}

ClusterOptions ChaosClusterOptions(uint64_t seed) {
  ClusterOptions o;
  o.num_nodes = 5;
  o.replication_factor = 3;
  o.latency.hedge_threshold_us = 3000;
  o.retry.max_attempts = 4;
  o.faults = ChaosSchedule(seed);
  return o;
}

struct ChaosRun {
  std::vector<std::string> results;
  KVStats kv;
  // FaultInjector's own per-kind tallies, captured before teardown.
  uint64_t transient_injected = 0;
  uint64_t slow_injected = 0;
  uint64_t crash_injected = 0;
};

/// Loads the chain dataset and replays the deterministic mixed query
/// workload, capturing canonical result bytes and the cluster's counters.
ChaosRun RunWorkload(const ClusterOptions& cluster_options) {
  ChaosRun out;
  Cluster cluster(cluster_options);
  ExampleData data = MakeChain(16, 12, 4);
  Options options;
  options.chunk_capacity_bytes = 700;
  auto store = RStore::Open(&cluster, options);
  EXPECT_TRUE(store.ok());
  if (!store.ok()) return out;
  EXPECT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  auto replay = ReplayQueryWorkload(store->get(), data.dataset, kWorkloadSeed);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (replay.ok()) out.results = std::move(replay->results);
  out.kv = cluster.stats();
  out.transient_injected = cluster.fault_injector().transient_errors_injected();
  out.slow_injected = cluster.fault_injector().slow_attempts_injected();
  out.crash_injected = cluster.fault_injector().crash_rejections_injected();
  return out;
}

/// RSTORE_CHAOS_SEED pins one seed (the CI sweep); default covers 1..5.
std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("RSTORE_CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3, 4, 5};
}

TEST(ChaosTest, StrictQueriesMatchFaultFreeRunByteForByte) {
  ClusterOptions clean;
  clean.num_nodes = 5;
  clean.replication_factor = 3;
  const ChaosRun baseline = RunWorkload(clean);
  ASSERT_FALSE(baseline.results.empty());
  EXPECT_EQ(baseline.kv.retries + baseline.kv.hedges + baseline.kv.timeouts +
                baseline.kv.handoff_hints,
            0u);

  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const ChaosRun faulty = RunWorkload(ChaosClusterOptions(seed));
    ASSERT_EQ(faulty.results.size(), baseline.results.size());
    for (size_t i = 0; i < baseline.results.size(); ++i) {
      ASSERT_EQ(faulty.results[i], baseline.results[i]) << "query " << i;
    }
    // The schedule actually bit: the equivalence above wasn't vacuous.
    EXPECT_GT(faulty.kv.retries, 0u);
    EXPECT_GT(faulty.kv.handoff_hints, 0u);
    EXPECT_EQ(faulty.kv.handoff_replays, faulty.kv.handoff_hints);
    // Faults cost simulated time (retry round trips, backoff, spikes).
    EXPECT_GT(faulty.kv.simulated_micros, baseline.kv.simulated_micros);
  }
}

TEST(ChaosTest, SameSeedReplaysIdenticalFaultTimeline) {
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const ChaosRun a = RunWorkload(ChaosClusterOptions(seed));
    const ChaosRun b = RunWorkload(ChaosClusterOptions(seed));
    EXPECT_EQ(a.kv.retries, b.kv.retries);
    EXPECT_EQ(a.kv.hedges, b.kv.hedges);
    EXPECT_EQ(a.kv.hedge_wins, b.kv.hedge_wins);
    EXPECT_EQ(a.kv.timeouts, b.kv.timeouts);
    EXPECT_EQ(a.kv.handoff_hints, b.kv.handoff_hints);
    EXPECT_EQ(a.kv.handoff_replays, b.kv.handoff_replays);
    EXPECT_EQ(a.kv.simulated_micros, b.kv.simulated_micros);
    EXPECT_EQ(a.kv.gets, b.kv.gets);
    EXPECT_EQ(a.kv.multiget_batches, b.kv.multiget_batches);
    EXPECT_EQ(a.results, b.results);
  }
}

// The injector's per-kind tallies reconcile with what the coordinator did
// about them: nothing injected on a clean schedule, every enabled kind
// injected at least once under chaos, tallies deterministic per seed, and —
// the core reconciliation — every coordinator retry traces back to an
// injected transient error or crash rejection (the only two causes a retry
// can have), so retries can never exceed their sum.
TEST(ChaosTest, InjectedFaultCountersReconcileWithCoordinatorStats) {
  ClusterOptions clean;
  clean.num_nodes = 5;
  clean.replication_factor = 3;
  const ChaosRun baseline = RunWorkload(clean);
  EXPECT_EQ(baseline.transient_injected, 0u);
  EXPECT_EQ(baseline.slow_injected, 0u);
  EXPECT_EQ(baseline.crash_injected, 0u);

  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const ChaosRun a = RunWorkload(ChaosClusterOptions(seed));
    EXPECT_GT(a.transient_injected, 0u);
    EXPECT_GT(a.slow_injected, 0u);
    EXPECT_GT(a.crash_injected, 0u);
    EXPECT_LE(a.kv.retries, a.transient_injected + a.crash_injected);
    const ChaosRun b = RunWorkload(ChaosClusterOptions(seed));
    EXPECT_EQ(a.transient_injected, b.transient_injected);
    EXPECT_EQ(a.slow_injected, b.slow_injected);
    EXPECT_EQ(a.crash_injected, b.crash_injected);
  }
}

/// Deterministic mixed traffic for the async chaos runs: enough in-flight
/// queries that batches genuinely overlap on the virtual timeline.
workload::TrafficOptions AsyncChaosTraffic() {
  workload::TrafficOptions t;
  t.seed = 7;
  t.num_queries = 60;
  t.concurrency = 8;
  return t;
}

struct AsyncChaosRun {
  workload::TrafficReport report;
  uint64_t sync_result_hash = 0;  // only when with_sync_baseline
  KVStats kv;
};

/// Loads the chain dataset and pushes the deterministic traffic through the
/// async engine with 8 queries in flight. A fresh cluster and executor per
/// run: one cluster is pinned to one executor (one virtual timeline).
AsyncChaosRun RunWorkloadAsync(const ClusterOptions& cluster_options,
                               uint64_t executor_seed,
                               bool with_sync_baseline = false) {
  AsyncChaosRun out;
  Cluster cluster(cluster_options);
  ExampleData data = MakeChain(16, 12, 4);
  Options options;
  options.chunk_capacity_bytes = 700;
  auto store = RStore::Open(&cluster, options);
  EXPECT_TRUE(store.ok());
  if (!store.ok()) return out;
  EXPECT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  const workload::TrafficOptions traffic = AsyncChaosTraffic();
  const std::vector<workload::Query> queries =
      workload::GenerateTraffic(data.dataset, traffic);
  if (with_sync_baseline) {
    out.sync_result_hash =
        workload::RunTrafficSync(store->get(), queries).result_hash;
  }
  Executor executor(executor_seed);
  out.report =
      workload::RunTrafficAsync(store->get(), &executor, queries, traffic);
  out.kv = cluster.stats();
  return out;
}

// The tentpole's availability contract, now with pipelining in the mix:
// whatever the fault schedule does to the timeline — retries, hedges,
// failovers, queueing behind recovering nodes — strict async results stay
// byte-identical to a fault-free run (which itself matches the sync engine).
TEST(ChaosTest, AsyncPipelinedQueriesMatchFaultFreeUnderChaos) {
  ClusterOptions clean;
  clean.num_nodes = 5;
  clean.replication_factor = 3;
  const AsyncChaosRun baseline =
      RunWorkloadAsync(clean, /*executor_seed=*/0, /*with_sync_baseline=*/true);
  ASSERT_EQ(baseline.report.failed, 0u);
  EXPECT_EQ(baseline.report.result_hash, baseline.sync_result_hash);
  EXPECT_EQ(baseline.kv.retries + baseline.kv.hedges + baseline.kv.timeouts +
                baseline.kv.handoff_hints,
            0u);

  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const AsyncChaosRun faulty =
        RunWorkloadAsync(ChaosClusterOptions(seed), /*executor_seed=*/0);
    EXPECT_EQ(faulty.report.failed, 0u);
    EXPECT_EQ(faulty.report.result_hash, baseline.report.result_hash);
    // The schedule actually bit, and faults cost virtual time.
    EXPECT_GT(faulty.kv.retries, 0u);
    EXPECT_GT(faulty.kv.simulated_micros, baseline.kv.simulated_micros);
  }
}

// Same seed, same everything: the async engine's whole timeline — every
// per-query latency, every fault counter — replays identically. This is the
// property the deterministic executor exists to provide.
TEST(ChaosTest, AsyncSameSeedReplaysIdenticalTimeline) {
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const AsyncChaosRun a =
        RunWorkloadAsync(ChaosClusterOptions(seed), /*executor_seed=*/0);
    const AsyncChaosRun b =
        RunWorkloadAsync(ChaosClusterOptions(seed), /*executor_seed=*/0);
    EXPECT_EQ(a.report.latencies_us, b.report.latencies_us);
    EXPECT_EQ(a.report.makespan_us, b.report.makespan_us);
    EXPECT_EQ(a.report.result_hash, b.report.result_hash);
    EXPECT_EQ(a.kv.retries, b.kv.retries);
    EXPECT_EQ(a.kv.hedges, b.kv.hedges);
    EXPECT_EQ(a.kv.hedge_wins, b.kv.hedge_wins);
    EXPECT_EQ(a.kv.timeouts, b.kv.timeouts);
    EXPECT_EQ(a.kv.multiget_batches, b.kv.multiget_batches);
    EXPECT_EQ(a.kv.simulated_micros, b.kv.simulated_micros);
  }
}

// The executor's tie-break seed explores different interleavings of
// logically concurrent completions; none of them may change what any query
// returns, faults or no faults.
TEST(ChaosTest, AsyncResultsInvariantUnderSchedulerSeed) {
  const AsyncChaosRun fifo =
      RunWorkloadAsync(ChaosClusterOptions(ChaosSeeds().front()),
                       /*executor_seed=*/0);
  ASSERT_EQ(fifo.report.failed, 0u);
  for (uint64_t executor_seed : {1ull, 2ull}) {
    SCOPED_TRACE("executor seed " + std::to_string(executor_seed));
    const AsyncChaosRun shuffled = RunWorkloadAsync(
        ChaosClusterOptions(ChaosSeeds().front()), executor_seed);
    EXPECT_EQ(shuffled.report.failed, 0u);
    EXPECT_EQ(shuffled.report.result_hash, fifo.report.result_hash);
    EXPECT_EQ(shuffled.kv.bytes_read, fifo.kv.bytes_read);
  }
}

/// Loads the chain dataset through the ONLINE write path — per-version
/// commits draining in batches through the sharded ingest pipeline — against
/// a faulty cluster, then replays the query workload. `shards` > 1 fans the
/// encode stage out while every backend write still happens on this thread.
ChaosRun RunShardedIngestWorkload(const ClusterOptions& cluster_options,
                                  uint32_t shards) {
  ChaosRun out;
  Cluster cluster(cluster_options);
  ExampleData data = MakeChain(16, 12, 4);
  Options options;
  options.chunk_capacity_bytes = 700;
  options.online_batch_size = 4;
  options.ingest_shards = shards;
  auto store = RStore::Open(&cluster, options);
  EXPECT_TRUE(store.ok());
  if (!store.ok()) return out;
  for (VersionId v = 0; v < data.dataset.graph.size(); ++v) {
    CommitDelta delta;
    const VersionDelta& d = data.dataset.deltas[v];
    std::unordered_set<std::string> added;
    for (const CompositeKey& ck : d.added) {
      added.insert(ck.key);
      delta.upserts.push_back(Record{ck, data.payloads.at(ck)});
    }
    for (const CompositeKey& ck : d.removed) {
      if (!added.count(ck.key)) delta.deletes.push_back(ck.key);
    }
    VersionId parent =
        v == 0 ? kInvalidVersion : data.dataset.graph.PrimaryParent(v);
    auto r = (*store)->Commit(parent, std::move(delta));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return out;
  }
  EXPECT_TRUE((*store)->Flush().ok());
  auto replay = ReplayQueryWorkload(store->get(), data.dataset, kWorkloadSeed);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (replay.ok()) out.results = std::move(replay->results);
  out.kv = cluster.stats();
  return out;
}

// Ingest under faults: online commits drain through the sharded pipeline
// while the cluster injects transient errors, latency spikes and crash
// windows under the writes themselves (hinted handoff on the write path).
// Strict queries over the result must match a fault-free SERIAL ingest byte
// for byte — the fault schedule and the shard count may each cost simulated
// time, never bytes.
TEST(ChaosTest, ShardedIngestUnderFaultsMatchesSerialFaultFree) {
  ClusterOptions clean;
  clean.num_nodes = 5;
  clean.replication_factor = 3;
  const ChaosRun baseline = RunShardedIngestWorkload(clean, /*shards=*/1);
  ASSERT_FALSE(baseline.results.empty());

  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    for (uint32_t shards : {1u, 4u}) {
      SCOPED_TRACE("shards " + std::to_string(shards));
      const ChaosRun faulty =
          RunShardedIngestWorkload(ChaosClusterOptions(seed), shards);
      ASSERT_EQ(faulty.results.size(), baseline.results.size());
      for (size_t i = 0; i < baseline.results.size(); ++i) {
        ASSERT_EQ(faulty.results[i], baseline.results[i]) << "query " << i;
      }
      // The schedule reached the write path: staged hints imply writes hit
      // crashed replicas mid-ingest.
      EXPECT_GT(faulty.kv.handoff_hints, 0u);
    }
    // Same seed, same shard fan-out: the simulated write timeline is
    // identical because every backend write is issued from the one writer
    // thread in shard order, regardless of encoder scheduling.
    const ChaosRun serial =
        RunShardedIngestWorkload(ChaosClusterOptions(seed), 1);
    const ChaosRun sharded =
        RunShardedIngestWorkload(ChaosClusterOptions(seed), 4);
    EXPECT_EQ(serial.kv.simulated_micros, sharded.kv.simulated_micros);
    EXPECT_EQ(serial.kv.retries, sharded.kv.retries);
    EXPECT_EQ(serial.kv.handoff_hints, sharded.kv.handoff_hints);
  }
}

TEST(ChaosTest, DifferentSeedsDivergeSomewhere) {
  // Guards against the injector accidentally ignoring its seed: across the
  // sweep, at least two seeds must produce different fault timelines (the
  // results still all match the baseline, per the equivalence test).
  std::vector<uint64_t> seeds = ChaosSeeds();
  if (seeds.size() < 2) {
    GTEST_SKIP() << "single-seed run (RSTORE_CHAOS_SEED set)";
  }
  bool diverged = false;
  ChaosRun first = RunWorkload(ChaosClusterOptions(seeds[0]));
  for (size_t i = 1; i < seeds.size() && !diverged; ++i) {
    ChaosRun other = RunWorkload(ChaosClusterOptions(seeds[i]));
    diverged = other.kv.retries != first.kv.retries ||
               other.kv.hedges != first.kv.hedges ||
               other.kv.simulated_micros != first.kv.simulated_micros;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace rstore
