// Tests for version diffing, merge-base, and parallel query extraction.

#include <gtest/gtest.h>

#include <map>

#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;
using testing::MakeExample2;

Options SmallOptions() {
  Options options;
  options.chunk_capacity_bytes = 600;
  return options;
}

TEST(MergeBaseTest, Example2Ancestry) {
  ExampleData data = MakeExample2();
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Fig. 1: V3 under V1, V4 under V2, both branches from V0.
  EXPECT_EQ(*(*store)->MergeBase(3, 4), 0u);
  EXPECT_EQ(*(*store)->MergeBase(1, 3), 1u);
  EXPECT_EQ(*(*store)->MergeBase(3, 3), 3u);
  EXPECT_EQ(*(*store)->MergeBase(0, 4), 0u);
  EXPECT_TRUE((*store)->MergeBase(0, 99).status().IsInvalidArgument());
}

TEST(DiffTest, ParentChildDiffEqualsTheDelta) {
  ExampleData data = MakeExample2();
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Diff(V0 -> V1) must equal ∆0,1 from the paper's Example 2.
  auto diff = (*store)->Diff(0, 1);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->added,
            (std::vector<CompositeKey>{{"K3", 1}, {"K4", 1}}));
  EXPECT_EQ(diff->removed, (std::vector<CompositeKey>{{"K3", 0}}));
}

TEST(DiffTest, SymmetricAcrossBranches) {
  ExampleData data = MakeExample2();
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // V3 = {K0@0,K1@0,K3@1,K4@1}; V4 = {K0@0,K1@0,K3@4,K5@2}.
  auto d34 = (*store)->Diff(3, 4);
  ASSERT_TRUE(d34.ok());
  EXPECT_EQ(d34->added,
            (std::vector<CompositeKey>{{"K3", 4}, {"K5", 2}}));
  EXPECT_EQ(d34->removed,
            (std::vector<CompositeKey>{{"K3", 1}, {"K4", 1}}));
  // ∆ij = ∆ji (paper §3.2): the reverse diff is the inverse.
  auto d43 = (*store)->Diff(4, 3);
  ASSERT_TRUE(d43.ok());
  EXPECT_EQ(d43->added, d34->removed);
  EXPECT_EQ(d43->removed, d34->added);
  // Self-diff is empty.
  auto d33 = (*store)->Diff(3, 3);
  ASSERT_TRUE(d33.ok());
  EXPECT_TRUE(d33->empty());
}

TEST(DiffTest, AgreesWithMaterializedMembership) {
  ExampleData data = MakeChain(30, 12, 3);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  for (auto [from, to] : {std::pair<VersionId, VersionId>{2, 27},
                          {27, 2},
                          {0, 29},
                          {14, 15}}) {
    auto diff = (*store)->Diff(from, to);
    ASSERT_TRUE(diff.ok());
    auto from_members = data.dataset.MaterializeVersion(from);
    auto to_members = data.dataset.MaterializeVersion(to);
    for (const CompositeKey& ck : diff->added) {
      EXPECT_TRUE(to_members.count(ck) && !from_members.count(ck))
          << ck.ToString();
    }
    for (const CompositeKey& ck : diff->removed) {
      EXPECT_TRUE(from_members.count(ck) && !to_members.count(ck))
          << ck.ToString();
    }
    // Completeness: |to| = |from| + added - removed.
    EXPECT_EQ(to_members.size(),
              from_members.size() + diff->added.size() -
                  diff->removed.size());
  }
}

TEST(ParallelExtractionTest, ResultsIdenticalToSequential) {
  ExampleData data = MakeChain(25, 15, 4);
  MemoryStore backend_seq, backend_par;
  Options sequential = SmallOptions();
  Options parallel = SmallOptions();
  parallel.parallel_extraction = true;

  auto seq = RStore::Open(&backend_seq, sequential);
  auto par = RStore::Open(&backend_par, parallel);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE((*seq)->BulkLoad(data.dataset, data.payloads).ok());
  ASSERT_TRUE((*par)->BulkLoad(data.dataset, data.payloads).ok());

  for (VersionId v = 0; v < 25; v += 4) {
    auto a = (*seq)->GetVersion(v);
    auto b = (*par)->GetVersion(v);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size()) << v;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].key, (*b)[i].key);
      EXPECT_EQ((*a)[i].payload, (*b)[i].payload);
    }
  }
  auto ra = (*seq)->GetRange(20, "key1003", "key1010");
  auto rb = (*par)->GetRange(20, "key1003", "key1010");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->size(), rb->size());
}

TEST(ParallelExtractionTest, CorruptionStillDetected) {
  ExampleData data = MakeChain(20, 10, 3);
  MemoryStore backend;
  Options options = SmallOptions();
  options.parallel_extraction = true;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  std::vector<std::string> keys;
  (void)backend.Scan(options.chunk_table,
                     [&](Slice key, Slice) { keys.push_back(key.ToString()); });
  for (const std::string& key : keys) {
    ASSERT_TRUE(backend.Put(options.chunk_table, key, "bad").ok());
  }
  EXPECT_FALSE((*store)->GetVersion(19).ok());
}


TEST(CommitSnapshotTest, ServerSideDiffDetectsChanges) {
  MemoryStore backend;
  Options options = SmallOptions();
  options.online_batch_size = 1;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  RStore& db = **store;

  std::map<std::string, std::string> v0 = {
      {"a", "alpha"}, {"b", "beta"}, {"c", "gamma"}};
  auto r0 = db.CommitSnapshot(kInvalidVersion, v0);
  ASSERT_TRUE(r0.ok());

  // Change one record, delete one, add one; resend the FULL snapshot.
  std::map<std::string, std::string> v1 = {
      {"a", "alpha"}, {"b", "beta-2"}, {"d", "delta"}};
  auto r1 = db.CommitSnapshot(*r0, v1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  // The server-side diff must have produced exactly the minimal delta:
  // unchanged "a" keeps its V0 composite key (stored once).
  auto rec_a = db.GetRecord("a", *r1);
  ASSERT_TRUE(rec_a.ok());
  EXPECT_EQ(rec_a->key, CompositeKey("a", 0));
  auto rec_b = db.GetRecord("b", *r1);
  ASSERT_TRUE(rec_b.ok());
  EXPECT_EQ(rec_b->key.version, *r1);
  EXPECT_EQ(rec_b->payload, "beta-2");
  EXPECT_TRUE(db.GetRecord("c", *r1).status().IsNotFound());
  EXPECT_EQ(db.GetRecord("d", *r1)->payload, "delta");
  // And the membership delta is minimal.
  auto diff = db.Diff(*r0, *r1);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->added.size(), 2u);    // b@v1, d@v1
  EXPECT_EQ(diff->removed.size(), 2u);  // b@0, c@0
}

TEST(CommitSnapshotTest, IdenticalSnapshotCommitsEmptyVersion) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  std::map<std::string, std::string> v0 = {{"a", "1"}, {"b", "2"}};
  auto r0 = (*store)->CommitSnapshot(kInvalidVersion, v0);
  ASSERT_TRUE(r0.ok());
  // Paper: "Even if two versions committed are exactly the same, the system
  // will generate different version-ids".
  auto r1 = (*store)->CommitSnapshot(*r0, v0);
  ASSERT_TRUE(r1.ok());
  EXPECT_NE(*r0, *r1);
  auto diff = (*store)->Diff(*r0, *r1);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
  // Both versions checkout identically.
  EXPECT_EQ((*store)->GetVersion(*r0)->size(),
            (*store)->GetVersion(*r1)->size());
}

}  // namespace
}  // namespace rstore
