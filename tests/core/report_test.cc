#include "core/report.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

TEST(StoreReportTest, ReflectsLoadedStore) {
  ExampleData data = MakeChain(20, 10, 3);
  MemoryStore backend;
  Options options;
  options.chunk_capacity_bytes = 600;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  auto report = BuildStoreReport(**store, &backend);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_versions, 20u);
  EXPECT_EQ(report->num_chunks, (*store)->NumChunks());
  EXPECT_GT(report->chunk_bytes, 0u);
  EXPECT_GT(report->index_table_bytes, 0u);
  EXPECT_EQ(report->total_span, (*store)->TotalVersionSpan());
  EXPECT_GE(report->max_span, 1u);
  EXPECT_GT(report->avg_span, 0.0);
  // Histogram covers every version exactly once.
  uint64_t histogram_total = 0;
  for (uint64_t bucket : report->span_histogram) histogram_total += bucket;
  EXPECT_EQ(histogram_total, 20u);
  // Fixed-chunk-size assumption health (paper §2.5): no chunk beyond the
  // overflow band.
  EXPECT_EQ(report->overfull_chunks, 0u);
  EXPECT_GT(report->avg_chunk_fill, 0.1);
}

TEST(StoreReportTest, EmptyStore) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, Options());
  ASSERT_TRUE(store.ok());
  auto report = BuildStoreReport(**store, &backend);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_versions, 0u);
  EXPECT_EQ(report->num_chunks, 0u);
  EXPECT_EQ(report->total_span, 0u);
}

TEST(StoreReportTest, ToStringIsRenderable) {
  ExampleData data = MakeChain(10, 5, 2);
  MemoryStore backend;
  Options options;
  options.chunk_capacity_bytes = 600;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  auto report = BuildStoreReport(**store, &backend);
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("versions:"), std::string::npos);
  EXPECT_NE(text.find("span histogram:"), std::string::npos);
}

// Golden rendering for the generic per-layer counter blocks: fixed-width
// layer label, space-separated name=value pairs, one line per layer.
TEST(StoreReportTest, LayerCountersGoldenRendering) {
  StoreReport report;
  report.layers.push_back(StoreReport::LayerCounters{
      "metrics/kvs",
      {{"requests_total", 42}, {"bytes_read_total", 1024}}});
  report.layers.push_back(StoreReport::LayerCounters{
      "chunk-cache", {{"hits", 7}}});
  std::string text = report.ToString();
  EXPECT_NE(
      text.find(
          "metrics/kvs:       requests_total=42 bytes_read_total=1024\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("chunk-cache:       hits=7\n"), std::string::npos)
      << text;
  // Layers render in insertion order.
  EXPECT_LT(text.find("metrics/kvs:"), text.find("chunk-cache:"));
}

}  // namespace
}  // namespace rstore
