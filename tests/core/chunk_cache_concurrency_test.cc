// TSan-targeted stress tests for the shared chunk cache: many threads drive
// mixed query classes through per-thread QueryProcessors that all share one
// deliberately tiny cache (constant eviction churn) over one bulk-loaded
// store. Run under the `debug-tsan` preset in CI (the job's -R filter
// matches "Concurrency"); in plain builds it still checks results against
// ground truth under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/query_processor.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/cluster.h"

namespace rstore {
namespace {

using testing::MakeChain;
using testing::SerializeRecords;

TEST(ChunkCacheConcurrencyTest, MixedQueriesThroughOneTinyCache) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = 2;
  cluster_options.latency = ZeroLatencyModel();
  Cluster cluster(cluster_options);

  testing::ExampleData data = MakeChain(/*versions=*/40, /*keys=*/60,
                                        /*updates_per_version=*/5);
  Options options;
  options.chunk_capacity_bytes = 2048;  // many chunks -> many cache entries
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());

  // Ground truth, computed single-threaded and uncached.
  std::vector<std::string> expected_versions;
  for (VersionId v = 0; v < 40; ++v) {
    auto got = (*store)->GetVersion(v);
    ASSERT_TRUE(got.ok());
    expected_versions.push_back(SerializeRecords(*got));
  }
  std::map<std::string, std::string> expected_histories;
  for (uint32_t k = 0; k < 60; k += 7) {
    std::string key = "key" + std::to_string(1000 + k);
    auto got = (*store)->GetHistory(key);
    ASSERT_TRUE(got.ok());
    expected_histories[key] = SerializeRecords(*got);
  }

  // One tiny shared cache: far below the working set, so threads evict each
  // other's entries continuously.
  auto cache = std::make_shared<ChunkCache>(/*capacity_bytes=*/32 << 10,
                                            /*num_shards=*/4);
  const uint64_t owner = cache->NewOwnerId();
  std::atomic<int> errors{0};
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<QueryStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryProcessor qp(&cluster, &(*store)->catalog(), &(*store)->dataset(),
                        (*store)->layout(), (*store)->options(), cache.get(),
                        owner);
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the versions at a different stride so the
        // threads chase different parts of the working set concurrently.
        for (VersionId i = 0; i < 40; ++i) {
          VersionId v = (i * (t + 1) + round) % 40;
          auto got = qp.GetVersion(v, &per_thread[t]);
          if (!got.ok() || SerializeRecords(*got) != expected_versions[v]) {
            errors.fetch_add(1);
          }
        }
        for (const auto& [key, expected] : expected_histories) {
          auto got = qp.GetHistory(key, &per_thread[t]);
          if (!got.ok() || SerializeRecords(*got) != expected) {
            errors.fetch_add(1);
          }
        }
      }
    });
  }
  // A validator thread repeatedly checks the structural invariants while
  // the query threads churn the shards.
  std::atomic<bool> stop{false};
  std::thread validator([&] {
    while (!stop.load()) {
      if (!cache->Validate().ok()) errors.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true);
  validator.join();

  EXPECT_EQ(errors.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    // Every chunk resolution was exactly one hit or one miss.
    EXPECT_EQ(per_thread[t].cache_hits + per_thread[t].cache_misses,
              per_thread[t].chunks_fetched)
        << "thread " << t;
  }
  Status valid = cache->Validate();
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  ChunkCacheStats stats = cache->stats();
  EXPECT_LE(stats.charged_bytes, stats.capacity_bytes);
  EXPECT_GT(stats.evictions, 0u);  // the cache really was under pressure
  EXPECT_GT(stats.hits, 0u);
}

TEST(ChunkCacheConcurrencyTest, SharedCacheAcrossStoresKeepsOwnersApart) {
  // Two stores over distinct backends share one cache; identical chunk ids
  // on both sides must never alias. Each thread hammers one store.
  auto cache = std::make_shared<ChunkCache>(/*capacity_bytes=*/256 << 10,
                                            /*num_shards=*/2);
  Options options;
  options.chunk_capacity_bytes = 2048;
  options.chunk_cache = cache;

  testing::ExampleData data_a = MakeChain(20, 40, 4);
  testing::ExampleData data_b = MakeChain(20, 40, 9);  // different payloads
  ClusterOptions cluster_options;
  cluster_options.latency = ZeroLatencyModel();
  Cluster cluster_a(cluster_options), cluster_b(cluster_options);
  auto store_a = RStore::Open(&cluster_a, options);
  auto store_b = RStore::Open(&cluster_b, options);
  ASSERT_TRUE(store_a.ok() && store_b.ok());
  ASSERT_TRUE((*store_a)->BulkLoad(data_a.dataset, data_a.payloads).ok());
  ASSERT_TRUE((*store_b)->BulkLoad(data_b.dataset, data_b.payloads).ok());

  auto expect_version = [](const testing::ExampleData& data, VersionId v) {
    std::map<std::string, std::string> expected;
    for (const CompositeKey& ck : data.dataset.MaterializeVersion(v)) {
      expected[ck.key] = data.payloads.at(ck);
    }
    return expected;
  };
  std::atomic<int> errors{0};
  auto worker = [&](RStore* store, const testing::ExampleData& data) {
    for (int round = 0; round < 3; ++round) {
      for (VersionId v = 0; v < 20; ++v) {
        auto got = store->GetVersion(v);
        if (!got.ok()) {
          errors.fetch_add(1);
          continue;
        }
        std::map<std::string, std::string> actual;
        for (const Record& r : *got) actual[r.key.key] = r.payload;
        if (actual != expect_version(data, v)) errors.fetch_add(1);
      }
    }
  };
  std::thread ta(worker, store_a->get(), std::cref(data_a));
  std::thread tb(worker, store_b->get(), std::cref(data_b));
  ta.join();
  tb.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(cache->Validate().ok());
}

}  // namespace
}  // namespace rstore
