// Decode robustness: every wire-format decoder must reject arbitrary bytes
// with a clean Status — no crashes, no hangs, no silent partial success that
// violates invariants. Exercised with (a) pure random buffers and (b)
// mutated valid encodings, which reach much deeper into the decoders.

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/bitmap.h"
#include "compress/delta_codec.h"
#include "compress/lz_codec.h"
#include "core/chunk.h"
#include "core/chunk_map.h"
#include "core/sub_chunk.h"
#include "json/json_parser.h"
#include "version/delta.h"
#include "version/version_graph.h"

namespace rstore {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  std::string out;
  size_t len = rng->Uniform(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

std::string Mutate(Random* rng, std::string input) {
  if (input.empty()) return input;
  int edits = 1 + static_cast<int>(rng->Uniform(4));
  for (int e = 0; e < edits; ++e) {
    switch (rng->Uniform(3)) {
      case 0:  // flip a byte
        input[rng->Uniform(input.size())] =
            static_cast<char>(rng->Uniform(256));
        break;
      case 1:  // truncate
        input.resize(rng->Uniform(input.size() + 1));
        break;
      default:  // append garbage
        input.push_back(static_cast<char>(rng->Uniform(256)));
    }
    if (input.empty()) break;
  }
  return input;
}

/// A valid encoded chunk (with two sub-chunks) to mutate.
std::string ValidChunkEncoding() {
  Chunk chunk(9);
  auto sc1 = SubChunk::Build(
      {{CompositeKey("A", 0), 0, "payload one for sub-chunk A", {}, {}}},
      CompressionType::kLZ);
  auto sc2 = SubChunk::Build({{CompositeKey("B", 0), 0, "payload B zero", {}, {}},
                              {CompositeKey("B", 3), 0, "payload B three", {}, {}}},
                             CompressionType::kLZ);
  chunk.AddSubChunk(*std::move(sc1));
  chunk.AddSubChunk(*std::move(sc2));
  std::string out;
  chunk.EncodeTo(&out);
  return out;
}

class FuzzDecodeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDecodeTest, DecodersNeverCrashOnGarbage) {
  Random rng(GetParam() * 7919 + 1);
  const std::string valid_chunk = ValidChunkEncoding();
  std::string valid_map;
  {
    ChunkMap map(8);
    map.Add(0, 1);
    map.Add(2, 7);
    map.EncodeTo(&valid_map);
  }
  std::string valid_graph;
  {
    VersionGraph g;
    g.AddRoot();
    (void)*g.AddVersion({0});
    (void)*g.AddVersion({0, 1});
    g.EncodeTo(&valid_graph);
  }
  std::string valid_bitmap;
  {
    Bitmap b(200);
    b.Set(3);
    b.Set(150);
    b.SerializeTo(&valid_bitmap);
  }
  std::string valid_lz;
  lz::Compress(Slice("compressible compressible compressible"), &valid_lz);
  std::string valid_delta;
  delta_codec::Encode(Slice("the base payload content"),
                      Slice("the modified payload content"), &valid_delta);

  for (int trial = 0; trial < 200; ++trial) {
    // Alternate pure-random and mutated-valid inputs.
    bool mutated = trial % 2 == 1;
    auto make_input = [&](const std::string& valid) {
      return mutated ? Mutate(&rng, valid) : RandomBytes(&rng, 300);
    };
    // Each input is bound to a named string: Slice is non-owning, so the
    // backing bytes must outlive every DecodeFrom call that reads them.
    {
      std::string input = make_input(valid_chunk);
      Slice in(input);
      Chunk out;
      (void)Chunk::DecodeFrom(&in, &out);  // must simply not crash
    }
    {
      std::string input = make_input(valid_map);
      Slice in(input);
      ChunkMap out;
      (void)ChunkMap::DecodeFrom(&in, &out);
    }
    {
      std::string input = make_input(valid_graph);
      Slice in(input);
      VersionGraph out;
      (void)VersionGraph::DecodeFrom(&in, &out);
    }
    {
      std::string input = make_input(valid_bitmap);
      Slice in(input);
      Bitmap out;
      (void)Bitmap::DeserializeFrom(&in, &out);
    }
    {
      std::string out;
      (void)lz::Decompress(Slice(make_input(valid_lz)), &out);
    }
    {
      std::string out;
      (void)delta_codec::Apply(Slice("the base payload content"),
                               Slice(make_input(valid_delta)), &out);
    }
    {
      std::string input = make_input("{\"a\":[1,2,{\"b\":null}]}");
      (void)json::Parse(input);
    }
    {
      std::string input = make_input("");
      Slice in(input);
      VersionDelta out;
      (void)VersionDelta::DecodeFrom(&in, &out);
    }
  }
}

TEST_P(FuzzDecodeTest, MutatedSubChunkNeverYieldsWrongPayload) {
  // Stronger property: if a mutated sub-chunk DOES decode, extraction either
  // fails cleanly or returns payloads (decoders cannot verify content
  // without checksums — but must never crash or loop).
  Random rng(GetParam() * 31337 + 5);
  auto valid = SubChunk::Build(
      {{CompositeKey("key", 0), 0, std::string(500, 'x'), {}, {}},
       {CompositeKey("key", 1), 0, std::string(500, 'y'), {}, {}}},
      CompressionType::kLZ);
  ASSERT_TRUE(valid.ok());
  std::string encoded;
  valid->EncodeTo(&encoded);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = Mutate(&rng, encoded);
    Slice in(input);
    SubChunk out;
    if (SubChunk::DecodeFrom(&in, &out).ok()) {
      (void)out.ExtractAllPayloads();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecodeTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace rstore
