#include "core/chunk.h"

#include <gtest/gtest.h>

#include "core/chunk_map.h"

namespace rstore {
namespace {

SubChunk MakeSubChunk(const std::string& key,
                      std::vector<std::pair<VersionId, std::string>> records) {
  std::vector<SubChunk::Member> members;
  for (size_t i = 0; i < records.size(); ++i) {
    SubChunk::Member m;
    m.key = CompositeKey(key, records[i].first);
    m.parent_index = i == 0 ? 0 : static_cast<uint32_t>(i - 1);
    m.payload = std::move(records[i].second);
    members.push_back(std::move(m));
  }
  auto sc = SubChunk::Build(std::move(members), CompressionType::kLZ);
  EXPECT_TRUE(sc.ok());
  return *std::move(sc);
}

TEST(ChunkMapTest, AddAndQuery) {
  ChunkMap map(4);
  map.Add(0, 0);
  map.Add(0, 1);
  map.Add(2, 1);
  map.Add(2, 3);
  EXPECT_EQ(map.Versions(), (std::vector<VersionId>{0, 2}));
  EXPECT_TRUE(map.HasVersion(0));
  EXPECT_FALSE(map.HasVersion(1));
  EXPECT_EQ(map.RecordsOf(0), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(map.RecordsOf(2), (std::vector<uint32_t>{1, 3}));
  EXPECT_TRUE(map.RecordsOf(7).empty());
}

TEST(ChunkMapTest, EncodeDecodeRoundTrip) {
  ChunkMap map(100);
  for (uint32_t v = 0; v < 20; ++v) {
    for (uint32_t r = v; r < 100; r += 7) map.Add(v, r);
  }
  std::string buf;
  map.EncodeTo(&buf);
  Slice in(buf);
  ChunkMap decoded;
  ASSERT_TRUE(ChunkMap::DecodeFrom(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_TRUE(decoded == map);
}

TEST(ChunkMapTest, DecodeRejectsSizeMismatch) {
  ChunkMap map(10);
  map.Add(1, 5);
  std::string buf;
  map.EncodeTo(&buf);
  // Tamper: claim 11 records but keep a 10-bit bitmap.
  buf[0] = 11;
  Slice in(buf);
  ChunkMap decoded;
  EXPECT_FALSE(ChunkMap::DecodeFrom(&in, &decoded).ok());
}

TEST(ChunkTest, FlattenedRecordList) {
  Chunk chunk(7);
  EXPECT_EQ(chunk.id(), 7u);
  uint32_t first_a = chunk.AddSubChunk(
      MakeSubChunk("A", {{0, "a0"}, {2, "a2"}}));
  uint32_t first_b = chunk.AddSubChunk(MakeSubChunk("B", {{1, "b1"}}));
  EXPECT_EQ(first_a, 0u);
  EXPECT_EQ(first_b, 2u);
  EXPECT_EQ(chunk.record_count(), 3u);
  EXPECT_EQ(chunk.records()[0], CompositeKey("A", 0));
  EXPECT_EQ(chunk.records()[1], CompositeKey("A", 2));
  EXPECT_EQ(chunk.records()[2], CompositeKey("B", 1));
}

TEST(ChunkTest, ExtractPayloadAndRecords) {
  Chunk chunk(1);
  chunk.AddSubChunk(MakeSubChunk("A", {{0, "payload-a0"}, {2, "payload-a2"}}));
  chunk.AddSubChunk(MakeSubChunk("B", {{1, "payload-b1"}}));

  auto p = chunk.ExtractPayload(CompositeKey("A", 2));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, "payload-a2");
  EXPECT_TRUE(
      chunk.ExtractPayload(CompositeKey("C", 0)).status().IsNotFound());

  auto records = chunk.ExtractRecords({0, 2});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].first, CompositeKey("A", 0));
  EXPECT_EQ((*records)[0].second, "payload-a0");
  EXPECT_EQ((*records)[1].first, CompositeKey("B", 1));
  EXPECT_EQ((*records)[1].second, "payload-b1");

  EXPECT_FALSE(chunk.ExtractRecords({9}).ok());
}

TEST(ChunkTest, ChunkMapIntegration) {
  Chunk chunk(3);
  chunk.AddSubChunk(MakeSubChunk("A", {{0, "a0"}}));
  chunk.AddSubChunk(MakeSubChunk("B", {{0, "b0"}, {1, "b1"}}));
  chunk.InitChunkMap();
  // A@0 and B@0 belong to V0; B@1 replaces B@0 in V1 (A@0 persists).
  chunk.chunk_map()->Add(0, 0);
  chunk.chunk_map()->Add(0, 1);
  chunk.chunk_map()->Add(1, 0);
  chunk.chunk_map()->Add(1, 2);
  auto v1 = chunk.chunk_map()->RecordsOf(1);
  EXPECT_EQ(v1, (std::vector<uint32_t>{0, 2}));
  auto extracted = chunk.ExtractRecords(v1);
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ((*extracted)[0].second, "a0");
  EXPECT_EQ((*extracted)[1].second, "b1");
  EXPECT_TRUE(chunk.Validate().ok());
}

TEST(ChunkTest, EncodeDecodeRoundTrip) {
  Chunk chunk(42);
  chunk.AddSubChunk(MakeSubChunk("A", {{0, std::string(500, 'x')}}));
  chunk.AddSubChunk(MakeSubChunk("B", {{0, "b0"}, {3, "b3"}}));
  std::string body;
  chunk.EncodeTo(&body);
  Slice in(body);
  Chunk decoded;
  ASSERT_TRUE(Chunk::DecodeFrom(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.id(), 42u);
  EXPECT_EQ(decoded.record_count(), 3u);
  EXPECT_EQ(decoded.records(), chunk.records());
  EXPECT_EQ(*decoded.ExtractPayload(CompositeKey("B", 3)), "b3");
  EXPECT_TRUE(decoded.Validate().ok());
}

TEST(ChunkTest, SetChunkMapValidatesCoverage) {
  Chunk chunk(1);
  chunk.AddSubChunk(MakeSubChunk("A", {{0, "a"}}));
  ChunkMap wrong(5);
  EXPECT_TRUE(chunk.SetChunkMap(std::move(wrong)).IsCorruption());
  ChunkMap right(1);
  right.Add(0, 0);
  EXPECT_TRUE(chunk.SetChunkMap(std::move(right)).ok());
}

TEST(ChunkTest, PayloadBytesTracksSubChunkSizes) {
  Chunk chunk(1);
  EXPECT_EQ(chunk.payload_bytes(), 0u);
  SubChunk sc = MakeSubChunk("A", {{0, std::string(1000, 'q')}});
  uint64_t expected = sc.serialized_size();
  chunk.AddSubChunk(std::move(sc));
  EXPECT_EQ(chunk.payload_bytes(), expected);
}

TEST(ChunkTest, ValidateCatchesStaleChunkMap) {
  // A populated chunk map that no longer covers the chunk's records must be
  // rejected. The state is reachable without any out-of-contract call:
  // InitChunkMap snapshots the record count, so appending a sub-chunk
  // afterwards leaves the map referencing a smaller record list.
  Chunk chunk(1);
  chunk.AddSubChunk(MakeSubChunk("A", {{0, "a0"}, {1, "a1"}}));
  chunk.InitChunkMap();
  chunk.chunk_map()->Add(0, 1);
  EXPECT_TRUE(chunk.Validate().ok());
  chunk.AddSubChunk(MakeSubChunk("B", {{0, "b0"}}));
  EXPECT_TRUE(chunk.Validate().IsCorruption());
}

TEST(ChunkTest, SetChunkMapRejectsForeignMap) {
  // Maps referencing a different record universe are stopped at the door, so
  // the out-of-range branch in Validate stays defense-in-depth only.
  Chunk chunk(1);
  chunk.AddSubChunk(MakeSubChunk("A", {{0, "a0"}, {1, "a1"}}));
  ChunkMap foreign(6);
  foreign.Add(0, 5);  // valid for a 6-record chunk, not for this one
  EXPECT_TRUE(chunk.SetChunkMap(std::move(foreign)).IsCorruption());
  EXPECT_TRUE(chunk.Validate().ok());
}

TEST(ChunkKeyTest, DistinctAndStable) {
  EXPECT_EQ(ChunkKey(5), ChunkKey(5));
  EXPECT_NE(ChunkKey(5), ChunkKey(6));
  EXPECT_EQ(ChunkKey(0)[0], 'c');
}

}  // namespace
}  // namespace rstore
