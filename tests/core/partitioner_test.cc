#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <set>

#include "core/sub_chunk_builder.h"
#include "core_test_util.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;
using testing::MakeExample2;

struct PreparedInput {
  ExampleData data;
  RecordVersionMap record_versions;
  SubChunkBuildResult built;
  Options options;
};

PreparedInput Prepare(ExampleData data, Options options) {
  PreparedInput out;
  out.data = std::move(data);
  out.options = options;
  out.record_versions = out.data.dataset.BuildRecordVersionMap();
  auto built = BuildSubChunks(out.data.dataset, out.data.payloads,
                              out.record_versions, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  out.built = *std::move(built);
  return out;
}

Partitioning RunAlgorithm(PreparedInput& prepared, PartitionAlgorithm algorithm) {
  auto partitioner = CreatePartitioner(algorithm);
  EXPECT_NE(partitioner, nullptr);
  PartitionInput input;
  input.dataset = &prepared.data.dataset;
  input.items = &prepared.built.items;
  input.options = prepared.options;
  input.options.algorithm = algorithm;
  auto result = partitioner->Partition(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *std::move(result);
}

Options SmallChunks() {
  Options options;
  options.chunk_capacity_bytes = 400;  // a few records per chunk
  options.compression = CompressionType::kLZ;
  return options;
}

constexpr PartitionAlgorithm kAllAlgorithms[] = {
    PartitionAlgorithm::kBottomUp,        PartitionAlgorithm::kShingle,
    PartitionAlgorithm::kDepthFirst,      PartitionAlgorithm::kBreadthFirst,
    PartitionAlgorithm::kDeltaBaseline,   PartitionAlgorithm::kSubChunkBaseline,
    PartitionAlgorithm::kSingleAddressSpace,
};

class AllAlgorithmsTest
    : public ::testing::TestWithParam<PartitionAlgorithm> {};

TEST_P(AllAlgorithmsTest, EveryItemPlacedExactlyOnce) {
  PreparedInput prepared = Prepare(MakeExample2(), SmallChunks());
  Partitioning p = RunAlgorithm(prepared, GetParam());
  std::set<uint32_t> seen;
  for (const auto& chunk : p.chunks) {
    for (uint32_t item : chunk) {
      EXPECT_TRUE(seen.insert(item).second)
          << "item " << item << " placed twice";
    }
  }
  EXPECT_EQ(seen.size(), prepared.built.items.size());
}

TEST_P(AllAlgorithmsTest, EveryItemPlacedOnChainDataset) {
  PreparedInput prepared = Prepare(MakeChain(40, 25, 5), SmallChunks());
  Partitioning p = RunAlgorithm(prepared, GetParam());
  EXPECT_EQ(p.num_items(), prepared.built.items.size());
}

TEST_P(AllAlgorithmsTest, Deterministic) {
  PreparedInput prepared = Prepare(MakeChain(20, 10, 3), SmallChunks());
  Partitioning p1 = RunAlgorithm(prepared, GetParam());
  Partitioning p2 = RunAlgorithm(prepared, GetParam());
  EXPECT_EQ(p1.chunks, p2.chunks);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AllAlgorithmsTest, ::testing::ValuesIn(kAllAlgorithms),
    [](const ::testing::TestParamInfo<PartitionAlgorithm>& info) {
      std::string name = PartitionAlgorithmName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PartitionerTest, CapacityRespectedByPackingAlgorithms) {
  PreparedInput prepared = Prepare(MakeChain(40, 25, 5), SmallChunks());
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
        PartitionAlgorithm::kDepthFirst, PartitionAlgorithm::kBreadthFirst,
        PartitionAlgorithm::kDeltaBaseline}) {
    Partitioning p = RunAlgorithm(prepared, algorithm);
    uint64_t hard_limit = static_cast<uint64_t>(
        SmallChunks().chunk_capacity_bytes * 1.25);
    for (const auto& chunk : p.chunks) {
      uint64_t bytes = 0;
      for (uint32_t item : chunk) bytes += prepared.built.items[item].bytes;
      // Single oversized items are exempt.
      if (chunk.size() > 1) {
        EXPECT_LE(bytes, hard_limit) << PartitionAlgorithmName(algorithm);
      }
    }
  }
}

TEST(PartitionerTest, SingleAddressIsOneItemPerChunk) {
  PreparedInput prepared = Prepare(MakeExample2(), SmallChunks());
  Partitioning p = RunAlgorithm(prepared, PartitionAlgorithm::kSingleAddressSpace);
  EXPECT_EQ(p.chunks.size(), prepared.built.items.size());
  for (const auto& chunk : p.chunks) EXPECT_EQ(chunk.size(), 1u);
}

TEST(PartitionerTest, SubChunkBaselineGroupsByKey) {
  PreparedInput prepared = Prepare(MakeExample2(), SmallChunks());
  Partitioning p = RunAlgorithm(prepared, PartitionAlgorithm::kSubChunkBaseline);
  // Example 2 has keys K0..K5 -> 6 chunks.
  EXPECT_EQ(p.chunks.size(), 6u);
  EXPECT_EQ(p.layout, LayoutKind::kSubChunkPerKey);
  for (const auto& chunk : p.chunks) {
    std::set<std::string> keys;
    for (uint32_t item : chunk) {
      keys.insert(prepared.built.items[item].id.key);
    }
    EXPECT_EQ(keys.size(), 1u);
  }
}

TEST(PartitionerTest, DeltaBaselineKeepsVersionsSeparate) {
  PreparedInput prepared = Prepare(MakeExample2(), SmallChunks());
  Partitioning p = RunAlgorithm(prepared, PartitionAlgorithm::kDeltaBaseline);
  EXPECT_EQ(p.layout, LayoutKind::kDeltaChain);
  for (const auto& chunk : p.chunks) {
    std::set<VersionId> origins;
    for (uint32_t item : chunk) {
      origins.insert(prepared.built.items[item].origin_version);
    }
    EXPECT_EQ(origins.size(), 1u) << "delta chunk mixes versions";
  }
}

TEST(PartitionerTest, DfsEqualsBfsOnLinearChain) {
  // "except for linear chains when they reduce to the same technique".
  PreparedInput prepared = Prepare(MakeChain(30, 20, 4), SmallChunks());
  Partitioning dfs = RunAlgorithm(prepared, PartitionAlgorithm::kDepthFirst);
  Partitioning bfs = RunAlgorithm(prepared, PartitionAlgorithm::kBreadthFirst);
  EXPECT_EQ(dfs.chunks, bfs.chunks);
}

TEST(PartitionerTest, SmartAlgorithmsBeatDeltaOnChainSpan) {
  // Fig. 8's headline: BOTTOM-UP / SHINGLE / DFS outperform DELTA on total
  // version span.
  PreparedInput prepared = Prepare(MakeChain(60, 40, 6), SmallChunks());
  const VersionGraph& graph = prepared.data.dataset.graph;
  Partitioning delta = RunAlgorithm(prepared, PartitionAlgorithm::kDeltaBaseline);
  uint64_t delta_span =
      TotalVersionSpan(delta, prepared.built.items, graph);
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kDepthFirst,
        PartitionAlgorithm::kShingle}) {
    Partitioning p = RunAlgorithm(prepared, algorithm);
    uint64_t span = TotalVersionSpan(p, prepared.built.items, graph);
    EXPECT_LT(span, delta_span) << PartitionAlgorithmName(algorithm);
  }
}

TEST(PartitionerTest, BottomUpCompetitiveWithDfsOnBranchedTree) {
  // A branched dataset: BOTTOM-UP should be at least as good as
  // BREADTHFIRST and close to / better than DFS (paper: "none of these
  // techniques perform uniformly well across all datasets" except
  // BOTTOM-UP).
  ExampleData data;
  VersionedDataset& ds = data.dataset;
  ds.graph.AddRoot();
  ds.deltas.resize(1);
  for (int k = 0; k < 30; ++k) {
    ds.deltas[0].added.emplace_back("key" + std::to_string(100 + k), 0);
  }
  // Two branches from root, each a chain of 15 with churn.
  VersionId left = 0, right = 0;
  auto materialize_key = [&](VersionId v, int k) {
    return CompositeKey("key" + std::to_string(100 + k), v);
  };
  (void)materialize_key;
  std::vector<CompositeKey> left_cur(ds.deltas[0].added),
      right_cur(ds.deltas[0].added);
  for (int step = 0; step < 15; ++step) {
    VersionId v = *ds.graph.AddVersion({left});
    VersionDelta delta;
    for (int u = 0; u < 3; ++u) {
      int k = (step * 3 + u) % 30;
      delta.removed.push_back(left_cur[k]);
      left_cur[k] = CompositeKey(left_cur[k].key, v);
      delta.added.push_back(left_cur[k]);
    }
    ds.deltas.push_back(delta);
    left = v;
    v = *ds.graph.AddVersion({right});
    VersionDelta rdelta;
    for (int u = 0; u < 3; ++u) {
      int k = (step * 3 + u + 15) % 30;
      rdelta.removed.push_back(right_cur[k]);
      right_cur[k] = CompositeKey(right_cur[k].key, v);
      rdelta.added.push_back(right_cur[k]);
    }
    ds.deltas.push_back(rdelta);
    right = v;
  }
  ASSERT_TRUE(ds.Validate().ok()) << ds.Validate().ToString();
  for (const VersionDelta& delta : ds.deltas) {
    for (const CompositeKey& ck : delta.added) {
      data.payloads[ck] = testing::PayloadFor(ck);
    }
  }
  PreparedInput prepared = Prepare(std::move(data), SmallChunks());
  const VersionGraph& graph = prepared.data.dataset.graph;
  uint64_t bottom_up = TotalVersionSpan(
      RunAlgorithm(prepared, PartitionAlgorithm::kBottomUp), prepared.built.items,
      graph);
  uint64_t bfs = TotalVersionSpan(
      RunAlgorithm(prepared, PartitionAlgorithm::kBreadthFirst), prepared.built.items,
      graph);
  uint64_t delta_span = TotalVersionSpan(
      RunAlgorithm(prepared, PartitionAlgorithm::kDeltaBaseline),
      prepared.built.items, graph);
  EXPECT_LE(bottom_up, bfs);
  EXPECT_LT(bottom_up, delta_span);
}

TEST(PartitionerTest, BottomUpSubtreeLimitDegradesGracefully) {
  // Fig. 9: shrinking beta increases (or keeps) total version span.
  PreparedInput prepared = Prepare(MakeChain(60, 40, 6), SmallChunks());
  const VersionGraph& graph = prepared.data.dataset.graph;
  uint64_t unlimited;
  {
    Partitioning p = RunAlgorithm(prepared, PartitionAlgorithm::kBottomUp);
    unlimited = TotalVersionSpan(p, prepared.built.items, graph);
  }
  prepared.options.subtree_limit = 2;
  Partitioning limited = RunAlgorithm(prepared, PartitionAlgorithm::kBottomUp);
  uint64_t limited_span =
      TotalVersionSpan(limited, prepared.built.items, graph);
  EXPECT_GE(limited_span, unlimited);
  // Items all still placed.
  EXPECT_EQ(limited.num_items(), prepared.built.items.size());
}

TEST(PartitionerTest, TreeInputRequiredByTreeAlgorithms) {
  ExampleData data = MakeExample2();
  // Add a merge to break tree-ness.
  (void)*data.dataset.graph.AddVersion({3, 4});
  data.dataset.deltas.emplace_back();
  PreparedInput prepared;
  prepared.data = std::move(data);
  prepared.options = SmallChunks();
  prepared.record_versions = prepared.data.dataset.BuildRecordVersionMap();
  auto built = BuildSubChunks(prepared.data.dataset, prepared.data.payloads,
                              prepared.record_versions, prepared.options);
  // Sub-chunk builder itself requires a tree.
  EXPECT_TRUE(built.status().IsInvalidArgument());
}

}  // namespace
}  // namespace rstore
