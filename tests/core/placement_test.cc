#include "core/placement.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

TEST(ChunkPackerTest, FillsToCapacity) {
  ChunkPacker packer(100, 0.25);
  for (uint32_t i = 0; i < 10; ++i) packer.Add(i, 30);
  Partitioning p = packer.Finish(false);
  // 30+30+30 = 90 < 100; a fourth 30 would hit 120 <= 125 hard limit, but
  // the chunk closed at >= capacity... 90 < 100 so the 4th lands (120).
  // Then the next starts fresh.
  ASSERT_FALSE(p.chunks.empty());
  EXPECT_EQ(p.chunks[0].size(), 4u);
  EXPECT_EQ(p.num_items(), 10u);
}

TEST(ChunkPackerTest, OverflowBandRespected) {
  ChunkPacker packer(100, 0.25);
  packer.Add(0, 90);
  packer.Add(1, 40);  // 90+40=130 > 125: must open a new chunk
  Partitioning p = packer.Finish(false);
  ASSERT_EQ(p.chunks.size(), 2u);
  EXPECT_EQ(p.chunks[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(p.chunks[1], (std::vector<uint32_t>{1}));
}

TEST(ChunkPackerTest, SpillIntoOverflowAllowed) {
  ChunkPacker packer(100, 0.25);
  packer.Add(0, 90);
  packer.Add(1, 30);  // 90+30=120 <= 125: allowed to spill
  Partitioning p = packer.Finish(false);
  ASSERT_EQ(p.chunks.size(), 1u);
  EXPECT_EQ(p.chunks[0].size(), 2u);
}

TEST(ChunkPackerTest, OversizedItemGetsOwnChunk) {
  ChunkPacker packer(100, 0.25);
  packer.Add(0, 10);
  packer.Add(1, 1000);
  packer.Add(2, 10);
  Partitioning p = packer.Finish(false);
  ASSERT_EQ(p.chunks.size(), 3u);
  EXPECT_EQ(p.chunks[1], (std::vector<uint32_t>{1}));
}

TEST(ChunkPackerTest, StartNewChunkForcesBoundary) {
  ChunkPacker packer(100, 0.25);
  packer.Add(0, 10);
  packer.StartNewChunk();
  packer.Add(1, 10);
  Partitioning p = packer.Finish(false);
  ASSERT_EQ(p.chunks.size(), 2u);
}

TEST(ChunkPackerTest, MergePartialsReducesFragmentation) {
  ChunkPacker packer(100, 0.25);
  for (uint32_t i = 0; i < 6; ++i) {
    packer.StartNewChunk();
    packer.Add(i, 20);  // six 20-byte partial chunks
  }
  Partitioning merged = packer.Finish(true);
  // 5 x 20 = 100 fits one chunk; 6th spills to a second.
  EXPECT_EQ(merged.chunks.size(), 2u);
  EXPECT_EQ(merged.num_items(), 6u);
}

TEST(ChunkPackerTest, MergeKeepsFullChunksIntact) {
  ChunkPacker packer(100, 0.25);
  for (uint32_t i = 0; i < 5; ++i) packer.Add(i, 25);  // full chunk (>=100)
  packer.StartNewChunk();
  packer.Add(5, 10);
  packer.StartNewChunk();
  packer.Add(6, 10);
  Partitioning p = packer.Finish(true);
  EXPECT_EQ(p.chunks.size(), 2u);  // 1 full + merged partials
  EXPECT_EQ(p.num_items(), 7u);
}

// ---- span accounting ----

// Three versions in a chain; item A lives in all three, item B only in V2.
std::vector<PlacementItem> ChainItems() {
  PlacementItem a;
  a.id = CompositeKey("A", 0);
  a.origin_version = 0;
  a.versions = {0, 1, 2};
  a.bytes = 10;
  PlacementItem b;
  b.id = CompositeKey("B", 2);
  b.origin_version = 2;
  b.versions = {2};
  b.bytes = 10;
  return {a, b};
}

VersionGraph ChainGraph() {
  VersionGraph g;
  g.AddRoot();
  (void)*g.AddVersion({0});
  (void)*g.AddVersion({1});
  return g;
}

TEST(SpanTest, ChunkedLayout) {
  Partitioning p;
  p.layout = LayoutKind::kChunked;
  p.chunks = {{0}, {1}};  // A alone, B alone
  auto spans = PerVersionSpans(p, ChainItems(), ChainGraph());
  EXPECT_EQ(spans, (std::vector<uint64_t>{1, 1, 2}));
  EXPECT_EQ(TotalVersionSpan(p, ChainItems(), ChainGraph()), 4u);

  // Grouping both into one chunk: V2 now needs one chunk.
  Partitioning grouped;
  grouped.chunks = {{0, 1}};
  auto grouped_spans = PerVersionSpans(grouped, ChainItems(), ChainGraph());
  EXPECT_EQ(grouped_spans, (std::vector<uint64_t>{1, 1, 1}));
}

TEST(SpanTest, DeltaChainLayout) {
  Partitioning p;
  p.layout = LayoutKind::kDeltaChain;
  p.chunks = {{0}, {1}};  // delta of V0 = {A}, delta of V2 = {B}
  auto spans = PerVersionSpans(p, ChainItems(), ChainGraph());
  // V0: 1 (own delta); V1: V0's delta (nothing new); V2: both deltas.
  EXPECT_EQ(spans, (std::vector<uint64_t>{1, 1, 2}));
}

TEST(SpanTest, SubChunkPerKeyLayout) {
  Partitioning p;
  p.layout = LayoutKind::kSubChunkPerKey;
  p.chunks = {{0}, {1}};
  auto spans = PerVersionSpans(p, ChainItems(), ChainGraph());
  // Every version must scan all chunks.
  EXPECT_EQ(spans, (std::vector<uint64_t>{2, 2, 2}));
}

}  // namespace
}  // namespace rstore
