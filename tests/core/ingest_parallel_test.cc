// Parallel-ingest determinism contract (DESIGN.md "Parallel ingest"): the
// partitioning decision stays serial, so sharded ingest must leave the
// backend byte-identical to serial ingest at every shard count, for every
// partitioning algorithm, on both the offline (BulkLoad) and the online
// (Commit/Flush) write path — and strict queries must therefore match byte
// for byte. Plus unit coverage of the shard planner and pipeline runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "core/ingest_pipeline.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;
using testing::ReplayQueryWorkload;

// ---------------------------------------------------------------------------
// ShardedPartitioner

std::vector<uint32_t> Flatten(const IngestShardPlan& plan) {
  std::vector<uint32_t> out;
  for (const auto& shard : plan.shards) {
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

TEST(ShardedPartitionerTest, OrderedPlanIsContiguousAndComplete) {
  ShardedPartitioner sharder(4, Options::IngestShardMode::kOrdered, 7);
  const std::vector<uint64_t> bytes = {100, 100, 100, 100, 100, 100, 100,
                                       100};
  IngestShardPlan plan = sharder.Plan(bytes);
  ASSERT_EQ(plan.num_shards(), 4u);
  EXPECT_EQ(plan.num_chunks(), bytes.size());
  // Contiguous ascending runs covering [0, n) exactly once.
  std::vector<uint32_t> flat = Flatten(plan);
  ASSERT_EQ(flat.size(), bytes.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], static_cast<uint32_t>(i));
  }
  // Uniform sizes split evenly.
  for (const auto& shard : plan.shards) EXPECT_EQ(shard.size(), 2u);
}

TEST(ShardedPartitionerTest, OrderedPlanBalancesBySize) {
  ShardedPartitioner sharder(2, Options::IngestShardMode::kOrdered, 7);
  // One giant chunk up front: it should get a shard of its own.
  IngestShardPlan plan = sharder.Plan({1000, 10, 10, 10});
  ASSERT_EQ(plan.num_shards(), 2u);
  EXPECT_EQ(plan.shards[0].size(), 1u);
  EXPECT_EQ(plan.shards[1].size(), 3u);
}

TEST(ShardedPartitionerTest, EveryShardGetsAChunkWhenChunksAreScarce) {
  ShardedPartitioner sharder(4, Options::IngestShardMode::kOrdered, 7);
  // Fewer chunks than shards: plan clamps to one chunk per shard.
  IngestShardPlan plan = sharder.Plan({5, 5});
  EXPECT_EQ(plan.num_shards(), 2u);
  EXPECT_EQ(plan.num_chunks(), 2u);
  // Skewed sizes must still leave no shard empty.
  ShardedPartitioner skew(3, Options::IngestShardMode::kOrdered, 7);
  IngestShardPlan skewed = skew.Plan({1000, 1, 1});
  ASSERT_EQ(skewed.num_shards(), 3u);
  for (const auto& shard : skewed.shards) EXPECT_FALSE(shard.empty());
}

TEST(ShardedPartitionerTest, HashPlanIsSeedDeterministicAndComplete) {
  ShardedPartitioner a(4, Options::IngestShardMode::kHash, 99);
  ShardedPartitioner b(4, Options::IngestShardMode::kHash, 99);
  const std::vector<uint64_t> bytes(23, 64);
  IngestShardPlan pa = a.Plan(bytes);
  IngestShardPlan pb = b.Plan(bytes);
  EXPECT_EQ(pa.shards, pb.shards);
  EXPECT_EQ(pa.num_chunks(), bytes.size());
  std::vector<bool> seen(bytes.size(), false);
  for (const auto& shard : pa.shards) {
    for (uint32_t c : shard) {
      ASSERT_LT(c, bytes.size());
      EXPECT_FALSE(seen[c]);
      seen[c] = true;
    }
  }
}

TEST(ShardedPartitionerTest, ZeroByteChunksFallBackToCountSplit) {
  ShardedPartitioner sharder(3, Options::IngestShardMode::kOrdered, 7);
  IngestShardPlan plan = sharder.Plan(std::vector<uint64_t>(9, 0));
  ASSERT_EQ(plan.num_shards(), 3u);
  for (const auto& shard : plan.shards) EXPECT_EQ(shard.size(), 3u);
}

// ---------------------------------------------------------------------------
// RunIngestPipeline

struct StageLog {
  std::vector<uint32_t> encodes;
  std::vector<uint32_t> writes;
};

IngestStageFn LogStage(std::vector<uint32_t>* log) {
  return [log](uint32_t shard) {
    log->push_back(shard);
    return Status::OK();
  };
}

TEST(IngestPipelineTest, SerialModeRunsEncodeThenWritePerShard) {
  IngestPipelineOptions options;
  options.num_shards = 4;
  options.max_threads = 1;  // forces the serial runner
  StageLog log;
  ASSERT_TRUE(RunIngestPipeline(options, LogStage(&log.encodes),
                                LogStage(&log.writes))
                  .ok());
  EXPECT_EQ(log.encodes, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(log.writes, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(IngestPipelineTest, ExecutorModeIsDeterministicAndOrdersWrites) {
  for (int run = 0; run < 2; ++run) {
    Executor executor;
    IngestPipelineOptions options;
    options.num_shards = 5;
    options.pipeline_depth = 2;
    options.executor = &executor;
    StageLog log;
    ASSERT_TRUE(RunIngestPipeline(options, LogStage(&log.encodes),
                                  LogStage(&log.writes))
                    .ok());
    // Writes always drain in ascending shard order; encodes may lead by at
    // most the window but the executor schedule is deterministic, so both
    // sequences are identical run to run.
    EXPECT_EQ(log.writes, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(log.encodes, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  }
}

TEST(IngestPipelineTest, ThreadedModeWritesEveryShardInOrder) {
  IngestPipelineOptions options;
  options.num_shards = 16;
  options.pipeline_depth = 4;
  options.max_threads = 4;
  std::vector<uint32_t> writes;  // writer runs on the calling thread only
  Mutex encode_mu(kLockRankLeaf, "test encode log");
  std::vector<uint32_t> encodes;
  auto encode = [&](uint32_t shard) {
    MutexLock lock(encode_mu);
    encodes.push_back(shard);
    return Status::OK();
  };
  ASSERT_TRUE(RunIngestPipeline(options, encode, LogStage(&writes)).ok());
  ASSERT_EQ(writes.size(), 16u);
  for (uint32_t s = 0; s < 16; ++s) EXPECT_EQ(writes[s], s);
  EXPECT_EQ(encodes.size(), 16u);
}

TEST(IngestPipelineTest, EncodeErrorStopsWritesAtPrefix) {
  IngestPipelineOptions options;
  options.num_shards = 8;
  options.pipeline_depth = 2;
  options.max_threads = 3;
  std::vector<uint32_t> writes;
  auto encode = [](uint32_t shard) {
    if (shard == 5) return Status::Corruption("encode blew up");
    return Status::OK();
  };
  Status status = RunIngestPipeline(options, encode, LogStage(&writes));
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  // Written shards form a prefix strictly below the failed shard.
  ASSERT_LE(writes.size(), 5u);
  for (size_t i = 0; i < writes.size(); ++i) {
    EXPECT_EQ(writes[i], static_cast<uint32_t>(i));
  }
}

TEST(IngestPipelineTest, WriteErrorPropagatesAndStopsTheRun) {
  IngestPipelineOptions options;
  options.num_shards = 6;
  options.max_threads = 2;
  std::vector<uint32_t> writes;
  auto write = [&writes](uint32_t shard) {
    if (shard == 2) return Status::IOError("backend down");
    writes.push_back(shard);
    return Status::OK();
  };
  auto ok = [](uint32_t) { return Status::OK(); };
  Status status = RunIngestPipeline(options, ok, write);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(writes, (std::vector<uint32_t>{0, 1}));
}

TEST(IngestPipelineTest, ZeroShardsIsANoOp) {
  IngestPipelineOptions options;
  options.num_shards = 0;
  bool touched = false;
  auto stage = [&touched](uint32_t) {
    touched = true;
    return Status::OK();
  };
  EXPECT_TRUE(RunIngestPipeline(options, stage, stage).ok());
  EXPECT_FALSE(touched);
}

// ---------------------------------------------------------------------------
// MultiChunkWriter

TEST(MultiChunkWriterTest, GroupCommitMatchesIndividualPuts) {
  EncodedChunk a{1, "body-a", "map-a", 100};
  EncodedChunk b{2, "body-b", "map-b", 200};

  MemoryStore grouped;
  ASSERT_TRUE(grouped.CreateTable("c").ok());
  ASSERT_TRUE(grouped.CreateTable("i").ok());
  MultiChunkWriter writer(&grouped, "c", "i");
  ASSERT_TRUE(writer.Write({&a, &b}).ok());
  EXPECT_EQ(writer.chunks_written(), 2u);
  EXPECT_EQ(writer.body_bytes(), a.body.size() + b.body.size());
  EXPECT_EQ(writer.uncompressed_bytes(), 300u);

  MemoryStore serial;
  ASSERT_TRUE(serial.CreateTable("c").ok());
  ASSERT_TRUE(serial.CreateTable("i").ok());
  for (const EncodedChunk* chunk : {&a, &b}) {
    ASSERT_TRUE(serial.Put("c", ChunkKey(chunk->id), chunk->body).ok());
    ASSERT_TRUE(serial.Put("i", ChunkMapKey(chunk->id), chunk->map).ok());
  }

  // Same end state and the same logical put/byte counters: the default
  // WriteBatch is a loop of Puts, and MemoryStore's override only batches
  // the locking, never the accounting.
  for (const char* table : {"c", "i"}) {
    std::map<std::string, std::string> g, s;
    ASSERT_TRUE(grouped
                    .Scan(table,
                          [&g](Slice k, Slice v) {
                            g[k.ToString()] = v.ToString();
                          })
                    .ok());
    ASSERT_TRUE(serial
                    .Scan(table,
                          [&s](Slice k, Slice v) {
                            s[k.ToString()] = v.ToString();
                          })
                    .ok());
    EXPECT_EQ(g, s) << table;
  }
  EXPECT_EQ(grouped.stats().puts, serial.stats().puts);
  EXPECT_EQ(grouped.stats().bytes_written, serial.stats().bytes_written);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence sweep

const PartitionAlgorithm kAllAlgorithms[] = {
    PartitionAlgorithm::kBottomUp,       PartitionAlgorithm::kShingle,
    PartitionAlgorithm::kDepthFirst,     PartitionAlgorithm::kBreadthFirst,
    PartitionAlgorithm::kDeltaBaseline,  PartitionAlgorithm::kSubChunkBaseline,
    PartitionAlgorithm::kSingleAddressSpace};

Options SweepOptions(PartitionAlgorithm algorithm) {
  Options options;
  options.algorithm = algorithm;
  options.chunk_capacity_bytes = 700;
  options.max_sub_chunk_records = 4;
  options.online_batch_size = 5;
  return options;
}

/// Canonical byte dump of both tables: MemoryStore scans in key order, so
/// two identical stores dump identical bytes.
std::string DumpBackend(MemoryStore* backend, const Options& options) {
  std::string out;
  for (const std::string& table : {options.chunk_table, options.index_table}) {
    out += "== " + table + "\n";
    EXPECT_TRUE(backend
                    ->Scan(table,
                           [&out](Slice key, Slice value) {
                             out += key.ToString();
                             out += '\x1f';
                             out += value.ToString();
                             out += '\x1e';
                           })
                    .ok());
  }
  return out;
}

/// Loads `data` offline (BulkLoad) or online (per-version commits + Flush)
/// and returns the backend dump plus replayed query bytes.
struct IngestRun {
  std::string dump;
  std::vector<std::string> queries;
};

IngestRun RunIngest(const ExampleData& data, Options options, bool online,
                    Executor* executor = nullptr) {
  IngestRun out;
  options.ingest_executor = executor;
  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  EXPECT_TRUE(store.ok());
  if (!store.ok()) return out;
  if (online) {
    for (VersionId v = 0; v < data.dataset.graph.size(); ++v) {
      CommitDelta delta;
      const VersionDelta& d = data.dataset.deltas[v];
      std::unordered_map<std::string, bool> added;
      for (const CompositeKey& ck : d.added) {
        added[ck.key] = true;
        delta.upserts.push_back(Record{ck, data.payloads.at(ck)});
      }
      for (const CompositeKey& ck : d.removed) {
        if (!added.count(ck.key)) delta.deletes.push_back(ck.key);
      }
      VersionId parent =
          v == 0 ? kInvalidVersion : data.dataset.graph.PrimaryParent(v);
      auto r = (*store)->Commit(parent, std::move(delta));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) return out;
    }
    EXPECT_TRUE((*store)->Flush().ok());
  } else {
    EXPECT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    EXPECT_TRUE((*store)->Flush().ok());
  }
  out.dump = DumpBackend(&backend, options);
  auto replay = ReplayQueryWorkload(store->get(), data.dataset, 42, 1);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (replay.ok()) out.queries = std::move(replay->results);
  return out;
}

class ShardedIngestEquivalenceTest
    : public ::testing::TestWithParam<PartitionAlgorithm> {};

TEST_P(ShardedIngestEquivalenceTest, BackendBytesMatchSerialAtEveryShardCount) {
  const ExampleData data = MakeChain(20, 14, 4);
  const Options options = SweepOptions(GetParam());
  for (bool online : {false, true}) {
    SCOPED_TRACE(online ? "online" : "bulk");
    Options serial_options = options;
    serial_options.ingest_shards = 1;
    const IngestRun serial = RunIngest(data, serial_options, online);
    ASSERT_FALSE(serial.dump.empty());

    for (uint32_t shards : {2u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      Options sharded_options = options;
      sharded_options.ingest_shards = shards;
      const IngestRun sharded = RunIngest(data, sharded_options, online);
      EXPECT_EQ(sharded.dump, serial.dump);
      EXPECT_EQ(sharded.queries, serial.queries);
    }

    // Hash shard mode and the deterministic executor runner hit the same
    // bytes too: the plan shape never leaks into what is stored.
    Options hash_options = options;
    hash_options.ingest_shards = 4;
    hash_options.ingest_shard_mode = Options::IngestShardMode::kHash;
    EXPECT_EQ(RunIngest(data, hash_options, online).dump, serial.dump);

    Executor executor;
    Options executor_options = options;
    executor_options.ingest_shards = 4;
    const IngestRun simulated =
        RunIngest(data, executor_options, online, &executor);
    EXPECT_EQ(simulated.dump, serial.dump);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ShardedIngestEquivalenceTest,
    ::testing::ValuesIn(kAllAlgorithms),
    [](const ::testing::TestParamInfo<PartitionAlgorithm>& info) {
      // Test-name-safe: the display names contain '-'.
      std::string name = PartitionAlgorithmName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

}  // namespace
}  // namespace rstore
