// Durability and operability features: Reopen (recovery from the KVS),
// VerifyIntegrity (fsck), corruption detection, and the BranchManager VCS
// surface.

#include <gtest/gtest.h>

#include <map>

#include "core/branch_manager.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

using testing::ExampleData;
using testing::MakeChain;

Options SmallOptions() {
  Options options;
  options.algorithm = PartitionAlgorithm::kBottomUp;
  options.chunk_capacity_bytes = 600;
  options.max_sub_chunk_records = 3;
  return options;
}

std::map<std::string, std::string> ToMap(const std::vector<Record>& records) {
  std::map<std::string, std::string> out;
  for (const Record& r : records) out[r.key.key] = r.payload;
  return out;
}

TEST(ReopenTest, RecoversFullStateAfterRestart) {
  ExampleData data = MakeChain(25, 10, 3);
  MemoryStore backend;
  std::map<std::string, std::string> expected_v24, expected_v7;
  uint64_t expected_span;
  {
    auto store = RStore::Open(&backend, SmallOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    expected_v24 = ToMap(*(*store)->GetVersion(24));
    expected_v7 = ToMap(*(*store)->GetVersion(7));
    expected_span = (*store)->TotalVersionSpan();
  }  // original AS instance gone; only the backend survives

  auto reopened = RStore::Reopen(&backend, SmallOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  RStore& db = **reopened;
  EXPECT_EQ(db.num_versions(), 25u);
  EXPECT_EQ(db.TotalVersionSpan(), expected_span);
  EXPECT_EQ(ToMap(*db.GetVersion(24)), expected_v24);
  EXPECT_EQ(ToMap(*db.GetVersion(7)), expected_v7);
  auto history = db.GetHistory("key1004");
  ASSERT_TRUE(history.ok());
  EXPECT_GT(history->size(), 1u);
  EXPECT_TRUE(db.VerifyIntegrity().ok());
}

TEST(ReopenTest, RecoveredStoreAcceptsNewCommits) {
  ExampleData data = MakeChain(10, 5, 2);
  MemoryStore backend;
  {
    auto store = RStore::Open(&backend, SmallOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto reopened = RStore::Reopen(&backend, SmallOptions());
  ASSERT_TRUE(reopened.ok());
  CommitDelta delta;
  delta.upserts.push_back({{"key1000", 0}, "post-restart"});
  auto v = (*reopened)->Commit(9, std::move(delta));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, 10u);
  ASSERT_TRUE((*reopened)->Flush().ok());
  EXPECT_EQ((*reopened)->GetRecord("key1000", *v)->payload, "post-restart");
  EXPECT_TRUE((*reopened)->VerifyIntegrity().ok());
}

TEST(ReopenTest, EmptyBackendIsInvalid) {
  MemoryStore backend;
  EXPECT_TRUE(
      RStore::Reopen(&backend, SmallOptions()).status().IsInvalidArgument());
}

TEST(ReopenTest, MergeGraphSurvivesRestart) {
  MemoryStore backend;
  {
    ExampleData data;
    VersionedDataset& ds = data.dataset;
    ds.graph.AddRoot();
    (void)*ds.graph.AddVersion({0});
    (void)*ds.graph.AddVersion({0});
    (void)*ds.graph.AddVersion({1, 2});
    ds.deltas.resize(4);
    ds.deltas[0].added = {{"A", 0}};
    ds.deltas[1].added = {{"B", 1}};
    ds.deltas[2].added = {{"C", 2}};
    ds.deltas[3].added = {{"C", 2}};
    for (const auto& d : ds.deltas) {
      for (const auto& ck : d.added) {
        data.payloads[ck] = testing::PayloadFor(ck);
      }
    }
    auto store = RStore::Open(&backend, SmallOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto reopened = RStore::Reopen(&backend, SmallOptions());
  ASSERT_TRUE(reopened.ok());
  // The ORIGINAL graph (with the merge edge) is restored alongside the tree.
  EXPECT_TRUE((*reopened)->graph().IsMerge(3));
  EXPECT_TRUE((*reopened)->dataset().graph.IsTree());
  EXPECT_EQ((*reopened)->GetVersion(3)->size(), 3u);
}

TEST(VerifyIntegrityTest, CleanStorePasses) {
  ExampleData data = MakeChain(15, 8, 2);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  EXPECT_TRUE((*store)->VerifyIntegrity().ok());
}

TEST(VerifyIntegrityTest, DetectsTamperedChunk) {
  ExampleData data = MakeChain(15, 8, 2);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Flip bytes in one stored chunk.
  std::string victim_key;
  (void)backend.Scan((*store)->options().chunk_table,
                     [&](Slice key, Slice) {
                       if (victim_key.empty()) victim_key = key.ToString();
                     });
  ASSERT_FALSE(victim_key.empty());
  ASSERT_TRUE(
      backend.Put((*store)->options().chunk_table, victim_key, "garbage")
          .ok());
  EXPECT_TRUE((*store)->VerifyIntegrity().IsCorruption());
}

TEST(VerifyIntegrityTest, DetectsDeletedChunkMap) {
  ExampleData data = MakeChain(15, 8, 2);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Remove one chunk map entry from the index table.
  std::string victim_key;
  (void)backend.Scan((*store)->options().index_table,
                     [&](Slice key, Slice) {
                       if (victim_key.empty() && !key.empty() &&
                           key[0] == 'm') {
                         victim_key = key.ToString();
                       }
                     });
  ASSERT_FALSE(victim_key.empty());
  ASSERT_TRUE(
      backend.Delete((*store)->options().index_table, victim_key).ok());
  EXPECT_FALSE((*store)->VerifyIntegrity().ok());
}

TEST(VerifyIntegrityTest, QueryAlsoDetectsTamperedChunk) {
  ExampleData data = MakeChain(15, 8, 2);
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(data.dataset, data.payloads).ok());
  // Collect keys first: mutating a MemoryStore table from inside its own
  // Scan callback would self-deadlock on the store mutex.
  std::vector<std::string> keys;
  (void)backend.Scan((*store)->options().chunk_table,
                     [&](Slice key, Slice) { keys.push_back(key.ToString()); });
  for (const std::string& key : keys) {
    ASSERT_TRUE(backend.Put((*store)->options().chunk_table, key, "xx").ok());
  }
  // Every full checkout must now fail loudly, never return wrong data.
  auto r = (*store)->GetVersion(14);
  EXPECT_FALSE(r.ok());
}

TEST(BranchManagerTest, MasterBootstrapAndAdvance) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  BranchManager vcs(store->get());

  CommitDelta c1;
  c1.upserts.push_back({{"doc", 0}, "v0"});
  auto v0 = vcs.Commit(BranchManager::kMaster, std::move(c1));
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(*vcs.Tip("master"), *v0);

  CommitDelta c2;
  c2.upserts.push_back({{"doc", 0}, "v1"});
  auto v1 = vcs.Commit("master", std::move(c2));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*vcs.Tip("master"), *v1);
  EXPECT_NE(*v0, *v1);

  auto checkout = vcs.Checkout("master");
  ASSERT_TRUE(checkout.ok());
  EXPECT_EQ(checkout->size(), 1u);
  EXPECT_EQ((*checkout)[0].payload, "v1");
}

TEST(BranchManagerTest, FeatureBranchesDiverge) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  BranchManager vcs(store->get());
  CommitDelta base;
  base.upserts.push_back({{"doc", 0}, "base"});
  VersionId root = *vcs.Commit("master", std::move(base));

  ASSERT_TRUE(vcs.CreateBranch("feature", root).ok());
  CommitDelta feature_edit;
  feature_edit.upserts.push_back({{"doc", 0}, "feature-edit"});
  ASSERT_TRUE(vcs.Commit("feature", std::move(feature_edit)).ok());
  CommitDelta master_edit;
  master_edit.upserts.push_back({{"doc", 0}, "master-edit"});
  ASSERT_TRUE(vcs.Commit("master", std::move(master_edit)).ok());

  EXPECT_EQ((*vcs.Checkout("feature"))[0].payload, "feature-edit");
  EXPECT_EQ((*vcs.Checkout("master"))[0].payload, "master-edit");
  EXPECT_EQ(vcs.Branches(),
            (std::vector<std::string>{"feature", "master"}));
}

TEST(BranchManagerTest, Validation) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  BranchManager vcs(store->get());
  // Unknown branch before bootstrap.
  CommitDelta c;
  c.upserts.push_back({{"x", 0}, "1"});
  EXPECT_TRUE(vcs.Commit("topic", CommitDelta(c)).status().IsNotFound());
  EXPECT_TRUE(vcs.CreateBranch("topic", 0).IsInvalidArgument());  // no V0 yet
  ASSERT_TRUE(vcs.Commit("master", std::move(c)).ok());
  EXPECT_TRUE(vcs.CreateBranch("", 0).IsInvalidArgument());
  ASSERT_TRUE(vcs.CreateBranch("topic", 0).ok());
  EXPECT_TRUE(vcs.CreateBranch("topic", 0).IsAlreadyExists());
  EXPECT_TRUE(vcs.Tip("missing").status().IsNotFound());
  EXPECT_TRUE(vcs.DeleteBranch("missing").IsNotFound());
  ASSERT_TRUE(vcs.DeleteBranch("topic").ok());
  EXPECT_TRUE(vcs.Tip("topic").status().IsNotFound());
}

TEST(BranchManagerTest, TagsAreImmutableBindings) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  BranchManager vcs(store->get());
  CommitDelta c;
  c.upserts.push_back({{"x", 0}, "1"});
  VersionId v0 = *vcs.Commit("master", std::move(c));
  ASSERT_TRUE(vcs.Tag("release-1.0", v0).ok());
  EXPECT_TRUE(vcs.Tag("release-1.0", v0).IsAlreadyExists());
  EXPECT_EQ(*vcs.ResolveTag("release-1.0"), v0);
  EXPECT_TRUE(vcs.ResolveTag("nope").status().IsNotFound());
  EXPECT_TRUE(vcs.Tag("bad", 99).IsInvalidArgument());
  EXPECT_EQ(vcs.Tags(), (std::vector<std::string>{"release-1.0"}));
}

TEST(BranchManagerTest, PersistAndLoad) {
  MemoryStore backend;
  auto store = RStore::Open(&backend, SmallOptions());
  ASSERT_TRUE(store.ok());
  {
    BranchManager vcs(store->get());
    CommitDelta c;
    c.upserts.push_back({{"x", 0}, "1"});
    VersionId v0 = *vcs.Commit("master", std::move(c));
    CommitDelta c2;
    c2.upserts.push_back({{"y", 0}, "2"});
    ASSERT_TRUE(vcs.Commit("master", std::move(c2)).ok());
    ASSERT_TRUE(vcs.CreateBranch("dev", v0).ok());
    ASSERT_TRUE(vcs.Tag("gold", v0).ok());
    ASSERT_TRUE(vcs.Persist(&backend).ok());
  }
  auto loaded = BranchManager::Load(store->get(), &backend);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded->Tip("master"), 1u);
  EXPECT_EQ(*loaded->Tip("dev"), 0u);
  EXPECT_EQ(*loaded->ResolveTag("gold"), 0u);
}

}  // namespace
}  // namespace rstore
