#include <gtest/gtest.h>

#include "json/json_parser.h"
#include "json/json_value.h"
#include "json/json_writer.h"

namespace rstore {
namespace json {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value(int64_t{5}).is_number());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value::MakeArray().is_array());
  EXPECT_TRUE(Value::MakeObject().is_object());
}

TEST(JsonValueTest, NumericAccessors) {
  EXPECT_EQ(Value(int64_t{42}).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(int64_t{42}).as_double(), 42.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
}

TEST(JsonValueTest, ObjectAccess) {
  Value obj = Value::MakeObject();
  obj["name"] = Value("alice");
  obj["age"] = Value(int64_t{30});
  EXPECT_EQ(obj.size(), 2u);
  ASSERT_NE(obj.Find("name"), nullptr);
  EXPECT_EQ(obj.Find("name")->as_string(), "alice");
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_EQ(Value(int64_t{1}).Find("x"), nullptr);
}

TEST(JsonValueTest, Equality) {
  Value a = Value::MakeObject();
  a["k"] = Value(int64_t{1});
  Value b = Value::MakeObject();
  b["k"] = Value(int64_t{1});
  EXPECT_EQ(a, b);
  b["k"] = Value(int64_t{2});
  EXPECT_NE(a, b);
}

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("false")->as_bool(), false);
  EXPECT_EQ(Parse("42")->as_int(), 42);
  EXPECT_EQ(Parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Parse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("1e3")->as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("-2.5E-2")->as_double(), -0.025);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParserTest, IntegerOverflowBecomesDouble) {
  auto r = Parse("99999999999999999999999999");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_double());
}

TEST(JsonParserTest, NestedStructures) {
  auto r = Parse(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
  ASSERT_TRUE(r.ok());
  const Value& v = *r;
  ASSERT_TRUE(v.is_object());
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_int(), 1);
  EXPECT_TRUE(a->as_array()[2].Find("b")->is_null());
  EXPECT_TRUE(v.Find("c")->Find("d")->as_bool());
}

TEST(JsonParserTest, StringEscapes) {
  auto r = Parse(R"("a\"b\\c\/d\b\f\n\r\t")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->as_string(), "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonParserTest, UnicodeEscapes) {
  EXPECT_EQ(Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Parse(R"("é")")->as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(Parse(R"("€")")->as_string(), "\xe2\x82\xac");   // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Parse(R"("😀")")->as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, WhitespaceHandling) {
  auto r = Parse(" \t\n { \"a\" : [ 1 , 2 ] } \r\n ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Find("a")->size(), 2u);
}

TEST(JsonParserTest, EmptyContainers) {
  EXPECT_EQ(Parse("[]")->size(), 0u);
  EXPECT_EQ(Parse("{}")->size(), 0u);
  EXPECT_EQ(Parse("[ ]")->size(), 0u);
  EXPECT_EQ(Parse("{ }")->size(), 0u);
}

struct BadInput {
  const char* text;
  const char* why;
};

class JsonParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(JsonParserErrorTest, RejectsMalformedInput) {
  auto r = Parse(GetParam().text);
  EXPECT_FALSE(r.ok()) << GetParam().why;
  EXPECT_TRUE(r.status().IsCorruption());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParserErrorTest,
    ::testing::Values(
        BadInput{"", "empty input"}, BadInput{"nul", "bad literal"},
        BadInput{"tru", "bad literal"}, BadInput{"[1,", "unterminated array"},
        BadInput{"[1 2]", "missing comma"},
        BadInput{"{\"a\":}", "missing value"},
        BadInput{"{\"a\" 1}", "missing colon"},
        BadInput{"{a: 1}", "unquoted key"},
        BadInput{"\"abc", "unterminated string"},
        BadInput{"\"\\x\"", "bad escape"},
        BadInput{"\"\\u12\"", "truncated unicode escape"},
        BadInput{"\"\\ud800\"", "unpaired surrogate"},
        BadInput{"01", "trailing garbage"}, BadInput{"1.2.3", "bad number"},
        BadInput{"1e", "bad exponent"}, BadInput{"-", "lone minus"},
        BadInput{"[1] extra", "trailing characters"},
        BadInput{"\"a\tb\"", "raw control char"}));

TEST(JsonParserTest, DeepNestingRejected) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonWriterTest, CompactOutput) {
  auto v = Parse(R"({ "b" : 1, "a" : [true, null, "x"] })");
  ASSERT_TRUE(v.ok());
  // Keys sorted (std::map), no whitespace.
  EXPECT_EQ(WriteCompact(*v), R"({"a":[true,null,"x"],"b":1})");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  Value v(std::string("a\"b\\c\nd\x01"));
  EXPECT_EQ(WriteCompact(v), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(JsonWriterTest, RoundTripPreservesValue) {
  const char* docs[] = {
      R"({"patient":{"id":123,"vitals":[98.6,72],"notes":"stable"}})",
      R"([1,2.5,-3,"x",null,true,{"nested":[{}]}])",
      R"({"empty_obj":{},"empty_arr":[]})",
  };
  for (const char* doc : docs) {
    auto v1 = Parse(doc);
    ASSERT_TRUE(v1.ok()) << doc;
    std::string out = WriteCompact(*v1);
    auto v2 = Parse(out);
    ASSERT_TRUE(v2.ok()) << out;
    EXPECT_EQ(*v1, *v2) << doc;
    // Compact output is a fixed point.
    EXPECT_EQ(WriteCompact(*v2), out);
  }
}

TEST(JsonWriterTest, PrettyParsesBack) {
  auto v = Parse(R"({"a":[1,{"b":2}],"c":"d"})");
  ASSERT_TRUE(v.ok());
  std::string pretty = WritePretty(*v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto v2 = Parse(pretty);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v, *v2);
}

TEST(JsonWriterTest, EqualValuesSerializeIdentically) {
  // Key order in the source text must not matter (map canonicalizes).
  auto v1 = Parse(R"({"z":1,"a":2})");
  auto v2 = Parse(R"({"a":2,"z":1})");
  EXPECT_EQ(WriteCompact(*v1), WriteCompact(*v2));
}

}  // namespace
}  // namespace json
}  // namespace rstore
