// Tests for the deterministic traffic harness (workload/traffic.h): the
// generator's determinism and mix controls, the percentile math, and the
// contract the bench leans on — a closed loop with one query in flight
// reproduces the synchronous engine's report number for number.

#include <gtest/gtest.h>

#include <map>

#include "common/executor.h"
#include "core/rstore.h"
#include "kvstore/cluster.h"
#include "kvstore/memory_store.h"
#include "workload/dataset_generator.h"
#include "workload/traffic.h"

namespace rstore {
namespace workload {
namespace {

GeneratedDataset SmallDataset() {
  DatasetConfig config;
  config.name = "traffic_test";
  config.num_versions = 12;
  config.records_per_version = 40;
  config.update_fraction = 0.15;
  config.branch_probability = 0.1;
  config.seed = 404;
  return GenerateDataset(config);
}

TEST(TrafficTest, GenerationIsDeterministicGivenSeed) {
  GeneratedDataset gen = SmallDataset();
  TrafficOptions options;
  options.seed = 5;
  options.num_queries = 100;
  const std::vector<Query> a = GenerateTraffic(gen.dataset, options);
  const std::vector<Query> b = GenerateTraffic(gen.dataset, options);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].version, b[i].version);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].key_lo, b[i].key_lo);
    EXPECT_EQ(a[i].key_hi, b[i].key_hi);
  }
  options.seed = 6;
  const std::vector<Query> c = GenerateTraffic(gen.dataset, options);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].kind != c[i].kind || a[i].version != c[i].version ||
              a[i].key != c[i].key;
  }
  EXPECT_TRUE(differs);
}

TEST(TrafficTest, MixWeightsAndZipfSkewShapeTheStream) {
  GeneratedDataset gen = SmallDataset();
  TrafficOptions options;
  options.num_queries = 400;
  std::map<Query::Kind, int> by_kind;
  std::map<VersionId, int> by_version;
  for (const Query& q : GenerateTraffic(gen.dataset, options)) {
    ++by_kind[q.kind];
    ++by_version[q.version];
    EXPECT_LT(q.version, gen.dataset.graph.size());
    if (q.kind == Query::Kind::kRange) EXPECT_LE(q.key_lo, q.key_hi);
  }
  // Every class appears, and the default point-heavy mix dominates.
  EXPECT_GT(by_kind[Query::Kind::kFullVersion], 0);
  EXPECT_GT(by_kind[Query::Kind::kRange], 0);
  EXPECT_GT(by_kind[Query::Kind::kEvolution], 0);
  EXPECT_GT(by_kind[Query::Kind::kPoint], by_kind[Query::Kind::kRange]);
  // Zipf rank 0 is the newest version: recent versions are the hot ones.
  const VersionId newest = gen.dataset.graph.size() - 1;
  EXPECT_GT(by_version[newest], static_cast<int>(400 / gen.dataset.graph.size()));

  // Weights of zero mute a class entirely.
  options.weight_full = 0;
  options.weight_evolution = 0;
  for (const Query& q : GenerateTraffic(gen.dataset, options)) {
    EXPECT_TRUE(q.kind == Query::Kind::kRange ||
                q.kind == Query::Kind::kPoint);
  }
}

TEST(TrafficTest, PercentileUsesNearestRank) {
  TrafficReport report;
  for (uint64_t v : {40, 10, 30, 20, 50, 60, 70, 80, 90, 100}) {
    report.latencies_us.push_back(v);
  }
  EXPECT_EQ(report.PercentileLatencyUs(50), 50u);
  EXPECT_EQ(report.PercentileLatencyUs(90), 90u);
  EXPECT_EQ(report.PercentileLatencyUs(99), 100u);
  EXPECT_EQ(report.PercentileLatencyUs(99.9), 100u);
  EXPECT_EQ(report.PercentileLatencyUs(1), 10u);

  TrafficReport empty;
  EXPECT_EQ(empty.PercentileLatencyUs(99), 0u);
  EXPECT_EQ(empty.throughput_qps(), 0.0);
}

TEST(TrafficTest, HashRecordsIsOrderAndContentSensitive) {
  Record a{CompositeKey("k1", 0), "payload-a"};
  Record b{CompositeKey("k2", 3), "payload-b"};
  EXPECT_EQ(HashRecords({a, b}), HashRecords({a, b}));
  EXPECT_NE(HashRecords({a, b}), HashRecords({b, a}));
  EXPECT_NE(HashRecords({a}), HashRecords({a, b}));
  Record a2 = a;
  a2.payload = "payload-A";
  EXPECT_NE(HashRecords({a}), HashRecords({a2}));
}

// The parity anchor: over the simulated cluster, a closed loop with one
// query in flight is the synchronous engine on a different substrate —
// identical results, identical per-query latencies, identical aggregate
// stats, identical makespan. bench_traffic's async_c1 series depends on it.
TEST(TrafficTest, ClosedLoopConcurrencyOneEqualsSyncReport) {
  GeneratedDataset gen = SmallDataset();
  Options options;
  options.chunk_capacity_bytes = 2048;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 6;
  Cluster cluster(cluster_options);
  auto store = RStore::Open(&cluster, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(gen.dataset, gen.payloads).ok());

  TrafficOptions traffic;
  traffic.seed = 11;
  traffic.num_queries = 40;
  traffic.concurrency = 1;
  const std::vector<Query> queries = GenerateTraffic(gen.dataset, traffic);

  const TrafficReport sync = RunTrafficSync(store->get(), queries);
  ASSERT_GT(sync.completed, 0u);
  Executor executor;
  const TrafficReport async =
      RunTrafficAsync(store->get(), &executor, queries, traffic);
  EXPECT_EQ(async.completed, sync.completed);
  EXPECT_EQ(async.failed, sync.failed);
  EXPECT_EQ(async.result_hash, sync.result_hash);
  EXPECT_EQ(async.latencies_us, sync.latencies_us);
  EXPECT_EQ(async.makespan_us, sync.makespan_us);
  EXPECT_EQ(async.stats.chunks_fetched, sync.stats.chunks_fetched);
  EXPECT_EQ(async.stats.bytes_fetched, sync.stats.bytes_fetched);
  EXPECT_EQ(async.stats.simulated_micros, sync.stats.simulated_micros);

  // More in flight: same bytes and backend work, strictly less wall (the
  // virtual clock's "wall") time than one-at-a-time.
  traffic.concurrency = 8;
  const TrafficReport pipelined =
      RunTrafficAsync(store->get(), &executor, queries, traffic);
  EXPECT_EQ(pipelined.result_hash, sync.result_hash);
  EXPECT_EQ(pipelined.stats.chunks_fetched, sync.stats.chunks_fetched);
  EXPECT_LT(pipelined.makespan_us, sync.makespan_us);
}

TEST(TrafficTest, OpenLoopArrivalsFollowTheConfiguredInterval) {
  GeneratedDataset gen = SmallDataset();
  Options options;
  options.chunk_capacity_bytes = 2048;
  MemoryStore backend;
  auto store = RStore::Open(&backend, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BulkLoad(gen.dataset, gen.payloads).ok());

  TrafficOptions traffic;
  traffic.num_queries = 20;
  traffic.arrival_interval_us = 500;
  const std::vector<Query> queries = GenerateTraffic(gen.dataset, traffic);
  Executor executor;
  const TrafficReport report =
      RunTrafficAsync(store->get(), &executor, queries, traffic);
  EXPECT_EQ(report.completed + report.failed, 20u);
  // Over the instantaneous MemoryStore bridge each arrival completes at its
  // arrival instant, so the makespan is exactly the last arrival offset.
  EXPECT_EQ(report.makespan_us, 19u * 500u);
}

}  // namespace
}  // namespace workload
}  // namespace rstore
