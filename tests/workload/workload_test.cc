#include <gtest/gtest.h>

#include <set>

#include "json/json_parser.h"
#include "workload/dataset_catalog.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"
#include "workload/record_generator.h"

namespace rstore {
namespace workload {
namespace {

TEST(RecordGeneratorTest, GeneratesValidJsonNearTargetSize) {
  RecordGenerator gen(500, 7);
  for (int i = 0; i < 20; ++i) {
    std::string payload = gen.Generate("key" + std::to_string(i));
    auto parsed = json::Parse(payload);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->Find("id")->as_string(), "key" + std::to_string(i));
    EXPECT_GT(payload.size(), 250u);
    EXPECT_LT(payload.size(), 750u);
  }
}

TEST(RecordGeneratorTest, MutationChangesBoundedFraction) {
  RecordGenerator gen(2000, 9);
  std::string base = gen.Generate("k");
  for (double pd : {0.01, 0.05, 0.10}) {
    std::string mutated = gen.Mutate(base, pd);
    ASSERT_TRUE(json::Parse(mutated).ok());
    EXPECT_NE(mutated, base);
    // Count differing bytes (same length since fields are fixed width).
    ASSERT_EQ(mutated.size(), base.size());
    size_t diff = 0;
    for (size_t i = 0; i < base.size(); ++i) {
      if (base[i] != mutated[i]) ++diff;
    }
    double frac = static_cast<double>(diff) / base.size();
    EXPECT_LT(frac, pd * 3 + 0.05) << pd;  // bounded above
    EXPECT_GT(frac, 0.0);
  }
}

TEST(RecordGeneratorTest, MutationOfNonJsonFallsBackToBytes) {
  RecordGenerator gen(100, 3);
  std::string binary = "not json at all \x01\x02";
  std::string mutated = gen.Mutate(binary, 0.2);
  EXPECT_EQ(mutated.size(), binary.size());
  EXPECT_NE(mutated, binary);
}

TEST(DatasetGeneratorTest, GeneratedDatasetValidates) {
  DatasetConfig config;
  config.num_versions = 50;
  config.records_per_version = 200;
  config.update_fraction = 0.1;
  config.branch_probability = 0.2;
  config.insert_fraction = 0.01;
  config.delete_fraction = 0.01;
  GeneratedDataset gen = GenerateDataset(config);
  EXPECT_TRUE(gen.dataset.Validate().ok())
      << gen.dataset.Validate().ToString();
  EXPECT_EQ(gen.dataset.graph.size(), 50u);
}

TEST(DatasetGeneratorTest, EveryAddedRecordHasPayload) {
  DatasetConfig config;
  config.num_versions = 30;
  config.records_per_version = 100;
  config.update_fraction = 0.2;
  config.branch_probability = 0.3;
  GeneratedDataset gen = GenerateDataset(config);
  for (const VersionDelta& delta : gen.dataset.deltas) {
    for (const CompositeKey& ck : delta.added) {
      EXPECT_TRUE(gen.payloads.count(ck)) << ck.ToString();
    }
  }
  EXPECT_EQ(gen.payloads.size(), gen.dataset.CountDistinctRecords());
}

TEST(DatasetGeneratorTest, DeterministicGivenSeed) {
  DatasetConfig config;
  config.num_versions = 20;
  config.records_per_version = 50;
  config.seed = 77;
  GeneratedDataset a = GenerateDataset(config);
  GeneratedDataset b = GenerateDataset(config);
  ASSERT_EQ(a.dataset.graph.size(), b.dataset.graph.size());
  for (VersionId v = 0; v < a.dataset.graph.size(); ++v) {
    EXPECT_EQ(a.dataset.deltas[v].added, b.dataset.deltas[v].added);
  }
  EXPECT_EQ(a.payloads, b.payloads);
}

TEST(DatasetGeneratorTest, ZeroBranchProbabilityGivesChain) {
  DatasetConfig config;
  config.num_versions = 40;
  config.records_per_version = 50;
  config.branch_probability = 0.0;
  GeneratedDataset gen = GenerateDataset(config);
  EXPECT_EQ(gen.dataset.graph.MaxDepth(), 39u);
  EXPECT_EQ(gen.dataset.graph.Leaves().size(), 1u);
}

TEST(DatasetGeneratorTest, BranchingReducesDepth) {
  DatasetConfig chain;
  chain.num_versions = 200;
  chain.records_per_version = 50;
  chain.branch_probability = 0.0;
  DatasetConfig branched = chain;
  branched.branch_probability = 0.4;
  EXPECT_LT(GenerateDataset(branched).dataset.graph.AverageLeafDepth(),
            GenerateDataset(chain).dataset.graph.AverageLeafDepth());
}

TEST(DatasetGeneratorTest, UpdateFractionDrivesUniqueRecords) {
  DatasetConfig low;
  low.num_versions = 50;
  low.records_per_version = 200;
  low.update_fraction = 0.01;
  DatasetConfig high = low;
  high.update_fraction = 0.3;
  EXPECT_LT(GenerateDataset(low).stats.unique_records,
            GenerateDataset(high).stats.unique_records);
}

TEST(DatasetGeneratorTest, ZipfSkewsUpdateTargets) {
  DatasetConfig config;
  config.num_versions = 60;
  config.records_per_version = 300;
  config.update_fraction = 0.1;
  config.zipf_updates = true;
  GeneratedDataset gen = GenerateDataset(config);
  ASSERT_TRUE(gen.dataset.Validate().ok());
  // Count updates per key: under Zipf a few keys absorb many updates.
  std::map<std::string, int> updates;
  for (VersionId v = 1; v < gen.dataset.graph.size(); ++v) {
    for (const CompositeKey& ck : gen.dataset.deltas[v].added) {
      ++updates[ck.key];
    }
  }
  int max_updates = 0;
  for (const auto& [key, count] : updates) {
    max_updates = std::max(max_updates, count);
  }
  // The hottest key must see far more than the uniform expectation
  // (~59 versions * 30 updates / 300 keys = ~6).
  EXPECT_GT(max_updates, 20);
}

TEST(DatasetCatalogTest, AllEntriesResolvable) {
  auto catalog = DatasetCatalog();
  EXPECT_EQ(catalog.size(), 14u);
  for (const CatalogEntry& entry : catalog) {
    auto config = CatalogConfig(entry.name);
    ASSERT_TRUE(config.ok()) << entry.name;
    EXPECT_EQ(config->name, entry.name);
  }
  EXPECT_TRUE(CatalogConfig("Z9").status().IsNotFound());
}

TEST(DatasetCatalogTest, DepthOrderingMatchesPaper) {
  // Paper Table 2: A (chains, deepest relative to size) > B > C > D in
  // average depth relative terms; A is exactly linear.
  auto a = GenerateDataset(*CatalogConfig("A1"));
  auto b = GenerateDataset(*CatalogConfig("B1"));
  auto c = GenerateDataset(*CatalogConfig("C1"));
  auto d = GenerateDataset(*CatalogConfig("D1"));
  EXPECT_DOUBLE_EQ(a.stats.avg_depth, a.stats.num_versions - 1.0);
  double b_ratio = b.stats.avg_depth / b.stats.num_versions;
  double c_ratio = c.stats.avg_depth / c.stats.num_versions;
  double d_ratio = d.stats.avg_depth / d.stats.num_versions;
  EXPECT_GT(b_ratio, c_ratio);
  EXPECT_GT(c_ratio, d_ratio);
}

TEST(DatasetCatalogTest, SmallCatalogEntriesValidate) {
  // Validate the fast entries end-to-end (bigger ones are exercised by the
  // benches).
  for (const char* name : {"A1", "C1", "D1"}) {
    auto gen = GenerateDataset(*CatalogConfig(name));
    EXPECT_TRUE(gen.dataset.Validate().ok()) << name;
    EXPECT_GT(gen.stats.unique_records, 0u);
    EXPECT_GT(gen.stats.total_bytes, gen.stats.unique_record_bytes);
  }
}

TEST(QueryWorkloadTest, QueriesAreWellFormed) {
  DatasetConfig config;
  config.num_versions = 30;
  config.records_per_version = 100;
  GeneratedDataset gen = GenerateDataset(config);
  QueryWorkloadGenerator qgen(&gen.dataset, 5);

  for (const Query& q : qgen.FullVersionQueries(50)) {
    EXPECT_LT(q.version, 30u);
  }
  for (const Query& q : qgen.RangeQueries(50, 0.1)) {
    EXPECT_LE(q.key_lo, q.key_hi);
    EXPECT_LT(q.version, 30u);
  }
  std::set<std::string> keys;
  for (const Query& q : qgen.EvolutionQueries(50)) {
    EXPECT_FALSE(q.key.empty());
    keys.insert(q.key);
  }
  EXPECT_GT(keys.size(), 10u);  // spread over the key space
  for (const Query& q : qgen.PointQueries(50)) {
    EXPECT_FALSE(q.key.empty());
    EXPECT_LT(q.version, 30u);
  }
}

TEST(QueryWorkloadTest, RangeSelectivityControlsSpan) {
  DatasetConfig config;
  config.num_versions = 10;
  config.records_per_version = 500;
  GeneratedDataset gen = GenerateDataset(config);
  QueryWorkloadGenerator qgen(&gen.dataset, 5);
  auto narrow = qgen.RangeQueries(20, 0.01);
  auto wide = qgen.RangeQueries(20, 0.5);
  // Compare average lexicographic widths via key index differences: keys are
  // zero-padded so string compare reflects numeric order.
  auto avg_width = [](const std::vector<Query>& qs) {
    double total = 0;
    for (const Query& q : qs) {
      total += std::stoll(q.key_hi.substr(3)) - std::stoll(q.key_lo.substr(3));
    }
    return total / qs.size();
  };
  EXPECT_LT(avg_width(narrow), avg_width(wide));
}

TEST(StatsFormattingTest, RowAndHeaderAlign) {
  DatasetConfig config;
  config.num_versions = 10;
  config.records_per_version = 20;
  GeneratedDataset gen = GenerateDataset(config);
  std::string header = StatsHeader();
  std::string row = FormatStatsRow(gen.stats);
  EXPECT_FALSE(header.empty());
  EXPECT_FALSE(row.empty());
  EXPECT_NE(row.find("custom"), std::string::npos);
}

}  // namespace
}  // namespace workload
}  // namespace rstore
