#include "compress/lz_codec.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/compressor.h"

namespace rstore {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed, output;
  lz::Compress(Slice(input), &compressed);
  Status s = lz::Decompress(Slice(compressed), &output);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return output;
}

TEST(LzCodecTest, EmptyInput) {
  EXPECT_EQ(RoundTrip(""), "");
}

TEST(LzCodecTest, TinyInput) {
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
}

TEST(LzCodecTest, RepetitiveInputCompresses) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "the quick brown fox ";
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 10);
  std::string output;
  ASSERT_TRUE(lz::Decompress(Slice(compressed), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, RunLengthOverlappingMatch) {
  // distance < length exercises the overlapping-copy path.
  std::string input(10000, 'z');
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), 100u);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzCodecTest, JsonLikeTextCompresses) {
  std::string input;
  for (int i = 0; i < 200; ++i) {
    input += "{\"patient_id\":" + std::to_string(i) +
             ",\"status\":\"stable\",\"ward\":\"cardiology\"},";
  }
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 3);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzCodecTest, IncompressibleRandomBytes) {
  Random rng(42);
  std::string input;
  for (int i = 0; i < 10000; ++i) {
    input.push_back(static_cast<char>(rng.Uniform(256)));
  }
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  // Bounded expansion on incompressible data.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 50 + 32);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzCodecTest, BinaryWithEmbeddedNuls) {
  std::string input = "abc";
  input.push_back('\0');
  input += "def";
  input.push_back('\0');
  input += input;
  input += input;
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzCodecTest, PeekUncompressedSize) {
  std::string input(12345, 'x');
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  auto size = lz::PeekUncompressedSize(Slice(compressed));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 12345u);
}

TEST(LzCodecTest, DecompressRejectsTruncation) {
  std::string input;
  for (int i = 0; i < 100; ++i) input += "repeated block data ";
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  std::string output;
  // Any strict prefix must fail, not crash.
  for (size_t cut : {size_t{0}, compressed.size() / 2, compressed.size() - 1}) {
    Status s = lz::Decompress(Slice(compressed.data(), cut), &output);
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
}

TEST(LzCodecTest, DecompressRejectsBadDistance) {
  // Hand-craft a frame with a match whose distance exceeds output written.
  std::string frame;
  {
    std::string tmp;
    // header: claims 8 bytes of output
    tmp.push_back(8 << 0);  // varint 8 (< 0x80)
    // match token: len=4 -> (4<<1)|1 = 9; distance = 100
    tmp.push_back(9);
    tmp.push_back(100);
    frame = tmp;
  }
  std::string output;
  EXPECT_TRUE(lz::Decompress(Slice(frame), &output).IsCorruption());
}

TEST(LzCodecTest, VariedSizesSweep) {
  Random rng(7);
  for (size_t size : {1u, 5u, 64u, 255u, 1024u, 65536u}) {
    std::string input;
    input.reserve(size);
    // Half-compressible: random vocabulary of 16 words.
    static const char* kWords[] = {"alpha", "beta", "gamma", "delta",
                                   "eps",   "zeta", "eta",   "theta"};
    while (input.size() < size) {
      input += kWords[rng.Uniform(8)];
      input.push_back(' ');
    }
    input.resize(size);
    EXPECT_EQ(RoundTrip(input), input) << size;
  }
}

TEST(CompressorTest, RegistryRoundTrip) {
  std::string input = "hello hello hello hello hello";
  for (CompressionType t : {CompressionType::kNone, CompressionType::kLZ}) {
    const Compressor* c = GetCompressor(t);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->type(), t);
    std::string compressed, output;
    c->Compress(Slice(input), &compressed);
    ASSERT_TRUE(c->Decompress(Slice(compressed), &output).ok());
    EXPECT_EQ(output, input);
  }
}

TEST(CompressorTest, NoneIsIdentity) {
  const Compressor* c = GetCompressor(CompressionType::kNone);
  std::string out;
  c->Compress(Slice("abc"), &out);
  EXPECT_EQ(out, "abc");
}

}  // namespace
}  // namespace rstore
