#include "compress/bitmap.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace rstore {
namespace {

TEST(BitmapTest, SetTestClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, ToVectorAscending) {
  Bitmap b(200);
  for (size_t i : {5u, 64u, 65u, 128u, 199u}) b.Set(i);
  auto v = b.ToVector();
  EXPECT_EQ(v, (std::vector<uint32_t>{5, 64, 65, 128, 199}));
}

TEST(BitmapTest, UnionAndIntersect) {
  Bitmap a(128), b(128);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(100);
  Bitmap u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.ToVector(), (std::vector<uint32_t>{1, 50, 100}));
  Bitmap i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.ToVector(), (std::vector<uint32_t>{50}));
}

TEST(BitmapTest, SerializeRoundTripSparse) {
  Bitmap b(100000);
  b.Set(0);
  b.Set(50000);
  b.Set(99999);
  std::string buf;
  b.SerializeTo(&buf);
  // Sparse bitmap compresses far below the 12.5KB raw size.
  EXPECT_LT(buf.size(), 64u);
  Slice in(buf);
  Bitmap out;
  ASSERT_TRUE(Bitmap::DeserializeFrom(&in, &out).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(out, b);
}

TEST(BitmapTest, SerializeRoundTripDense) {
  Bitmap b(10000);
  for (size_t i = 0; i < 10000; ++i) b.Set(i);
  std::string buf;
  b.SerializeTo(&buf);
  EXPECT_LT(buf.size(), 32u);  // one all-ones run
  Slice in(buf);
  Bitmap out;
  ASSERT_TRUE(Bitmap::DeserializeFrom(&in, &out).ok());
  EXPECT_EQ(out.Count(), 10000u);
  EXPECT_EQ(out, b);
}

TEST(BitmapTest, SerializeRoundTripMixed) {
  Random rng(5);
  Bitmap b(5000);
  for (int i = 0; i < 700; ++i) b.Set(rng.Uniform(5000));
  std::string buf;
  b.SerializeTo(&buf);
  Slice in(buf);
  Bitmap out;
  ASSERT_TRUE(Bitmap::DeserializeFrom(&in, &out).ok());
  EXPECT_EQ(out, b);
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b(0);
  std::string buf;
  b.SerializeTo(&buf);
  Slice in(buf);
  Bitmap out;
  ASSERT_TRUE(Bitmap::DeserializeFrom(&in, &out).ok());
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(out.Count(), 0u);
}

TEST(BitmapTest, NonMultipleOf64Sizes) {
  for (size_t size : {1u, 63u, 64u, 65u, 127u, 129u}) {
    Bitmap b(size);
    b.Set(size - 1);
    if (size > 1) b.Set(0);
    std::string buf;
    b.SerializeTo(&buf);
    Slice in(buf);
    Bitmap out;
    ASSERT_TRUE(Bitmap::DeserializeFrom(&in, &out).ok()) << size;
    EXPECT_EQ(out, b) << size;
  }
}

TEST(BitmapTest, DeserializeRejectsGarbage) {
  std::string garbage = "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff";
  Slice in(garbage);
  Bitmap out;
  EXPECT_FALSE(Bitmap::DeserializeFrom(&in, &out).ok());
}

TEST(BitmapTest, DeserializeRejectsOverrun) {
  // Valid header (size=64 -> 1 word) but a token claiming 100 zero words.
  // The token (100 << 2) = 400 needs two varint bytes.
  std::string buf;
  buf.push_back(64);                       // size varint
  buf.push_back(static_cast<char>(0x90));  // low 7 bits of 400 = 0x10, cont bit
  buf.push_back(0x03);                      // high bits
  Slice in(buf);
  Bitmap out;
  EXPECT_TRUE(Bitmap::DeserializeFrom(&in, &out).IsCorruption());
}

class BitmapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitmapPropertyTest, RandomRoundTrip) {
  Random rng(GetParam());
  size_t size = 1 + rng.Uniform(20000);
  Bitmap b(size);
  double density = rng.NextDouble();
  for (size_t i = 0; i < size; ++i) {
    if (rng.NextDouble() < density) b.Set(i);
  }
  std::string buf;
  b.SerializeTo(&buf);
  Slice in(buf);
  Bitmap out;
  ASSERT_TRUE(Bitmap::DeserializeFrom(&in, &out).ok());
  EXPECT_EQ(out, b);
  EXPECT_EQ(out.Count(), b.Count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace rstore
