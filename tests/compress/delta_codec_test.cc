#include "compress/delta_codec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace rstore {
namespace {

std::string ApplyOk(const std::string& base, const std::string& delta) {
  std::string target;
  Status s = delta_codec::Apply(Slice(base), Slice(delta), &target);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return target;
}

std::string EncodeApply(const std::string& base, const std::string& target) {
  std::string delta;
  delta_codec::Encode(Slice(base), Slice(target), &delta);
  return ApplyOk(base, delta);
}

TEST(DeltaCodecTest, IdenticalPayloads) {
  std::string doc(2000, 'a');
  for (size_t i = 0; i < doc.size(); i += 7) doc[i] = 'b';
  std::string delta;
  delta_codec::Encode(Slice(doc), Slice(doc), &delta);
  // Identical base/target: the delta should be a handful of bytes.
  EXPECT_LT(delta.size(), 32u);
  EXPECT_EQ(ApplyOk(doc, delta), doc);
}

TEST(DeltaCodecTest, EmptyCases) {
  EXPECT_EQ(EncodeApply("", ""), "");
  EXPECT_EQ(EncodeApply("base content here", ""), "");
  EXPECT_EQ(EncodeApply("", "fresh target"), "fresh target");
}

TEST(DeltaCodecTest, SmallEditOnLargeDocument) {
  std::string base;
  for (int i = 0; i < 100; ++i) {
    base += "{\"field" + std::to_string(i) + "\":\"value" + std::to_string(i) +
            "\"},";
  }
  std::string target = base;
  target.replace(target.find("value50"), 7, "UPDATED");
  std::string delta;
  delta_codec::Encode(Slice(base), Slice(target), &delta);
  // 1-attribute change in a multi-KB doc => delta is a small fraction.
  EXPECT_LT(delta.size(), base.size() / 10);
  EXPECT_EQ(ApplyOk(base, delta), target);
}

TEST(DeltaCodecTest, DeltaSizeTracksChangeFraction) {
  // The Fig. 10 property: a Pd-bounded change yields a ~Pd-sized delta.
  Random rng(42);
  std::string base;
  for (int i = 0; i < 500; ++i) {
    base += "record field " + std::to_string(rng.Next() % 100000) + "; ";
  }
  size_t prev_delta_size = 0;
  for (double pd : {0.01, 0.05, 0.10, 0.50}) {
    std::string target = base;
    size_t flips = static_cast<size_t>(pd * target.size());
    for (size_t f = 0; f < flips; ++f) {
      target[rng.Uniform(target.size())] =
          static_cast<char>('a' + rng.Uniform(26));
    }
    std::string delta;
    delta_codec::Encode(Slice(base), Slice(target), &delta);
    EXPECT_EQ(ApplyOk(base, delta), target);
    EXPECT_GE(delta.size(), prev_delta_size);  // monotone in Pd
    prev_delta_size = delta.size();
  }
  // At Pd=1% the delta must be far smaller than the document.
  std::string target = base;
  for (size_t f = 0; f < base.size() / 100; ++f) {
    target[rng.Uniform(target.size())] = '#';
  }
  std::string delta;
  delta_codec::Encode(Slice(base), Slice(target), &delta);
  EXPECT_LT(delta.size(), base.size() / 2);
}

TEST(DeltaCodecTest, CompletelyDifferentPayloads) {
  Random rng(1);
  std::string base, target;
  for (int i = 0; i < 5000; ++i) {
    base.push_back(static_cast<char>(rng.Uniform(256)));
    target.push_back(static_cast<char>(rng.Uniform(256)));
  }
  std::string delta;
  delta_codec::Encode(Slice(base), Slice(target), &delta);
  // Bounded expansion even with zero overlap.
  EXPECT_LT(delta.size(), target.size() + target.size() / 20 + 64);
  EXPECT_EQ(ApplyOk(base, delta), target);
}

TEST(DeltaCodecTest, InsertionsAndDeletions) {
  std::string base =
      "line one\nline two\nline three\nline four\nline five\nline six\n"
      "line seven\nline eight\nline nine\nline ten\n";
  std::string with_insert = base;
  with_insert.insert(base.find("line five"), "inserted line here\n");
  EXPECT_EQ(EncodeApply(base, with_insert), with_insert);

  std::string with_delete = base;
  size_t p = with_delete.find("line three\n");
  with_delete.erase(p, 11);
  EXPECT_EQ(EncodeApply(base, with_delete), with_delete);

  std::string reordered =
      "line ten\nline nine\nline one\nline two\nline three\nline four\n";
  EXPECT_EQ(EncodeApply(base, reordered), reordered);
}

TEST(DeltaCodecTest, ApplyRejectsCorruptDelta) {
  std::string base = "some base data that is long enough to index properly";
  std::string target = base + " plus a tail";
  std::string delta;
  delta_codec::Encode(Slice(base), Slice(target), &delta);
  std::string out;
  // Truncations fail cleanly.
  for (size_t cut : {size_t{0}, delta.size() / 2}) {
    EXPECT_FALSE(
        delta_codec::Apply(Slice(base), Slice(delta.data(), cut), &out).ok());
  }
  // COPY beyond base range fails.
  std::string bad;
  bad.push_back(4);            // target_size = 4
  bad.push_back((4 << 1) | 1); // COPY len 4
  bad.push_back(120);          // offset 120 > base.size()
  EXPECT_TRUE(
      delta_codec::Apply(Slice("short"), Slice(bad), &out).IsCorruption());
}

TEST(DeltaCodecTest, RandomizedRoundTripSweep) {
  Random rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    size_t base_len = 1 + rng.Uniform(4000);
    std::string base;
    for (size_t i = 0; i < base_len; ++i) {
      base.push_back(static_cast<char>('a' + rng.Uniform(6)));
    }
    // Target = base with random splice edits.
    std::string target = base;
    int edits = 1 + static_cast<int>(rng.Uniform(5));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(target.size() + 1);
      if (rng.Bernoulli(0.5) && pos < target.size()) {
        target.erase(pos, rng.Uniform(std::min<size_t>(
                              20, target.size() - pos) + 1));
      } else {
        std::string ins;
        for (size_t i = 0; i < 1 + rng.Uniform(20); ++i) {
          ins.push_back(static_cast<char>('A' + rng.Uniform(26)));
        }
        target.insert(pos, ins);
      }
    }
    EXPECT_EQ(EncodeApply(base, target), target) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rstore
