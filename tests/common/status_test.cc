#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace rstore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(Status::OK().code(), Status::Code::kOk);
}

TEST(StatusTest, ErrorCodesAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Corruption("bad header");
  EXPECT_EQ(s.ToString(), "Corruption: bad header");
  EXPECT_EQ(s.message(), "bad header");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::IOError("disk");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    RSTORE_RETURN_IF_ERROR(inner(fail));
    return Status::NotFound("after");
  };
  EXPECT_TRUE(outer(true).IsIOError());
  EXPECT_TRUE(outer(false).IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace rstore
