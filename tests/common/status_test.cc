#include "common/status.h"

#include <gtest/gtest.h>

#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"

namespace rstore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(Status::OK().code(), Status::Code::kOk);
}

TEST(StatusTest, ErrorCodesAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, EveryCodeRoundTripsThroughToString) {
  // One entry per Status::Code; a new code must be added here (and below in
  // DistinctCodesCoverTheEnum) to keep the suite exhaustive.
  const std::vector<std::pair<Status, const char*>> cases = {
      {Status::OK(), "OK"},
      {Status::NotFound("m"), "NotFound"},
      {Status::InvalidArgument("m"), "InvalidArgument"},
      {Status::Corruption("m"), "Corruption"},
      {Status::IOError("m"), "IOError"},
      {Status::AlreadyExists("m"), "AlreadyExists"},
      {Status::NotSupported("m"), "NotSupported"},
      {Status::Aborted("m"), "Aborted"},
  };
  for (const auto& [status, name] : cases) {
    if (status.ok()) {
      EXPECT_EQ(status.ToString(), name);
    } else {
      EXPECT_EQ(status.ToString(), std::string(name) + ": m");
      EXPECT_EQ(status.message(), "m");
    }
  }
}

TEST(StatusTest, DistinctCodesCoverTheEnum) {
  const std::vector<Status> all = {
      Status::OK(),           Status::NotFound("x"),
      Status::InvalidArgument("x"), Status::Corruption("x"),
      Status::IOError("x"),   Status::AlreadyExists("x"),
      Status::NotSupported("x"),    Status::Aborted("x"),
  };
  std::set<Status::Code> seen;
  for (const Status& s : all) seen.insert(s.code());
  // kAborted is the highest code; every value in [0, kAborted] is covered.
  EXPECT_EQ(seen.size(), all.size());
  EXPECT_EQ(static_cast<int>(Status::Code::kAborted) + 1,
            static_cast<int>(all.size()));
}

TEST(StatusTest, EmptyMessageToStringOmitsSeparator) {
  EXPECT_EQ(Status::IOError("").ToString(), "IOError");
}

// Compile-time shape checks for the error-handling discipline: fallible APIs
// return Status / Result<T> by value, which are [[nodiscard]] class types.
// The negative half — that discarding such a return actually fails the build
// — is covered by the common.nodiscard_enforced ctest entry, which compiles
// tests/common/nodiscard_violation.cc with -Werror=unused-result and expects
// the build to fail.
static_assert(std::is_same_v<decltype(std::declval<Status>().ToString()),
                             std::string>);
static_assert(!std::is_convertible_v<Status, bool>,
              "Status must not silently convert to bool");
static_assert(std::is_same_v<decltype(std::declval<Result<int>>().status()),
                             const Status&>);

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Corruption("bad header");
  EXPECT_EQ(s.ToString(), "Corruption: bad header");
  EXPECT_EQ(s.message(), "bad header");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::IOError("disk");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    RSTORE_RETURN_IF_ERROR(inner(fail));
    return Status::NotFound("after");
  };
  EXPECT_TRUE(outer(true).IsIOError());
  EXPECT_TRUE(outer(false).IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace rstore
