// Death tests for the debug lock-rank registry (common/sync.h): rank
// violations and re-entrant self-locks must abort the process. Kept in
// their own tier-2 binary — death tests fork, which makes them by far the
// slowest part of the common suite and useless under sanitizer presets
// that already intercept aborts.

#include <gtest/gtest.h>

#include "common/sync.h"

namespace rstore {
namespace {

#ifndef NDEBUG

TEST(SyncDeathTest, EqualRankNestingIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(kLockRankLeaf, "leaf_a");
  Mutex b(kLockRankLeaf, "leaf_b");
  MutexLock lock_a(a);
  EXPECT_DEATH({ MutexLock lock_b(b); }, "lock-rank violation");
}

TEST(SyncDeathTest, IncreasingRankAcquisitionIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex inner(kLockRankMemoryStore, "inner");
  Mutex outer(kLockRankCluster, "outer");
  MutexLock inner_lock(inner);
  EXPECT_DEATH({ MutexLock outer_lock(outer); }, "lock-rank violation");
}

// The double-acquire is the point of the test; hide it from the static
// analysis (which would reject it at compile time under Clang) so the
// runtime rank registry gets to catch it.
void LockAgain(Mutex& mu) RSTORE_NO_THREAD_SAFETY_ANALYSIS { mu.Lock(); }

TEST(SyncDeathTest, ReentrantSelfLockIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(kLockRankMemoryStore, "self");
  MutexLock lock(mu);
  // Caught by the rank check (equal rank) before the thread would block on
  // itself forever.
  EXPECT_DEATH({ LockAgain(mu); }, "lock-rank violation");
}

TEST(SyncDeathTest, CacheRankMustNestBelowStorageRanks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Storage-then-cache is the read path's legal order ...
  {
    Mutex store_mu(kLockRankMemoryStore, "store_mu");
    Mutex cache_mu(kLockRankChunkCache, "cache_mu");
    MutexLock store_lock(store_mu);
    MutexLock cache_lock(cache_mu);
  }
  // ... and a cache shard calling back into a backend is fatal.
  Mutex cache_mu(kLockRankChunkCache, "cache_mu");
  Mutex store_mu(kLockRankMemoryStore, "store_mu");
  MutexLock cache_lock(cache_mu);
  EXPECT_DEATH({ MutexLock store_lock(store_mu); }, "lock-rank violation");
}

#endif  // !NDEBUG

}  // namespace
}  // namespace rstore
