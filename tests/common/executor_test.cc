// Unit tests for the deterministic discrete-event executor and the
// Future/Promise substrate underneath the async read path. The properties
// asserted here — total determinism given (seed, submission order), virtual
// time that only moves forward, continuations invoked with no locks held —
// are what the equivalence and chaos suites build on.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"

namespace rstore {
namespace {

TEST(ExecutorTest, SeedZeroRunsTiesInSubmissionOrder) {
  Executor executor(0);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    executor.Post([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(executor.pending(), 8u);
  EXPECT_EQ(executor.RunUntilIdle(), 8u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(ExecutorTest, VirtualClockJumpsToDueTimes) {
  Executor executor;
  EXPECT_EQ(executor.now_us(), 0u);
  std::vector<uint64_t> at;
  executor.PostAt(500, [&] { at.push_back(executor.now_us()); });
  executor.PostAt(100, [&] { at.push_back(executor.now_us()); });
  executor.PostAfter(250, [&] { at.push_back(executor.now_us()); });
  executor.RunUntilIdle();
  // Due-time order, not submission order; the clock lands exactly on each
  // due instant and never reads wall time.
  EXPECT_EQ(at, (std::vector<uint64_t>{100, 250, 500}));
  EXPECT_EQ(executor.now_us(), 500u);
}

TEST(ExecutorTest, ThePastIsClampedToNow) {
  Executor executor;
  executor.PostAt(1000, [] {});
  executor.RunUntilIdle();
  ASSERT_EQ(executor.now_us(), 1000u);
  uint64_t ran_at = 0;
  executor.PostAt(10, [&] { ran_at = executor.now_us(); });
  executor.RunUntilIdle();
  EXPECT_EQ(ran_at, 1000u);  // never travels backwards
}

TEST(ExecutorTest, TasksMayPostFollowOnWork) {
  Executor executor;
  std::vector<std::string> order;
  executor.PostAt(10, [&] {
    order.push_back("a@" + std::to_string(executor.now_us()));
    executor.PostAfter(5, [&] {
      order.push_back("b@" + std::to_string(executor.now_us()));
    });
    executor.Post([&] {
      order.push_back("c@" + std::to_string(executor.now_us()));
    });
  });
  EXPECT_EQ(executor.RunUntilIdle(), 3u);
  // The inline post lands at the current instant and so runs before the
  // delayed one.
  EXPECT_EQ(order, (std::vector<std::string>{"a@10", "c@10", "b@15"}));
}

TEST(ExecutorTest, SameSeedReplaysIdenticalOrder) {
  auto run = [](uint64_t seed) {
    Executor executor(seed);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      executor.PostAt(100, [&order, i] { order.push_back(i); });
    }
    executor.RunUntilIdle();
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(0), run(0));
}

TEST(ExecutorTest, SeedPerturbsOnlyTies) {
  // Among tasks due at the same instant, a nonzero seed shuffles the order;
  // across distinct due times, no seed ever reorders.
  auto tie_order = [](uint64_t seed) {
    Executor executor(seed);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      executor.PostAt(100, [&order, i] { order.push_back(i); });
    }
    executor.RunUntilIdle();
    return order;
  };
  bool shuffled = false;
  for (uint64_t seed = 1; seed <= 4 && !shuffled; ++seed) {
    shuffled = tie_order(seed) != tie_order(0);
  }
  EXPECT_TRUE(shuffled);

  for (uint64_t seed : {0ull, 1ull, 99ull}) {
    Executor executor(seed);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      executor.PostAt(100 * (8 - i), [&order, i] { order.push_back(i); });
    }
    executor.RunUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0})) << seed;
  }
}

TEST(ExecutorTest, CancelRemovesPendingTask) {
  Executor executor;
  bool ran = false;
  Executor::TaskId id = executor.PostAt(50, [&] { ran = true; });
  EXPECT_TRUE(executor.Cancel(id));
  EXPECT_FALSE(executor.Cancel(id));  // already cancelled
  EXPECT_EQ(executor.RunUntilIdle(), 0u);
  EXPECT_FALSE(ran);
  // The cancelled task's due time never advanced the clock.
  EXPECT_EQ(executor.now_us(), 0u);
}

TEST(ExecutorTest, CancelAfterRunReturnsFalse) {
  Executor executor;
  Executor::TaskId id = executor.Post([] {});
  EXPECT_EQ(executor.RunUntilIdle(), 1u);
  EXPECT_FALSE(executor.Cancel(id));
  EXPECT_FALSE(executor.Cancel(12345));  // never existed
}

TEST(ExecutorTest, RunCountExcludesCancelled) {
  Executor executor;
  executor.Post([] {});
  Executor::TaskId id = executor.Post([] {});
  executor.Post([] {});
  EXPECT_TRUE(executor.Cancel(id));
  EXPECT_EQ(executor.RunUntilIdle(), 2u);
}

TEST(FutureTest, MakeReadyFutureIsImmediatelyReady) {
  Future<int> f = MakeReadyFuture(42);
  ASSERT_TRUE(f.valid());
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.Get(), 42);
  int seen = 0;
  f.OnReady([&seen](const int& v) { seen = v; });  // runs inline
  EXPECT_EQ(seen, 42);
}

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
}

TEST(FutureTest, CallbacksRunAtSetInRegistrationOrder) {
  Promise<std::string> p;
  Future<std::string> f = p.future();
  EXPECT_FALSE(f.ready());
  std::vector<std::string> log;
  f.OnReady([&log](const std::string& v) { log.push_back("first:" + v); });
  f.OnReady([&log](const std::string& v) { log.push_back("second:" + v); });
  EXPECT_TRUE(log.empty());
  p.Set("x");
  EXPECT_EQ(log, (std::vector<std::string>{"first:x", "second:x"}));
  // Late registration on an already-complete future runs inline.
  f.OnReady([&log](const std::string& v) { log.push_back("late:" + v); });
  EXPECT_EQ(log.back(), "late:x");
}

TEST(FutureTest, CopiesObserveTheSameCompletion) {
  Promise<int> p;
  Future<int> a = p.future();
  Future<int> b = a;
  p.Set(7);
  EXPECT_TRUE(a.ready());
  EXPECT_TRUE(b.ready());
  EXPECT_EQ(b.Get(), 7);
}

TEST(FutureTest, ThenMapsTheValue) {
  Promise<int> p;
  Future<std::string> mapped =
      p.future().Then([](const int& v) { return std::to_string(v * 2); });
  EXPECT_FALSE(mapped.ready());
  p.Set(21);
  ASSERT_TRUE(mapped.ready());
  EXPECT_EQ(mapped.Get(), "42");
  // Chaining off a ready future completes inline.
  Future<int> len = mapped.Then(
      [](const std::string& s) { return static_cast<int>(s.size()); });
  ASSERT_TRUE(len.ready());
  EXPECT_EQ(len.Get(), 2);
}

TEST(FutureTest, GetBlocksAcrossThreads) {
  Promise<int> p;
  Future<int> f = p.future();
  std::thread producer([p] { p.Set(99); });
  EXPECT_EQ(f.Get(), 99);  // blocks until the producer thread sets
  producer.join();
}

TEST(FutureTest, ContinuationsMayUseTheExecutor) {
  // Continuations run with no locks held, so they can post follow-on work —
  // the shape every async query continuation has.
  Executor executor;
  Promise<int> p;
  std::vector<int> log;
  p.future().OnReady([&](const int& v) {
    log.push_back(v);
    executor.PostAfter(10, [&log] { log.push_back(-1); });
  });
  executor.Post([p] { p.Set(5); });
  executor.RunUntilIdle();
  EXPECT_EQ(log, (std::vector<int>{5, -1}));
  EXPECT_EQ(executor.now_us(), 10u);
}

}  // namespace
}  // namespace rstore
