// Death tests for the executor's run-loop discipline: re-entering
// RunUntilIdle from a task and completing a promise twice both abort.
// Tier-2 with the other forking death tests.

#include <gtest/gtest.h>

#include "common/executor.h"

namespace rstore {
namespace {

TEST(ExecutorDeathTest, ReenteringRunUntilIdleIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Executor executor;
  executor.Post([&executor] { executor.RunUntilIdle(); });
  EXPECT_DEATH(executor.RunUntilIdle(), "re-entered");
}

TEST(ExecutorDeathTest, SettingAPromiseTwiceIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Promise<int> p;
  p.Set(1);
  EXPECT_DEATH(p.Set(2), "Set called twice");
}

}  // namespace
}  // namespace rstore
