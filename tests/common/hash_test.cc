#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace rstore {
namespace {

TEST(HashTest, Fnv1a64Deterministic) {
  EXPECT_EQ(Fnv1a64(Slice("hello")), Fnv1a64(Slice("hello")));
  EXPECT_NE(Fnv1a64(Slice("hello")), Fnv1a64(Slice("hellp")));
  EXPECT_NE(Fnv1a64(Slice("")), Fnv1a64(Slice("\0", 1)));
}

TEST(HashTest, Fnv1a64KnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(Slice("")), 14695981039346656037ull);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should change roughly half the output bits.
  uint64_t base = Mix64(0x1234567890abcdefull);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t flipped = Mix64(0x1234567890abcdefull ^ (1ull << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashFamilyTest, DeterministicGivenSeed) {
  HashFamily f1(8, 42);
  HashFamily f2(8, 42);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f1.Apply(i, 12345), f2.Apply(i, 12345));
  }
}

TEST(HashFamilyTest, FunctionsDiffer) {
  HashFamily f(16, 7);
  std::set<uint64_t> values;
  for (size_t i = 0; i < 16; ++i) values.insert(f.Apply(i, 99));
  // With a 61-bit range, 16 distinct functions should almost surely give 16
  // distinct values.
  EXPECT_EQ(values.size(), 16u);
}

TEST(HashFamilyTest, MinHashSimilarityTracksJaccard) {
  // Min-hash property: P(minhash agree) == Jaccard similarity. Two sets with
  // 50% overlap should agree on roughly half the hash functions.
  const size_t kFunctions = 512;
  HashFamily f(kFunctions, 123);
  auto minhash = [&](const std::vector<uint64_t>& set, size_t i) {
    uint64_t best = UINT64_MAX;
    for (uint64_t x : set) best = std::min(best, f.Apply(i, x));
    return best;
  };
  std::vector<uint64_t> a, b;
  for (uint64_t v = 0; v < 200; ++v) a.push_back(v);
  for (uint64_t v = 100; v < 300; ++v) b.push_back(v);  // Jaccard = 100/300
  size_t agree = 0;
  for (size_t i = 0; i < kFunctions; ++i) {
    if (minhash(a, i) == minhash(b, i)) ++agree;
  }
  double sim = static_cast<double>(agree) / kFunctions;
  EXPECT_NEAR(sim, 1.0 / 3.0, 0.08);
}

}  // namespace
}  // namespace rstore
