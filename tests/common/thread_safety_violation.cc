// Negative-compile check for the thread-safety annotations: this file reads
// and writes a RSTORE_GUARDED_BY member without holding its mutex, so under
// Clang with -Wthread-safety -Werror=thread-safety it must FAIL to build.
// The ctest entry (common.thread_safety_enforced, Clang configs only) runs
// the build and is marked WILL_FAIL — if this ever compiles, the analysis
// has been silently disabled. Mirrors common/nodiscard_violation.cc.

#include "common/sync.h"

namespace rstore {

class Account {
 public:
  // Violation 1: touches balance_ without acquiring mu_.
  int UnguardedRead() { return balance_; }

  // Violation 2: annotated as requiring mu_, but the caller below does not
  // hold it.
  void Deposit(int amount) RSTORE_REQUIRES(mu_) { balance_ += amount; }

  void CallerWithoutLock() { Deposit(1); }

 private:
  Mutex mu_{kLockRankLeaf, "Account::mu_"};
  int balance_ RSTORE_GUARDED_BY(mu_) = 0;
};

int TouchAll() {
  Account account;
  account.CallerWithoutLock();
  return account.UnguardedRead();
}

}  // namespace rstore

int main() { return rstore::TouchAll(); }
