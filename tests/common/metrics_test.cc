#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json/json_parser.h"

namespace rstore {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.ResetForTest();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.value(), -15);
}

TEST(HistogramTest, LeBucketSemantics) {
  Histogram histogram({10, 100});
  histogram.Observe(5);    // <= 10
  histogram.Observe(10);   // <= 10 (le semantics: boundary is inclusive)
  histogram.Observe(50);   // <= 100
  histogram.Observe(1000); // +Inf
  std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 5u + 10u + 50u + 1000u);
}

TEST(HistogramTest, ExponentialBoundariesStrictlyIncrease) {
  // factor close to 1 forces the rounding-collision path.
  std::vector<uint64_t> bounds = ExponentialBoundaries(1, 1.1, 12);
  ASSERT_EQ(bounds.size(), 12u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_EQ(bounds[0], 1u);
}

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("rstore_test_ops_total");
  Counter* b = registry.GetCounter("rstore_test_ops_total");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
  // First histogram registration wins; later boundaries are ignored.
  Histogram* h1 = registry.GetHistogram("rstore_test_sizes", {1, 2, 3});
  Histogram* h2 = registry.GetHistogram("rstore_test_sizes", {99});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->boundaries().size(), 3u);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("rstore_b_total")->Increment();
  registry.GetCounter("rstore_a_total")->Increment(2);
  registry.GetGauge("rstore_depth")->Set(-7);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "rstore_a_total");
  EXPECT_EQ(snapshot.counters[0].second, 2u);
  EXPECT_EQ(snapshot.counters[1].first, "rstore_b_total");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, -7);
}

TEST(MetricsRegistryTest, PrometheusTextRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("rstore_reqs_total")->Increment(42);
  registry.GetGauge("rstore_queue_depth")->Set(-3);
  Histogram* h = registry.GetHistogram("rstore_batch_keys", {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE rstore_reqs_total counter\n"
                      "rstore_reqs_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rstore_queue_depth gauge\n"
                      "rstore_queue_depth -3\n"),
            std::string::npos);
  // Histogram buckets are cumulative and end in +Inf == count.
  EXPECT_NE(text.find("rstore_batch_keys_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_sum 555\n"), std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("rstore_reqs_total")->Increment(42);
  registry.GetGauge("rstore_queue_depth")->Set(-3);
  Histogram* h = registry.GetHistogram("rstore_batch_keys", {10, 100});
  h->Observe(5);
  h->Observe(500);

  auto parsed = json::Parse(registry.JsonSnapshot());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* reqs = counters->Find("rstore_reqs_total");
  ASSERT_NE(reqs, nullptr);
  EXPECT_EQ(reqs->as_int(), 42);
  const json::Value* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("rstore_queue_depth")->as_int(), -3);
  const json::Value* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* batch = histograms->Find("rstore_batch_keys");
  ASSERT_NE(batch, nullptr);
  ASSERT_NE(batch->Find("boundaries"), nullptr);
  EXPECT_EQ(batch->Find("boundaries")->as_array().size(), 2u);
  // counts carries the +Inf bucket as its last entry.
  ASSERT_NE(batch->Find("counts"), nullptr);
  const json::Value::Array& counts = batch->Find("counts")->as_array();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].as_int(), 1);
  EXPECT_EQ(counts[2].as_int(), 1);
  EXPECT_EQ(batch->Find("count")->as_int(), 2);
  EXPECT_EQ(batch->Find("sum")->as_int(), 505);
}

TEST(MetricsRegistryTest, ResetForTestPreservesHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("rstore_x_total");
  Histogram* h = registry.GetHistogram("rstore_y_us", {8});
  counter->Increment(9);
  h->Observe(1);
  registry.ResetForTest();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  counter->Increment();  // old handle still updates the registered metric
  EXPECT_EQ(registry.Snapshot().counters[0].second, 1u);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesDontLose) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("rstore_contended_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        // Re-resolving concurrently must return the same handle.
        registry.GetCounter("rstore_contended_total");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(HistogramExemplarTest, ExemplarLandsInValueBucketLastWriterWins) {
  Histogram histogram({10, 100});
  // No exemplar-carrying observation yet: storage stays unallocated.
  EXPECT_TRUE(histogram.exemplars().empty());

  HistogramExemplar e;
  e.id = 7;
  e.queue_wait_us = 40;
  e.service_us = 10;
  histogram.ObserveWithExemplar(50, e);
  std::vector<HistogramExemplar> exemplars = histogram.exemplars();
  ASSERT_EQ(exemplars.size(), 3u);  // two boundaries + the +Inf bucket
  EXPECT_FALSE(exemplars[0].valid);
  ASSERT_TRUE(exemplars[1].valid);  // 50 lands in le=100
  EXPECT_EQ(exemplars[1].id, 7u);
  EXPECT_EQ(exemplars[1].value, 50u);  // value recorded from the observation
  EXPECT_EQ(exemplars[1].queue_wait_us, 40u);
  EXPECT_FALSE(exemplars[2].valid);

  // A later observation in the same bucket replaces the exemplar...
  e.id = 8;
  histogram.ObserveWithExemplar(60, e);
  // ...and one above the last boundary lands in +Inf.
  e.id = 9;
  histogram.ObserveWithExemplar(5000, e);
  exemplars = histogram.exemplars();
  EXPECT_EQ(exemplars[1].id, 8u);
  EXPECT_EQ(exemplars[1].value, 60u);
  ASSERT_TRUE(exemplars[2].valid);
  EXPECT_EQ(exemplars[2].id, 9u);

  // Tallies are shared with plain Observe().
  EXPECT_EQ(histogram.count(), 3u);
}

TEST(HistogramExemplarTest, ExportersCarryExemplars) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("rstore_query_micros", {10, 100});
  HistogramExemplar e;
  e.id = 42;
  e.queue_wait_us = 30;
  e.service_us = 20;
  h->ObserveWithExemplar(50, e);
  h->Observe(5);  // exemplar-free observations leave no exemplar behind

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("rstore_query_micros_bucket{le=\"100\"} 2"
                      " # {trace_id=\"42\"} 50\n"),
            std::string::npos);
  // The exemplar-free bucket has no suffix.
  EXPECT_NE(text.find("rstore_query_micros_bucket{le=\"10\"} 1\n"),
            std::string::npos);

  auto parsed = json::Parse(registry.JsonSnapshot());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* hist =
      parsed->Find("histograms")->Find("rstore_query_micros");
  ASSERT_NE(hist, nullptr);
  const json::Value* exemplars = hist->Find("exemplars");
  ASSERT_NE(exemplars, nullptr);
  ASSERT_EQ(exemplars->as_array().size(), 1u);
  const json::Value& ex = exemplars->as_array()[0];
  EXPECT_EQ(ex.Find("bucket")->as_int(), 1);
  EXPECT_EQ(ex.Find("id")->as_int(), 42);
  EXPECT_EQ(ex.Find("value")->as_int(), 50);
  EXPECT_EQ(ex.Find("queue_wait_us")->as_int(), 30);
  EXPECT_EQ(ex.Find("service_us")->as_int(), 20);
}

TEST(HistogramExemplarTest, StaticExponentialBoundariesMatchesFreeFunction) {
  EXPECT_EQ(Histogram::ExponentialBoundaries(16, 4.0, 10),
            ExponentialBoundaries(16, 4.0, 10));
}

}  // namespace
}  // namespace rstore
