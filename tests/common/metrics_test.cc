#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json/json_parser.h"

namespace rstore {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.ResetForTest();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.value(), -15);
}

TEST(HistogramTest, LeBucketSemantics) {
  Histogram histogram({10, 100});
  histogram.Observe(5);    // <= 10
  histogram.Observe(10);   // <= 10 (le semantics: boundary is inclusive)
  histogram.Observe(50);   // <= 100
  histogram.Observe(1000); // +Inf
  std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 5u + 10u + 50u + 1000u);
}

TEST(HistogramTest, ExponentialBoundariesStrictlyIncrease) {
  // factor close to 1 forces the rounding-collision path.
  std::vector<uint64_t> bounds = ExponentialBoundaries(1, 1.1, 12);
  ASSERT_EQ(bounds.size(), 12u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_EQ(bounds[0], 1u);
}

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("rstore_test_ops_total");
  Counter* b = registry.GetCounter("rstore_test_ops_total");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
  // First histogram registration wins; later boundaries are ignored.
  Histogram* h1 = registry.GetHistogram("rstore_test_sizes", {1, 2, 3});
  Histogram* h2 = registry.GetHistogram("rstore_test_sizes", {99});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->boundaries().size(), 3u);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("rstore_b_total")->Increment();
  registry.GetCounter("rstore_a_total")->Increment(2);
  registry.GetGauge("rstore_depth")->Set(-7);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "rstore_a_total");
  EXPECT_EQ(snapshot.counters[0].second, 2u);
  EXPECT_EQ(snapshot.counters[1].first, "rstore_b_total");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, -7);
}

TEST(MetricsRegistryTest, PrometheusTextRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("rstore_reqs_total")->Increment(42);
  registry.GetGauge("rstore_queue_depth")->Set(-3);
  Histogram* h = registry.GetHistogram("rstore_batch_keys", {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE rstore_reqs_total counter\n"
                      "rstore_reqs_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rstore_queue_depth gauge\n"
                      "rstore_queue_depth -3\n"),
            std::string::npos);
  // Histogram buckets are cumulative and end in +Inf == count.
  EXPECT_NE(text.find("rstore_batch_keys_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_sum 555\n"), std::string::npos);
  EXPECT_NE(text.find("rstore_batch_keys_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("rstore_reqs_total")->Increment(42);
  registry.GetGauge("rstore_queue_depth")->Set(-3);
  Histogram* h = registry.GetHistogram("rstore_batch_keys", {10, 100});
  h->Observe(5);
  h->Observe(500);

  auto parsed = json::Parse(registry.JsonSnapshot());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* reqs = counters->Find("rstore_reqs_total");
  ASSERT_NE(reqs, nullptr);
  EXPECT_EQ(reqs->as_int(), 42);
  const json::Value* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("rstore_queue_depth")->as_int(), -3);
  const json::Value* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* batch = histograms->Find("rstore_batch_keys");
  ASSERT_NE(batch, nullptr);
  ASSERT_NE(batch->Find("boundaries"), nullptr);
  EXPECT_EQ(batch->Find("boundaries")->as_array().size(), 2u);
  // counts carries the +Inf bucket as its last entry.
  ASSERT_NE(batch->Find("counts"), nullptr);
  const json::Value::Array& counts = batch->Find("counts")->as_array();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].as_int(), 1);
  EXPECT_EQ(counts[2].as_int(), 1);
  EXPECT_EQ(batch->Find("count")->as_int(), 2);
  EXPECT_EQ(batch->Find("sum")->as_int(), 505);
}

TEST(MetricsRegistryTest, ResetForTestPreservesHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("rstore_x_total");
  Histogram* h = registry.GetHistogram("rstore_y_us", {8});
  counter->Increment(9);
  h->Observe(1);
  registry.ResetForTest();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  counter->Increment();  // old handle still updates the registered metric
  EXPECT_EQ(registry.Snapshot().counters[0].second, 1u);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesDontLose) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("rstore_contended_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        // Re-resolving concurrently must return the same handle.
        registry.GetCounter("rstore_contended_total");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace rstore
