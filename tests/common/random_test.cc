#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace rstore {
namespace {

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, UniformInBounds) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  // Bound 1 always yields 0.
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RandomTest, UniformIsRoughlyUniform) {
  Random rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformRange(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Random rng(13);
  for (uint64_t n : {10ull, 100ull, 1000ull}) {
    uint64_t count = n / 2;
    auto sample = rng.SampleWithoutReplacement(n, count);
    EXPECT_EQ(sample.size(), count);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (uint64_t v : sample) EXPECT_LT(v, n);
  }
}

TEST(RandomTest, SampleFullRange) {
  Random rng(17);
  auto sample = rng.SampleWithoutReplacement(20, 20);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RandomTest, ShufflePermutes) {
  Random rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(ZipfTest, SamplesInRange) {
  Random rng(31);
  ZipfGenerator zipf(100, 0.99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 100u);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Random rng(37);
  ZipfGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  // Rank 0 must dominate rank 99 by roughly (100/1)^theta.
  EXPECT_GT(counts[0], counts[99] * 10);
  // Top-10 ranks should hold a large share of the mass.
  int top10 = 0;
  for (uint64_t r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(top10, kDraws / 4);
}

TEST(ZipfTest, MatchesAnalyticalFrequencies) {
  // Empirical frequency of rank k should approximate (1/k^theta) / H_n.
  const uint64_t n = 50;
  const double theta = 0.8;
  Random rng(41);
  ZipfGenerator zipf(n, theta);
  std::vector<int> counts(n, 0);
  const int kDraws = 500000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  double harmonic = 0;
  for (uint64_t k = 1; k <= n; ++k) harmonic += 1.0 / std::pow(k, theta);
  for (uint64_t k : {1ull, 5ull, 25ull}) {
    double expected = (1.0 / std::pow(k, theta)) / harmonic;
    double actual = static_cast<double>(counts[k - 1]) / kDraws;
    EXPECT_NEAR(actual, expected, expected * 0.15) << "rank " << k;
  }
}

}  // namespace
}  // namespace rstore
