#include "common/string_util.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(StringPrintf("%s", ""), "");
  // Long output beyond any small stack buffer.
  std::string big(5000, 'q');
  EXPECT_EQ(StringPrintf("%s", big.c_str()).size(), 5000u);
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KB");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(1024ull * 1024), "1.00 MB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00 GB");
}

TEST(StringUtilTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(0.0000005), "0.5 us");
  EXPECT_EQ(HumanDuration(0.012), "12.00 ms");
  EXPECT_EQ(HumanDuration(1.5), "1.500 s");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string s = "k0/v1/k3/v2";
  EXPECT_EQ(JoinStrings(SplitString(s, '/'), "/"), s);
}

}  // namespace
}  // namespace rstore
