#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace rstore {
namespace {

TEST(ParallelForTest, ZeroCountNeverInvokes) {
  std::atomic<int> calls{0};
  ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleItemRunsInlineOnCaller) {
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> calls{0};
  ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(kCount, [&](size_t i) { ++hits[i]; }, 4);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, CountBelowThreadCountClampsWorkers) {
  // 3 items with 8 requested threads must spawn at most 3 workers.
  Mutex mu{kLockRankLeaf, "ParallelForTest::mu"};
  std::set<std::thread::id> ids;
  ParallelFor(
      3,
      [&](size_t) {
        MutexLock lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      8);
  EXPECT_LE(ids.size(), 3u);
  EXPECT_GE(ids.size(), 1u);
}

TEST(ParallelForTest, MaxThreadsClampsWorkers) {
  Mutex mu{kLockRankLeaf, "ParallelForTest::mu"};
  std::set<std::thread::id> ids;
  ParallelFor(
      200,
      [&](size_t) {
        MutexLock lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      2);
  EXPECT_LE(ids.size(), 2u);
}

TEST(ParallelForTest, WorkStealingCoversAllIndicesAcrossThreads) {
  // The shared counter hands out each index exactly once; per-thread tallies
  // must partition the index space regardless of how the threads interleave.
  constexpr size_t kCount = 400;
  Mutex mu{kLockRankLeaf, "ParallelForTest::mu"};
  std::map<std::thread::id, std::vector<size_t>> per_thread;
  ParallelFor(
      kCount,
      [&](size_t i) {
        MutexLock lock(mu);
        per_thread[std::this_thread::get_id()].push_back(i);
      },
      4);
  std::set<size_t> seen;
  size_t total = 0;
  for (const auto& [id, indices] : per_thread) {
    total += indices.size();
    seen.insert(indices.begin(), indices.end());
  }
  EXPECT_EQ(total, kCount);
  EXPECT_EQ(seen.size(), kCount);
  EXPECT_LE(per_thread.size(), 4u);
}

TEST(ParallelForTest, WorkerExceptionRethrownOnCaller) {
  EXPECT_THROW(
      ParallelFor(
          100,
          [](size_t i) {
            if (i == 37) throw std::runtime_error("worker failed");
          },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, WorkerExceptionMessagePreserved) {
  try {
    ParallelFor(
        50, [](size_t i) { if (i == 7) throw std::runtime_error("boom:7"); },
        3);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom:7");
  }
}

TEST(ParallelForTest, InlineExceptionPropagates) {
  // threads == 1 takes the inline path; exceptions must behave identically.
  EXPECT_THROW(
      ParallelFor(
          5, [](size_t i) { if (i == 2) throw std::logic_error("inline"); },
          1),
      std::logic_error);
}

TEST(ParallelForTest, ExceptionAbandonsRemainingWork) {
  // Every call on the first 64 indices throws, so the failure flag is set
  // before index 64 can ever be handed out; the million-item range must be
  // abandoned after a handful of calls (bounded by in-flight workers).
  std::atomic<size_t> executed{0};
  EXPECT_THROW(ParallelFor(
                   1u << 20,
                   [&](size_t i) {
                     ++executed;
                     if (i < 64) throw std::runtime_error("early");
                   },
                   4),
               std::runtime_error);
  EXPECT_LT(executed.load(), 1000u);
}

}  // namespace
}  // namespace rstore
