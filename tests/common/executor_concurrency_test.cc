// TSan-targeted stress over the executor and futures: Post/PostAt/Cancel
// storms from many threads against one drainer, promise completion racing
// continuation registration, cross-thread Future::Get, and concurrent async
// queries from separate stores contending on one shared ChunkCache. These
// tests assert only counts and invariants — the interesting output is what
// the race detector says about the interleavings.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "core/chunk_cache.h"
#include "core/rstore.h"
#include "core_test_util.h"
#include "kvstore/memory_store.h"

namespace rstore {
namespace {

constexpr int kThreads = 4;

TEST(ExecutorConcurrencyTest, PostStormFromManyThreadsDrainsCompletely) {
  Executor executor(3);
  constexpr int kPerThread = 2000;
  std::atomic<int> ran{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&executor, &ran, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto task = [&ran] { ran.fetch_add(1); };
        switch (i % 3) {
          case 0:
            executor.Post(task);
            break;
          case 1:
            executor.PostAt(static_cast<uint64_t>(t * kPerThread + i), task);
            break;
          default:
            executor.PostAfter(static_cast<uint64_t>(i % 17), task);
        }
      }
    });
  }
  // One drainer, as the contract requires; it races the producers and keeps
  // draining until every post has landed and run.
  std::thread drainer([&executor, &done] {
    while (!done.load() || executor.pending() > 0) {
      executor.RunUntilIdle();
    }
  });
  for (std::thread& t : producers) t.join();
  done.store(true);
  drainer.join();
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(ExecutorConcurrencyTest, CancelRacesWithTheDrainer) {
  Executor executor;
  constexpr int kPerThread = 1500;
  std::atomic<int> ran{0};
  std::atomic<int> cancelled{0};
  std::atomic<bool> done{false};

  std::thread drainer([&executor, &done] {
    while (!done.load() || executor.pending() > 0) {
      executor.RunUntilIdle();
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&executor, &ran, &cancelled] {
      for (int i = 0; i < kPerThread; ++i) {
        Executor::TaskId id =
            executor.PostAfter(static_cast<uint64_t>(i % 7),
                               [&ran] { ran.fetch_add(1); });
        if (i % 2 == 0 && executor.Cancel(id)) cancelled.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true);
  drainer.join();
  // Every task either ran exactly once or was cancelled exactly once.
  EXPECT_EQ(ran.load() + cancelled.load(), kThreads * kPerThread);
  EXPECT_GT(cancelled.load(), 0);
  EXPECT_GT(ran.load(), 0);
}

TEST(ExecutorConcurrencyTest, ManyThreadsBlockOnOneFuture) {
  Executor executor;
  Promise<int> promise;
  Future<int> future = promise.future();
  std::atomic<int> sum{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back(
        [future, &sum] { sum.fetch_add(future.Get()); });
  }
  executor.PostAt(100, [promise] { promise.Set(11); });
  executor.RunUntilIdle();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(sum.load(), 11 * kThreads);
}

TEST(ExecutorConcurrencyTest, OnReadyRacesWithSet) {
  for (int round = 0; round < 50; ++round) {
    Promise<int> promise;
    Future<int> future = promise.future();
    std::atomic<int> fired{0};
    std::vector<std::thread> registrars;
    for (int t = 0; t < kThreads; ++t) {
      registrars.emplace_back([future, &fired] {
        for (int i = 0; i < 20; ++i) {
          future.OnReady([&fired](const int& v) {
            EXPECT_EQ(v, 5);
            fired.fetch_add(1);
          });
        }
      });
    }
    std::thread setter([promise] { promise.Set(5); });
    for (std::thread& t : registrars) t.join();
    setter.join();
    // Whether each callback was registered before or after the Set, it runs
    // exactly once.
    EXPECT_EQ(fired.load(), kThreads * 20);
  }
}

TEST(ExecutorConcurrencyTest, AsyncQueriesContendOnOneSharedChunkCache) {
  // Each thread owns its backend, store, and executor (both are
  // single-drainer components); the ChunkCache is the one deliberately
  // shared piece, hammered from every thread at once.
  auto cache = std::make_shared<ChunkCache>(32 << 10, 4);
  testing::ExampleData data = testing::MakeChain(12, 10, 3);

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &data, &failures] {
      MemoryStore backend;
      Options options;
      options.chunk_capacity_bytes = 600;
      options.chunk_cache = cache;
      auto store = RStore::Open(&backend, options);
      if (!store.ok() ||
          !(*store)->BulkLoad(data.dataset, data.payloads).ok()) {
        failures.fetch_add(1);
        return;
      }
      Executor executor;
      std::atomic<int> bad{0};
      for (int pass = 0; pass < 3; ++pass) {
        for (VersionId v = 0; v < 12; ++v) {
          (*store)
              ->GetVersionAsync(&executor, v)
              .OnReady([&bad](const AsyncQueryResult& r) {
                if (!r.status.ok() || r.records.empty()) bad.fetch_add(1);
              });
        }
      }
      executor.RunUntilIdle();
      failures.fetch_add(bad.load());
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  Status valid = cache->Validate();
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_GT(cache->stats().hits, 0u);
}

}  // namespace
}  // namespace rstore
