// Negative compile check: this file DISCARDS Status and Result return
// values, so building it with -Werror=unused-result must FAIL. The ctest
// entry common.nodiscard_enforced builds this target and is marked
// WILL_FAIL; if [[nodiscard]] is ever dropped from Status or Result, the
// build starts succeeding and the test turns red.

#include "common/result.h"
#include "common/status.h"

namespace {

rstore::Status FallibleStatus() { return rstore::Status::IOError("x"); }
rstore::Result<int> FallibleResult() { return 1; }

}  // namespace

int main() {
  FallibleStatus();  // must not compile under -Werror=unused-result
  FallibleResult();  // must not compile under -Werror=unused-result
  return 0;
}
