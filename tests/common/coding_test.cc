#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace rstore {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(buf.size(), 16u);
  Slice in(buf);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v).ok());
  EXPECT_EQ(v, 0x0123456789abcdefull);
}

TEST(CodingTest, VarintBoundaries) {
  // Every power-of-two boundary where the encoded width changes.
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384, (1ull << 21) - 1,
                                  1ull << 21, 1ull << 42,
                                  std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&in, &v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128}, uint64_t{300},
                     uint64_t{1} << 35, std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v)) << v;
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_TRUE(GetVarint64(&in, &v).IsCorruption()) << cut;
  }
}

TEST(CodingTest, TruncatedFixedFails) {
  std::string buf = "abc";
  Slice in(buf);
  uint32_t v32;
  EXPECT_TRUE(GetFixed32(&in, &v32).IsCorruption());
  uint64_t v64;
  Slice in2(buf);
  EXPECT_TRUE(GetFixed64(&in2, &v64).IsCorruption());
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ull << 33);
  Slice in(buf);
  uint32_t v;
  EXPECT_TRUE(GetVarint32(&in, &v).IsCorruption());
}

TEST(CodingTest, ZigzagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                    int64_t{64}, std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  // Small magnitudes encode small.
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(CodingTest, SignedVarintRoundTrip) {
  std::string buf;
  PutVarsint64(&buf, -123456789);
  PutVarsint64(&buf, 42);
  Slice in(buf);
  int64_t v;
  ASSERT_TRUE(GetVarsint64(&in, &v).ok());
  EXPECT_EQ(v, -123456789);
  ASSERT_TRUE(GetVarsint64(&in, &v).ok());
  EXPECT_EQ(v, 42);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice(std::string(1000, 'x')));
  Slice in(buf);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_EQ(v.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_TRUE(v.empty());
  ASSERT_TRUE(GetLengthPrefixed(&in, &v).ok());
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello world"));
  Slice in(buf.data(), buf.size() - 3);
  Slice v;
  EXPECT_TRUE(GetLengthPrefixed(&in, &v).IsCorruption());
}

TEST(SliceTest, CompareAndPrefix) {
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_TRUE(Slice("abc") < Slice("abd"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("hello");
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  EXPECT_EQ(s.size(), 3u);
}

}  // namespace
}  // namespace rstore
