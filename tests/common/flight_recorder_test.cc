#include "common/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/json_parser.h"

namespace rstore {
namespace {

FlightRecord MakeRecord(uint64_t id, uint64_t total_us) {
  FlightRecord r;
  r.id = id;
  r.name = "q" + std::to_string(id);
  r.total_us = total_us;
  // Attribution that satisfies the conservation invariant so the record is
  // representative of what the production epilogue feeds in.
  r.service_us = total_us;
  return r;
}

std::vector<uint64_t> Ids(const std::vector<FlightRecord>& records) {
  std::vector<uint64_t> out;
  out.reserve(records.size());
  for (const FlightRecord& r : records) out.push_back(r.id);
  return out;
}

TEST(FlightRecorderTest, RecentRingIsNewestFirstAndEvictsOldest) {
  FlightRecorderOptions options;
  options.ring_size = 4;
  FlightRecorder recorder(options);

  recorder.Record(MakeRecord(1, 10));
  recorder.Record(MakeRecord(2, 20));
  EXPECT_EQ(Ids(recorder.Recent()), (std::vector<uint64_t>{2, 1}));

  for (uint64_t id = 3; id <= 6; ++id) recorder.Record(MakeRecord(id, 10));
  // 1 and 2 were evicted, newest first among the survivors.
  EXPECT_EQ(Ids(recorder.Recent()), (std::vector<uint64_t>{6, 5, 4, 3}));
}

TEST(FlightRecorderTest, SlowestSelectionKeepsTopNSlowestFirst) {
  FlightRecorderOptions options;
  options.slowest_size = 3;
  FlightRecorder recorder(options);

  recorder.Record(MakeRecord(1, 10));
  recorder.Record(MakeRecord(2, 30));
  recorder.Record(MakeRecord(3, 20));
  EXPECT_EQ(Ids(recorder.Slowest()), (std::vector<uint64_t>{2, 3, 1}));

  // 25 displaces the current minimum (10)...
  recorder.Record(MakeRecord(4, 25));
  EXPECT_EQ(Ids(recorder.Slowest()), (std::vector<uint64_t>{2, 4, 3}));
  // ...a faster query does not qualify...
  recorder.Record(MakeRecord(5, 5));
  EXPECT_EQ(Ids(recorder.Slowest()), (std::vector<uint64_t>{2, 4, 3}));
  // ...and a tie with the minimum keeps the earlier record (strictly
  // greater comparison).
  recorder.Record(MakeRecord(6, 20));
  EXPECT_EQ(Ids(recorder.Slowest()), (std::vector<uint64_t>{2, 4, 3}));
  // Equal to the current maximum: qualifies (beats the min) but sorts
  // after the earlier 30 (stable sort).
  recorder.Record(MakeRecord(7, 30));
  EXPECT_EQ(Ids(recorder.Slowest()), (std::vector<uint64_t>{2, 7, 4}));
}

TEST(FlightRecorderTest, SamplesRingIsOldestFirst) {
  FlightRecorderOptions options;
  options.sample_ring_size = 3;
  FlightRecorder recorder(options);

  for (uint64_t t = 1; t <= 5; ++t) {
    FlightSample s;
    s.sim_us = t * 100;
    s.node = static_cast<uint32_t>(t);
    s.busy_horizon_us = t * 100 + 50;
    s.backlog_us = 50;
    recorder.AddSample(s);
  }
  const std::vector<FlightSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].sim_us, 300u);
  EXPECT_EQ(samples[1].sim_us, 400u);
  EXPECT_EQ(samples[2].sim_us, 500u);
  EXPECT_EQ(samples[2].backlog_us, 50u);
}

TEST(FlightRecorderTest, NextQueryIdIsMonotonicAndSurvivesReset) {
  FlightRecorder recorder{FlightRecorderOptions()};
  const uint64_t first = recorder.NextQueryId();
  EXPECT_EQ(recorder.NextQueryId(), first + 1);
  recorder.ResetForTest();
  // Reset drops records, not identity: ids keep climbing so exemplar ids
  // stay unique across test-style resets.
  EXPECT_EQ(recorder.NextQueryId(), first + 2);
}

TEST(FlightRecorderTest, ResetForTestDropsRecordsAndSamples) {
  FlightRecorder recorder{FlightRecorderOptions()};
  recorder.Record(MakeRecord(1, 10));
  recorder.AddSample(FlightSample{});
  recorder.ResetForTest();
  EXPECT_TRUE(recorder.Recent().empty());
  EXPECT_TRUE(recorder.Slowest().empty());
  EXPECT_TRUE(recorder.Samples().empty());
}

TEST(FlightRecorderTest, DumpJsonIsParseableAndComplete) {
  FlightRecorderOptions options;
  options.ring_size = 8;
  options.slowest_size = 4;
  FlightRecorder recorder(options);

  FlightRecord r = MakeRecord(7, 120);
  r.name = "get_range";
  r.queue_wait_us = 30;
  r.service_us = 80;
  r.retry_penalty_us = 15;
  r.hedge_delta_us = 5;
  r.retries = 1;
  r.degradation.push_back("node 2 \"down\"");  // exercises escaping
  FlightSpan span;
  span.name = "fetch_chunks";
  span.depth = 1;
  span.sim_start_us = 10;
  span.sim_end_us = 90;
  r.spans.push_back(span);
  recorder.Record(std::move(r));

  FlightSample s;
  s.sim_us = 400;
  s.node = 3;
  s.busy_horizon_us = 650;
  s.backlog_us = 250;
  recorder.AddSample(s);

  auto parsed = json::Parse(recorder.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const json::Value* slowest = parsed->Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_EQ(slowest->as_array().size(), 1u);
  const json::Value& rec = slowest->as_array()[0];
  EXPECT_EQ(rec.Find("id")->as_int(), 7);
  EXPECT_EQ(rec.Find("name")->as_string(), "get_range");
  EXPECT_EQ(rec.Find("total_us")->as_int(), 120);
  EXPECT_EQ(rec.Find("queue_wait_us")->as_int(), 30);
  EXPECT_EQ(rec.Find("service_us")->as_int(), 80);
  EXPECT_EQ(rec.Find("retry_penalty_us")->as_int(), 15);
  EXPECT_EQ(rec.Find("hedge_delta_us")->as_int(), 5);
  EXPECT_EQ(rec.Find("retries")->as_int(), 1);
  ASSERT_EQ(rec.Find("degradation")->as_array().size(), 1u);
  EXPECT_EQ(rec.Find("degradation")->as_array()[0].as_string(),
            "node 2 \"down\"");
  ASSERT_EQ(rec.Find("spans")->as_array().size(), 1u);
  const json::Value& sp = rec.Find("spans")->as_array()[0];
  EXPECT_EQ(sp.Find("name")->as_string(), "fetch_chunks");
  EXPECT_EQ(sp.Find("sim_end_us")->as_int(), 90);

  const json::Value* recent = parsed->Find("recent");
  ASSERT_NE(recent, nullptr);
  EXPECT_EQ(recent->as_array().size(), 1u);

  const json::Value* samples = parsed->Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->as_array().size(), 1u);
  EXPECT_EQ(samples->as_array()[0].Find("backlog_us")->as_int(), 250);
}

}  // namespace
}  // namespace rstore
