// Tests for the annotated sync primitives (common/sync.h): mutual
// exclusion, reader/writer semantics, condvar signaling, and — in debug
// builds — the lock-rank registry that turns lock-order inversions and
// re-entrant self-locks into immediate RSTORE_DCHECK failures.

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace rstore {
namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex mu(kLockRankLeaf, "counter_mu");
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(SyncTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu(kLockRankLeaf, "try_mu");
  mu.Lock();
  std::thread other([&] {
    // The if/unlock dance keeps the acquire/release balanced on every path
    // for the thread-safety analysis.
    bool acquired = mu.TryLock();
    if (acquired) mu.Unlock();
    EXPECT_FALSE(acquired);
  });
  other.join();
  mu.Unlock();
  if (mu.TryLock()) {
    mu.Unlock();
  } else {
    ADD_FAILURE() << "TryLock on a free mutex failed";
  }
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu(kLockRankLeaf, "rw_mu");
  int value = 42;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ReaderLock lock(mu);
        int inside = readers_inside.fetch_add(1) + 1;
        int prev = max_readers.load();
        while (inside > prev && !max_readers.compare_exchange_weak(prev, inside)) {
        }
        EXPECT_EQ(value, 42);
        readers_inside.fetch_sub(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Not guaranteed by the standard, but with 4 spinning readers at least two
  // overlapping at some point is effectively certain; a mutual-exclusion bug
  // would pin this at 1.
  EXPECT_GE(max_readers.load(), 1);
  {
    WriterLock lock(mu);
    value = 43;
  }
  ReaderLock lock(mu);
  EXPECT_EQ(value, 43);
}

TEST(SyncTest, CondVarHandsOffBetweenThreads) {
  Mutex mu(kLockRankLeaf, "cv_mu");
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread consumer([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    observed = 7;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(observed, 7);
}

TEST(SyncTest, DecreasingRankAcquisitionIsAccepted) {
  Mutex outer(kLockRankFileStore, "outer");
  Mutex inner(kLockRankMemoryStore, "inner");
  MutexLock outer_lock(outer);
  MutexLock inner_lock(inner);
  SUCCEED();
}

#ifndef NDEBUG

TEST(SyncTest, HeldLockCountTracksScopes) {
  EXPECT_EQ(sync_internal::HeldLockCount(), 0);
  Mutex mu(kLockRankLeaf, "count_mu");
  {
    MutexLock lock(mu);
    EXPECT_EQ(sync_internal::HeldLockCount(), 1);
  }
  EXPECT_EQ(sync_internal::HeldLockCount(), 0);
}

TEST(SyncTest, CondVarWaitReleasesTheRankSlot) {
  // While a waiter is parked inside cv.Wait, it must not count the mutex as
  // held — the notifying thread takes the same mutex, and a later acquire by
  // the waiter must re-check ranks. Regression for the registry/condvar
  // interaction.
  Mutex mu(kLockRankMemoryStore, "cv_rank_mu");
  CondVar cv;
  bool ready = false;
  std::thread consumer([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    EXPECT_EQ(sync_internal::HeldLockCount(), 1);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(sync_internal::HeldLockCount(), 0);
}

// The SyncDeathTest cases (rank violations abort) live in
// sync_death_test.cc, a separate tier-2 binary: death tests fork and
// dominate this suite's runtime.

#endif  // !NDEBUG

TEST(SyncTest, ParallelForErrorMutexNestsUnderStoreRanks) {
  // ParallelFor's error capture acquires kLockRankParallelError; make sure
  // a worker that held (and released, via unwinding) a store-ranked lock
  // before throwing still passes the rank discipline.
  Mutex store_mu(kLockRankMemoryStore, "store_mu");
  EXPECT_THROW(
      ParallelFor(8,
                  [&](size_t i) {
                    MutexLock lock(store_mu);
                    if (i == 3) throw std::runtime_error("boom");
                  },
                  4),
      std::runtime_error);
}

}  // namespace
}  // namespace rstore
