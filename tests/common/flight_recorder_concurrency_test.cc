// Concurrent-writer stress for the flight recorder: many threads record,
// sample, and read simultaneously. The assertions are deliberately loose
// (bounded sizes, well-formed output) — the test's real teeth are the TSan
// job, whose CI filter matches this suite by name.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/flight_recorder.h"
#include "json/json_parser.h"

namespace rstore {
namespace {

TEST(FlightRecorderConcurrencyTest, ConcurrentRecordSampleAndRead) {
  FlightRecorderOptions options;
  options.ring_size = 16;
  options.slowest_size = 8;
  options.sample_ring_size = 32;
  FlightRecorder recorder(options);

  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kPerThread = 500;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerThread; ++i) {
        FlightRecord r;
        r.id = recorder.NextQueryId();
        r.name = "writer" + std::to_string(w);
        r.total_us = static_cast<uint64_t>(i * (w + 1));
        r.service_us = r.total_us;
        recorder.Record(std::move(r));

        FlightSample s;
        s.sim_us = static_cast<uint64_t>(i);
        s.node = static_cast<uint32_t>(w);
        s.busy_horizon_us = s.sim_us + 10;
        s.backlog_us = 10;
        recorder.AddSample(s);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&recorder, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)recorder.Recent();
        (void)recorder.Slowest();
        (void)recorder.DumpJson();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(recorder.Recent().size(), options.ring_size);
  const std::vector<FlightRecord> slowest = recorder.Slowest();
  ASSERT_EQ(slowest.size(), options.slowest_size);
  for (size_t i = 1; i < slowest.size(); ++i) {
    EXPECT_GE(slowest[i - 1].total_us, slowest[i].total_us);
  }
  EXPECT_EQ(recorder.Samples().size(), options.sample_ring_size);
  // The dump must stay well-formed no matter how writes interleaved.
  EXPECT_TRUE(json::Parse(recorder.DumpJson()).ok());
  // Ids are claimed lock-free; all kWriters * kPerThread must be distinct,
  // so the counter sits exactly at the total afterwards.
  EXPECT_EQ(recorder.NextQueryId(),
            static_cast<uint64_t>(kWriters * kPerThread) + 1);
}

}  // namespace
}  // namespace rstore
