#include "common/trace.h"

#include <gtest/gtest.h>

#include "json/json_parser.h"

namespace rstore {
namespace {

TEST(TraceContextTest, NestingAndSimClock) {
  TraceContext trace;
  EXPECT_EQ(trace.sim_now_us(), 0u);
  {
    ScopedSpan outer(&trace, "outer");
    trace.AdvanceSim(100);
    {
      ScopedSpan inner(&trace, "inner");
      trace.AdvanceSim(50);
      inner.Annotate("keys", "7");
    }
    trace.AdvanceSim(25);
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& outer = trace.spans()[0];
  const TraceSpan& inner = trace.spans()[1];
  EXPECT_EQ(outer.parent, TraceSpan::kNoParent);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.sim_duration_us(), 175u);
  EXPECT_EQ(inner.sim_start_us, 100u);
  EXPECT_EQ(inner.sim_duration_us(), 50u);
  // Parent interval contains the child's on the simulated clock.
  EXPECT_GE(inner.sim_start_us, outer.sim_start_us);
  EXPECT_LE(inner.sim_end_us, outer.sim_end_us);
  ASSERT_EQ(inner.attributes.size(), 1u);
  EXPECT_EQ(inner.attributes[0].first, "keys");
  EXPECT_EQ(inner.attributes[0].second, "7");
}

TEST(TraceContextTest, NullContextIsNoOp) {
  ScopedSpan span(nullptr, "nothing");
  span.Annotate("ignored", "too");
  span.End();  // must not crash
  EXPECT_EQ(span.context(), nullptr);
}

TEST(TraceContextTest, ScopedSpanEndIsIdempotent) {
  TraceContext trace;
  {
    ScopedSpan span(&trace, "phase");
    trace.AdvanceSim(10);
    span.End();
    trace.AdvanceSim(90);  // after End(): not charged to the span
    span.End();            // destructor will be the third no-op close
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].sim_duration_us(), 10u);
}

TEST(TraceContextTest, SimulatedSiblingsShareStart) {
  TraceContext trace;
  {
    ScopedSpan batch(&trace, "kvs.multiget");
    const uint64_t start = trace.sim_now_us();
    trace.AddSimulatedSpan("node0", start, start + 300);
    trace.AddSimulatedSpan("node1", start, start + 120);
    trace.AdvanceSim(200 + 300);  // coordinator + slowest node
  }
  ASSERT_EQ(trace.spans().size(), 3u);
  const TraceSpan& batch = trace.spans()[0];
  const TraceSpan& node0 = trace.spans()[1];
  const TraceSpan& node1 = trace.spans()[2];
  EXPECT_EQ(node0.parent, batch.id);
  EXPECT_EQ(node1.parent, batch.id);
  // Simulated-parallel: both children start at the same simulated instant
  // and stay within the parent interval even though they were recorded
  // serially.
  EXPECT_EQ(node0.sim_start_us, node1.sim_start_us);
  EXPECT_LE(node0.sim_end_us, batch.sim_end_us);
  EXPECT_LE(node1.sim_end_us, batch.sim_end_us);
  EXPECT_EQ(batch.sim_duration_us(), 500u);
}

TEST(TraceContextTest, DebugStringRendersTree) {
  TraceContext trace;
  {
    ScopedSpan outer(&trace, "query.get_version");
    ScopedSpan inner(&trace, "kvs.multiget");
    inner.Annotate("keys", "3");
  }
  std::string text = trace.ToDebugString();
  EXPECT_NE(text.find("query.get_version"), std::string::npos);
  EXPECT_NE(text.find("  kvs.multiget"), std::string::npos);  // indented
  EXPECT_NE(text.find("keys=3"), std::string::npos);
}

TEST(TraceContextTest, ChromeTraceJsonIsValid) {
  TraceContext trace;
  {
    ScopedSpan outer(&trace, "query \"quoted\"\n");
    trace.AdvanceSim(10);
    ScopedSpan inner(&trace, "inner");
    trace.AdvanceSim(5);
  }
  auto parsed = json::Parse(trace.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 2 metadata events (wall + simulated track names) + 2 events per span.
  EXPECT_EQ(events->as_array().size(), 2u + 2 * trace.spans().size());
  int metadata = 0, complete = 0;
  for (const json::Value& event : events->as_array()) {
    const std::string& ph = event.Find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    // Complete events carry non-negative timestamps and durations on one of
    // the two clock tracks.
    EXPECT_GE(event.Find("ts")->as_int(), 0);
    EXPECT_GE(event.Find("dur")->as_int(), 0);
    const int64_t pid = event.Find("pid")->as_int();
    EXPECT_TRUE(pid == 1 || pid == 2);
    ASSERT_NE(event.Find("args"), nullptr);
    EXPECT_NE(event.Find("args")->Find("span_id"), nullptr);
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(complete, 4);
}

}  // namespace
}  // namespace rstore
