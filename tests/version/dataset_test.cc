#include "version/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "version/delta.h"

namespace rstore {
namespace {

// The paper's Example 2 (Fig. 1): five versions, nine distinct records.
//   V0 = {K0@V0, K1@V0, K2@V0, K3@V0}
//   V1 = V0 with K3 modified, K4 added.
//   V2 = V0 with K3 modified, K5 added, K2 deleted.
//   V3 = V1 with K2 deleted.
//   V4 = V2 with K3 modified.
VersionedDataset Example2() {
  VersionedDataset ds;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({1});
  (void)*ds.graph.AddVersion({2});
  ds.deltas.resize(5);
  for (int k = 0; k < 4; ++k) {
    ds.deltas[0].added.emplace_back("K" + std::to_string(k), 0);
  }
  // ∆0,1 = {+<K3,V1>, +<K4,V1>, -<K3,V0>} (paper Example 2).
  ds.deltas[1].added = {{"K3", 1}, {"K4", 1}};
  ds.deltas[1].removed = {{"K3", 0}};
  ds.deltas[2].added = {{"K3", 2}, {"K5", 2}};
  ds.deltas[2].removed = {{"K3", 0}, {"K2", 0}};
  ds.deltas[3].removed = {{"K2", 0}};
  ds.deltas[4].added = {{"K3", 4}};
  ds.deltas[4].removed = {{"K3", 2}};
  return ds;
}

TEST(VersionDeltaTest, ConsistencyCheck) {
  VersionDelta d;
  d.added = {{"K1", 1}};
  d.removed = {{"K1", 0}};
  EXPECT_TRUE(d.CheckConsistent().ok());
  d.removed.push_back({"K1", 1});
  EXPECT_TRUE(d.CheckConsistent().IsInvalidArgument());
}

TEST(VersionDeltaTest, InverseSwapsSets) {
  VersionDelta d;
  d.added = {{"A", 2}};
  d.removed = {{"B", 1}};
  VersionDelta inv = d.Inverse();
  EXPECT_EQ(inv.added, d.removed);
  EXPECT_EQ(inv.removed, d.added);
  // ∆ij = ∆ji: double inverse is identity.
  VersionDelta back = inv.Inverse();
  EXPECT_EQ(back.added, d.added);
  EXPECT_EQ(back.removed, d.removed);
}

TEST(VersionDeltaTest, EncodeDecodeRoundTrip) {
  VersionDelta d;
  d.added = {{"K3", 1}, {"K4", 1}};
  d.removed = {{"K3", 0}};
  std::string buf;
  d.EncodeTo(&buf);
  Slice in(buf);
  VersionDelta out;
  ASSERT_TRUE(VersionDelta::DecodeFrom(&in, &out).ok());
  EXPECT_EQ(out.added, d.added);
  EXPECT_EQ(out.removed, d.removed);
}

TEST(VersionedDatasetTest, Example2Validates) {
  EXPECT_TRUE(Example2().Validate().ok());
}

TEST(VersionedDatasetTest, Example2Materialization) {
  VersionedDataset ds = Example2();
  auto v0 = ds.MaterializeVersion(0);
  EXPECT_EQ(v0.size(), 4u);
  EXPECT_TRUE(v0.count({"K3", 0}));

  // Paper: "To retrieve K3 from version V3 ... we need the version-to-record
  // mapping (〈K3,V1〉 in this case)".
  auto v3 = ds.MaterializeVersion(3);
  EXPECT_EQ(v3.size(), 4u);
  EXPECT_TRUE(v3.count({"K0", 0}));
  EXPECT_TRUE(v3.count({"K1", 0}));
  EXPECT_TRUE(v3.count({"K3", 1}));
  EXPECT_TRUE(v3.count({"K4", 1}));
  EXPECT_FALSE(v3.count({"K2", 0}));
  EXPECT_FALSE(v3.count({"K3", 3}));

  auto v4 = ds.MaterializeVersion(4);
  EXPECT_EQ(v4.size(), 4u);
  EXPECT_TRUE(v4.count({"K3", 4}));
  EXPECT_TRUE(v4.count({"K5", 2}));
  EXPECT_FALSE(v4.count({"K3", 2}));
}

TEST(VersionedDatasetTest, NineDistinctRecords) {
  // "a total of nine distinct records" (paper Example 2).
  EXPECT_EQ(Example2().CountDistinctRecords(), 9u);
}

TEST(VersionedDatasetTest, TotalMembership) {
  // |V0|=4, |V1|=5, |V2|=4, |V3|=4, |V4|=4.
  EXPECT_EQ(Example2().TotalMembership(), 21u);
}

TEST(VersionedDatasetTest, RecordVersionMapMatchesFig1) {
  VersionedDataset ds = Example2();
  auto map = ds.BuildRecordVersionMap();
  EXPECT_EQ(map.size(), 9u);
  EXPECT_EQ((map[{"K0", 0}]), (std::vector<VersionId>{0, 1, 2, 3, 4}));
  EXPECT_EQ((map[{"K1", 0}]), (std::vector<VersionId>{0, 1, 2, 3, 4}));
  EXPECT_EQ((map[{"K2", 0}]), (std::vector<VersionId>{0, 1}));
  EXPECT_EQ((map[{"K3", 0}]), (std::vector<VersionId>{0}));
  EXPECT_EQ((map[{"K3", 1}]), (std::vector<VersionId>{1, 3}));
  EXPECT_EQ((map[{"K3", 2}]), (std::vector<VersionId>{2}));
  EXPECT_EQ((map[{"K3", 4}]), (std::vector<VersionId>{4}));
  EXPECT_EQ((map[{"K4", 1}]), (std::vector<VersionId>{1, 3}));
  EXPECT_EQ((map[{"K5", 2}]), (std::vector<VersionId>{2, 4}));
}

TEST(VersionedDatasetTest, RecordVersionMapAgreesWithMaterialization) {
  VersionedDataset ds = Example2();
  auto map = ds.BuildRecordVersionMap();
  for (VersionId v = 0; v < ds.graph.size(); ++v) {
    auto members = ds.MaterializeVersion(v);
    for (const auto& [ck, versions] : map) {
      bool in_map =
          std::binary_search(versions.begin(), versions.end(), v);
      EXPECT_EQ(in_map, members.count(ck) > 0)
          << ck.ToString() << " vs V" << v;
    }
  }
}

TEST(VersionedDatasetTest, ValidateCatchesRemovingAbsentRecord) {
  VersionedDataset ds = Example2();
  ds.deltas[3].removed.push_back({"K9", 0});
  EXPECT_TRUE(ds.Validate().IsInvalidArgument());
}

TEST(VersionedDatasetTest, ValidateCatchesReAdd) {
  VersionedDataset ds = Example2();
  ds.deltas[1].added.push_back({"K0", 0});  // already present via V0
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(VersionedDatasetTest, ValidateCatchesForeignAddFromNonAncestor) {
  VersionedDataset ds = Example2();
  // V3 (descendant of V1) cannot add a record originating in V2's branch
  // without a merge edge.
  ds.deltas[3].added.push_back({"K5", 2});
  EXPECT_TRUE(ds.Validate().IsInvalidArgument());
}

TEST(VersionedDatasetTest, ValidateCatchesDuplicateKeyInVersion) {
  VersionedDataset ds = Example2();
  ds.deltas[1].added.push_back({"K4", 1});  // K4 added twice in V1
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(VersionedDatasetTest, ValidateCatchesCountMismatch) {
  VersionedDataset ds = Example2();
  ds.deltas.pop_back();
  EXPECT_TRUE(ds.Validate().IsInvalidArgument());
}

TEST(VersionedDatasetTest, MergeDeltaWithForeignRecordValidates) {
  // V1 and V2 branch from V0; V3 = merge(V1, V2) picking up V2's record.
  VersionedDataset ds;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({1, 2});
  ds.deltas.resize(4);
  ds.deltas[0].added = {{"A", 0}};
  ds.deltas[1].added = {{"B", 1}};
  ds.deltas[2].added = {{"C", 2}};
  // Merge V3: delta vs primary parent V1 brings in C@V2 (foreign).
  ds.deltas[3].added = {{"C", 2}};
  ASSERT_TRUE(ds.Validate().ok());
  auto v3 = ds.MaterializeVersion(3);
  EXPECT_EQ(v3.size(), 3u);
  EXPECT_TRUE(v3.count({"A", 0}));
  EXPECT_TRUE(v3.count({"B", 1}));
  EXPECT_TRUE(v3.count({"C", 2}));
}

}  // namespace
}  // namespace rstore
