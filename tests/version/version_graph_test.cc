#include "version/version_graph.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

// Builds the paper's Fig. 1 shape: V0 root; V1, V2 children of V0 (V2 after
// V1); V3 child of V1; V4 child of V2.
VersionGraph Fig1Graph() {
  VersionGraph g;
  g.AddRoot();                       // V0
  EXPECT_EQ(*g.AddVersion({0}), 1);  // V1
  EXPECT_EQ(*g.AddVersion({0}), 2);  // V2
  EXPECT_EQ(*g.AddVersion({1}), 3);  // V3
  EXPECT_EQ(*g.AddVersion({2}), 4);  // V4
  return g;
}

TEST(VersionGraphTest, RootProperties) {
  VersionGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.AddRoot(), 0u);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.IsRoot(0));
  EXPECT_TRUE(g.IsLeaf(0));
  EXPECT_EQ(g.PrimaryParent(0), kInvalidVersion);
  EXPECT_EQ(g.Depth(0), 0u);
}

TEST(VersionGraphTest, Fig1Structure) {
  VersionGraph g = Fig1Graph();
  EXPECT_EQ(g.size(), 5u);
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.PrimaryParent(3), 1u);
  EXPECT_EQ(g.children(0), (std::vector<VersionId>{1, 2}));
  EXPECT_EQ(g.Leaves(), (std::vector<VersionId>{3, 4}));
  EXPECT_EQ(g.Depth(3), 2u);
  EXPECT_EQ(g.MaxDepth(), 2u);
  EXPECT_DOUBLE_EQ(g.AverageLeafDepth(), 2.0);
}

TEST(VersionGraphTest, AddVersionValidation) {
  VersionGraph g;
  EXPECT_TRUE(g.AddVersion({0}).status().IsInvalidArgument());  // no root yet
  g.AddRoot();
  EXPECT_TRUE(g.AddVersion({}).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddVersion({5}).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddVersion({0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddVersion({0}).ok());
}

TEST(VersionGraphTest, MergeDetection) {
  VersionGraph g;
  g.AddRoot();
  (void)*g.AddVersion({0});
  (void)*g.AddVersion({0});
  VersionId merge = *g.AddVersion({1, 2});
  EXPECT_TRUE(g.IsMerge(merge));
  EXPECT_FALSE(g.IsTree());
  EXPECT_EQ(g.PrimaryParent(merge), 1u);
  EXPECT_EQ(g.parents(merge).size(), 2u);
}

TEST(VersionGraphTest, PathFromRoot) {
  VersionGraph g = Fig1Graph();
  EXPECT_EQ(g.PathFromRoot(0), (std::vector<VersionId>{0}));
  EXPECT_EQ(g.PathFromRoot(3), (std::vector<VersionId>{0, 1, 3}));
  EXPECT_EQ(g.PathFromRoot(4), (std::vector<VersionId>{0, 2, 4}));
}

TEST(VersionGraphTest, IsAncestorTree) {
  VersionGraph g = Fig1Graph();
  EXPECT_TRUE(g.IsAncestor(0, 3));
  EXPECT_TRUE(g.IsAncestor(1, 3));
  EXPECT_TRUE(g.IsAncestor(3, 3));
  EXPECT_FALSE(g.IsAncestor(2, 3));
  EXPECT_FALSE(g.IsAncestor(3, 1));
  EXPECT_FALSE(g.IsAncestor(1, 4));
}

TEST(VersionGraphTest, IsAncestorThroughMergeParents) {
  // V3 = merge(V1, V2): both branches are ancestors of V3.
  VersionGraph g;
  g.AddRoot();
  (void)*g.AddVersion({0});
  (void)*g.AddVersion({0});
  VersionId merge = *g.AddVersion({1, 2});
  EXPECT_TRUE(g.IsAncestor(1, merge));
  EXPECT_TRUE(g.IsAncestor(2, merge));  // non-primary parent
  EXPECT_TRUE(g.IsAncestor(0, merge));
}

TEST(VersionGraphTest, TopologicalOrderIsIdOrder) {
  VersionGraph g = Fig1Graph();
  auto order = g.TopologicalOrder();
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(VersionGraphTest, LinearChainDepths) {
  VersionGraph g;
  g.AddRoot();
  for (int i = 0; i < 99; ++i) {
    VersionId v = *g.AddVersion({static_cast<VersionId>(i)});
    EXPECT_EQ(g.Depth(v), static_cast<uint32_t>(i + 1));
  }
  EXPECT_EQ(g.MaxDepth(), 99u);
  EXPECT_EQ(g.Leaves().size(), 1u);
  EXPECT_DOUBLE_EQ(g.AverageLeafDepth(), 99.0);
}

TEST(VersionGraphTest, EncodeDecodeRoundTrip) {
  VersionGraph g;
  g.AddRoot();
  (void)*g.AddVersion({0});
  (void)*g.AddVersion({0});
  (void)*g.AddVersion({1, 2});
  (void)*g.AddVersion({3});
  std::string buf;
  g.EncodeTo(&buf);
  Slice in(buf);
  VersionGraph decoded;
  ASSERT_TRUE(VersionGraph::DecodeFrom(&in, &decoded).ok());
  EXPECT_EQ(decoded.size(), g.size());
  for (VersionId v = 0; v < g.size(); ++v) {
    EXPECT_EQ(decoded.parents(v), g.parents(v)) << v;
  }
  EXPECT_TRUE(in.empty());
}

TEST(VersionGraphTest, ValidateAcceptsBuiltGraphs) {
  VersionGraph g;
  EXPECT_TRUE(g.Validate().ok());  // empty graph is trivially valid
  g.AddRoot();
  ASSERT_TRUE(g.AddVersion({0}).ok());
  ASSERT_TRUE(g.AddVersion({0}).ok());
  ASSERT_TRUE(g.AddVersion({1, 2}).ok());  // merge
  EXPECT_TRUE(g.Validate().ok());
}

TEST(VersionGraphTest, DecodeRejectsGarbage) {
  std::string garbage = "\x05\xff\xff\xff\xff";
  Slice in(garbage);
  VersionGraph g;
  EXPECT_FALSE(VersionGraph::DecodeFrom(&in, &g).ok());
}

TEST(CompositeKeyTest, OrderingAndEquality) {
  CompositeKey a("K1", 0), b("K1", 1), c("K2", 0);
  EXPECT_EQ(a, CompositeKey("K1", 0));
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.ToString(), "K1@V0");
}

TEST(CompositeKeyTest, EncodeDecodeRoundTrip) {
  std::string buf;
  CompositeKey a("patient/42", 17);
  CompositeKey b("", 0);
  a.EncodeTo(&buf);
  b.EncodeTo(&buf);
  Slice in(buf);
  CompositeKey out;
  ASSERT_TRUE(CompositeKey::DecodeFrom(&in, &out).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(CompositeKey::DecodeFrom(&in, &out).ok());
  EXPECT_EQ(out, b);
  EXPECT_TRUE(in.empty());
}

TEST(CompositeKeyTest, HashDistinguishesVersions) {
  CompositeKey a("K1", 0), b("K1", 1);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_EQ(a.Hash(), CompositeKey("K1", 0).Hash());
}


TEST(VersionGraphTest, DotExport) {
  VersionGraph g;
  g.AddRoot();
  (void)*g.AddVersion({0});
  (void)*g.AddVersion({0});
  (void)*g.AddVersion({1, 2});  // merge
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph versions"), std::string::npos);
  EXPECT_NE(dot.find("V0 -> V1"), std::string::npos);
  EXPECT_NE(dot.find("V1 -> V3"), std::string::npos);
  // Non-primary merge edge is dashed.
  EXPECT_NE(dot.find("V2 -> V3 [style=dashed]"), std::string::npos);
  // Tips marked.
  EXPECT_NE(dot.find("V3 [shape=doublecircle]"), std::string::npos);
}

}  // namespace
}  // namespace rstore
