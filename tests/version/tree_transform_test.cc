#include "version/tree_transform.h"

#include <gtest/gtest.h>

namespace rstore {
namespace {

TEST(TreeTransformTest, TreeInputIsUnchanged) {
  VersionedDataset ds;
  ds.graph.AddRoot();
  (void)*ds.graph.AddVersion({0});
  (void)*ds.graph.AddVersion({1});
  ds.deltas.resize(3);
  ds.deltas[0].added = {{"A", 0}, {"B", 0}};
  ds.deltas[1].added = {{"A", 1}};
  ds.deltas[1].removed = {{"A", 0}};
  ds.deltas[2].added = {{"C", 2}};
  ASSERT_TRUE(ds.Validate().ok());

  TreeTransformResult r = ConvertToTree(ds);
  EXPECT_EQ(r.renamed_count, 0u);
  EXPECT_TRUE(r.renames.empty());
  EXPECT_TRUE(r.tree.graph.IsTree());
  ASSERT_TRUE(r.tree.Validate().ok());
  for (VersionId v = 0; v < ds.graph.size(); ++v) {
    EXPECT_EQ(r.tree.deltas[v].added, ds.deltas[v].added) << v;
    EXPECT_EQ(r.tree.deltas[v].removed, ds.deltas[v].removed) << v;
  }
}

// Fig. 4 shape: V8 merges branches; records that arrived exclusively from
// non-primary parents are renamed to fresh inserts.
TEST(TreeTransformTest, MergeRecordsRenamed) {
  VersionedDataset ds;
  ds.graph.AddRoot();                    // V0
  (void)*ds.graph.AddVersion({0});       // V1 branch a
  (void)*ds.graph.AddVersion({0});       // V2 branch b
  (void)*ds.graph.AddVersion({1, 2});    // V3 = merge, primary parent V1
  ds.deltas.resize(4);
  ds.deltas[0].added = {{"A", 0}};
  ds.deltas[1].added = {{"B", 1}};
  ds.deltas[2].added = {{"C", 2}};
  ds.deltas[3].added = {{"C", 2}};       // arrives from V2 (non-primary)
  ASSERT_TRUE(ds.Validate().ok());

  TreeTransformResult r = ConvertToTree(ds);
  EXPECT_TRUE(r.tree.graph.IsTree());
  EXPECT_EQ(r.tree.graph.parents(3), (std::vector<VersionId>{1}));
  EXPECT_EQ(r.renamed_count, 1u);
  // C@V2 appears in the merge as the fresh insert C@V3.
  ASSERT_EQ(r.tree.deltas[3].added.size(), 1u);
  EXPECT_EQ(r.tree.deltas[3].added[0], CompositeKey("C", 3));
  ASSERT_TRUE(r.renames.count(CompositeKey("C", 3)));
  EXPECT_EQ(r.renames.at(CompositeKey("C", 3)), CompositeKey("C", 2));
  ASSERT_TRUE(r.tree.Validate().ok());

  // Tree membership of the merge matches DAG membership modulo the rename.
  auto members = r.tree.MaterializeVersion(3);
  EXPECT_EQ(members.size(), 3u);
  EXPECT_TRUE(members.count({"A", 0}));
  EXPECT_TRUE(members.count({"B", 1}));
  EXPECT_TRUE(members.count({"C", 3}));
}

TEST(TreeTransformTest, RenamePropagatesToDescendantRemovals) {
  VersionedDataset ds;
  ds.graph.AddRoot();                    // V0
  (void)*ds.graph.AddVersion({0});       // V1
  (void)*ds.graph.AddVersion({0});       // V2
  (void)*ds.graph.AddVersion({1, 2});    // V3 merge, brings C@V2
  (void)*ds.graph.AddVersion({3});       // V4 deletes C
  ds.deltas.resize(5);
  ds.deltas[0].added = {{"A", 0}};
  ds.deltas[1].added = {{"B", 1}};
  ds.deltas[2].added = {{"C", 2}};
  ds.deltas[3].added = {{"C", 2}};
  ds.deltas[4].removed = {{"C", 2}};     // references the original key
  ASSERT_TRUE(ds.Validate().ok());

  TreeTransformResult r = ConvertToTree(ds);
  ASSERT_TRUE(r.tree.Validate().ok()) << r.tree.Validate().ToString();
  // V4's removal must now reference the renamed key C@V3.
  ASSERT_EQ(r.tree.deltas[4].removed.size(), 1u);
  EXPECT_EQ(r.tree.deltas[4].removed[0], CompositeKey("C", 3));
  EXPECT_EQ(r.tree.MaterializeVersion(4).size(), 2u);
}

TEST(TreeTransformTest, RenameScopedToMergeSubtree) {
  // The original branch keeps the original key: only the merge's subtree
  // sees the rename.
  VersionedDataset ds;
  ds.graph.AddRoot();                    // V0
  (void)*ds.graph.AddVersion({0});       // V1
  (void)*ds.graph.AddVersion({0});       // V2 adds C@V2
  (void)*ds.graph.AddVersion({1, 2});    // V3 merge (primary V1)
  (void)*ds.graph.AddVersion({2});       // V4: child of V2, deletes C@V2
  ds.deltas.resize(5);
  ds.deltas[0].added = {{"A", 0}};
  ds.deltas[1].added = {{"B", 1}};
  ds.deltas[2].added = {{"C", 2}};
  ds.deltas[3].added = {{"C", 2}};
  ds.deltas[4].removed = {{"C", 2}};
  ASSERT_TRUE(ds.Validate().ok());

  TreeTransformResult r = ConvertToTree(ds);
  ASSERT_TRUE(r.tree.Validate().ok()) << r.tree.Validate().ToString();
  // V4 is outside the merge subtree: its removal keeps the original key.
  ASSERT_EQ(r.tree.deltas[4].removed.size(), 1u);
  EXPECT_EQ(r.tree.deltas[4].removed[0], CompositeKey("C", 2));
  // V2's branch still holds C@V2; merge subtree holds C@V3.
  EXPECT_TRUE(r.tree.MaterializeVersion(2).count({"C", 2}));
  EXPECT_TRUE(r.tree.MaterializeVersion(3).count({"C", 3}));
}

TEST(TreeTransformTest, ThreeWayMergeFig4) {
  // Fig. 4: V8 has parents {V5, V6, V7}; the edge to the primary parent is
  // retained and records from the other two are renamed.
  VersionedDataset ds;
  ds.graph.AddRoot();                          // V0
  (void)*ds.graph.AddVersion({0});             // V1
  (void)*ds.graph.AddVersion({1});             // V2
  (void)*ds.graph.AddVersion({1});             // V3
  (void)*ds.graph.AddVersion({1});             // V4
  (void)*ds.graph.AddVersion({2});             // V5
  (void)*ds.graph.AddVersion({3});             // V6
  (void)*ds.graph.AddVersion({4});             // V7
  (void)*ds.graph.AddVersion({6, 5, 7});       // V8: primary V6
  ds.deltas.resize(9);
  ds.deltas[0].added = {{"base", 0}};
  ds.deltas[5].added = {{"from5", 5}};
  ds.deltas[6].added = {{"from6", 6}};
  ds.deltas[7].added = {{"from7", 7}};
  // Merge V8 vs primary V6: gains the records of V5 and V7.
  ds.deltas[8].added = {{"from5", 5}, {"from7", 7}};
  ASSERT_TRUE(ds.Validate().ok());

  TreeTransformResult r = ConvertToTree(ds);
  EXPECT_TRUE(r.tree.graph.IsTree());
  EXPECT_EQ(r.tree.graph.parents(8), (std::vector<VersionId>{6}));
  EXPECT_EQ(r.renamed_count, 2u);
  auto v8 = r.tree.MaterializeVersion(8);
  EXPECT_TRUE(v8.count({"base", 0}));
  EXPECT_TRUE(v8.count({"from6", 6}));   // via primary path, not renamed
  EXPECT_TRUE(v8.count({"from5", 8}));   // renamed
  EXPECT_TRUE(v8.count({"from7", 8}));   // renamed
  ASSERT_TRUE(r.tree.Validate().ok());
}

TEST(TreeTransformTest, NestedMergesRenameIndependently) {
  // Two merges on the same path both pulling versions of key "C".
  VersionedDataset ds;
  ds.graph.AddRoot();                        // V0 {A}
  (void)*ds.graph.AddVersion({0});           // V1 (main)
  (void)*ds.graph.AddVersion({0});           // V2 adds C@V2
  (void)*ds.graph.AddVersion({1, 2});        // V3 merge: +C@V2
  (void)*ds.graph.AddVersion({0});           // V4 adds D@V4
  (void)*ds.graph.AddVersion({3, 4});        // V5 merge: +D@V4
  ds.deltas.resize(6);
  ds.deltas[0].added = {{"A", 0}};
  ds.deltas[2].added = {{"C", 2}};
  ds.deltas[3].added = {{"C", 2}};
  ds.deltas[4].added = {{"D", 4}};
  ds.deltas[5].added = {{"D", 4}};
  ASSERT_TRUE(ds.Validate().ok());

  TreeTransformResult r = ConvertToTree(ds);
  EXPECT_EQ(r.renamed_count, 2u);
  auto v5 = r.tree.MaterializeVersion(5);
  EXPECT_TRUE(v5.count({"A", 0}));
  EXPECT_TRUE(v5.count({"C", 3}));
  EXPECT_TRUE(v5.count({"D", 5}));
  ASSERT_TRUE(r.tree.Validate().ok());
}

}  // namespace
}  // namespace rstore
