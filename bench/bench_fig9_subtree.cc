// Reproduces paper Fig. 9: effect of the BOTTOM-UP subtree limit beta on
// partitioning quality (Q1 full-version span and Q2 range span) and total
// partitioning time, on dataset B0.
//
// Expected shape: span grows as beta shrinks (coarser chain-length
// information); total time first falls with beta (less per-version set
// processing), then rises again for very small beta (merge overhead).

#include <cstdio>

#include "bench_util.h"
#include "workload/dataset_catalog.h"

int main() {
  using namespace rstore;
  using namespace rstore::workload;
  using namespace rstore::bench;

  auto config = CatalogConfig("B0");
  if (SmokeMode()) {
    config->num_versions = std::min<uint32_t>(config->num_versions, 16);
    config->records_per_version =
        std::min<uint32_t>(config->records_per_version, 60);
  }
  GeneratedDataset gen = GenerateDataset(*config);
  Options base;
  base.chunk_capacity_bytes = ScaledChunkCapacity(gen);
  base.max_sub_chunk_records = 1;
  base.compression = CompressionType::kNone;

  std::printf("=== Paper Fig. 9: BOTTOM-UP subtree limit beta (dataset B0) "
              "===\n\n");
  std::printf("%-10s %14s %16s %16s\n", "Beta", "Q1 total span",
              "Q2 span (25%)", "Partition time");

  // Beta values mirroring the paper's x-axis {5,10,20,40,80,160,301},
  // with 0 = unlimited standing in for the full-depth setting.
  BenchReport report("fig9_subtree");
  for (uint32_t beta : {5u, 10u, 20u, 40u, 80u, 160u, 0u}) {
    Options options = base;
    options.subtree_limit = beta;
    SpanResult result =
        RunPartitioning(gen, PartitionAlgorithm::kBottomUp, options);
    // Q2 proxy: a 25% key-range retrieval touches a proportional share of
    // each version's chunks; the paper reports it tracking Q1.
    uint64_t q2_span = 0;
    for (uint64_t span : result.per_version) {
      q2_span += std::max<uint64_t>(1, span / 4);
    }
    char beta_label[16];
    std::snprintf(beta_label, sizeof(beta_label), "%s",
                  beta == 0 ? "unlimited" : std::to_string(beta).c_str());
    std::printf("%-10s %14llu %16llu %14.3fs\n", beta_label,
                (unsigned long long)result.total_span,
                (unsigned long long)q2_span, result.partition_seconds);
    const std::string prefix =
        "beta_" + std::string(beta == 0 ? "unlimited" : std::to_string(beta));
    report.Add(prefix + "_q1_span", static_cast<double>(result.total_span));
    report.Add(prefix + "_partition_seconds", result.partition_seconds);
  }
  std::printf("\nPaper shape: span increases as beta decreases; total time "
              "dips then rises for beta < 20.\n");
  report.Write();
  return 0;
}
