// Reproduces the paper's §2.3 "Too Many Queries Problem" table:
//
//   Chunk size        1     10    100   1000  10000
//   Time (in secs.)   65.42 14.18 3.10  1.07  0.56
//
// A version of ~N records must be reconstructed from the backend KV store.
// With unit-size chunks every record costs one round trip; growing the chunk
// size (with records assigned to chunks RANDOMLY, as in the paper's
// experiment) trades extra bytes scanned for far fewer round trips.
//
// The absolute numbers here come from the simulator's Cassandra-calibrated
// latency model (see kvstore/latency_model.h); the shape — an order of
// magnitude between successive columns at the small end, flattening at the
// large end — is the result under reproduction.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "kvstore/cluster.h"

namespace rstore {
namespace {

// Paper: versions of ~100K 100-byte records, 1M unique records in the KVS.
// Scaled 10x down; the per-request overhead dominance is scale-free.
constexpr uint32_t kRecordsPerVersion = 10000;
constexpr uint32_t kUniqueRecords = 100000;
constexpr uint32_t kRecordBytes = 100;

void Run() {
  const uint32_t records_per_version =
      bench::SmokeMode() ? 500 : kRecordsPerVersion;
  const uint32_t unique_records =
      bench::SmokeMode() ? 5000 : kUniqueRecords;
  std::printf("=== Paper section 2.3: version reconstruction time vs chunk "
              "size ===\n");
  std::printf("(%u-record version, %u unique %u-byte records, random "
              "record->chunk assignment, 4-node cluster)\n\n",
              records_per_version, unique_records, kRecordBytes);
  std::printf("%-12s %-10s %-14s %-14s\n", "Chunk size", "#chunks",
              "Sim. time (s)", "Data fetched");

  Random rng(42);
  // The version's records: a random subset of the unique-record space.
  std::vector<uint32_t> version_records(records_per_version);
  for (uint32_t i = 0; i < records_per_version; ++i) {
    version_records[i] = static_cast<uint32_t>(rng.Uniform(unique_records));
  }

  bench::BenchReport report("too_many_queries");
  for (uint32_t chunk_size : {1u, 10u, 100u, 1000u, 10000u}) {
    ClusterOptions options;
    options.num_nodes = 4;
    Cluster cluster(options);
    (void)cluster.CreateTable("chunks");

    // Random assignment of records to chunks (paper §2.3).
    uint32_t num_chunks = (unique_records + chunk_size - 1) / chunk_size;
    std::vector<uint32_t> chunk_of_record(unique_records);
    std::vector<uint32_t> fill(num_chunks, 0);
    Random assign_rng(7);
    for (uint32_t r = 0; r < unique_records; ++r) {
      uint32_t c;
      do {
        c = static_cast<uint32_t>(assign_rng.Uniform(num_chunks));
      } while (fill[c] >= chunk_size);
      ++fill[c];
      chunk_of_record[r] = c;
    }
    // Populate chunks.
    std::vector<std::string> chunk_payload(num_chunks);
    for (uint32_t c = 0; c < num_chunks; ++c) {
      chunk_payload[c].assign(
          static_cast<size_t>(fill[c]) * kRecordBytes, 'r');
    }
    for (uint32_t c = 0; c < num_chunks; ++c) {
      std::string key = "chunk" + std::to_string(c);
      if (!cluster.Put("chunks", key, chunk_payload[c]).ok()) {
        std::fprintf(stderr, "put failed\n");
        return;
      }
    }
    cluster.ResetStats();

    // Reconstruct the version: fetch every chunk containing one of its
    // records (deduplicated). The §2.3 experiment predates RStore's batched
    // retrieval — the naive client issues the requests INDIVIDUALLY, which
    // is exactly what makes the left column catastrophic.
    std::map<uint32_t, bool> needed;
    for (uint32_t r : version_records) needed[chunk_of_record[r]] = true;
    size_t fetched = 0;
    for (const auto& [c, unused] : needed) {
      auto value = cluster.Get("chunks", "chunk" + std::to_string(c));
      if (!value.ok()) {
        std::fprintf(stderr, "get failed\n");
        return;
      }
      ++fetched;
    }
    KVStats stats = cluster.stats();
    std::printf("%-12u %-10zu %-14.2f %-14s\n", chunk_size, fetched,
                stats.simulated_micros / 1e6,
                HumanBytes(stats.bytes_read).c_str());
    const std::string prefix = "chunk_size_" + std::to_string(chunk_size);
    report.Add(prefix + "_sim_seconds", stats.simulated_micros / 1e6);
    report.Add(prefix + "_bytes_read",
               static_cast<double>(stats.bytes_read));
  }
  std::printf(
      "\nPaper reference (physical Cassandra, 10x scale): 65.42 / 14.18 / "
      "3.10 / 1.07 / 0.56 s\n");
  report.Write();
}

}  // namespace
}  // namespace rstore

int main() {
  rstore::Run();
  return 0;
}
