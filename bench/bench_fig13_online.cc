// Reproduces paper Fig. 13: online partitioning quality. Versions are
// committed through the delta store in batches; at several checkpoints the
// total version span of the online layout is compared to an offline
// BOTTOM-UP run over the same prefix. Reported: span ratio online/offline
// (1.0 = offline quality) for datasets B1 and C1 across batch sizes.
//
// Expected shape (paper §5.6): modest penalties even at small batch sizes,
// improving (ratio -> 1) as the batch size grows.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workload/dataset_catalog.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

uint64_t OfflineSpan(const GeneratedDataset& gen, VersionId upto,
                     const Options& options) {
  // Offline reference: bulk-load the prefix in one shot.
  GeneratedDataset prefix;
  prefix.dataset.graph = VersionGraph();
  prefix.dataset.graph.AddRoot();
  for (VersionId v = 1; v < upto; ++v) {
    (void)*prefix.dataset.graph.AddVersion(
        {gen.dataset.graph.PrimaryParent(v)});
  }
  prefix.dataset.deltas.assign(gen.dataset.deltas.begin(),
                               gen.dataset.deltas.begin() + upto);
  for (VersionId v = 0; v < upto; ++v) {
    for (const CompositeKey& ck : gen.dataset.deltas[v].added) {
      prefix.payloads.emplace(ck, gen.payloads.at(ck));
    }
  }
  SpanResult r =
      RunPartitioning(prefix, PartitionAlgorithm::kBottomUp, options);
  return r.total_span;
}

void RunDataset(const char* name, const std::vector<VersionId>& checkpoints,
                const std::vector<uint32_t>& batch_sizes,
                BenchReport* report) {
  auto config = *CatalogConfig(name);
  GeneratedDataset gen = GenerateDataset(config);
  Options options;
  options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
  options.max_sub_chunk_records = 1;
  options.compression = CompressionType::kNone;

  std::printf("\n--- Dataset %s (BOTTOM-UP, span ratio online/offline) ---\n",
              name);
  std::printf("%-10s", "Batch");
  for (VersionId cp : checkpoints) std::printf(" %10u", cp);
  std::printf("\n");

  for (uint32_t batch : batch_sizes) {
    std::printf("%-10u", batch);
    MemoryStore backend;
    Options online_options = options;
    online_options.algorithm = PartitionAlgorithm::kBottomUp;
    online_options.online_batch_size = batch;
    auto store = RStore::Open(&backend, online_options);
    if (!store.ok()) std::exit(1);
    VersionId committed = 0;
    for (VersionId cp : checkpoints) {
      // Measure only at checkpoints aligned with the batch size, as in the
      // paper's table — forcing a flush mid-batch would contaminate the
      // later measurements of large batch sizes.
      for (; committed < cp; ++committed) {
        // CommitPrefix commits one version at a time; reuse its body inline.
        CommitDelta delta;
        const VersionDelta& d = gen.dataset.deltas[committed];
        std::unordered_map<std::string, bool> added_keys;
        for (const CompositeKey& ck : d.added) {
          added_keys[ck.key] = true;
          delta.upserts.push_back(Record{ck, gen.payloads.at(ck)});
        }
        for (const CompositeKey& ck : d.removed) {
          if (!added_keys.count(ck.key)) delta.deletes.push_back(ck.key);
        }
        VersionId parent = committed == 0
                               ? kInvalidVersion
                               : gen.dataset.graph.PrimaryParent(committed);
        auto r = (*store)->Commit(parent, std::move(delta));
        if (!r.ok()) std::exit(1);
      }
      if (cp % batch != 0) {
        std::printf(" %10s", "-");
        continue;
      }
      // The delta store is empty here (the batch boundary coincided with
      // the checkpoint), so this only reads the live projections.
      uint64_t online_span = (*store)->TotalVersionSpan();
      uint64_t offline_span = OfflineSpan(gen, cp, options);
      const double ratio = static_cast<double>(online_span) /
                           static_cast<double>(offline_span);
      std::printf(" %10.3f", ratio);
      report->Add(StringPrintf("%s_batch%u_cp%u_span_ratio", name, batch, cp),
                  ratio);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== Paper Fig. 13: online partitioning quality ===\n");
  BenchReport report("fig13_online");
  if (SmokeMode()) {
    RunDataset("B1", /*checkpoints=*/{20, 40}, /*batch_sizes=*/{10, 20},
               &report);
  } else {
    RunDataset("B1", /*checkpoints=*/{75, 150, 225, 300},
               /*batch_sizes=*/{25, 75, 150}, &report);
    RunDataset("C1", /*checkpoints=*/{200, 400, 600, 800},
               /*batch_sizes=*/{100, 200, 400}, &report);
  }
  std::printf("\nPaper shape: ratios modestly above 1.0, shrinking as batch "
              "size grows (B1: 1.63 worst at smallest batch; C1 within a few "
              "percent).\n");
  report.Write();
  return 0;
}
