// Fault-tolerance sweep: availability, degraded-read coverage, and simulated
// latency as a function of the injected transient-error rate.
//
// Three series over one generated dataset, all on the same seeded fault
// timeline (the sweep is exactly reproducible):
//
//   strict/rf=1   No redundancy: a query fails as soon as any chunk's only
//                 replica exhausts its retry budget, so availability decays
//                 visibly with the fault rate. This is the baseline the
//                 paper-style "replicate or degrade" argument starts from.
//   strict/rf=2   One extra replica: exhausted chains fail over, hedges
//                 absorb latency spikes, and availability stays near 1.0
//                 at every swept rate — the retry/hedge/handoff machinery
//                 converts most faults into latency instead of errors.
//   effort/rf=1   Same outages as strict/rf=1 but in best-effort read mode:
//                 queries keep succeeding and report partial coverage
//                 (records returned / records expected) plus the chunks
//                 they could not fetch.
//
// Reported per rate: availability (ok fraction), coverage, average simulated
// micros per query, and the retry/hedge/timeout counters. The *_micros
// metrics feed tools/bench_diff.py's regression gate.

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

struct SweepPoint {
  double availability = 0.0;  // ok queries / all queries
  double coverage = 0.0;      // records returned / records expected
  double avg_micros = 0.0;    // simulated micros per query (backend charge)
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t timeouts = 0;
};

SweepPoint RunSweep(const GeneratedDataset& gen, double error_rate,
                    uint32_t replication_factor, ReadMode read_mode,
                    uint64_t load_ticks) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.replication_factor = replication_factor;
  cluster_options.faults.seed = 0xBE7C * 1000 + 7;
  cluster_options.faults.default_profile.transient_error_rate = error_rate;
  cluster_options.faults.default_profile.slow_rate = error_rate / 2;
  cluster_options.faults.default_profile.slow_multiplier = 8.0;
  // Faults spare the bulk load (its op count was measured by a fault-free
  // dry run) and hit only the measured query phase.
  cluster_options.faults.default_profile.active_from_tick = load_ticks;
  cluster_options.latency.hedge_threshold_us = 3000;
  // Two attempts keeps retry exhaustion (p = rate^2 per chain) frequent
  // enough at the swept rates that the rf=1 availability decay is visible;
  // rf=2 still recovers it by failing over to the second replica.
  cluster_options.retry.max_attempts = 2;
  Cluster cluster(cluster_options);

  Options options;
  options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
  options.read_mode = read_mode;
  auto store = RStore::Open(&cluster, options);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store.status().ToString().c_str());
    std::exit(1);
  }
  Status loaded = (*store)->BulkLoad(gen.dataset, gen.payloads);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", loaded.ToString().c_str());
    std::exit(1);
  }

  const KVStats before = cluster.stats();
  const uint64_t num_versions = gen.dataset.graph.size();
  uint64_t queries = 0, ok = 0, returned = 0, expected = 0;
  for (VersionId v = 0; v < num_versions; ++v) {
    ++queries;
    expected += gen.dataset.MaterializeVersion(v).size();
    QueryDegradation report;
    auto records = (*store)->GetVersion(v, nullptr, nullptr, &report);
    if (records.ok()) {
      ++ok;
      returned += records->size();
    }
  }
  const KVStats after = cluster.stats();

  SweepPoint point;
  point.availability = queries ? static_cast<double>(ok) / queries : 0.0;
  point.coverage =
      expected ? static_cast<double>(returned) / expected : 0.0;
  point.avg_micros =
      queries
          ? static_cast<double>(after.simulated_micros -
                                before.simulated_micros) /
                queries
          : 0.0;
  point.retries = after.retries - before.retries;
  point.hedges = after.hedges - before.hedges;
  point.timeouts = after.timeouts - before.timeouts;
  return point;
}

void ReportPoint(const char* series, double rate, const SweepPoint& point,
                 BenchReport* report) {
  std::printf("%-11s %6.2f %14.3f %10.3f %14.0f %9llu %8llu %9llu\n", series,
              rate, point.availability, point.coverage, point.avg_micros,
              static_cast<unsigned long long>(point.retries),
              static_cast<unsigned long long>(point.hedges),
              static_cast<unsigned long long>(point.timeouts));
  const std::string prefix =
      std::string(series) + "_rate" + StringPrintf("%03d",
                                                   static_cast<int>(rate * 100));
  report->Add(prefix + "_availability", point.availability);
  report->Add(prefix + "_coverage", point.coverage);
  report->Add(prefix + "_avg_micros", point.avg_micros);
  report->Add(prefix + "_retries", static_cast<double>(point.retries));
  report->Add(prefix + "_hedges", static_cast<double>(point.hedges));
}

}  // namespace

int main() {
  DatasetConfig config;
  config.name = "fault_sweep";
  config.num_versions = SmokeMode() ? 8 : 40;
  config.records_per_version = SmokeMode() ? 60 : 400;
  config.record_size_bytes = 200;
  config.update_fraction = 0.10;
  config.branch_probability = 0.15;
  config.seed = 4242;
  GeneratedDataset gen = GenerateDataset(config);

  // Fault-free dry run: count the coordinator operations the load issues so
  // the sweep's fault schedules can activate exactly when queries start.
  uint64_t load_ticks = 0;
  {
    ClusterOptions dry_options;
    dry_options.num_nodes = 4;
    Cluster dry(dry_options);
    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
    auto store = RStore::Open(&dry, options);
    if (!store.ok() || !(*store)->BulkLoad(gen.dataset, gen.payloads).ok()) {
      std::fprintf(stderr, "dry-run load failed\n");
      return 1;
    }
    const KVStats s = dry.stats();
    load_ticks = s.puts + s.gets + s.deletes + s.multiget_batches;
  }

  BenchReport report("fault_tolerance");
  std::printf("%-11s %6s %14s %10s %14s %9s %8s %9s\n", "series", "rate",
              "availability", "coverage", "avg us/query", "retries", "hedges",
              "timeouts");
  for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    SweepPoint strict1 = RunSweep(gen, rate, 1, ReadMode::kStrict, load_ticks);
    ReportPoint("strict_rf1", rate, strict1, &report);
    SweepPoint strict2 = RunSweep(gen, rate, 2, ReadMode::kStrict, load_ticks);
    ReportPoint("strict_rf2", rate, strict2, &report);
    SweepPoint effort1 =
        RunSweep(gen, rate, 1, ReadMode::kBestEffort, load_ticks);
    ReportPoint("effort_rf1", rate, effort1, &report);
  }
  report.Write();
  return 0;
}
