// Reproduces paper Fig. 10: partitioning quality (total version span) and
// compression ratio as the max sub-chunk size k is varied, for bounded
// per-update record changes Pd in {10%, 5%, 1%}, on datasets shaped like
// A0 (linear chain), C0 and D0 (branched trees).
//
// Expected shape (paper §5.3): two opposing factors -
//   factor 1: larger k packs more same-key records per sub-chunk, fetching
//             more irrelevant data per chunk -> span up;
//   factor 2: smaller Pd compresses better, fewer chunks overall -> span
//             down, and with small enough Pd factor 2 dominates so span
//             FALLS as k grows.
// BOTTOM-UP holds the best span at every setting.

#include <cstdio>

#include "bench_util.h"
#include "workload/dataset_catalog.h"

int main() {
  using namespace rstore;
  using namespace rstore::workload;
  using namespace rstore::bench;

  struct Shape {
    const char* name;
    const char* base;  // catalog entry providing the tree shape
  };
  const Shape shapes[] = {{"A0", "A0"}, {"C0", "C0"}, {"D0", "D0"}};
  const PartitionAlgorithm algorithms[] = {PartitionAlgorithm::kBottomUp,
                                           PartitionAlgorithm::kDepthFirst,
                                           PartitionAlgorithm::kShingle};

  std::printf("=== Paper Fig. 10: span + compression ratio vs sub-chunk size "
              "k ===\n");
  BenchReport report("fig10_compression");
  for (const Shape& shape : shapes) {
    if (SmokeMode() && &shape != shapes) break;
    auto config = *CatalogConfig(shape.base);
    // Fig. 10 uses large, compressible records; shrink the version count to
    // compensate.
    config.record_size_bytes = 1600;
    config.num_versions = config.num_versions / 2;
    if (SmokeMode()) {
      config.num_versions = std::min<uint32_t>(config.num_versions, 12);
      config.records_per_version =
          std::min<uint32_t>(config.records_per_version, 60);
    }
    for (double pd : {0.10, 0.05, 0.01}) {
      if (SmokeMode() && pd != 0.10) continue;
      config.pd = pd;
      config.name = std::string(shape.name) + "/Pd=" +
                    std::to_string(static_cast<int>(pd * 100)) + "%";
      GeneratedDataset gen = GenerateDataset(config);
      Options base_options;
      base_options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
      base_options.compression = CompressionType::kLZ;

      std::printf("\n--- Dataset %s ---\n", config.name.c_str());
      std::printf("%-6s %12s %12s %12s %14s\n", "k", "BOTTOM-UP", "DFS",
                  "SHINGLE", "compr.ratio");
      for (uint32_t k : {1u, 2u, 5u, 10u, 25u, 50u}) {
        Options options = base_options;
        options.max_sub_chunk_records = k;
        uint64_t spans[3];
        double ratio = 1.0;
        for (int a = 0; a < 3; ++a) {
          SpanResult r = RunPartitioning(gen, algorithms[a], options);
          spans[a] = r.total_span;
          ratio = r.compression_ratio;  // same sub-chunking for all three
        }
        std::printf("%-6u %12llu %12llu %12llu %13.2fx\n", k,
                    (unsigned long long)spans[0], (unsigned long long)spans[1],
                    (unsigned long long)spans[2], ratio);
        const std::string prefix =
            StringPrintf("%s_pd%d_k%u_", shape.name,
                         static_cast<int>(pd * 100), k);
        report.Add(prefix + "bottom_up_span",
                   static_cast<double>(spans[0]));
        report.Add(prefix + "compression_ratio", ratio);
      }
    }
  }
  report.Write();
  std::printf("\nPaper shape: at Pd=10%% span grows with k (factor 1); at "
              "Pd=1%% compression wins and span falls with k; BOTTOM-UP best "
              "throughout.\n");
  return 0;
}
