// Reproduces paper Fig. 12: weak scalability. Cluster size doubles from 1 to
// 16 nodes while the dataset roughly doubles alongside (more versions over
// the same per-version record count), mirroring the paper's datasets G
// (many versions, smaller) and H (fewer versions, bigger records).
// Reported: average full-version (Q1) and record-evolution (Q3) latency and
// the corresponding average spans.
//
// Expected shape: latencies grow slowly with scale - the growth is
// attributable to increased version/key spans on the bigger datasets, not to
// cluster overhead (weak scaling holds).

#include <cstdio>

#include "bench_util.h"
#include "workload/query_workload.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

void RunSeries(const char* name, uint32_t base_versions,
               uint32_t records_per_version, uint32_t record_bytes,
               BenchReport* report) {
  if (SmokeMode()) {
    base_versions = std::min<uint32_t>(base_versions, 6);
    records_per_version = std::min<uint32_t>(records_per_version, 80);
  }
  std::printf("\n--- Dataset %s: %u recs/version x %uB, versions scale with "
              "nodes ---\n",
              name, records_per_version, record_bytes);
  std::printf("%-7s %10s %12s %14s %12s %12s\n", "Nodes", "Versions",
              "Q1 avg (s)", "avg ver.span", "Q3 avg (s)", "avg key span");
  for (uint32_t nodes : {1u, 2u, 4u, 8u, 12u, 16u}) {
    if (SmokeMode() && nodes > 4) break;
    DatasetConfig config;
    config.name = name;
    // Weak scaling: data grows with the cluster (paper doubles versions as
    // nodes double; 12 nodes get the interpolated size).
    config.num_versions = base_versions * nodes;
    config.records_per_version = records_per_version;
    config.record_size_bytes = record_bytes;
    config.update_fraction = 0.10;
    config.branch_probability = 0.2;
    config.seed = 1000 + nodes;
    GeneratedDataset gen = GenerateDataset(config);

    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
    LoadedStore loaded =
        LoadStore(gen, PartitionAlgorithm::kBottomUp, options, nodes);

    QueryWorkloadGenerator qgen(&gen.dataset, 7);
    const size_t kQueries = 10;
    // Reported latency = modeled backend time + REAL client-side processing
    // time: "RStore currently processes the retrieved chunks sequentially
    // while constructing the query result" (paper §5.5) — that sequential
    // work is what keeps latency growing with the dataset under weak
    // scaling, and here it is executed for real (decode + decompress +
    // extract).
    QueryStats q1_stats;
    Stopwatch q1_timer;
    for (const Query& q : qgen.FullVersionQueries(kQueries)) {
      auto r = loaded.store->GetVersion(q.version, &q1_stats);
      if (!r.ok()) std::exit(1);
    }
    double q1_wall = q1_timer.ElapsedSeconds();
    QueryStats q3_stats;
    Stopwatch q3_timer;
    for (const Query& q : qgen.EvolutionQueries(kQueries)) {
      auto r = loaded.store->GetHistory(q.key, &q3_stats);
      if (!r.ok()) std::exit(1);
    }
    double q3_wall = q3_timer.ElapsedSeconds();
    const double q1_avg =
        (q1_stats.simulated_micros / 1e6 + q1_wall) / kQueries;
    const double q3_avg =
        (q3_stats.simulated_micros / 1e6 + q3_wall) / kQueries;
    std::printf("%-7u %10u %12.3f %14.1f %12.4f %12.1f\n", nodes,
                config.num_versions, q1_avg,
                static_cast<double>(q1_stats.chunks_fetched) / kQueries,
                q3_avg,
                static_cast<double>(q3_stats.chunks_fetched) / kQueries);
    const std::string prefix = StringPrintf("%s_nodes%u_", name, nodes);
    report->Add(prefix + "q1_avg_seconds", q1_avg);
    report->Add(prefix + "q3_avg_seconds", q3_avg);
  }
}

}  // namespace

int main() {
  std::printf("=== Paper Fig. 12: weak scalability (BOTTOM-UP) ===\n");
  rstore::bench::BenchReport report("fig12_scalability");
  // G: many smaller versions; H: fewer versions of more records.
  RunSeries("G", /*base_versions=*/120, /*records_per_version=*/400,
            /*record_bytes=*/300, &report);
  RunSeries("H", /*base_versions=*/25, /*records_per_version=*/1500,
            /*record_bytes=*/300, &report);
  std::printf("\nPaper shape: Q1 latency grows mildly with scale (7.35s -> "
              "11.39s for G); growth tracks the increased spans, not node "
              "count.\n");
  report.Write();
  return 0;
}
