// Component microbenchmarks (google-benchmark): the building blocks whose
// costs the system-level experiments aggregate — codecs, bitmaps, min-hash,
// backend MultiGet, and the partitioning algorithms themselves.

#include <benchmark/benchmark.h>

#include <cctype>

#include "bench_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "compress/bitmap.h"
#include "compress/delta_codec.h"
#include "compress/lz_codec.h"
#include "kvstore/cluster.h"
#include "workload/dataset_catalog.h"
#include "workload/record_generator.h"

namespace rstore {
namespace {

std::string MakeJsonPayload(size_t approx_bytes) {
  workload::RecordGenerator gen(static_cast<uint32_t>(approx_bytes), 42);
  return gen.Generate("bench-key");
}

void BM_LzCompressJson(benchmark::State& state) {
  std::string input = MakeJsonPayload(static_cast<size_t>(state.range(0)));
  std::string out;
  for (auto _ : state) {
    lz::Compress(Slice(input), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK(BM_LzCompressJson)->Arg(256)->Arg(4096)->Arg(65536);

void BM_LzDecompressJson(benchmark::State& state) {
  std::string input = MakeJsonPayload(static_cast<size_t>(state.range(0)));
  std::string compressed, out;
  lz::Compress(Slice(input), &compressed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lz::Decompress(Slice(compressed), &out).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          input.size());
}
BENCHMARK(BM_LzDecompressJson)->Arg(4096)->Arg(65536);

void BM_DeltaEncode(benchmark::State& state) {
  workload::RecordGenerator gen(static_cast<uint32_t>(state.range(0)), 7);
  std::string base = gen.Generate("k");
  std::string target = gen.Mutate(base, 0.05);
  std::string delta;
  for (auto _ : state) {
    delta_codec::Encode(Slice(base), Slice(target), &delta);
    benchmark::DoNotOptimize(delta.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          base.size());
}
BENCHMARK(BM_DeltaEncode)->Arg(1024)->Arg(16384);

void BM_DeltaApply(benchmark::State& state) {
  workload::RecordGenerator gen(static_cast<uint32_t>(state.range(0)), 7);
  std::string base = gen.Generate("k");
  std::string target = gen.Mutate(base, 0.05);
  std::string delta, out;
  delta_codec::Encode(Slice(base), Slice(target), &delta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        delta_codec::Apply(Slice(base), Slice(delta), &out).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          base.size());
}
BENCHMARK(BM_DeltaApply)->Arg(1024)->Arg(16384);

void BM_BitmapSerialize(benchmark::State& state) {
  Random rng(3);
  Bitmap bitmap(static_cast<size_t>(state.range(0)));
  for (int i = 0; i < state.range(0) / 10; ++i) {
    bitmap.Set(rng.Uniform(static_cast<uint64_t>(state.range(0))));
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    bitmap.SerializeTo(&out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BitmapSerialize)->Arg(10000)->Arg(1000000);

void BM_MinHashVersionSet(benchmark::State& state) {
  HashFamily family(4, 99);
  std::vector<VersionId> versions(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < versions.size(); ++i) {
    versions[i] = static_cast<VersionId>(i * 3);
  }
  for (auto _ : state) {
    uint64_t acc = 0;
    for (uint32_t f = 0; f < 4; ++f) {
      uint64_t best = UINT64_MAX;
      for (VersionId v : versions) {
        best = std::min(best, family.Apply(f, v + 1));
      }
      acc ^= best;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MinHashVersionSet)->Arg(16)->Arg(256);

void BM_ClusterMultiGet(benchmark::State& state) {
  ClusterOptions options;
  options.num_nodes = 8;
  options.latency = ZeroLatencyModel();  // measure real CPU cost
  Cluster cluster(options);
  (void)cluster.CreateTable("t");
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) {
    std::string key = "key" + std::to_string(i);
    keys.push_back(key);
    (void)cluster.Put("t", key, std::string(256, 'v'));
  }
  std::vector<std::string> batch(keys.begin(),
                                 keys.begin() + state.range(0));
  for (auto _ : state) {
    std::map<std::string, std::string> out;
    benchmark::DoNotOptimize(cluster.MultiGet("t", batch, &out).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ClusterMultiGet)->Arg(16)->Arg(512)->Arg(4096);

void BM_Partitioner(benchmark::State& state) {
  auto config = *workload::CatalogConfig("C1");
  config.num_versions = 300;
  static workload::GeneratedDataset gen = workload::GenerateDataset(config);
  Options options;
  options.chunk_capacity_bytes = bench::ScaledChunkCapacity(gen);
  options.max_sub_chunk_records = 1;
  options.compression = CompressionType::kNone;
  RecordVersionMap rv = gen.dataset.BuildRecordVersionMap();
  auto built = BuildSubChunks(gen.dataset, gen.payloads, rv, options);
  if (!built.ok()) {
    state.SkipWithError("sub-chunking failed");
    return;
  }
  auto algorithm = static_cast<PartitionAlgorithm>(state.range(0));
  auto partitioner = CreatePartitioner(algorithm);
  PartitionInput input;
  input.dataset = &gen.dataset;
  input.items = &built->items;
  input.options = options;
  for (auto _ : state) {
    auto p = partitioner->Partition(input);
    benchmark::DoNotOptimize(p.ok());
  }
  state.SetLabel(PartitionAlgorithmName(algorithm));
}
BENCHMARK(BM_Partitioner)
    ->Arg(static_cast<int>(PartitionAlgorithm::kBottomUp))
    ->Arg(static_cast<int>(PartitionAlgorithm::kShingle))
    ->Arg(static_cast<int>(PartitionAlgorithm::kDepthFirst))
    ->Arg(static_cast<int>(PartitionAlgorithm::kBreadthFirst));

}  // namespace
}  // namespace rstore

namespace {

/// Console output plus the repo-standard flat BENCH_micro.json: one
/// "<name>_real_ns" entry per benchmark run, with the run name sanitized to
/// an identifier ("BM_LzCompressJson/256" -> "BM_LzCompressJson_256").
class FlatJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit FlatJsonReporter(rstore::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string name = run.benchmark_name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      report_->Add(name + "_real_ns", run.GetAdjustedRealTime());
    }
  }

 private:
  rstore::bench::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  // Smoke mode: cut per-benchmark measuring time so CI can validate the
  // binary and its JSON output in seconds.
  std::vector<char*> args(argv, argv + argc);
  char min_time_flag[] = "--benchmark_min_time=0.01";
  if (rstore::bench::SmokeMode()) args.push_back(min_time_flag);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  rstore::bench::BenchReport report("micro");
  FlatJsonReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.Write();
  return 0;
}
