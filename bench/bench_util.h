#ifndef RSTORE_BENCH_BENCH_UTIL_H_
#define RSTORE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/partitioner.h"
#include "core/placement.h"
#include "core/rstore.h"
#include "core/sub_chunk_builder.h"
#include "kvstore/cluster.h"
#include "workload/dataset_generator.h"

namespace rstore {
namespace bench {

/// True when RSTORE_BENCH_SMOKE is set (and not "0"): benches shrink their
/// datasets/iteration counts so the whole binary finishes in seconds. CI
/// uses this to validate that every bench still runs and emits parseable
/// BENCH_*.json; the numbers themselves are meaningless in smoke mode.
inline bool SmokeMode() {
  const char* env = std::getenv("RSTORE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Machine-readable companion to a bench's human output: flat metric-name ->
/// value pairs written as BENCH_<name>.json in the working directory, the
/// per-PR perf trajectory CI tracks. Add() as results materialize, Write()
/// once at the end of main.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& metric, double value) {
    entries_.emplace_back(metric, std::isfinite(value) ? value : 0.0);
  }

  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::string out = "{";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out += StringPrintf("%s\n  \"%s\": %.17g", i == 0 ? "" : ",",
                          entries_[i].first.c_str(), entries_[i].second);
    }
    out += "\n}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// Chunk capacity preserving the paper's regime: ~1 MB chunks against
/// ~10 MB versions means roughly 10+ chunks per full version, so scale the
/// capacity to a tenth of the (approximate) version size.
inline uint64_t ScaledChunkCapacity(const workload::GeneratedDataset& gen) {
  uint64_t version_bytes =
      gen.stats.avg_records_per_version *
      (gen.stats.unique_records
           ? gen.stats.unique_record_bytes / gen.stats.unique_records
           : 200);
  return std::max<uint64_t>(4096, version_bytes / 10);
}

struct SpanResult {
  uint64_t total_span = 0;
  uint64_t num_chunks = 0;
  double partition_seconds = 0;
  double compression_ratio = 1.0;
  std::vector<uint64_t> per_version;
};

/// Sub-chunks + partitions `gen` with `algorithm`, returning span metrics.
/// `options` carries k / beta / capacity; options.algorithm is overridden.
inline SpanResult RunPartitioning(const workload::GeneratedDataset& gen,
                                  PartitionAlgorithm algorithm,
                                  Options options) {
  options.algorithm = algorithm;
  RecordVersionMap record_versions = gen.dataset.BuildRecordVersionMap();
  auto built =
      BuildSubChunks(gen.dataset, gen.payloads, record_versions, options);
  if (!built.ok()) {
    std::fprintf(stderr, "sub-chunking failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  auto partitioner = CreatePartitioner(algorithm);
  PartitionInput input;
  input.dataset = &gen.dataset;
  input.items = &built->items;
  input.options = options;
  Stopwatch timer;
  auto partitioning = partitioner->Partition(input);
  SpanResult result;
  result.partition_seconds = timer.ElapsedSeconds();
  if (!partitioning.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n",
                 partitioning.status().ToString().c_str());
    std::exit(1);
  }
  result.per_version =
      PerVersionSpans(*partitioning, built->items, gen.dataset.graph);
  for (uint64_t span : result.per_version) result.total_span += span;
  result.num_chunks = partitioning->num_chunks();
  result.compression_ratio = built->compression_ratio();
  return result;
}

/// Opens an RStore over a fresh simulated cluster and bulk-loads `gen`.
struct LoadedStore {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<RStore> store;
};

inline LoadedStore LoadStore(const workload::GeneratedDataset& gen,
                             PartitionAlgorithm algorithm, Options options,
                             uint32_t num_nodes) {
  options.algorithm = algorithm;
  LoadedStore out;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = num_nodes;
  out.cluster = std::make_unique<Cluster>(cluster_options);
  auto store = RStore::Open(out.cluster.get(), options);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store.status().ToString().c_str());
    std::exit(1);
  }
  out.store = std::move(store).value();
  Status s = out.store->BulkLoad(gen.dataset, gen.payloads);
  if (!s.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return out;
}

}  // namespace bench
}  // namespace rstore

#endif  // RSTORE_BENCH_BENCH_UTIL_H_
