// Cache ablation: the same repeated Q1 (GetVersion) / Q3 (GetHistory) sweep
// replayed over a range of chunk-cache capacities, from disabled up to a
// cache comfortably holding the whole decoded working set. Reported time is
// the simulator's modeled backend latency per pass, so pass 1 (cold) vs.
// later passes (warm) isolates exactly the traffic the cache removes.
//
// Expected shape: capacity 0 repeats the full cost every pass (the paper's
// prototype); as capacity grows, warm passes approach zero backend time
// while cold-pass cost and all query RESULTS stay identical — the cache is
// invisible except in the latency and hit-rate columns.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/report.h"
#include "workload/query_workload.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

struct PassResult {
  double ms = 0;
  uint64_t chunks = 0;
  uint64_t bytes = 0;
};

constexpr int kPasses = 3;
constexpr size_t kQ1Queries = 10;
constexpr size_t kQ3Queries = 10;

std::vector<PassResult> RunSweep(RStore* store, const GeneratedDataset& gen,
                                 double* hit_rate) {
  QueryWorkloadGenerator qgen(&gen.dataset, 1234);
  const std::vector<Query> q1 = qgen.FullVersionQueries(kQ1Queries);
  const std::vector<Query> q3 = qgen.EvolutionQueries(kQ3Queries);
  std::vector<PassResult> passes;
  uint64_t hits = 0, lookups = 0;
  for (int pass = 0; pass < kPasses; ++pass) {
    QueryStats stats;
    for (const Query& q : q1) {
      auto r = store->GetVersion(q.version, &stats);
      if (!r.ok()) {
        std::fprintf(stderr, "Q1 failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
    for (const Query& q : q3) {
      auto r = store->GetHistory(q.key, &stats);
      if (!r.ok()) {
        std::fprintf(stderr, "Q3 failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
    passes.push_back(PassResult{stats.simulated_micros / 1e3,
                                stats.chunks_fetched, stats.bytes_fetched});
    hits += stats.cache_hits;
    lookups += stats.cache_hits + stats.cache_misses;
  }
  *hit_rate = lookups == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(lookups);
  return passes;
}

}  // namespace

int main() {
  DatasetConfig config;
  config.name = "cache-ablation";
  config.num_versions = 60;
  config.records_per_version = 220;
  config.update_fraction = 0.12;
  config.record_size_bytes = 420;
  config.pd = 0.05;
  config.seed = 7;
  if (SmokeMode()) {
    config.num_versions = 8;
    config.records_per_version = 40;
  }
  GeneratedDataset gen = GenerateDataset(config);

  Options base;
  base.chunk_capacity_bytes = ScaledChunkCapacity(gen);

  // Size the sweep against the stored chunk bytes; decoded chunks are
  // larger than their compressed bodies, so "4x stored" comfortably holds
  // the whole working set.
  uint64_t stored_bytes;
  {
    LoadedStore probe = LoadStore(gen, PartitionAlgorithm::kBottomUp, base, 4);
    auto report = BuildStoreReport(*probe.store, probe.cluster.get());
    if (!report.ok()) {
      std::fprintf(stderr, "report failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    stored_bytes = report->chunk_bytes;
  }
  struct Point {
    const char* label;
    uint64_t capacity;
  };
  const Point points[] = {
      {"off", 0},
      {"stored/8", stored_bytes / 8},
      {"stored/2", stored_bytes / 2},
      {"stored*1", stored_bytes},
      {"stored*4", stored_bytes * 4},
  };

  std::printf("dataset: %u versions, ~%u records/version, %s stored chunks, "
              "chunk capacity %s\n",
              config.num_versions, config.records_per_version,
              HumanBytes(stored_bytes).c_str(),
              HumanBytes(base.chunk_capacity_bytes).c_str());
  std::printf("sweep: %zu Q1 + %zu Q3 queries x %d passes (pass 1 cold)\n\n",
              kQ1Queries, kQ3Queries, kPasses);
  std::printf("%-10s %10s %10s %10s %8s %10s %9s\n", "cache", "pass1_ms",
              "pass2_ms", "pass3_ms", "hit%", "chunks", "speedup");
  BenchReport bench_report("cache_ablation");
  for (const Point& point : points) {
    Options options = base;
    options.cache_capacity_bytes = point.capacity;
    LoadedStore loaded = LoadStore(gen, PartitionAlgorithm::kBottomUp,
                                   options, 4);
    double hit_rate = 0;
    std::vector<PassResult> passes =
        RunSweep(loaded.store.get(), gen, &hit_rate);
    uint64_t total_chunks = 0;
    for (const PassResult& p : passes) total_chunks += p.chunks;
    double warm = passes.back().ms;
    double speedup = warm > 0 ? passes.front().ms / warm : 0;
    std::printf("%-10s %10.2f %10.2f %10.2f %7.1f%% %10llu ",
                point.label, passes[0].ms, passes[1].ms, passes[2].ms,
                hit_rate * 100.0, (unsigned long long)total_chunks);
    if (warm > 0) {
      std::printf("%8.1fx\n", speedup);
    } else {
      std::printf("%9s\n", "inf");
    }
    // Labels like "stored/8" are not identifier-friendly; index instead.
    const std::string prefix =
        StringPrintf("point%d_", static_cast<int>(&point - points));
    bench_report.Add(prefix + "capacity_bytes",
                     static_cast<double>(point.capacity));
    bench_report.Add(prefix + "cold_ms", passes.front().ms);
    bench_report.Add(prefix + "warm_ms", warm);
    bench_report.Add(prefix + "hit_rate", hit_rate);
  }
  bench_report.Write();
  return 0;
}
