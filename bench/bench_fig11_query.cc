// Reproduces paper Fig. 11: end-to-end query processing latency for
//   Q1 full version retrieval, Q2 partial (range) retrieval, and
//   Q3 record evolution,
// for BOTTOM-UP / DEPTHFIRST / SHINGLE as the max sub-chunk size k varies,
// with the DELTA baseline at k=1 and SUBCHUNK reported in the caption line,
// on datasets shaped like A0 and C0. Latencies are the simulator's modeled
// backend time (averaged per query).
//
// Expected shape (paper §5.4): BOTTOM-UP lowest for Q1/Q2; Q2 tracks Q1;
// DELTA's Q2 exceeds its Q1 (full reconstruction then filter); Q3 improves
// with larger k for everyone; SUBCHUNK is worst for Q1/Q2 and best for Q3.

#include <cstdio>

#include "bench_util.h"
#include "workload/dataset_catalog.h"
#include "workload/query_workload.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

struct QueryLatencies {
  double q1_seconds = 0;
  double q2_seconds = 0;
  double q3_seconds = 0;
};

QueryLatencies Measure(RStore* store, const GeneratedDataset& gen,
                       size_t queries_per_class) {
  QueryWorkloadGenerator qgen(&gen.dataset, 99);
  QueryLatencies out;
  {
    QueryStats stats;
    for (const Query& q : qgen.FullVersionQueries(queries_per_class)) {
      auto r = store->GetVersion(q.version, &stats);
      if (!r.ok()) {
        std::fprintf(stderr, "Q1 failed: %s\n", r.status().ToString().c_str());
        std::exit(1);
      }
    }
    out.q1_seconds = stats.simulated_micros / 1e6 / queries_per_class;
  }
  {
    QueryStats stats;
    for (const Query& q : qgen.RangeQueries(queries_per_class, 0.25)) {
      auto r = store->GetRange(q.version, q.key_lo, q.key_hi, &stats);
      if (!r.ok()) {
        std::fprintf(stderr, "Q2 failed: %s\n", r.status().ToString().c_str());
        std::exit(1);
      }
    }
    out.q2_seconds = stats.simulated_micros / 1e6 / queries_per_class;
  }
  {
    QueryStats stats;
    for (const Query& q : qgen.EvolutionQueries(queries_per_class)) {
      auto r = store->GetHistory(q.key, &stats);
      if (!r.ok()) {
        std::fprintf(stderr, "Q3 failed: %s\n", r.status().ToString().c_str());
        std::exit(1);
      }
    }
    out.q3_seconds = stats.simulated_micros / 1e6 / queries_per_class;
  }
  return out;
}

void RunDataset(const char* name, BenchReport* report) {
  auto config = *CatalogConfig(name);
  // Compressible records, fewer versions (as in the Fig. 10 setup).
  config.record_size_bytes = 1600;
  config.num_versions = config.num_versions / 2;
  config.pd = 0.05;
  if (SmokeMode()) {
    config.num_versions = std::min<uint32_t>(config.num_versions, 10);
    config.records_per_version =
        std::min<uint32_t>(config.records_per_version, 60);
  }
  if (config.branch_probability > 0.1) {
    // DELTA's chain-replay cost depends on the ABSOLUTE tree depth; the
    // paper's C0 averages depth 143 while the scaled catalog entry shrinks
    // it to ~18, which would understate DELTA's Q1 cost. Regrow the branched
    // datasets with depth closer to the paper's regime (~40 here).
    config.branch_probability = 0.10;
  }
  GeneratedDataset gen = GenerateDataset(config);
  Options base;
  base.chunk_capacity_bytes = ScaledChunkCapacity(gen);

  const size_t kQueries = SmokeMode() ? 4 : 12;
  std::printf("\n--- Dataset %s: avg simulated latency per query (s) ---\n",
              name);
  std::printf("%-6s | %-26s | %-26s | %-26s\n", "", "Q1 full version",
              "Q2 range (25%)", "Q3 evolution");
  std::printf("%-6s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n", "k", "B-UP",
              "DFS", "SHNGL", "B-UP", "DFS", "SHNGL", "B-UP", "DFS", "SHNGL");
  for (uint32_t k : {1u, 5u, 25u, 50u}) {
    if (SmokeMode() && k > 5) continue;
    Options options = base;
    options.max_sub_chunk_records = k;
    QueryLatencies lat[3];
    const PartitionAlgorithm algorithms[] = {PartitionAlgorithm::kBottomUp,
                                             PartitionAlgorithm::kDepthFirst,
                                             PartitionAlgorithm::kShingle};
    for (int a = 0; a < 3; ++a) {
      LoadedStore loaded = LoadStore(gen, algorithms[a], options, 4);
      lat[a] = Measure(loaded.store.get(), gen, kQueries);
    }
    std::printf("%-6u | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f | %8.4f %8.4f "
                "%8.4f\n",
                k, lat[0].q1_seconds, lat[1].q1_seconds, lat[2].q1_seconds,
                lat[0].q2_seconds, lat[1].q2_seconds, lat[2].q2_seconds,
                lat[0].q3_seconds, lat[1].q3_seconds, lat[2].q3_seconds);
    const std::string prefix = StringPrintf("%s_k%u_", name, k);
    report->Add(prefix + "bottom_up_q1_seconds", lat[0].q1_seconds);
    report->Add(prefix + "bottom_up_q2_seconds", lat[0].q2_seconds);
    report->Add(prefix + "bottom_up_q3_seconds", lat[0].q3_seconds);
  }
  // Baselines at k=1 (DELTA cannot compress across versions; SUBCHUNK is the
  // caption line in the paper).
  {
    Options options = base;
    options.max_sub_chunk_records = 1;
    LoadedStore delta =
        LoadStore(gen, PartitionAlgorithm::kDeltaBaseline, options, 4);
    QueryLatencies dl = Measure(delta.store.get(), gen, kQueries);
    std::printf("DELTA  | %8.3f %17s | %8.3f %17s | %8.3f\n", dl.q1_seconds,
                "", dl.q2_seconds, "", dl.q3_seconds);
    report->Add(std::string(name) + "_delta_q1_seconds", dl.q1_seconds);
    Options sub_options = base;
    sub_options.max_sub_chunk_records = 1000000;  // whole key history
    LoadedStore sub =
        LoadStore(gen, PartitionAlgorithm::kSubChunkBaseline, sub_options, 4);
    QueryLatencies sl = Measure(sub.store.get(), gen, kQueries);
    std::printf("SUBCHUNK (caption): Q1 %.3fs  Q2 %.3fs  Q3 %.4fs\n",
                sl.q1_seconds, sl.q2_seconds, sl.q3_seconds);
  }
}

}  // namespace

int main() {
  std::printf("=== Paper Fig. 11: query processing performance ===\n");
  BenchReport report("fig11_query");
  RunDataset("A0", &report);
  if (!SmokeMode()) RunDataset("C0", &report);
  std::printf(
      "\nPaper shape: BOTTOM-UP best on Q1/Q2; DELTA Q2 > DELTA Q1; Q3 falls "
      "as k grows; SUBCHUNK worst Q1/Q2, best Q3.\n");
  report.Write();
  return 0;
}
