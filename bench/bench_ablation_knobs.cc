// Ablations for the design choices the paper fixes by hand:
//
//  1. Chunk capacity C — §5.2 fixes 1 MB "since it provides a good balance
//     between the number of queries and amount of data retrieved". Sweeping
//     C shows the U-shape: tiny chunks pay per-request overhead (the §2.3
//     problem), huge chunks drag irrelevant bytes.
//  2. Shingle count l — §3.1 uses a small constant number of min-hashes;
//     more hashes sharpen the similarity ordering at linearly higher
//     partitioning cost.
//  3. Chunk overflow tolerance — §2.5 allows 25%; tighter tolerances force
//     earlier chunk cuts.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/dataset_catalog.h"
#include "workload/query_workload.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

/// Smoke mode shrinks every sweep's dataset the same way.
DatasetConfig SweepConfig(const char* name) {
  auto config = *CatalogConfig(name);
  if (SmokeMode()) {
    config.num_versions = std::min<uint32_t>(config.num_versions, 12);
    config.records_per_version =
        std::min<uint32_t>(config.records_per_version, 60);
  }
  return config;
}

void ChunkCapacitySweep(BenchReport* report) {
  auto config = SweepConfig("B1");
  GeneratedDataset gen = GenerateDataset(config);
  uint64_t version_bytes = ScaledChunkCapacity(gen) * 10;
  std::printf("--- Ablation 1: chunk capacity C (dataset B1, BOTTOM-UP, "
              "version ~%s) ---\n",
              HumanBytes(version_bytes).c_str());
  std::printf("%-12s %10s %14s %14s %14s\n", "C", "#chunks", "Q1 span/ver",
              "Q1 bytes/ver", "Q1 sim (s)");
  for (double fraction : {0.005, 0.02, 0.1, 0.5, 2.0}) {
    Options options;
    options.chunk_capacity_bytes =
        std::max<uint64_t>(512, static_cast<uint64_t>(version_bytes * fraction));
    options.max_sub_chunk_records = 1;
    LoadedStore loaded =
        LoadStore(gen, PartitionAlgorithm::kBottomUp, options, 4);
    QueryWorkloadGenerator qgen(&gen.dataset, 5);
    QueryStats stats;
    const size_t kQueries = 10;
    for (const Query& q : qgen.FullVersionQueries(kQueries)) {
      if (!loaded.store->GetVersion(q.version, &stats).ok()) std::exit(1);
    }
    std::printf("%-12s %10llu %14.1f %14s %14.3f\n",
                HumanBytes(options.chunk_capacity_bytes).c_str(),
                (unsigned long long)loaded.store->NumChunks(),
                static_cast<double>(stats.chunks_fetched) / kQueries,
                HumanBytes(stats.bytes_fetched / kQueries).c_str(),
                stats.simulated_micros / 1e6 / kQueries);
    report->Add(StringPrintf("capacity_frac%g_q1_sim_seconds", fraction),
                stats.simulated_micros / 1e6 / kQueries);
  }
  std::printf("Expected U-shape: latency worst at the extremes, best near "
              "C ~ version/10 (the paper's 1 MB regime).\n\n");
}

void ShingleCountSweep(BenchReport* report) {
  auto config = SweepConfig("A1");
  GeneratedDataset gen = GenerateDataset(config);
  std::printf("--- Ablation 2: min-hash count l (dataset A1, SHINGLE) ---\n");
  std::printf("%-6s %14s %16s\n", "l", "total span", "partition time");
  for (uint32_t l : {1u, 2u, 4u, 8u, 16u}) {
    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
    options.max_sub_chunk_records = 1;
    options.compression = CompressionType::kNone;
    options.shingle_count = l;
    SpanResult r = RunPartitioning(gen, PartitionAlgorithm::kShingle, options);
    std::printf("%-6u %14llu %15.3fs\n", l,
                (unsigned long long)r.total_span, r.partition_seconds);
    report->Add(StringPrintf("shingles_%u_total_span", l),
                static_cast<double>(r.total_span));
  }
  std::printf("More hashes refine the ordering with diminishing returns; "
              "time grows ~linearly in l.\n\n");
}

void OverflowToleranceSweep(BenchReport* report) {
  auto config = SweepConfig("B1");
  GeneratedDataset gen = GenerateDataset(config);
  std::printf("--- Ablation 3: chunk overflow tolerance (dataset B1, "
              "BOTTOM-UP) ---\n");
  std::printf("%-12s %10s %14s\n", "tolerance", "#chunks", "total span");
  for (double tolerance : {0.0, 0.1, 0.25, 0.5}) {
    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
    options.chunk_overflow_fraction = tolerance;
    options.max_sub_chunk_records = 1;
    options.compression = CompressionType::kNone;
    SpanResult r =
        RunPartitioning(gen, PartitionAlgorithm::kBottomUp, options);
    std::printf("%-12.2f %10llu %14llu\n", tolerance,
                (unsigned long long)r.num_chunks,
                (unsigned long long)r.total_span);
    report->Add(StringPrintf("tolerance_%d_total_span",
                             static_cast<int>(tolerance * 100)),
                static_cast<double>(r.total_span));
  }
  std::printf("Looser tolerance lets records that belong together stay "
              "together; the paper's 25%% captures most of the benefit.\n");
}

}  // namespace

int main() {
  std::printf("=== Ablations for the paper's fixed design choices ===\n\n");
  BenchReport report("ablation_knobs");
  ChunkCapacitySweep(&report);
  ShingleCountSweep(&report);
  OverflowToleranceSweep(&report);
  report.Write();
  return 0;
}
