// Traffic benchmark: saturation throughput and tail latency of the async
// pipelined read path against the synchronous engine, on one deterministic
// mixed query stream (full-version / range / evolution / point, Zipf-skewed
// toward recent versions).
//
// The synchronous engine runs one query at a time: each query's simulated
// latency is max-over-nodes of its per-node service plus coordinator
// overhead, and every other node sits idle until the next query. The async
// engine keeps many queries in flight through one coordinator on a
// deterministic virtual-time executor; each node serves its batches FIFO, so
// saturation throughput is bounded by aggregate node capacity — the resource
// the sync engine leaves on the table. Strict reads must stay byte-identical:
// the bench fails hard if any async run's result fingerprint or chunk/byte
// accounting diverges from the sync baseline.
//
// Series:
//   sync          closed loop, one at a time (the baseline)
//   async_cN      closed loop with N queries in flight
//   open_loop     Poisson-free fixed-interval arrivals at ~60% of the
//                 measured saturation rate (latency includes queueing)
//
// Reported per series: p50/p99/p99.9 virtual-time latency (micros metrics
// feed tools/bench_diff.py's 25% regression gate) and throughput; plus the
// headline saturation_speedup = best async throughput / sync throughput.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/executor.h"
#include "common/flight_recorder.h"
#include "workload/traffic.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

void ReportSeries(const std::string& series, const TrafficReport& r,
                  BenchReport* report) {
  std::printf("%-10s %8.1f qps   p50 %7llu  p99 %7llu  p99.9 %7llu us\n",
              series.c_str(), r.throughput_qps(),
              (unsigned long long)r.PercentileLatencyUs(50),
              (unsigned long long)r.PercentileLatencyUs(99),
              (unsigned long long)r.PercentileLatencyUs(99.9));
  report->Add(series + "_p50_micros",
              static_cast<double>(r.PercentileLatencyUs(50)));
  report->Add(series + "_p99_micros",
              static_cast<double>(r.PercentileLatencyUs(99)));
  report->Add(series + "_p999_micros",
              static_cast<double>(r.PercentileLatencyUs(99.9)));
  report->Add(series + "_throughput_qps", r.throughput_qps());
}

/// Per-class latency attribution: where each query class's simulated time
/// went (queue wait behind saturated nodes, service, retry penalty, hedge
/// savings). All names end in _micros, so bench_diff.py gates them at the
/// deterministic simulation tier.
void ReportAttribution(const std::string& series, const TrafficReport& r,
                       BenchReport* report) {
  static const char* const kClassNames[] = {"full", "range", "evolution",
                                            "point"};
  for (size_t k = 0; k < r.stats_by_kind.size(); ++k) {
    const QueryStats& qs = r.stats_by_kind[k];
    const std::string prefix = series + "_" + kClassNames[k] + "_";
    report->Add(prefix + "queue_wait_micros",
                static_cast<double>(qs.queue_wait_us));
    report->Add(prefix + "service_micros", static_cast<double>(qs.service_us));
    report->Add(prefix + "retry_micros",
                static_cast<double>(qs.retry_penalty_us));
    report->Add(prefix + "hedge_micros",
                static_cast<double>(qs.hedge_delta_us));
  }
}

/// The attribution conservation invariant, enforced on every series the
/// bench runs: parts must sum to the whole, exactly.
void CheckConservation(const char* series, const TrafficReport& r) {
  const QueryStats& qs = r.stats;
  if (qs.queue_wait_us + qs.service_us + qs.retry_penalty_us -
          qs.hedge_delta_us !=
      qs.simulated_micros) {
    std::fprintf(stderr,
                 "%s: attribution violates conservation "
                 "(%llu + %llu + %llu - %llu != %llu)\n",
                 series, (unsigned long long)qs.queue_wait_us,
                 (unsigned long long)qs.service_us,
                 (unsigned long long)qs.retry_penalty_us,
                 (unsigned long long)qs.hedge_delta_us,
                 (unsigned long long)qs.simulated_micros);
    std::exit(1);
  }
}

/// Async runs must agree with the sync baseline on every query's bytes and
/// on the backend work performed — the strict-read equivalence contract.
void CheckEquivalent(const char* series, const TrafficReport& async_report,
                     const TrafficReport& sync_report) {
  if (async_report.result_hash != sync_report.result_hash ||
      async_report.failed != sync_report.failed) {
    std::fprintf(stderr,
                 "%s: async results diverge from sync baseline "
                 "(hash %016llx vs %016llx, failed %llu vs %llu)\n",
                 series, (unsigned long long)async_report.result_hash,
                 (unsigned long long)sync_report.result_hash,
                 (unsigned long long)async_report.failed,
                 (unsigned long long)sync_report.failed);
    std::exit(1);
  }
  if (async_report.stats.chunks_fetched != sync_report.stats.chunks_fetched ||
      async_report.stats.bytes_fetched != sync_report.stats.bytes_fetched) {
    std::fprintf(stderr, "%s: async accounting diverges from sync baseline\n",
                 series);
    std::exit(1);
  }
}

}  // namespace

int main() {
  DatasetConfig config;
  config.name = "traffic";
  config.num_versions = SmokeMode() ? 10 : 40;
  config.records_per_version = SmokeMode() ? 80 : 400;
  config.record_size_bytes = 200;
  config.update_fraction = 0.10;
  config.branch_probability = 0.10;
  config.seed = 9091;
  GeneratedDataset gen = GenerateDataset(config);

  Options options;
  options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
  // 12 nodes: small queries touch one or two of them, so the sync engine
  // idles most of the cluster — the capacity the async path reclaims.
  LoadedStore loaded =
      LoadStore(gen, PartitionAlgorithm::kBottomUp, options, /*num_nodes=*/12);
  RStore* store = loaded.store.get();

  TrafficOptions traffic;
  traffic.seed = 99;
  traffic.num_queries = SmokeMode() ? 80 : 400;
  // Interactive mix: point lookups dominate (as in real checkout traffic);
  // the occasional full-version retrieval keeps whole-cluster bursts in.
  traffic.weight_full = 1;
  traffic.weight_range = 3;
  traffic.weight_evolution = 3;
  traffic.weight_point = 13;
  traffic.range_selectivity = 0.03;
  const std::vector<Query> queries = GenerateTraffic(gen.dataset, traffic);

  BenchReport report("traffic");
  const TrafficReport sync_report = RunTrafficSync(store, queries);
  CheckConservation("sync", sync_report);
  ReportSeries("sync", sync_report, &report);
  ReportAttribution("sync", sync_report, &report);

  // One executor per store: all async traffic against one cluster shares
  // one virtual timeline (sweeping on it keeps per-run latencies exact —
  // each run starts after the previous one drained).
  Executor executor(0);
  double saturation_qps = 0.0;
  for (uint32_t concurrency : {1u, 4u, 16u, 64u}) {
    traffic.arrival_interval_us = 0;
    traffic.concurrency = concurrency;
    const TrafficReport r = RunTrafficAsync(store, &executor, queries, traffic);
    const std::string series = "async_c" + std::to_string(concurrency);
    CheckEquivalent(series.c_str(), r, sync_report);
    CheckConservation(series.c_str(), r);
    ReportSeries(series, r, &report);
    if (concurrency == 16) ReportAttribution(series, r, &report);
    if (r.throughput_qps() > saturation_qps) {
      saturation_qps = r.throughput_qps();
    }
  }
  const double speedup = sync_report.throughput_qps() > 0
                             ? saturation_qps / sync_report.throughput_qps()
                             : 0.0;
  std::printf("saturation speedup over sync: %.2fx\n", speedup);
  report.Add("saturation_speedup", speedup);

  // Open loop below saturation: latency now includes queueing behind
  // earlier arrivals, the regime the tail percentiles are about.
  traffic.arrival_interval_us =
      static_cast<uint64_t>(1e6 / (0.6 * saturation_qps));
  const TrafficReport open = RunTrafficAsync(store, &executor, queries, traffic);
  CheckEquivalent("open_loop", open, sync_report);
  CheckConservation("open_loop", open);
  ReportSeries("open_loop", open, &report);

  report.Write();

  // The flight recorder saw every query above; its dump is the bench's
  // debugging artifact (tools/latency_report.py renders it). Named outside
  // the BENCH_*.json namespace so bench_diff.py never tries to gate it.
  const std::string dump = FlightRecorder::Default().DumpJson();
  std::FILE* f = std::fopen("flight_traffic.json", "w");
  if (f != nullptr) {
    std::fwrite(dump.data(), 1, dump.size(), f);
    std::fclose(f);
    std::printf("wrote flight_traffic.json\n");
  }
  return 0;
}
