// Ingest-path benchmark: commit throughput and batch processing cost as the
// online batch size varies (§4: "a smaller batch size would result in faster
// partitioning, however the quality of partitioning degrades"). Also shows
// the write-store footprint between batches and the layout-quality price
// already quantified in Fig. 13.

#include <cstdio>
#include <unordered_map>

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/dataset_catalog.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

}  // namespace

int main() {
  auto config = *CatalogConfig("B1");
  GeneratedDataset gen = GenerateDataset(config);
  uint32_t versions = gen.dataset.graph.size();
  if (SmokeMode()) versions = std::min<uint32_t>(versions, 24);
  std::printf("=== Ingest throughput vs online batch size (dataset B1, "
              "%u versions, BOTTOM-UP) ===\n\n",
              versions);
  std::printf("%-8s %14s %14s %14s %12s\n", "Batch", "commits/s",
              "ingest total", "total span", "#chunks");

  BenchReport report("ingest");
  for (uint32_t batch : {1u, 8u, 32u, 128u, versions}) {
    MemoryStore backend;
    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
    options.max_sub_chunk_records = 1;
    options.compression = CompressionType::kNone;
    options.online_batch_size = batch;
    auto store = RStore::Open(&backend, options);
    if (!store.ok()) return 1;

    Stopwatch timer;
    for (VersionId v = 0; v < versions; ++v) {
      CommitDelta delta;
      const VersionDelta& d = gen.dataset.deltas[v];
      std::unordered_map<std::string, bool> added;
      for (const CompositeKey& ck : d.added) {
        added[ck.key] = true;
        delta.upserts.push_back(Record{ck, gen.payloads.at(ck)});
      }
      for (const CompositeKey& ck : d.removed) {
        if (!added.count(ck.key)) delta.deletes.push_back(ck.key);
      }
      VersionId parent =
          v == 0 ? kInvalidVersion : gen.dataset.graph.PrimaryParent(v);
      auto r = (*store)->Commit(parent, std::move(delta));
      if (!r.ok()) {
        std::fprintf(stderr, "commit failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    if (!(*store)->Flush().ok()) return 1;
    double seconds = timer.ElapsedSeconds();
    std::printf("%-8u %14.0f %13.2fs %14llu %12llu\n", batch,
                versions / seconds, seconds,
                (unsigned long long)(*store)->TotalVersionSpan(),
                (unsigned long long)(*store)->NumChunks());
    const std::string prefix = StringPrintf("batch_%u_", batch);
    report.Add(prefix + "commits_per_sec", versions / seconds);
    report.Add(prefix + "total_span",
               static_cast<double>((*store)->TotalVersionSpan()));
  }
  // --- Weak scaling: one large version, records/sec vs ingest_shards ---
  //
  // The sharded pipeline parallelizes sub-chunk compression and chunk
  // encoding while keeping backend writes on the calling thread in shard
  // order, so the wall-clock records/sec should scale with shard count
  // while the simulated backend charge stays byte-for-byte identical to
  // serial ingest. The *_sim_micros metrics encode that invariant: they
  // are deterministic, gate at the 25% sim tier, and must agree across
  // every shard count.
  DatasetConfig scaling_config;
  scaling_config.name = "weak-scaling";
  scaling_config.num_versions = 1;
  scaling_config.records_per_version = SmokeMode() ? 12000 : 100000;
  scaling_config.record_size_bytes = 1000;
  GeneratedDataset big = GenerateDataset(scaling_config);
  const uint64_t records = big.stats.avg_records_per_version;
  std::printf(
      "\n=== Weak scaling: sharded ingest of one %llu-record version ===\n\n",
      (unsigned long long)records);
  std::printf("%-8s %16s %14s %12s %10s\n", "Shards", "records/s", "ingest",
              "sim micros", "speedup");

  double serial_seconds = 0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ClusterOptions cluster_options;
    Cluster cluster(cluster_options);
    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(big);
    options.compression = CompressionType::kLZ;
    options.ingest_shards = shards;
    auto store = RStore::Open(&cluster, options);
    if (!store.ok()) return 1;
    Stopwatch timer;
    if (!(*store)->BulkLoad(big.dataset, big.payloads).ok()) return 1;
    if (!(*store)->Flush().ok()) return 1;
    double seconds = timer.ElapsedSeconds();
    if (shards == 1) serial_seconds = seconds;
    const uint64_t sim_micros = cluster.stats().simulated_micros;
    std::printf("%-8u %16.0f %13.2fs %12llu %9.2fx\n", shards,
                records / seconds, seconds, (unsigned long long)sim_micros,
                serial_seconds / seconds);
    const std::string prefix = StringPrintf("shards_%u_", shards);
    report.Add(prefix + "records_per_sec", records / seconds);
    report.Add(prefix + "sim_micros", static_cast<double>(sim_micros));
    if (shards == 4) {
      report.Add("speedup_4_shards", serial_seconds / seconds);
    }
  }
  report.Write();
  std::printf(
      "\nShape: tiny batches re-run the partitioner constantly (slow ingest, "
      "worse span); large batches amortize it and approach offline layout "
      "quality. Weak scaling: records/sec grows with ingest_shards while "
      "the simulated backend charge stays identical to serial.\n");
  return 0;
}
