// Reproduces paper Table 1: storage space, random full-version retrieval
// cost (data transferred + number of backend queries), and point-query cost
// for the four storage options, on the analysis' setting: an n-version
// chain of constant-size versions with update fraction d per step.
//
//   Table 1 (paper):            storage        version query      point query
//   Independent w/ chunking     n*mv*s         (mv*s, mv*s/sc)    (sc, 1)
//   DELTA                       mv*s + cd(n-1)mv*s   (.., n/2)    (.., n/2)
//   SUBCHUNK                    mv*s + cd(n-1)mv*s   (mv(s+..), mv)  (.., 1)
//   Single-address space        mv*s + d(n-1)mv*s    (mv*s, mv)   (s, 1)
//
// This bench measures those quantities on the built system and prints the
// measured values next to the closed forms.

#include <cstdio>

#include "bench_util.h"

#include "common/string_util.h"
#include "workload/query_workload.h"

namespace {

using namespace rstore;
using namespace rstore::workload;
using namespace rstore::bench;

struct Row {
  const char* label;
  PartitionAlgorithm algorithm;
  uint32_t k;
};

}  // namespace

int main() {
  std::printf("=== Paper Table 1: measured costs on an n-version chain ===\n");
  DatasetConfig config;
  config.name = "chain";
  config.num_versions = 100;        // n
  config.records_per_version = 500; // mv
  config.update_fraction = 0.05;    // d
  config.record_size_bytes = 400;   // s
  config.insert_fraction = 0;
  config.delete_fraction = 0;
  config.pd = 0.05;                 // high intra-record overlap => c << 1
  if (SmokeMode()) {
    config.num_versions = 10;
    config.records_per_version = 50;
  }
  GeneratedDataset gen = GenerateDataset(config);
  std::printf("n=%u versions, mv=%u records, s=%uB, d=%.2f\n\n",
              config.num_versions, config.records_per_version,
              config.record_size_bytes, config.update_fraction);

  const Row rows[] = {
      {"Independent w/chunking", PartitionAlgorithm::kBottomUp, 1},
      {"DELTA", PartitionAlgorithm::kDeltaBaseline, 1},
      {"SUBCHUNK", PartitionAlgorithm::kSubChunkBaseline, 1000000},
      {"Single-address space", PartitionAlgorithm::kSingleAddressSpace, 1},
  };
  std::printf("%-24s %12s %10s | %14s %10s | %12s %8s\n", "Layout", "Storage",
              "#chunks", "Q1 data", "Q1 #query", "Point data", "Pt #qry");

  QueryWorkloadGenerator qgen(&gen.dataset, 3);
  auto version_queries = qgen.FullVersionQueries(8);
  auto point_queries = qgen.PointQueries(16);

  BenchReport report("table1_costs");
  for (const Row& row : rows) {
    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
    options.max_sub_chunk_records = row.k;
    LoadedStore loaded = LoadStore(gen, row.algorithm, options, 4);
    uint64_t storage = 0;
    (void)loaded.cluster->Scan(options.chunk_table,
                               [&](Slice, Slice v) { storage += v.size(); });

    QueryStats q1;
    for (const auto& q : version_queries) {
      auto r = loaded.store->GetVersion(q.version, &q1);
      if (!r.ok()) {
        std::fprintf(stderr, "%s Q1 failed: %s\n", row.label,
                     r.status().ToString().c_str());
        return 1;
      }
    }
    QueryStats pt;
    size_t found = 0;
    for (const auto& q : point_queries) {
      auto r = loaded.store->GetRecord(q.key, q.version, &pt);
      if (r.ok()) ++found;
    }
    std::printf("%-24s %12s %10llu | %14s %10.1f | %12s %8.1f\n", row.label,
                HumanBytes(storage).c_str(),
                (unsigned long long)loaded.store->NumChunks(),
                HumanBytes(q1.bytes_fetched / version_queries.size()).c_str(),
                static_cast<double>(q1.chunks_fetched) /
                    version_queries.size(),
                HumanBytes(pt.bytes_fetched / point_queries.size()).c_str(),
                static_cast<double>(pt.chunks_fetched) /
                    point_queries.size());
    const std::string prefix =
        StringPrintf("row%d_", static_cast<int>(&row - rows));
    report.Add(prefix + "storage_bytes", static_cast<double>(storage));
    report.Add(prefix + "q1_avg_bytes",
               static_cast<double>(q1.bytes_fetched) /
                   version_queries.size());
    report.Add(prefix + "q1_avg_chunks",
               static_cast<double>(q1.chunks_fetched) /
                   version_queries.size());
    report.Add(prefix + "point_avg_chunks",
               static_cast<double>(pt.chunks_fetched) /
                   point_queries.size());
  }
  report.Write();
  std::printf(
      "\nPaper shape: chunked layout pays n*mv*s storage (no dedup benefit "
      "beyond sharing) but answers Q1 with mv*s/sc queries;\nDELTA/SUBCHUNK "
      "store compactly; DELTA needs ~n/2 queries per retrieval; SUBCHUNK "
      "fetches every group for Q1; single-address needs mv queries.\n");
  return 0;
}
