// Regenerates paper Table 2: the description of every catalog dataset
// (scaled; see workload/dataset_catalog.h for the paper -> repo scale map).

#include <cstdio>

#include "bench_util.h"

#include "common/stopwatch.h"
#include "workload/dataset_catalog.h"

int main() {
  using namespace rstore;
  using namespace rstore::workload;
  using namespace rstore::bench;
  std::printf("=== Paper Table 2: dataset descriptions (scaled catalog) ===\n\n");
  std::printf("%s\n", StatsHeader().c_str());
  BenchReport report("table2_datasets");
  int generated = 0;
  for (const CatalogEntry& entry : DatasetCatalog()) {
    if (SmokeMode() && generated >= 2) break;
    Stopwatch timer;
    GeneratedDataset gen = GenerateDataset(entry.config);
    Status s = gen.dataset.Validate();
    if (!s.ok()) {
      std::fprintf(stderr, "dataset %s invalid: %s\n", entry.name,
                   s.ToString().c_str());
      return 1;
    }
    std::printf("%s   (generated+validated in %.2fs)\n",
                FormatStatsRow(gen.stats).c_str(), timer.ElapsedSeconds());
    const std::string prefix = std::string(entry.name) + "_";
    report.Add(prefix + "unique_records",
               static_cast<double>(gen.stats.unique_records));
    report.Add(prefix + "generate_seconds", timer.ElapsedSeconds());
    ++generated;
  }
  report.Write();
  std::printf(
      "\nPaper reference rows (unscaled): A0: 300 versions, depth 300, 100K "
      "recs/ver, 50%% random;\n  C0: 10001 versions, depth 143, 20K recs/ver, "
      "10%% random, 16.5M unique records, 196 GB total; etc.\n");
  return 0;
}
