// Reproduces paper Fig. 8: total version span (number of chunks retrieved to
// reconstruct every version) of BOTTOM-UP, SHINGLE, DEPTHFIRST, BREADTHFIRST
// and the DELTA baseline across the catalog datasets, without record-level
// compression (k = 1) and chunk size scaled to the paper's 1 MB regime.
//
// Expected shape (paper §5.2): BOTTOM-UP, SHINGLE and DEPTHFIRST beat DELTA
// everywhere (BOTTOM-UP up to ~8x, ~3.6x average); SHINGLE degrades as
// average tree depth falls (C*/D*), DEPTHFIRST improves; BREADTHFIRST is
// never better than DEPTHFIRST and equals it on the linear chains (A*).

#include <cstdio>

#include "bench_util.h"
#include "workload/dataset_catalog.h"

int main() {
  using namespace rstore;
  using namespace rstore::workload;
  using namespace rstore::bench;

  const PartitionAlgorithm algorithms[] = {
      PartitionAlgorithm::kBottomUp, PartitionAlgorithm::kShingle,
      PartitionAlgorithm::kDepthFirst, PartitionAlgorithm::kBreadthFirst,
      PartitionAlgorithm::kDeltaBaseline};

  std::printf("=== Paper Fig. 8: total version span, no compression (k=1) "
              "===\n\n");
  std::printf("%-8s %12s %12s %12s %12s %12s %18s\n", "Dataset", "BOTTOM-UP",
              "SHINGLE", "DFS", "BFS", "DELTA", "DELTA/BOTTOM-UP");

  BenchReport report("fig8_version_span");
  double worst_ratio = 0, ratio_sum = 0;
  int rows = 0;
  for (const CatalogEntry& entry : DatasetCatalog()) {
    std::string name = entry.name;
    if (name == "E" || name == "F") continue;  // Fig. 8 covers A*-D*
    if (SmokeMode() && rows >= 2) break;
    GeneratedDataset gen = GenerateDataset(entry.config);
    Options options;
    options.chunk_capacity_bytes = ScaledChunkCapacity(gen);
    options.max_sub_chunk_records = 1;
    options.compression = CompressionType::kNone;  // k=1, span-only

    uint64_t spans[5];
    for (int a = 0; a < 5; ++a) {
      spans[a] = RunPartitioning(gen, algorithms[a], options).total_span;
    }
    double ratio = static_cast<double>(spans[4]) / spans[0];
    worst_ratio = std::max(worst_ratio, ratio);
    ratio_sum += ratio;
    ++rows;
    std::printf("%-8s %12llu %12llu %12llu %12llu %12llu %17.2fx\n",
                entry.name, (unsigned long long)spans[0],
                (unsigned long long)spans[1], (unsigned long long)spans[2],
                (unsigned long long)spans[3], (unsigned long long)spans[4],
                ratio);
    report.Add(name + "_bottom_up_span", static_cast<double>(spans[0]));
    report.Add(name + "_delta_span", static_cast<double>(spans[4]));
    report.Add(name + "_delta_over_bottom_up", ratio);
  }
  std::printf("\nDELTA vs BOTTOM-UP: max %.2fx, average %.2fx  (paper: up to "
              "8.21x, avg ~3.56x)\n",
              worst_ratio, ratio_sum / rows);
  report.Add("max_delta_over_bottom_up", worst_ratio);
  report.Add("avg_delta_over_bottom_up", ratio_sum / rows);
  report.Write();
  return 0;
}
