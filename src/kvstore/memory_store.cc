#include "kvstore/memory_store.h"

namespace rstore {

Status MemoryStore::CreateTable(const std::string& table) {
  MutexLock lock(mu_);
  tables_.try_emplace(table);
  return Status::OK();
}

Status MemoryStore::Put(const std::string& table, Slice key, Slice value) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  it->second[key.ToString()] = value.ToString();
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  return Status::OK();
}

Status MemoryStore::WriteBatch(
    const std::string& table,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  for (const auto& [key, value] : entries) {
    it->second[key] = value;
    ++stats_.puts;
    stats_.bytes_written += key.size() + value.size();
  }
  return Status::OK();
}

Result<std::string> MemoryStore::Get(const std::string& table, Slice key) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  ++stats_.gets;
  ++stats_.keys_requested;
  auto kit = it->second.find(key.ToString());
  if (kit == it->second.end()) {
    return Status::NotFound("key: " + key.ToString());
  }
  stats_.bytes_read += kit->second.size();
  return kit->second;
}

Status MemoryStore::MultiGet(const std::string& table,
                             const std::vector<std::string>& keys,
                             std::map<std::string, std::string>* out,
                             TraceContext* /*trace*/) {
  // Single node, zero modeled latency: nothing to record in a trace.
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  ++stats_.multiget_batches;
  stats_.keys_requested += keys.size();
  for (const std::string& key : keys) {
    auto kit = it->second.find(key);
    if (kit != it->second.end()) {
      stats_.bytes_read += kit->second.size();
      (*out)[key] = kit->second;
    }
  }
  return Status::OK();
}

Status MemoryStore::Delete(const std::string& table, Slice key) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  ++stats_.deletes;
  it->second.erase(key.ToString());
  return Status::OK();
}

Status MemoryStore::Scan(
    const std::string& table,
    const std::function<void(Slice key, Slice value)>& fn) {
  // Snapshot under the lock, iterate outside it: invoking an arbitrary
  // callback with mu_ held self-deadlocks the moment the callback re-enters
  // the store (the lock-rank registry flags exactly this in debug builds).
  Table snapshot;
  {
    MutexLock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("table: " + table);
    snapshot = it->second;
  }
  for (const auto& [key, value] : snapshot) {
    fn(Slice(key), Slice(value));
  }
  return Status::OK();
}

Result<uint64_t> MemoryStore::TableSize(const std::string& table) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  return static_cast<uint64_t>(it->second.size());
}

KVStats MemoryStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void MemoryStore::ResetStats() {
  MutexLock lock(mu_);
  stats_ = KVStats{};
}

uint64_t MemoryStore::TotalBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    for (const auto& [key, value] : table) {
      total += key.size() + value.size();
    }
  }
  return total;
}

}  // namespace rstore
