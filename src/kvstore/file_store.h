#ifndef RSTORE_KVSTORE_FILE_STORE_H_
#define RSTORE_KVSTORE_FILE_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "common/sync.h"
#include "kvstore/kv_store.h"

namespace rstore {

/// A durable single-node KVStore backed by a directory of per-table
/// append-only log files — the "local cluster" deployment mode the paper
/// mentions (§1: RStore "can also be used in a local cluster").
///
/// Each table lives in `<dir>/<hex(table)>.log` as a sequence of
/// length-prefixed PUT/DELETE records; Open replays the log into memory, so
/// reads are served at memory speed while every write is appended (and
/// flushed) before being acknowledged. Compact() rewrites a table's log to
/// drop superseded entries. Crash-truncated tails are detected and
/// tolerated: replay stops at the first incomplete record.
class FileStore : public KVStore {
 public:
  /// Opens (creating if needed) a store rooted at `directory`.
  static Result<std::unique_ptr<FileStore>> Open(const std::string& directory);

  ~FileStore() override;

  Status CreateTable(const std::string& table) override;
  Status Put(const std::string& table, Slice key, Slice value) override;
  /// Group commit: appends every entry to the log, then flushes ONCE for the
  /// whole group — the durability point covers the batch, not each record.
  /// Stats counters match the equivalent Put sequence.
  Status WriteBatch(const std::string& table,
                    const std::vector<std::pair<std::string, std::string>>&
                        entries) override;
  Result<std::string> Get(const std::string& table, Slice key) override;
  using KVStore::MultiGet;
  Status MultiGet(const std::string& table,
                  const std::vector<std::string>& keys,
                  std::map<std::string, std::string>* out,
                  TraceContext* trace) override;
  Status Delete(const std::string& table, Slice key) override;
  /// Iterates a point-in-time snapshot of the table; the store lock is NOT
  /// held while `fn` runs, so the callback may call back into this store.
  Status Scan(const std::string& table,
              const std::function<void(Slice key, Slice value)>& fn) override;
  Result<uint64_t> TableSize(const std::string& table) override;

  KVStats stats() const override;
  void ResetStats() override;

  /// Rewrites `table`'s log keeping only live entries; returns bytes saved.
  Result<uint64_t> Compact(const std::string& table);

  const std::string& directory() const { return directory_; }

 private:
  explicit FileStore(std::string directory);

  struct Table {
    std::map<std::string, std::string> entries;
    FILE* log = nullptr;
    uint64_t log_bytes = 0;
  };

  std::string LogPath(const std::string& table) const;
  Status LoadTable(const std::string& table, const std::string& path);
  /// `table` points into tables_, hence the lock requirement.
  Status AppendRecord(Table* table, char op, Slice key, Slice value)
      RSTORE_REQUIRES(mu_);
  /// AppendRecord without the flush, for group commits that flush once.
  Status AppendUnflushed(Table* table, char op, Slice key, Slice value)
      RSTORE_REQUIRES(mu_);
  Status FlushLog(Table* table) RSTORE_REQUIRES(mu_);

  std::string directory_;
  mutable Mutex mu_{kLockRankFileStore, "FileStore::mu_"};
  std::map<std::string, Table> tables_ RSTORE_GUARDED_BY(mu_);
  KVStats stats_ RSTORE_GUARDED_BY(mu_);
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_FILE_STORE_H_
