#include "kvstore/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace rstore {

namespace {

/// Registry handles for the coordinator's traffic counters, resolved once.
/// Every update below is one relaxed atomic op — no locks on the hot path.
struct ClusterMetrics {
  Counter* requests_total;
  Counter* multiget_batches_total;
  Counter* keys_requested_total;
  Counter* bytes_read_total;
  Counter* bytes_written_total;
  Counter* simulated_micros_total;
  Counter* retries_total;
  Counter* hedges_total;
  Counter* hedge_wins_total;
  Counter* timeouts_total;
  Counter* handoff_hints_total;
  Counter* handoff_replays_total;
  Counter* queue_wait_micros_total;
  Counter* service_micros_total;
  Counter* retry_penalty_micros_total;
  Counter* hedge_saved_micros_total;
  Histogram* multiget_batch_keys;

  static const ClusterMetrics& Get() {
    static const ClusterMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Default();
      ClusterMetrics m;
      m.requests_total = registry.GetCounter("rstore_kvs_requests_total");
      m.multiget_batches_total =
          registry.GetCounter("rstore_kvs_multiget_batches_total");
      m.keys_requested_total =
          registry.GetCounter("rstore_kvs_keys_requested_total");
      m.bytes_read_total = registry.GetCounter("rstore_kvs_bytes_read_total");
      m.bytes_written_total =
          registry.GetCounter("rstore_kvs_bytes_written_total");
      m.simulated_micros_total =
          registry.GetCounter("rstore_kvs_simulated_micros_total");
      m.retries_total = registry.GetCounter("rstore_kvs_retries_total");
      m.hedges_total = registry.GetCounter("rstore_kvs_hedges_total");
      m.hedge_wins_total = registry.GetCounter("rstore_kvs_hedge_wins_total");
      m.timeouts_total = registry.GetCounter("rstore_kvs_timeouts_total");
      m.handoff_hints_total =
          registry.GetCounter("rstore_kvs_handoff_hints_total");
      m.handoff_replays_total =
          registry.GetCounter("rstore_kvs_handoff_replays_total");
      m.queue_wait_micros_total =
          registry.GetCounter("rstore_kvs_queue_wait_micros_total");
      m.service_micros_total =
          registry.GetCounter("rstore_kvs_service_micros_total");
      m.retry_penalty_micros_total =
          registry.GetCounter("rstore_kvs_retry_penalty_micros_total");
      m.hedge_saved_micros_total =
          registry.GetCounter("rstore_kvs_hedge_saved_micros_total");
      m.multiget_batch_keys = registry.GetHistogram(
          "rstore_kvs_multiget_batch_keys",
          Histogram::ExponentialBoundaries(1, 4.0, 8));  // 1..16384 keys
      return m;
    }();
    return metrics;
  }
};

/// Salt bases feeding FaultInjector::Decide/UniformAt so the different uses
/// of one operation tick (primary read vs. write vs. hedge vs. backoff
/// jitter) draw from independent deterministic streams. Failover rounds are
/// decorrelated by striding the salt.
constexpr uint32_t kSaltRead = 0;
constexpr uint32_t kSaltWrite = 1;
constexpr uint32_t kSaltDelete = 2;
constexpr uint32_t kSaltHedge = 3;
constexpr uint32_t kSaltJitter = 4;
constexpr uint32_t kSaltStride = 8;

/// Applies a latency-spike multiplier, rounding to whole micros.
uint64_t ScaleMicros(uint64_t us, double multiplier) {
  if (multiplier <= 1.0) return us;
  return static_cast<uint64_t>(
      std::llround(static_cast<double>(us) * multiplier));
}

/// Attribution of one completion/failure event: how its instant (relative
/// to the operation start) decomposes into queue wait, service, and retry
/// penalty, minus hedge savings. The invariant
///   queue_us + service_us + retry_us - hedge_saved_us == event instant
/// holds for every event an operation produces; the operation's attribution
/// is its critical event's (the one that set the charged latency), plus the
/// coordinator overhead as service.
struct EventAttribution {
  uint64_t queue_us = 0;
  uint64_t service_us = 0;
  uint64_t retry_us = 0;
  uint64_t hedge_saved_us = 0;
};

}  // namespace

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      ring_(options.num_nodes, options.virtual_nodes_per_node,
            options.ring_seed),
      alive_(options.num_nodes),
      injector_(options.faults, options.num_nodes),
      hints_(options.num_nodes),
      async_node_busy_us_(options.num_nodes, 0) {
  RSTORE_CHECK(options.num_nodes >= 1);
  RSTORE_CHECK(options.replication_factor >= 1);
  RSTORE_CHECK(options.retry.max_attempts >= 1);
  nodes_.reserve(options.num_nodes);
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<MemoryStore>());
  }
  for (std::atomic<bool>& alive : alive_) {
    alive.store(true, std::memory_order_relaxed);
  }
}

Status Cluster::CreateTable(const std::string& table) {
  for (auto& node : nodes_) {
    RSTORE_RETURN_IF_ERROR(node->CreateTable(table));
  }
  return Status::OK();
}

bool Cluster::NodeUp(uint32_t node, uint64_t tick) const {
  return alive_[node].load(std::memory_order_acquire) &&
         !injector_.Crashed(node, tick);
}

int Cluster::FirstUp(const std::vector<uint32_t>& replicas,
                     uint64_t tick) const {
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (NodeUp(replicas[i], tick)) return static_cast<int>(i);
  }
  return -1;
}

int Cluster::NextUp(const std::vector<uint32_t>& replicas, size_t after,
                    uint64_t tick) const {
  for (size_t i = after + 1; i < replicas.size(); ++i) {
    if (NodeUp(replicas[i], tick)) return static_cast<int>(i);
  }
  return -1;
}

Cluster::AttemptChain Cluster::SimulateAttempts(uint32_t node, uint64_t tick,
                                                uint32_t round,
                                                uint32_t salt_base,
                                                uint64_t start_us) const {
  AttemptChain chain;
  chain.start_us = start_us;
  if (!injector_.enabled()) {
    chain.served = true;
    return chain;
  }
  const uint32_t salt = salt_base + kSaltStride * round;
  for (uint32_t attempt = 0;; ++attempt) {
    const FaultDecision d = injector_.Decide(node, tick, attempt, salt);
    if (d.kind != FaultKind::kTransientError) {
      chain.served = true;
      chain.start_us = start_us;
      chain.slow_multiplier = d.slow_multiplier;
      return chain;
    }
    // A failed attempt costs the round trip that returned the error.
    const uint64_t fail_at = start_us + options_.latency.request_overhead_us;
    chain.failed_attempts.emplace_back(start_us, fail_at);
    if (attempt + 1 >= options_.retry.max_attempts) {
      chain.failure_us = fail_at;
      return chain;
    }
    const double jitter = injector_.UniformAt(
        node, tick, attempt, kSaltJitter + kSaltStride * round);
    start_us = fail_at + options_.retry.BackoffMicros(attempt + 1, jitter);
    ++chain.retries;
  }
}

Status Cluster::Put(const std::string& table, Slice key, Slice value) {
  const uint64_t tick = injector_.NextTick();
  ReplayReadyHints(tick);
  const auto replicas = ring_.Replicas(key, options_.replication_factor);
  const uint64_t timeout_us = options_.retry.request_timeout_us;
  std::vector<std::pair<uint32_t, Hint>> staged;
  int wrote = 0;
  uint64_t slowest_us = 0;
  EventAttribution crit;
  uint64_t n_retries = 0;
  uint64_t n_timeouts = 0;
  for (uint32_t node : replicas) {
    if (!NodeUp(node, tick)) {
      // Hinted handoff: capture the write for replay when the node returns
      // (the pre-fault-tolerance coordinator silently dropped it here).
      staged.push_back(
          {node, Hint{table, key.ToString(), value.ToString(), false}});
      continue;
    }
    const AttemptChain chain =
        SimulateAttempts(node, tick, /*round=*/0, kSaltWrite, /*start_us=*/0);
    n_retries += chain.retries;
    bool ok = chain.served;
    uint64_t completion = chain.failure_us;
    EventAttribution event;
    // A chain that gave up spent its whole interval on failed attempts.
    event.retry_us = chain.failure_us;
    if (ok) {
      completion = chain.start_us +
                   ScaleMicros(options_.latency.NodeServiceMicros(
                                   1, value.size()),
                               chain.slow_multiplier);
      event.retry_us = chain.start_us;
      event.service_us = completion - chain.start_us;
      if (timeout_us > 0 && completion > timeout_us) {
        ok = false;
        completion = timeout_us;
        // The coordinator stopped waiting at the deadline: only the
        // in-deadline part of the attempt is attributed.
        event.retry_us = std::min(chain.start_us, timeout_us);
        event.service_us = timeout_us - event.retry_us;
        ++n_timeouts;
      }
    }
    if (completion > slowest_us) {
      slowest_us = completion;
      crit = event;
    }
    if (!ok) {
      staged.push_back(
          {node, Hint{table, key.ToString(), value.ToString(), false}});
      continue;
    }
    RSTORE_RETURN_IF_ERROR(nodes_[node]->Put(table, key, value));
    ++wrote;
  }
  if (wrote == 0) {
    // Nothing durable: fail the write loudly and drop the staged hints (a
    // hint is a promise about a write that succeeded somewhere).
    return Status::IOError("all replicas down");
  }
  const uint64_t hinted = staged.size();
  CommitHints(std::move(staged));
  // Replica writes proceed in parallel; charge the slowest replica's chain.
  const uint64_t micros = options_.latency.coordinator_overhead_us +
                          slowest_us;
  const uint64_t service_us =
      crit.service_us + options_.latency.coordinator_overhead_us;
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.requests_total->Increment();
  metrics.bytes_written_total->Increment(key.size() + value.size());
  metrics.simulated_micros_total->Increment(micros);
  metrics.service_micros_total->Increment(service_us);
  if (crit.retry_us > 0) {
    metrics.retry_penalty_micros_total->Increment(crit.retry_us);
  }
  if (n_retries > 0) metrics.retries_total->Increment(n_retries);
  if (n_timeouts > 0) metrics.timeouts_total->Increment(n_timeouts);
  if (hinted > 0) metrics.handoff_hints_total->Increment(hinted);
  MutexLock lock(mu_);
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  stats_.simulated_micros += micros;
  stats_.service_us += service_us;
  stats_.retry_penalty_us += crit.retry_us;
  stats_.retries += n_retries;
  stats_.timeouts += n_timeouts;
  stats_.handoff_hints += hinted;
  return Status::OK();
}

Result<std::string> Cluster::Get(const std::string& table, Slice key) {
  const uint64_t tick = injector_.NextTick();
  ReplayReadyHints(tick);
  const auto replicas = ring_.Replicas(key, options_.replication_factor);
  int pos = FirstUp(replicas, tick);
  if (pos < 0) return Status::IOError("all replicas down");
  const uint64_t timeout_us = options_.retry.request_timeout_us;
  uint64_t start_us = 0;
  uint32_t round = 0;
  uint64_t n_retries = 0;
  uint64_t n_timeouts = 0;
  while (true) {
    const uint32_t node = replicas[static_cast<size_t>(pos)];
    Result<std::string> r = nodes_[node]->Get(table, key);
    const uint64_t bytes = r.ok() ? r.value().size() : 0;
    const AttemptChain chain =
        SimulateAttempts(node, tick, round, kSaltRead, start_us);
    n_retries += chain.retries;
    bool failed = !chain.served;
    uint64_t fail_time = chain.failure_us;
    uint64_t completion = 0;
    if (chain.served) {
      completion = chain.start_us +
                   ScaleMicros(options_.latency.NodeServiceMicros(1, bytes),
                               chain.slow_multiplier);
      if (timeout_us > 0 && completion > start_us + timeout_us) {
        failed = true;
        fail_time = start_us + timeout_us;
        ++n_timeouts;
      }
    }
    if (!failed) {
      const uint64_t micros =
          options_.latency.coordinator_overhead_us + completion;
      // Everything before the serving attempt's issue — failover waits and
      // backoffs across all rounds — is retry penalty; the attempt itself
      // plus the coordinator overhead is service.
      const uint64_t retry_us = chain.start_us;
      const uint64_t service_us =
          (completion - chain.start_us) + options_.latency.coordinator_overhead_us;
      const ClusterMetrics& metrics = ClusterMetrics::Get();
      metrics.requests_total->Increment();
      metrics.bytes_read_total->Increment(bytes);
      metrics.simulated_micros_total->Increment(micros);
      metrics.service_micros_total->Increment(service_us);
      if (retry_us > 0) metrics.retry_penalty_micros_total->Increment(retry_us);
      if (n_retries > 0) metrics.retries_total->Increment(n_retries);
      if (n_timeouts > 0) metrics.timeouts_total->Increment(n_timeouts);
      MutexLock lock(mu_);
      ++stats_.gets;
      ++stats_.keys_requested;
      stats_.bytes_read += bytes;
      stats_.simulated_micros += micros;
      stats_.service_us += service_us;
      stats_.retry_penalty_us += retry_us;
      stats_.retries += n_retries;
      stats_.timeouts += n_timeouts;
      return r;
    }
    // Fail over to the next serving replica, resuming at the failure time.
    pos = NextUp(replicas, static_cast<size_t>(pos), tick);
    if (pos < 0) return Status::IOError("replicas exhausted");
    start_us = fail_time;
    ++round;
  }
}

Status Cluster::MultiGet(const std::string& table,
                         const std::vector<std::string>& keys,
                         std::map<std::string, std::string>* out,
                         TraceContext* trace) {
  return MultiGetInternal(table, keys, out, /*failures=*/nullptr, trace);
}

Status Cluster::MultiGetPartial(const std::string& table,
                                const std::vector<std::string>& keys,
                                std::map<std::string, std::string>* out,
                                std::vector<KeyReadFailure>* failures,
                                TraceContext* trace) {
  RSTORE_CHECK(failures != nullptr);
  return MultiGetInternal(table, keys, out, failures, trace);
}

Status Cluster::MultiGetInternal(const std::string& table,
                                 const std::vector<std::string>& keys,
                                 std::map<std::string, std::string>* out,
                                 std::vector<KeyReadFailure>* failures,
                                 TraceContext* trace) {
  ScopedSpan span(trace, "kvs.multiget");
  const uint64_t sim_batch_start = trace != nullptr ? trace->sim_now_us() : 0;
  const uint64_t tick = injector_.NextTick();
  ReplayReadyHints(tick);

  // Route each key to its first serving replica. A routed key remembers its
  // replica list and current position so retry exhaustion or a timeout can
  // fail it over down the list.
  struct Member {
    size_t key_idx;
    std::vector<uint32_t> replicas;
    size_t pos;
  };
  struct Group {
    uint32_t node;
    uint64_t start_us;  // offset from the batch start on the simulated clock
    uint32_t round;     // failover depth, decorrelates fault decisions
    std::vector<Member> members;
    /// Attribution of start_us, inherited from the event chain that issued
    /// this group (zero for initial groups): queue + service + retry ==
    /// start_us exactly, through arbitrary failover chains.
    uint64_t attr_queue_us = 0;
    uint64_t attr_service_us = 0;
    uint64_t attr_retry_us = 0;
  };
  std::vector<std::vector<Member>> initial(nodes_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto replicas = ring_.Replicas(keys[i], options_.replication_factor);
    const int pos = FirstUp(replicas, tick);
    if (pos < 0) {
      Status down = Status::IOError("all replicas down for a key");
      if (failures == nullptr) return down;
      failures->push_back({keys[i], std::move(down)});
      continue;
    }
    const uint32_t node = replicas[static_cast<size_t>(pos)];
    initial[node].push_back(
        Member{i, std::move(replicas), static_cast<size_t>(pos)});
  }
  std::vector<Group> worklist;
  for (size_t node = 0; node < initial.size(); ++node) {
    if (initial[node].empty()) continue;
    worklist.push_back(Group{static_cast<uint32_t>(node), /*start_us=*/0,
                             /*round=*/0, std::move(initial[node])});
  }

  const uint64_t timeout_us = options_.retry.request_timeout_us;
  const uint64_t hedge_threshold = options_.latency.hedge_threshold_us;
  uint64_t slowest_us = 0;  // latest completion/failure event in the batch
  // Attribution of the critical event (the one that set slowest_us).
  // Strictly-greater updates keep ties resolved toward the first event,
  // which the async path mirrors so both engines attribute identically.
  EventAttribution crit;
  uint64_t total_bytes = 0;
  uint32_t nodes_contacted = 0;
  uint64_t n_retries = 0;
  uint64_t n_hedges = 0;
  uint64_t n_hedge_wins = 0;
  uint64_t n_timeouts = 0;

  // Routes members that failed at `fail_us` to their next serving replicas,
  // appending new groups (or recording per-key failures). Returns an error
  // in strict mode when a key has no replica left.
  auto fail_over = [&](std::vector<Member> failed, uint64_t fail_us,
                       uint32_t next_round, const EventAttribution& attr,
                       const char* reason) -> Status {
    std::map<uint32_t, std::vector<Member>> regrouped;
    for (Member& m : failed) {
      const int next = NextUp(m.replicas, m.pos, tick);
      if (next < 0) {
        Status exhausted = Status::IOError(reason);
        if (failures == nullptr) return exhausted;
        failures->push_back({keys[m.key_idx], std::move(exhausted)});
        continue;
      }
      m.pos = static_cast<size_t>(next);
      regrouped[m.replicas[m.pos]].push_back(std::move(m));
    }
    for (auto& [node, members] : regrouped) {
      // The new group inherits the failing event's attribution: its
      // start_us is that event's instant, already decomposed in `attr`.
      worklist.push_back(Group{node, fail_us, next_round, std::move(members),
                               attr.queue_us, attr.service_us, attr.retry_us});
    }
    return Status::OK();
  };

  for (size_t gi = 0; gi < worklist.size(); ++gi) {
    Group g = std::move(worklist[gi]);
    // Physical read from the serving replica. Replicas hold identical data:
    // down nodes are never routed to, and recovered ones are backfilled by
    // ReplayReadyHints before routing (above).
    std::vector<std::string> group_keys;
    group_keys.reserve(g.members.size());
    for (const Member& m : g.members) group_keys.push_back(keys[m.key_idx]);
    std::map<std::string, std::string> node_result;
    RSTORE_RETURN_IF_ERROR(
        nodes_[g.node]->MultiGet(table, group_keys, &node_result));
    uint64_t node_bytes = 0;
    for (const auto& [key, value] : node_result) node_bytes += value.size();

    // The group abandons all outstanding work at its simulated deadline:
    // every span it records is clamped there, which keeps children inside
    // the "kvs.multiget" parent interval (the parent ends at the charged
    // time, and nothing past an abandonment is charged).
    const uint64_t deadline =
        timeout_us > 0 ? g.start_us + timeout_us
                       : std::numeric_limits<uint64_t>::max();

    const AttemptChain chain =
        SimulateAttempts(g.node, tick, g.round, kSaltRead, g.start_us);
    n_retries += chain.retries;
    if (trace != nullptr) {
      for (size_t k = 0; k < chain.failed_attempts.size(); ++k) {
        const uint64_t attempt_start =
            std::min(chain.failed_attempts[k].first, deadline);
        const uint64_t attempt_end =
            std::min(chain.failed_attempts[k].second, deadline);
        if (attempt_start >= attempt_end) continue;  // abandoned before issue
        trace->AddSimulatedSpan(
            StringPrintf("node%u.retry%zu", g.node, k + 1),
            sim_batch_start + attempt_start, sim_batch_start + attempt_end);
      }
    }
    if (!chain.served) {
      const uint64_t fail_us = std::min(chain.failure_us, deadline);
      // Everything since the group's issue went to failed attempts.
      const EventAttribution event{g.attr_queue_us, g.attr_service_us,
                                   g.attr_retry_us + (fail_us - g.start_us),
                                   0};
      if (fail_us > slowest_us) {
        slowest_us = fail_us;
        crit = event;
      }
      RSTORE_RETURN_IF_ERROR(fail_over(std::move(g.members), fail_us,
                                       g.round + 1, event,
                                       "replicas exhausted for a key"));
      continue;
    }
    if (chain.start_us >= deadline) {
      // Retry backoff pushed the serving attempt past the deadline: the
      // whole group times out without the attempt being issued.
      ++n_timeouts;
      const EventAttribution event{g.attr_queue_us, g.attr_service_us,
                                   g.attr_retry_us + (deadline - g.start_us),
                                   0};
      if (deadline > slowest_us) {
        slowest_us = deadline;
        crit = event;
      }
      RSTORE_RETURN_IF_ERROR(fail_over(std::move(g.members), deadline,
                                       g.round + 1, event,
                                       "request timed out"));
      continue;
    }

    const uint64_t node_us =
        ScaleMicros(options_.latency.NodeServiceMicros(group_keys.size(),
                                                       node_bytes),
                    chain.slow_multiplier);
    const uint64_t primary_completion = chain.start_us + node_us;
    ++nodes_contacted;

    // Hedged reads: when the replica's modeled service time crosses the
    // threshold, speculatively re-issue each key to its next serving replica
    // and complete at whichever finishes first. The hedge reads the same
    // bytes, so data still comes from the primary's result. No hedge fires
    // once the deadline has passed its issue time.
    std::vector<uint64_t> completion(g.members.size(), primary_completion);
    struct HedgeEvent {
      uint32_t target;
      uint64_t end_us;
      size_t num_members;
      uint64_t latest_need;  // last effective completion among its members
    };
    std::vector<HedgeEvent> hedge_events;
    const uint64_t hedge_issue = chain.start_us + hedge_threshold;
    if (hedge_threshold > 0 && node_us > hedge_threshold &&
        hedge_issue < deadline) {
      std::map<uint32_t, std::vector<size_t>> by_target;  // member indexes
      for (size_t mi = 0; mi < g.members.size(); ++mi) {
        const Member& m = g.members[mi];
        const int next = NextUp(m.replicas, m.pos, tick);
        if (next >= 0) {
          by_target[m.replicas[static_cast<size_t>(next)]].push_back(mi);
        }
      }
      for (const auto& [target, member_idxs] : by_target) {
        ++n_hedges;
        const FaultDecision hd = injector_.Decide(
            target, tick, /*attempt=*/0, kSaltHedge + kSaltStride * g.round);
        const bool hedge_ok = hd.kind != FaultKind::kTransientError;
        uint64_t hedge_end;
        if (hedge_ok) {
          uint64_t hedge_bytes = 0;
          for (size_t mi : member_idxs) {
            auto it = node_result.find(keys[g.members[mi].key_idx]);
            if (it != node_result.end()) hedge_bytes += it->second.size();
          }
          hedge_end = hedge_issue +
                      ScaleMicros(options_.latency.NodeServiceMicros(
                                      member_idxs.size(), hedge_bytes),
                                  hd.slow_multiplier);
        } else {
          hedge_end = hedge_issue + options_.latency.request_overhead_us;
        }
        if (hedge_ok && hedge_end < primary_completion) {
          ++n_hedge_wins;
          for (size_t mi : member_idxs) completion[mi] = hedge_end;
        }
        hedge_events.push_back(HedgeEvent{target, hedge_end,
                                          member_idxs.size(), /*latest=*/0});
        for (size_t mi : member_idxs) {
          HedgeEvent& ev = hedge_events.back();
          ev.latest_need = std::max(ev.latest_need,
                                    std::min(completion[mi], deadline));
        }
      }
    }

    // Per-key deadline check, then serve whatever made it in time. A
    // member's effective completion — when the coordinator stops waiting on
    // it — is its (possibly hedged) completion, or the deadline.
    std::vector<Member> timed_out;
    uint64_t group_end = chain.start_us;  // last instant this node mattered
    for (size_t mi = 0; mi < g.members.size(); ++mi) {
      if (completion[mi] > deadline) {
        group_end = std::max(group_end, deadline);
        timed_out.push_back(std::move(g.members[mi]));
        continue;
      }
      group_end = std::max(group_end, completion[mi]);
      if (completion[mi] > slowest_us) {
        slowest_us = completion[mi];
        // The member's service chain: backoffs since issue are penalty, the
        // node's full modeled service is service, and a winning hedge's
        // saving subtracts (completion == primary - saved).
        crit = EventAttribution{
            g.attr_queue_us, g.attr_service_us + node_us,
            g.attr_retry_us + (chain.start_us - g.start_us),
            primary_completion - completion[mi]};
      }
      auto it = node_result.find(keys[g.members[mi].key_idx]);
      if (it != node_result.end()) {
        total_bytes += it->second.size();
        (*out)[it->first] = it->second;
      }
    }
    if (trace != nullptr) {
      // The node's span ends when its last member resolved (completed,
      // superseded by a hedge, or abandoned at the deadline) — not at the
      // modeled completion of a request nobody waited for.
      const uint32_t node_span = trace->AddSimulatedSpan(
          StringPrintf("node%u", g.node), sim_batch_start + chain.start_us,
          sim_batch_start + std::min(group_end, primary_completion));
      trace->Annotate(node_span, "keys", std::to_string(group_keys.size()));
      trace->Annotate(node_span, "bytes", std::to_string(node_bytes));
      for (const HedgeEvent& ev : hedge_events) {
        const uint32_t hedge_span = trace->AddSimulatedSpan(
            StringPrintf("node%u.hedge", ev.target),
            sim_batch_start + hedge_issue,
            sim_batch_start + std::max(hedge_issue,
                                       std::min(ev.end_us, ev.latest_need)));
        trace->Annotate(hedge_span, "keys", std::to_string(ev.num_members));
      }
    }
    if (!timed_out.empty()) {
      ++n_timeouts;
      // The coordinator waited out [issue, deadline]: backoffs are penalty,
      // the in-deadline slice of the attempt is service.
      const EventAttribution event{
          g.attr_queue_us, g.attr_service_us + (deadline - chain.start_us),
          g.attr_retry_us + (chain.start_us - g.start_us), 0};
      if (deadline > slowest_us) {
        slowest_us = deadline;
        crit = event;
      }
      RSTORE_RETURN_IF_ERROR(fail_over(std::move(timed_out), deadline,
                                       g.round + 1, event,
                                       "request timed out"));
    }
  }

  const uint64_t charged_us =
      options_.latency.coordinator_overhead_us + slowest_us;
  // The batch's attribution is the critical event's, plus the coordinator
  // overhead as service: queue + service + retry - hedge == charged_us.
  const uint64_t attr_service_us =
      crit.service_us + options_.latency.coordinator_overhead_us;
  if (trace != nullptr) {
    // The batch's simulated cost is exactly what stats_ is charged below;
    // ending the span after this advance makes its simulated duration equal
    // that charge (asserted by the observability tests).
    trace->AdvanceSim(charged_us);
    span.Annotate("keys", std::to_string(keys.size()));
    span.Annotate("bytes", std::to_string(total_bytes));
    span.Annotate("nodes", std::to_string(nodes_contacted));
    span.Annotate("queue_wait_us", std::to_string(crit.queue_us));
    span.Annotate("service_us", std::to_string(attr_service_us));
    span.Annotate("retry_penalty_us", std::to_string(crit.retry_us));
    span.Annotate("hedge_delta_us", std::to_string(crit.hedge_saved_us));
  }
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.requests_total->Increment();
  metrics.multiget_batches_total->Increment();
  metrics.keys_requested_total->Increment(keys.size());
  metrics.bytes_read_total->Increment(total_bytes);
  metrics.simulated_micros_total->Increment(charged_us);
  metrics.service_micros_total->Increment(attr_service_us);
  if (crit.queue_us > 0) {
    metrics.queue_wait_micros_total->Increment(crit.queue_us);
  }
  if (crit.retry_us > 0) {
    metrics.retry_penalty_micros_total->Increment(crit.retry_us);
  }
  if (crit.hedge_saved_us > 0) {
    metrics.hedge_saved_micros_total->Increment(crit.hedge_saved_us);
  }
  metrics.multiget_batch_keys->Observe(keys.size());
  if (n_retries > 0) metrics.retries_total->Increment(n_retries);
  if (n_hedges > 0) metrics.hedges_total->Increment(n_hedges);
  if (n_hedge_wins > 0) metrics.hedge_wins_total->Increment(n_hedge_wins);
  if (n_timeouts > 0) metrics.timeouts_total->Increment(n_timeouts);
  MutexLock lock(mu_);
  ++stats_.multiget_batches;
  stats_.keys_requested += keys.size();
  stats_.bytes_read += total_bytes;
  stats_.simulated_micros += charged_us;
  stats_.queue_wait_us += crit.queue_us;
  stats_.service_us += attr_service_us;
  stats_.retry_penalty_us += crit.retry_us;
  stats_.hedge_delta_us += crit.hedge_saved_us;
  stats_.retries += n_retries;
  stats_.hedges += n_hedges;
  stats_.hedge_wins += n_hedge_wins;
  stats_.timeouts += n_timeouts;
  return Status::OK();
}

Future<AsyncMultiGetResult> Cluster::MultiGetAsync(
    Executor* executor, const std::string& table,
    const std::vector<std::string>& keys, bool partial, TraceContext* trace) {
  RSTORE_CHECK(executor != nullptr);
  auto state = std::make_shared<AsyncMultiGetState>();
  state->executor = executor;
  state->table = table;
  state->keys = keys;
  state->partial = partial;
  state->trace = trace;
  // Same tick/hint discipline as the sync path: batches submitted in the
  // same order draw the same fault streams, which is what makes a
  // sequentially-drained async run replay the synchronous timeline.
  state->tick = injector_.NextTick();
  ReplayReadyHints(state->tick);
  state->submit_us = executor->now_us();
  state->last_event_us = state->submit_us;
  {
    MutexLock lock(mu_);
    RSTORE_DCHECK(async_executor_ == nullptr || async_executor_ == executor)
        << "one Cluster, one async executor (one virtual timeline)";
    async_executor_ = executor;
  }
  if (trace != nullptr) {
    state->span_id = trace->StartSpan("kvs.multiget");
    state->sim_batch_start = trace->sim_now_us();
  }

  // Route each key to its first serving replica (identical to the sync
  // path); initial groups are issued at the submission instant.
  using Member = AsyncMultiGetState::Member;
  using Group = AsyncMultiGetState::Group;
  std::vector<std::vector<Member>> initial(nodes_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto replicas = ring_.Replicas(keys[i], options_.replication_factor);
    const int pos = FirstUp(replicas, state->tick);
    if (pos < 0) {
      Status down = Status::IOError("all replicas down for a key");
      if (!partial) {
        AbortAsync(state, std::move(down));
        return state->promise.future();
      }
      state->result.failures.push_back({keys[i], std::move(down)});
      continue;
    }
    const uint32_t node = replicas[static_cast<size_t>(pos)];
    initial[node].push_back(
        Member{i, std::move(replicas), static_cast<size_t>(pos)});
  }
  for (size_t node = 0; node < initial.size(); ++node) {
    if (initial[node].empty()) continue;
    state->groups.push_back(Group{static_cast<uint32_t>(node),
                                  state->submit_us, /*round=*/0,
                                  std::move(initial[node])});
  }
  state->outstanding = state->groups.size();
  if (state->outstanding == 0) {
    // Nothing to contact: the batch still costs one coordinator overhead.
    const uint64_t charged = options_.latency.coordinator_overhead_us;
    state->result.charged_micros = charged;
    executor->PostAt(state->submit_us + charged,
                     [this, state] { FinalizeAsync(state); });
    return state->promise.future();
  }
  for (size_t gi = 0; gi < state->groups.size(); ++gi) {
    executor->PostAt(state->submit_us, [this, state, gi] {
      ProcessAsyncGroup(state, gi);
    });
  }
  return state->promise.future();
}

void Cluster::ProcessAsyncGroup(const AsyncStatePtr& state,
                                size_t group_index) {
  if (state->failed) return;
  using Member = AsyncMultiGetState::Member;
  // Move the group out: failovers may reallocate state->groups.
  AsyncMultiGetState::Group g = std::move(state->groups[group_index]);

  std::vector<std::string> group_keys;
  group_keys.reserve(g.members.size());
  for (const Member& m : g.members) {
    group_keys.push_back(state->keys[m.key_idx]);
  }
  std::map<std::string, std::string> node_result;
  Status read = nodes_[g.node]->MultiGet(state->table, group_keys,
                                         &node_result);
  if (!read.ok()) {
    AbortAsync(state, std::move(read));
    return;
  }
  uint64_t node_bytes = 0;
  for (const auto& [key, value] : node_result) node_bytes += value.size();

  const uint64_t timeout_us = options_.retry.request_timeout_us;
  const uint64_t hedge_threshold = options_.latency.hedge_threshold_us;
  // The deadline runs from the group's issue instant — queueing delay at
  // the node eats into the coordinator's patience, as it would for real.
  const uint64_t deadline = timeout_us > 0
                                ? g.start_us + timeout_us
                                : std::numeric_limits<uint64_t>::max();

  // Per-node FIFO queue: service begins once the node has drained every
  // batch it previously accepted on this virtual timeline.
  uint64_t service_start;
  {
    MutexLock lock(mu_);
    service_start = std::max(g.start_us, async_node_busy_us_[g.node]);
  }

  const AttemptChain chain =
      SimulateAttempts(g.node, state->tick, g.round, kSaltRead, service_start);
  state->n_retries += chain.retries;
  for (size_t k = 0; k < chain.failed_attempts.size(); ++k) {
    const uint64_t attempt_start =
        std::min(chain.failed_attempts[k].first, deadline);
    const uint64_t attempt_end =
        std::min(chain.failed_attempts[k].second, deadline);
    if (attempt_start >= attempt_end) continue;  // abandoned before issue
    state->sim_spans.push_back(
        {StringPrintf("node%u.retry%zu", g.node, k + 1), attempt_start,
         attempt_end,
         {}});
  }
  // Extends the group's inherited attribution to a failure/timeout event at
  // absolute instant `event_us`: the wait for the node's queue (clamped at
  // the event — the coordinator may stop waiting mid-queue) is queue wait,
  // the rest of the interval went to failed attempts / backoff.
  auto failure_attr = [&](uint64_t event_us) {
    const uint64_t queue_end = std::min(service_start, event_us);
    return EventAttribution{g.attr_queue_us + (queue_end - g.start_us),
                            g.attr_service_us,
                            g.attr_retry_us + (event_us - queue_end), 0};
  };
  // Considers one event as the batch's critical event; strictly-greater
  // matches the sync path's std::max tie-breaking exactly.
  auto consider = [&state](uint64_t event_us, const EventAttribution& attr) {
    if (event_us > state->last_event_us) {
      state->last_event_us = event_us;
      state->crit_queue_us = attr.queue_us;
      state->crit_service_us = attr.service_us;
      state->crit_retry_us = attr.retry_us;
      state->crit_hedge_us = attr.hedge_saved_us;
    }
  };
  if (!chain.served) {
    const uint64_t fail_us = std::min(chain.failure_us, deadline);
    const EventAttribution event = failure_attr(fail_us);
    consider(fail_us, event);
    Status status = AsyncFailOver(state, std::move(g.members), fail_us,
                                  g.round + 1, event.queue_us,
                                  event.service_us, event.retry_us,
                                  "replicas exhausted for a key");
    if (!status.ok()) {
      AbortAsync(state, std::move(status));
      return;
    }
    AsyncGroupResolved(state);
    return;
  }
  if (chain.start_us >= deadline) {
    // Queueing and/or retry backoff pushed the serving attempt past the
    // deadline: the whole group times out without the attempt being issued.
    ++state->n_timeouts;
    const EventAttribution event = failure_attr(deadline);
    consider(deadline, event);
    Status status = AsyncFailOver(state, std::move(g.members), deadline,
                                  g.round + 1, event.queue_us,
                                  event.service_us, event.retry_us,
                                  "request timed out");
    if (!status.ok()) {
      AbortAsync(state, std::move(status));
      return;
    }
    AsyncGroupResolved(state);
    return;
  }

  const uint64_t node_us = ScaleMicros(
      options_.latency.NodeServiceMicros(group_keys.size(), node_bytes),
      chain.slow_multiplier);
  const uint64_t primary_completion = chain.start_us + node_us;
  ++state->nodes_contacted;
  {
    MutexLock lock(mu_);
    async_node_busy_us_[g.node] =
        std::max(async_node_busy_us_[g.node], primary_completion);
  }
  MaybeSampleAsyncLoad(state->executor->now_us());

  // Hedged reads, as in the sync path, except that the hedge target's queue
  // delays the speculative request — so whether a hedge *wins* depends on
  // how busy its target is, and two attempts genuinely race.
  std::vector<uint64_t> completion(g.members.size(), primary_completion);
  struct HedgeEvent {
    uint32_t target;
    uint64_t end_us;
    size_t num_members;
    uint64_t latest_need;
  };
  std::vector<HedgeEvent> hedge_events;
  const uint64_t hedge_issue = chain.start_us + hedge_threshold;
  if (hedge_threshold > 0 && node_us > hedge_threshold &&
      hedge_issue < deadline) {
    std::map<uint32_t, std::vector<size_t>> by_target;  // member indexes
    for (size_t mi = 0; mi < g.members.size(); ++mi) {
      const Member& m = g.members[mi];
      const int next = NextUp(m.replicas, m.pos, state->tick);
      if (next >= 0) {
        by_target[m.replicas[static_cast<size_t>(next)]].push_back(mi);
      }
    }
    for (const auto& [target, member_idxs] : by_target) {
      ++state->n_hedges;
      const FaultDecision hd =
          injector_.Decide(target, state->tick, /*attempt=*/0,
                           kSaltHedge + kSaltStride * g.round);
      const bool hedge_ok = hd.kind != FaultKind::kTransientError;
      uint64_t hedge_begin;
      {
        MutexLock lock(mu_);
        hedge_begin = std::max(hedge_issue, async_node_busy_us_[target]);
      }
      uint64_t hedge_end;
      if (hedge_ok) {
        uint64_t hedge_bytes = 0;
        for (size_t mi : member_idxs) {
          auto it = node_result.find(state->keys[g.members[mi].key_idx]);
          if (it != node_result.end()) hedge_bytes += it->second.size();
        }
        hedge_end = hedge_begin +
                    ScaleMicros(options_.latency.NodeServiceMicros(
                                    member_idxs.size(), hedge_bytes),
                                hd.slow_multiplier);
        MutexLock lock(mu_);
        async_node_busy_us_[target] =
            std::max(async_node_busy_us_[target], hedge_end);
      } else {
        hedge_end = hedge_begin + options_.latency.request_overhead_us;
      }
      if (hedge_ok && hedge_end < primary_completion) {
        ++state->n_hedge_wins;
        for (size_t mi : member_idxs) completion[mi] = hedge_end;
      }
      hedge_events.push_back(
          HedgeEvent{target, hedge_end, member_idxs.size(), /*latest=*/0});
      for (size_t mi : member_idxs) {
        HedgeEvent& ev = hedge_events.back();
        ev.latest_need =
            std::max(ev.latest_need, std::min(completion[mi], deadline));
      }
    }
  }

  // Per-key deadline check, then serve whatever made it in time.
  std::vector<Member> timed_out;
  uint64_t group_end = chain.start_us;
  for (size_t mi = 0; mi < g.members.size(); ++mi) {
    if (completion[mi] > deadline) {
      group_end = std::max(group_end, deadline);
      timed_out.push_back(std::move(g.members[mi]));
      continue;
    }
    group_end = std::max(group_end, completion[mi]);
    // Queue wait ends when the node starts the chain; backoffs until the
    // serving attempt are penalty; the node's full modeled service is
    // service; a winning hedge's saving subtracts.
    consider(completion[mi],
             EventAttribution{
                 g.attr_queue_us + (service_start - g.start_us),
                 g.attr_service_us + node_us,
                 g.attr_retry_us + (chain.start_us - service_start),
                 primary_completion - completion[mi]});
    auto it = node_result.find(state->keys[g.members[mi].key_idx]);
    if (it != node_result.end()) {
      state->result.bytes_read += it->second.size();
      state->result.values[it->first] = it->second;
    }
  }
  {
    AsyncMultiGetState::SimSpan node_span{
        StringPrintf("node%u", g.node), chain.start_us,
        std::min(group_end, primary_completion),
        {{"keys", std::to_string(group_keys.size())},
         {"bytes", std::to_string(node_bytes)}}};
    state->sim_spans.push_back(std::move(node_span));
    for (const HedgeEvent& ev : hedge_events) {
      state->sim_spans.push_back(
          {StringPrintf("node%u.hedge", ev.target), hedge_issue,
           std::max(hedge_issue, std::min(ev.end_us, ev.latest_need)),
           {{"keys", std::to_string(ev.num_members)}}});
    }
  }
  if (!timed_out.empty()) {
    ++state->n_timeouts;
    // The coordinator waited out [issue, deadline]: queue wait, then
    // backoffs, then the in-deadline slice of the attempt as service.
    const EventAttribution event{
        g.attr_queue_us + (service_start - g.start_us),
        g.attr_service_us + (deadline - chain.start_us),
        g.attr_retry_us + (chain.start_us - service_start), 0};
    consider(deadline, event);
    Status status = AsyncFailOver(state, std::move(timed_out), deadline,
                                  g.round + 1, event.queue_us,
                                  event.service_us, event.retry_us,
                                  "request timed out");
    if (!status.ok()) {
      AbortAsync(state, std::move(status));
      return;
    }
  }
  AsyncGroupResolved(state);
}

void Cluster::MaybeSampleAsyncLoad(uint64_t now_us) {
  // One sample sweep per interval of virtual time keeps the recorder's
  // bounded ring meaningful under saturation (thousands of groups per
  // virtual millisecond would otherwise rotate it instantly).
  constexpr uint64_t kSampleIntervalUs = 1000;
  std::vector<uint64_t> busy;
  {
    MutexLock lock(mu_);
    if (now_us < next_sample_us_) return;
    next_sample_us_ = now_us + kSampleIntervalUs;
    busy = async_node_busy_us_;
  }
  FlightRecorder& recorder = FlightRecorder::Default();
  for (uint32_t node = 0; node < busy.size(); ++node) {
    FlightSample sample;
    sample.sim_us = now_us;
    sample.node = node;
    sample.busy_horizon_us = busy[node];
    sample.backlog_us = busy[node] > now_us ? busy[node] - now_us : 0;
    recorder.AddSample(sample);
  }
}

Status Cluster::AsyncFailOver(const AsyncStatePtr& state,
                              std::vector<AsyncMultiGetState::Member> failed,
                              uint64_t fail_us, uint32_t next_round,
                              uint64_t attr_queue_us, uint64_t attr_service_us,
                              uint64_t attr_retry_us, const char* reason) {
  std::map<uint32_t, std::vector<AsyncMultiGetState::Member>> regrouped;
  for (AsyncMultiGetState::Member& m : failed) {
    const int next = NextUp(m.replicas, m.pos, state->tick);
    if (next < 0) {
      Status exhausted = Status::IOError(reason);
      if (!state->partial) return exhausted;
      state->result.failures.push_back(
          {state->keys[m.key_idx], std::move(exhausted)});
      continue;
    }
    m.pos = static_cast<size_t>(next);
    regrouped[m.replicas[m.pos]].push_back(std::move(m));
  }
  for (auto& [node, members] : regrouped) {
    state->groups.push_back(AsyncMultiGetState::Group{
        node, fail_us, next_round, std::move(members), attr_queue_us,
        attr_service_us, attr_retry_us});
    ++state->outstanding;
    const size_t gi = state->groups.size() - 1;
    state->executor->PostAt(fail_us, [this, state, gi] {
      ProcessAsyncGroup(state, gi);
    });
  }
  return Status::OK();
}

void Cluster::AsyncGroupResolved(const AsyncStatePtr& state) {
  RSTORE_DCHECK(state->outstanding > 0);
  if (--state->outstanding > 0 || state->failed) return;
  const uint64_t charged = options_.latency.coordinator_overhead_us +
                           (state->last_event_us - state->submit_us);
  state->result.charged_micros = charged;
  // The future completes at the batch's simulated completion instant, so a
  // continuation that issues a dependent batch (the map-key fetch of a
  // query) submits it at the causally correct virtual time.
  state->executor->PostAt(state->submit_us + charged,
                          [this, state] { FinalizeAsync(state); });
}

void Cluster::FinalizeAsync(const AsyncStatePtr& state) {
  const uint64_t charged = state->result.charged_micros;
  state->result.retries = state->n_retries;
  state->result.hedges = state->n_hedges;
  state->result.hedge_wins = state->n_hedge_wins;
  state->result.timeouts = state->n_timeouts;
  // The batch's attribution is its critical event's, plus the coordinator
  // overhead as service: queue + service + retry - hedge == charged.
  const uint64_t attr_service_us =
      state->crit_service_us + options_.latency.coordinator_overhead_us;
  state->result.queue_wait_us = state->crit_queue_us;
  state->result.service_us = attr_service_us;
  state->result.retry_penalty_us = state->crit_retry_us;
  state->result.hedge_delta_us = state->crit_hedge_us;

  if (state->trace != nullptr) {
    TraceContext* trace = state->trace;
    for (const auto& span : state->sim_spans) {
      const uint32_t id = trace->AddSimulatedSpan(
          span.name, state->sim_batch_start + (span.start_us - state->submit_us),
          state->sim_batch_start + (span.end_us - state->submit_us));
      for (const auto& [key, value] : span.notes) {
        trace->Annotate(id, key, value);
      }
    }
    trace->AdvanceSim(charged);
    trace->Annotate(state->span_id, "keys",
                    std::to_string(state->keys.size()));
    trace->Annotate(state->span_id, "bytes",
                    std::to_string(state->result.bytes_read));
    trace->Annotate(state->span_id, "nodes",
                    std::to_string(state->nodes_contacted));
    trace->Annotate(state->span_id, "queue_wait_us",
                    std::to_string(state->crit_queue_us));
    trace->Annotate(state->span_id, "service_us",
                    std::to_string(attr_service_us));
    trace->Annotate(state->span_id, "retry_penalty_us",
                    std::to_string(state->crit_retry_us));
    trace->Annotate(state->span_id, "hedge_delta_us",
                    std::to_string(state->crit_hedge_us));
    trace->EndSpan(state->span_id);
  }
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.requests_total->Increment();
  metrics.multiget_batches_total->Increment();
  metrics.keys_requested_total->Increment(state->keys.size());
  metrics.bytes_read_total->Increment(state->result.bytes_read);
  metrics.simulated_micros_total->Increment(charged);
  metrics.service_micros_total->Increment(attr_service_us);
  if (state->crit_queue_us > 0) {
    metrics.queue_wait_micros_total->Increment(state->crit_queue_us);
  }
  if (state->crit_retry_us > 0) {
    metrics.retry_penalty_micros_total->Increment(state->crit_retry_us);
  }
  if (state->crit_hedge_us > 0) {
    metrics.hedge_saved_micros_total->Increment(state->crit_hedge_us);
  }
  metrics.multiget_batch_keys->Observe(state->keys.size());
  if (state->n_retries > 0) metrics.retries_total->Increment(state->n_retries);
  if (state->n_hedges > 0) metrics.hedges_total->Increment(state->n_hedges);
  if (state->n_hedge_wins > 0) {
    metrics.hedge_wins_total->Increment(state->n_hedge_wins);
  }
  if (state->n_timeouts > 0) {
    metrics.timeouts_total->Increment(state->n_timeouts);
  }
  {
    MutexLock lock(mu_);
    ++stats_.multiget_batches;
    stats_.keys_requested += state->keys.size();
    stats_.bytes_read += state->result.bytes_read;
    stats_.simulated_micros += charged;
    stats_.queue_wait_us += state->crit_queue_us;
    stats_.service_us += attr_service_us;
    stats_.retry_penalty_us += state->crit_retry_us;
    stats_.hedge_delta_us += state->crit_hedge_us;
    stats_.retries += state->n_retries;
    stats_.hedges += state->n_hedges;
    stats_.hedge_wins += state->n_hedge_wins;
    stats_.timeouts += state->n_timeouts;
  }
  // Last, with no locks held: continuations may submit follow-up batches.
  state->promise.Set(std::move(state->result));
}

void Cluster::AbortAsync(const AsyncStatePtr& state, Status error) {
  state->failed = true;
  if (state->trace != nullptr) {
    // Mirrors the sync early return: the span closes with no simulated
    // advance and nothing is charged.
    state->trace->EndSpan(state->span_id);
  }
  state->result.status = std::move(error);
  state->promise.Set(std::move(state->result));
}

Status Cluster::Delete(const std::string& table, Slice key) {
  const uint64_t tick = injector_.NextTick();
  ReplayReadyHints(tick);
  const auto replicas = ring_.Replicas(key, options_.replication_factor);
  const uint64_t timeout_us = options_.retry.request_timeout_us;
  std::vector<std::pair<uint32_t, Hint>> staged;
  int deleted = 0;
  uint64_t slowest_us = 0;
  EventAttribution crit;
  uint64_t n_retries = 0;
  uint64_t n_timeouts = 0;
  for (uint32_t node : replicas) {
    if (!NodeUp(node, tick)) {
      staged.push_back({node, Hint{table, key.ToString(), "", true}});
      continue;
    }
    const AttemptChain chain =
        SimulateAttempts(node, tick, /*round=*/0, kSaltDelete, /*start_us=*/0);
    n_retries += chain.retries;
    bool ok = chain.served;
    uint64_t completion = chain.failure_us;
    EventAttribution event;
    event.retry_us = chain.failure_us;
    if (ok) {
      completion =
          chain.start_us + ScaleMicros(options_.latency.NodeServiceMicros(1, 0),
                                       chain.slow_multiplier);
      event.retry_us = chain.start_us;
      event.service_us = completion - chain.start_us;
      if (timeout_us > 0 && completion > timeout_us) {
        ok = false;
        completion = timeout_us;
        event.retry_us = std::min(chain.start_us, timeout_us);
        event.service_us = timeout_us - event.retry_us;
        ++n_timeouts;
      }
    }
    if (completion > slowest_us) {
      slowest_us = completion;
      crit = event;
    }
    if (!ok) {
      staged.push_back({node, Hint{table, key.ToString(), "", true}});
      continue;
    }
    RSTORE_RETURN_IF_ERROR(nodes_[node]->Delete(table, key));
    ++deleted;
  }
  if (deleted == 0) return Status::IOError("all replicas down");
  const uint64_t hinted = staged.size();
  CommitHints(std::move(staged));
  MutexLock lock(mu_);
  ++stats_.deletes;
  stats_.simulated_micros +=
      options_.latency.coordinator_overhead_us + slowest_us;
  stats_.service_us +=
      crit.service_us + options_.latency.coordinator_overhead_us;
  stats_.retry_penalty_us += crit.retry_us;
  stats_.retries += n_retries;
  stats_.timeouts += n_timeouts;
  stats_.handoff_hints += hinted;
  return Status::OK();
}

Status Cluster::Scan(const std::string& table,
                     const std::function<void(Slice key, Slice value)>& fn) {
  const uint64_t tick = injector_.CurrentTick();
  ReplayReadyHints(tick);
  // With replication a key lives on several nodes; dedupe by only emitting
  // keys whose first serving replica is the node being scanned. Keys whose
  // replicas are all down are silently skipped — Scan is administrative and
  // reports what the cluster can currently see.
  for (uint32_t node = 0; node < nodes_.size(); ++node) {
    if (!NodeUp(node, tick)) continue;
    Status s = nodes_[node]->Scan(table, [&](Slice key, Slice value) {
      auto replicas = ring_.Replicas(key, options_.replication_factor);
      const int pos = FirstUp(replicas, tick);
      if (pos >= 0 && replicas[static_cast<size_t>(pos)] == node) {
        fn(key, value);
      }
    });
    RSTORE_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Result<uint64_t> Cluster::TableSize(const std::string& table) {
  uint64_t count = 0;
  Status s = Scan(table, [&](Slice, Slice) { ++count; });
  if (!s.ok()) return s;
  return count;
}

void Cluster::CommitHints(std::vector<std::pair<uint32_t, Hint>> staged) {
  if (staged.empty()) return;
  MutexLock lock(hints_mu_);
  for (auto& [node, hint] : staged) {
    hints_[node].push_back(std::move(hint));
  }
  hint_count_.fetch_add(staged.size(), std::memory_order_relaxed);
}

void Cluster::ReplayReadyHints(uint64_t tick) {
  if (hint_count_.load(std::memory_order_relaxed) == 0) return;
  std::vector<std::pair<uint32_t, std::vector<Hint>>> ready;
  {
    MutexLock lock(hints_mu_);
    for (uint32_t node = 0; node < hints_.size(); ++node) {
      if (hints_[node].empty() || !NodeUp(node, tick)) continue;
      ready.emplace_back(node, std::move(hints_[node]));
      hints_[node].clear();
    }
    uint64_t moved = 0;
    for (const auto& [node, hints] : ready) moved += hints.size();
    if (moved > 0) hint_count_.fetch_sub(moved, std::memory_order_relaxed);
  }
  if (ready.empty()) return;
  uint64_t replayed = 0;
  for (auto& [node, hints] : ready) {
    for (Hint& hint : hints) {
      if (hint.is_delete) {
        // The key may never have reached this node; NotFound is fine.
        Status s = nodes_[node]->Delete(hint.table, hint.key);
        (void)s;
      } else {
        Status s = nodes_[node]->Put(hint.table, hint.key, hint.value);
        RSTORE_CHECK(s.ok()) << "hint replay failed: " << s.ToString();
      }
      ++replayed;
    }
  }
  // Replayed writes are repair traffic, not client latency: they charge no
  // simulated micros, only the counter.
  ClusterMetrics::Get().handoff_replays_total->Increment(replayed);
  MutexLock lock(mu_);
  stats_.handoff_replays += replayed;
}

KVStats Cluster::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void Cluster::ResetStats() {
  MutexLock lock(mu_);
  stats_ = KVStats{};
}

void Cluster::SetNodeAlive(uint32_t node, bool alive) {
  RSTORE_CHECK(node < alive_.size());
  alive_[node].store(alive, std::memory_order_release);
  // Recovery backfills the node from its hint queue right away, so a query
  // issued immediately after the flip already sees the healed replica.
  if (alive) ReplayReadyHints(injector_.CurrentTick());
}

bool Cluster::IsNodeAlive(uint32_t node) const {
  RSTORE_CHECK(node < alive_.size());
  return alive_[node].load(std::memory_order_acquire);
}

uint64_t Cluster::NodeBytes(uint32_t node) const {
  RSTORE_CHECK(node < nodes_.size());
  return nodes_[node]->TotalBytes();
}

size_t Cluster::PendingHints(uint32_t node) const {
  RSTORE_CHECK(node < nodes_.size());
  MutexLock lock(hints_mu_);
  return hints_[node].size();
}

}  // namespace rstore
