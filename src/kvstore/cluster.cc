#include "kvstore/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace rstore {

namespace {

/// Registry handles for the coordinator's traffic counters, resolved once.
/// Every update below is one relaxed atomic op — no locks on the hot path.
struct ClusterMetrics {
  Counter* requests_total;
  Counter* multiget_batches_total;
  Counter* keys_requested_total;
  Counter* bytes_read_total;
  Counter* bytes_written_total;
  Counter* simulated_micros_total;
  Histogram* multiget_batch_keys;

  static const ClusterMetrics& Get() {
    static const ClusterMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Default();
      ClusterMetrics m;
      m.requests_total = registry.GetCounter("rstore_kvs_requests_total");
      m.multiget_batches_total =
          registry.GetCounter("rstore_kvs_multiget_batches_total");
      m.keys_requested_total =
          registry.GetCounter("rstore_kvs_keys_requested_total");
      m.bytes_read_total = registry.GetCounter("rstore_kvs_bytes_read_total");
      m.bytes_written_total =
          registry.GetCounter("rstore_kvs_bytes_written_total");
      m.simulated_micros_total =
          registry.GetCounter("rstore_kvs_simulated_micros_total");
      m.multiget_batch_keys = registry.GetHistogram(
          "rstore_kvs_multiget_batch_keys",
          ExponentialBoundaries(1, 4.0, 8));  // 1..16384 keys
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      ring_(options.num_nodes, options.virtual_nodes_per_node,
            options.ring_seed),
      alive_(options.num_nodes) {
  RSTORE_CHECK(options.num_nodes >= 1);
  RSTORE_CHECK(options.replication_factor >= 1);
  nodes_.reserve(options.num_nodes);
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<MemoryStore>());
  }
  for (std::atomic<bool>& alive : alive_) {
    alive.store(true, std::memory_order_relaxed);
  }
}

Status Cluster::CreateTable(const std::string& table) {
  for (auto& node : nodes_) {
    RSTORE_RETURN_IF_ERROR(node->CreateTable(table));
  }
  return Status::OK();
}

int Cluster::FirstAlive(const std::vector<uint32_t>& replicas) const {
  for (uint32_t node : replicas) {
    if (alive_[node].load(std::memory_order_acquire)) {
      return static_cast<int>(node);
    }
  }
  return -1;
}

Status Cluster::Put(const std::string& table, Slice key, Slice value) {
  const auto replicas = ring_.Replicas(key, options_.replication_factor);
  int wrote = 0;
  for (uint32_t node : replicas) {
    if (!alive_[node].load(std::memory_order_acquire)) {
      continue;  // no hinted handoff
    }
    RSTORE_RETURN_IF_ERROR(nodes_[node]->Put(table, key, value));
    ++wrote;
  }
  if (wrote == 0) return Status::IOError("all replicas down");
  // Replica writes proceed in parallel; charge one request's latency.
  const uint64_t micros = options_.latency.coordinator_overhead_us +
                          options_.latency.NodeServiceMicros(1, value.size());
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.requests_total->Increment();
  metrics.bytes_written_total->Increment(key.size() + value.size());
  metrics.simulated_micros_total->Increment(micros);
  MutexLock lock(mu_);
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  stats_.simulated_micros += micros;
  return Status::OK();
}

Result<std::string> Cluster::Get(const std::string& table, Slice key) {
  const auto replicas = ring_.Replicas(key, options_.replication_factor);
  const int node = FirstAlive(replicas);
  if (node < 0) return Status::IOError("all replicas down");
  Result<std::string> r = nodes_[node]->Get(table, key);
  const uint64_t bytes = r.ok() ? r.value().size() : 0;
  const uint64_t micros = options_.latency.coordinator_overhead_us +
                          options_.latency.NodeServiceMicros(1, bytes);
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.requests_total->Increment();
  metrics.bytes_read_total->Increment(bytes);
  metrics.simulated_micros_total->Increment(micros);
  MutexLock lock(mu_);
  ++stats_.gets;
  ++stats_.keys_requested;
  stats_.bytes_read += bytes;
  stats_.simulated_micros += micros;
  return r;
}

Status Cluster::MultiGet(const std::string& table,
                         const std::vector<std::string>& keys,
                         std::map<std::string, std::string>* out,
                         TraceContext* trace) {
  ScopedSpan span(trace, "kvs.multiget");
  const uint64_t sim_batch_start = trace != nullptr ? trace->sim_now_us() : 0;
  // Route each key to its serving node.
  std::vector<std::vector<std::string>> per_node(nodes_.size());
  for (const std::string& key : keys) {
    auto replicas = ring_.Replicas(key, options_.replication_factor);
    int node = FirstAlive(replicas);
    if (node < 0) return Status::IOError("all replicas down for a key");
    per_node[static_cast<size_t>(node)].push_back(key);
  }
  // Nodes serve their shares in parallel; the batch completes when the
  // slowest node does. Each contacted node gets a simulated-clock sub-span
  // starting at the shared batch start, so the trace shows the fan-out as
  // overlapping bars rather than a serial chain.
  uint64_t slowest_us = 0;
  uint64_t total_bytes = 0;
  uint32_t nodes_contacted = 0;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    if (per_node[node].empty()) continue;
    std::map<std::string, std::string> node_result;
    RSTORE_RETURN_IF_ERROR(
        nodes_[node]->MultiGet(table, per_node[node], &node_result));
    uint64_t node_bytes = 0;
    for (auto& [key, value] : node_result) {
      node_bytes += value.size();
      (*out)[key] = std::move(value);
    }
    total_bytes += node_bytes;
    ++nodes_contacted;
    const uint64_t node_us =
        options_.latency.NodeServiceMicros(per_node[node].size(), node_bytes);
    slowest_us = std::max(slowest_us, node_us);
    if (trace != nullptr) {
      const uint32_t node_span = trace->AddSimulatedSpan(
          StringPrintf("node%zu", node), sim_batch_start,
          sim_batch_start + node_us);
      trace->Annotate(node_span, "keys",
                      std::to_string(per_node[node].size()));
      trace->Annotate(node_span, "bytes", std::to_string(node_bytes));
    }
  }
  const uint64_t charged_us =
      options_.latency.coordinator_overhead_us + slowest_us;
  if (trace != nullptr) {
    // The batch's simulated cost is exactly what stats_ is charged below;
    // ending the span after this advance makes its simulated duration equal
    // that charge (asserted by the observability tests).
    trace->AdvanceSim(charged_us);
    span.Annotate("keys", std::to_string(keys.size()));
    span.Annotate("bytes", std::to_string(total_bytes));
    span.Annotate("nodes", std::to_string(nodes_contacted));
  }
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.requests_total->Increment();
  metrics.multiget_batches_total->Increment();
  metrics.keys_requested_total->Increment(keys.size());
  metrics.bytes_read_total->Increment(total_bytes);
  metrics.simulated_micros_total->Increment(charged_us);
  metrics.multiget_batch_keys->Observe(keys.size());
  MutexLock lock(mu_);
  ++stats_.multiget_batches;
  stats_.keys_requested += keys.size();
  stats_.bytes_read += total_bytes;
  stats_.simulated_micros += charged_us;
  return Status::OK();
}

Status Cluster::Delete(const std::string& table, Slice key) {
  auto replicas = ring_.Replicas(key, options_.replication_factor);
  int deleted = 0;
  for (uint32_t node : replicas) {
    if (!alive_[node].load(std::memory_order_acquire)) continue;
    RSTORE_RETURN_IF_ERROR(nodes_[node]->Delete(table, key));
    ++deleted;
  }
  if (deleted == 0) return Status::IOError("all replicas down");
  MutexLock lock(mu_);
  ++stats_.deletes;
  stats_.simulated_micros += options_.latency.coordinator_overhead_us +
                             options_.latency.NodeServiceMicros(1, 0);
  return Status::OK();
}

Status Cluster::Scan(const std::string& table,
                     const std::function<void(Slice key, Slice value)>& fn) {
  // With replication a key lives on several nodes; dedupe by only emitting
  // keys whose first alive replica is the node being scanned.
  for (uint32_t node = 0; node < nodes_.size(); ++node) {
    if (!alive_[node].load(std::memory_order_acquire)) continue;
    Status s = nodes_[node]->Scan(table, [&](Slice key, Slice value) {
      auto replicas = ring_.Replicas(key, options_.replication_factor);
      if (FirstAlive(replicas) == static_cast<int>(node)) fn(key, value);
    });
    RSTORE_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Result<uint64_t> Cluster::TableSize(const std::string& table) {
  uint64_t count = 0;
  Status s = Scan(table, [&](Slice, Slice) { ++count; });
  if (!s.ok()) return s;
  return count;
}

KVStats Cluster::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void Cluster::ResetStats() {
  MutexLock lock(mu_);
  stats_ = KVStats{};
}

void Cluster::SetNodeAlive(uint32_t node, bool alive) {
  RSTORE_CHECK(node < alive_.size());
  alive_[node].store(alive, std::memory_order_release);
}

bool Cluster::IsNodeAlive(uint32_t node) const {
  RSTORE_CHECK(node < alive_.size());
  return alive_[node].load(std::memory_order_acquire);
}

uint64_t Cluster::NodeBytes(uint32_t node) const {
  RSTORE_CHECK(node < nodes_.size());
  return nodes_[node]->TotalBytes();
}

}  // namespace rstore
