#include "kvstore/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace rstore {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      ring_(options.num_nodes, options.virtual_nodes_per_node,
            options.ring_seed),
      alive_(options.num_nodes) {
  RSTORE_CHECK(options.num_nodes >= 1);
  RSTORE_CHECK(options.replication_factor >= 1);
  nodes_.reserve(options.num_nodes);
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<MemoryStore>());
  }
  for (std::atomic<bool>& alive : alive_) {
    alive.store(true, std::memory_order_relaxed);
  }
}

Status Cluster::CreateTable(const std::string& table) {
  for (auto& node : nodes_) {
    RSTORE_RETURN_IF_ERROR(node->CreateTable(table));
  }
  return Status::OK();
}

int Cluster::FirstAlive(const std::vector<uint32_t>& replicas) const {
  for (uint32_t node : replicas) {
    if (alive_[node].load(std::memory_order_acquire)) {
      return static_cast<int>(node);
    }
  }
  return -1;
}

Status Cluster::Put(const std::string& table, Slice key, Slice value) {
  const auto replicas = ring_.Replicas(key, options_.replication_factor);
  int wrote = 0;
  for (uint32_t node : replicas) {
    if (!alive_[node].load(std::memory_order_acquire)) {
      continue;  // no hinted handoff
    }
    RSTORE_RETURN_IF_ERROR(nodes_[node]->Put(table, key, value));
    ++wrote;
  }
  if (wrote == 0) return Status::IOError("all replicas down");
  // Replica writes proceed in parallel; charge one request's latency.
  const uint64_t micros = options_.latency.coordinator_overhead_us +
                          options_.latency.NodeServiceMicros(1, value.size());
  MutexLock lock(mu_);
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  stats_.simulated_micros += micros;
  return Status::OK();
}

Result<std::string> Cluster::Get(const std::string& table, Slice key) {
  const auto replicas = ring_.Replicas(key, options_.replication_factor);
  const int node = FirstAlive(replicas);
  if (node < 0) return Status::IOError("all replicas down");
  Result<std::string> r = nodes_[node]->Get(table, key);
  const uint64_t bytes = r.ok() ? r.value().size() : 0;
  const uint64_t micros = options_.latency.coordinator_overhead_us +
                          options_.latency.NodeServiceMicros(1, bytes);
  MutexLock lock(mu_);
  ++stats_.gets;
  ++stats_.keys_requested;
  stats_.bytes_read += bytes;
  stats_.simulated_micros += micros;
  return r;
}

Status Cluster::MultiGet(const std::string& table,
                         const std::vector<std::string>& keys,
                         std::map<std::string, std::string>* out) {
  // Route each key to its serving node.
  std::vector<std::vector<std::string>> per_node(nodes_.size());
  for (const std::string& key : keys) {
    auto replicas = ring_.Replicas(key, options_.replication_factor);
    int node = FirstAlive(replicas);
    if (node < 0) return Status::IOError("all replicas down for a key");
    per_node[static_cast<size_t>(node)].push_back(key);
  }
  // Nodes serve their shares in parallel; the batch completes when the
  // slowest node does.
  uint64_t slowest_us = 0;
  uint64_t total_bytes = 0;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    if (per_node[node].empty()) continue;
    std::map<std::string, std::string> node_result;
    RSTORE_RETURN_IF_ERROR(
        nodes_[node]->MultiGet(table, per_node[node], &node_result));
    uint64_t node_bytes = 0;
    for (auto& [key, value] : node_result) {
      node_bytes += value.size();
      (*out)[key] = std::move(value);
    }
    total_bytes += node_bytes;
    slowest_us = std::max(
        slowest_us, options_.latency.NodeServiceMicros(per_node[node].size(),
                                                       node_bytes));
  }
  MutexLock lock(mu_);
  ++stats_.multiget_batches;
  stats_.keys_requested += keys.size();
  stats_.bytes_read += total_bytes;
  stats_.simulated_micros += options_.latency.coordinator_overhead_us +
                             slowest_us;
  return Status::OK();
}

Status Cluster::Delete(const std::string& table, Slice key) {
  auto replicas = ring_.Replicas(key, options_.replication_factor);
  int deleted = 0;
  for (uint32_t node : replicas) {
    if (!alive_[node].load(std::memory_order_acquire)) continue;
    RSTORE_RETURN_IF_ERROR(nodes_[node]->Delete(table, key));
    ++deleted;
  }
  if (deleted == 0) return Status::IOError("all replicas down");
  MutexLock lock(mu_);
  ++stats_.deletes;
  stats_.simulated_micros += options_.latency.coordinator_overhead_us +
                             options_.latency.NodeServiceMicros(1, 0);
  return Status::OK();
}

Status Cluster::Scan(const std::string& table,
                     const std::function<void(Slice key, Slice value)>& fn) {
  // With replication a key lives on several nodes; dedupe by only emitting
  // keys whose first alive replica is the node being scanned.
  for (uint32_t node = 0; node < nodes_.size(); ++node) {
    if (!alive_[node].load(std::memory_order_acquire)) continue;
    Status s = nodes_[node]->Scan(table, [&](Slice key, Slice value) {
      auto replicas = ring_.Replicas(key, options_.replication_factor);
      if (FirstAlive(replicas) == static_cast<int>(node)) fn(key, value);
    });
    RSTORE_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Result<uint64_t> Cluster::TableSize(const std::string& table) {
  uint64_t count = 0;
  Status s = Scan(table, [&](Slice, Slice) { ++count; });
  if (!s.ok()) return s;
  return count;
}

KVStats Cluster::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void Cluster::ResetStats() {
  MutexLock lock(mu_);
  stats_ = KVStats{};
}

void Cluster::SetNodeAlive(uint32_t node, bool alive) {
  RSTORE_CHECK(node < alive_.size());
  alive_[node].store(alive, std::memory_order_release);
}

bool Cluster::IsNodeAlive(uint32_t node) const {
  RSTORE_CHECK(node < alive_.size());
  return alive_[node].load(std::memory_order_acquire);
}

uint64_t Cluster::NodeBytes(uint32_t node) const {
  RSTORE_CHECK(node < nodes_.size());
  return nodes_[node]->TotalBytes();
}

}  // namespace rstore
