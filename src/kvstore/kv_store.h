#ifndef RSTORE_KVSTORE_KV_STORE_H_
#define RSTORE_KVSTORE_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace rstore {

class TraceContext;

/// Aggregate counters for traffic against a KV store. RStore's evaluation
/// metrics (number of queries issued to the backend, bytes moved, simulated
/// latency) are read from here.
struct KVStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t multiget_batches = 0;
  /// Individual key lookups, including those inside MultiGet batches.
  uint64_t keys_requested = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Simulated wall-clock cost accumulated by the latency model (zero for
  /// plain in-memory stores).
  uint64_t simulated_micros = 0;

  // Fault-tolerance counters (nonzero only for stores that model faults).
  /// Attempts re-issued after a transient error (backoff charged to
  /// simulated_micros).
  uint64_t retries = 0;
  /// Speculative reads issued because a replica exceeded the latency model's
  /// hedge threshold, and how many of them completed first.
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  /// Requests abandoned at the RetryPolicy's simulated deadline.
  uint64_t timeouts = 0;
  /// Writes staged for a down replica, and hints later replayed to a
  /// recovered node (hinted handoff).
  uint64_t handoff_hints = 0;
  uint64_t handoff_replays = 0;

  // Latency attribution: a decomposition of simulated_micros. For stores
  // that model latency the invariant
  //   queue_wait_us + service_us + retry_penalty_us - hedge_delta_us
  //     == simulated_micros
  // holds exactly (all four are zero for plain in-memory stores, which
  // charge nothing). Batched reads attribute the critical path — the event
  // chain of the member that determined the batch's completion time.
  /// Time spent queued behind earlier work at the serving node (async engine
  /// busy horizons; always zero on the one-at-a-time sync path).
  uint64_t queue_wait_us = 0;
  /// Time the serving node (plus coordinator overhead) spent doing work.
  uint64_t service_us = 0;
  /// Backoff, failed attempts, and failover delay before the serving
  /// attempt started.
  uint64_t retry_penalty_us = 0;
  /// Micros saved because a hedged read beat the slow primary (subtracts
  /// from the sum: the primary's full service time is still attributed).
  uint64_t hedge_delta_us = 0;

  KVStats& operator+=(const KVStats& other) {
    gets += other.gets;
    puts += other.puts;
    deletes += other.deletes;
    multiget_batches += other.multiget_batches;
    keys_requested += other.keys_requested;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    simulated_micros += other.simulated_micros;
    retries += other.retries;
    hedges += other.hedges;
    hedge_wins += other.hedge_wins;
    timeouts += other.timeouts;
    handoff_hints += other.handoff_hints;
    handoff_replays += other.handoff_replays;
    queue_wait_us += other.queue_wait_us;
    service_us += other.service_us;
    retry_penalty_us += other.retry_penalty_us;
    hedge_delta_us += other.hedge_delta_us;
    return *this;
  }
};

/// One key a partial batched read could not serve, with the reason (e.g. all
/// replicas down, or attempts exhausted). Reported by MultiGetPartial so
/// best-effort readers can degrade gracefully instead of failing the batch.
struct KeyReadFailure {
  std::string key;
  Status status;
};

/// Completion payload of one asynchronous MultiGet batch. Unlike the
/// synchronous path — where callers difference stats() snapshots — every
/// per-call figure rides in the result, because stats() deltas are
/// meaningless while hundreds of batches are in flight.
struct AsyncMultiGetResult {
  Status status = Status::OK();
  std::map<std::string, std::string> values;
  /// Per-key degradations (partial mode only; strict batches fail whole).
  std::vector<KeyReadFailure> failures;
  uint64_t bytes_read = 0;
  /// Exactly what this batch added to stats().simulated_micros.
  uint64_t charged_micros = 0;
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t timeouts = 0;
  /// Attribution of charged_micros (see KVStats): queue_wait + service +
  /// retry_penalty - hedge_delta == charged_micros, exactly.
  uint64_t queue_wait_us = 0;
  uint64_t service_us = 0;
  uint64_t retry_penalty_us = 0;
  uint64_t hedge_delta_us = 0;
};

/// Abstract distributed key-value store interface.
///
/// RStore is "intended to act as a layer on top of a distributed key-value
/// store ... we only assume basic get/put functionality from it" (paper
/// §2.4). This interface is that assumption made explicit: named tables
/// (chunks and indexes are stored "in two distinct tables"), binary keys and
/// values, point get/put/delete, a batched MultiGet (issued as parallel
/// queries, matching how RStore retrieves chunks), and a full-table scan used
/// only by administrative tooling.
class KVStore {
 public:
  virtual ~KVStore() = default;

  /// Creates `table` if absent; OK if it already exists.
  virtual Status CreateTable(const std::string& table) = 0;

  /// Stores `value` under `key`, overwriting any previous value.
  virtual Status Put(const std::string& table, Slice key, Slice value) = 0;

  /// Group commit: stores every (key, value) pair of `entries`, equivalent
  /// to issuing the Puts in order. The default implementation is exactly
  /// that loop, so stats and simulated charges match the serial path
  /// byte-for-byte; single-node stores override it to apply the whole group
  /// under one lock acquisition (the ingest pipeline's write batches). Not
  /// atomic: a mid-batch error leaves the earlier entries applied, like the
  /// equivalent Put sequence.
  virtual Status WriteBatch(
      const std::string& table,
      const std::vector<std::pair<std::string, std::string>>& entries) {
    for (const auto& [key, value] : entries) {
      RSTORE_RETURN_IF_ERROR(Put(table, key, value));
    }
    return Status::OK();
  }

  /// Point lookup. kNotFound if the key is absent.
  virtual Result<std::string> Get(const std::string& table, Slice key) = 0;

  /// Batched lookup. Returns one entry per found key in `*out` (missing keys
  /// are simply absent, not errors). Implementations issue the per-key reads
  /// in parallel across the nodes that own them.
  ///
  /// `trace` may be null (the common case). When set, implementations that
  /// model distribution record one child span per contacted node covering
  /// that node's simulated service interval, and advance the context's
  /// simulated clock by exactly the micros they charge to stats() — the
  /// contract the observability tests reconcile. Implementations that
  /// override only the traced form inherit the untraced convenience overload
  /// via `using KVStore::MultiGet;`.
  virtual Status MultiGet(const std::string& table,
                          const std::vector<std::string>& keys,
                          std::map<std::string, std::string>* out,
                          TraceContext* trace) = 0;

  /// Untraced convenience form.
  Status MultiGet(const std::string& table,
                  const std::vector<std::string>& keys,
                  std::map<std::string, std::string>* out) {
    return MultiGet(table, keys, out, nullptr);
  }

  /// Best-effort batched lookup: keys whose owning replicas are unavailable
  /// are reported in `*failures` (with the reason) instead of failing the
  /// whole batch. Only returns a non-OK status for errors unrelated to
  /// individual keys. Keys absent from both `*out` and `*failures` were
  /// served fine and simply do not exist. The default implementation
  /// delegates to MultiGet and, on failure, attributes the batch error to
  /// every key — stores without partial-failure modes degrade all-or-nothing.
  virtual Status MultiGetPartial(const std::string& table,
                                 const std::vector<std::string>& keys,
                                 std::map<std::string, std::string>* out,
                                 std::vector<KeyReadFailure>* failures,
                                 TraceContext* trace) {
    Status s = MultiGet(table, keys, out, trace);
    if (!s.ok() && failures != nullptr) {
      for (const std::string& key : keys) {
        if (out->count(key) == 0) failures->push_back({key, s});
      }
      return Status::OK();
    }
    return s;
  }

  /// Asynchronous batched lookup, completing on `executor`'s virtual
  /// timeline. With `partial` false the batch is strict: the first
  /// unavailable key fails the whole batch (mirroring MultiGet); with true,
  /// unavailable keys land in AsyncMultiGetResult::failures. The default
  /// implementation bridges to the synchronous path and returns an
  /// already-completed future — stores without a latency model serve
  /// instantly on the virtual clock, charging exactly what the sync call
  /// charged. Stores that model distribution (Cluster) override this with a
  /// genuinely pipelined implementation.
  virtual Future<AsyncMultiGetResult> MultiGetAsync(
      Executor* executor, const std::string& table,
      const std::vector<std::string>& keys, bool partial,
      TraceContext* trace) {
    (void)executor;
    AsyncMultiGetResult result;
    const KVStats before = stats();
    if (partial) {
      result.status = MultiGetPartial(table, keys, &result.values,
                                      &result.failures, trace);
    } else {
      result.status = MultiGet(table, keys, &result.values, trace);
    }
    const KVStats after = stats();
    result.bytes_read = after.bytes_read - before.bytes_read;
    result.charged_micros = after.simulated_micros - before.simulated_micros;
    result.retries = after.retries - before.retries;
    result.hedges = after.hedges - before.hedges;
    result.hedge_wins = after.hedge_wins - before.hedge_wins;
    result.timeouts = after.timeouts - before.timeouts;
    result.queue_wait_us = after.queue_wait_us - before.queue_wait_us;
    result.service_us = after.service_us - before.service_us;
    result.retry_penalty_us = after.retry_penalty_us - before.retry_penalty_us;
    result.hedge_delta_us = after.hedge_delta_us - before.hedge_delta_us;
    return MakeReadyFuture(std::move(result));
  }

  virtual Status Delete(const std::string& table, Slice key) = 0;

  /// Invokes `fn` for every key/value in `table`, in unspecified order.
  /// Administrative/testing use only: real deployments never scan. `fn`
  /// must not call back into the same store (implementations may hold
  /// internal locks across the scan).
  virtual Status Scan(
      const std::string& table,
      const std::function<void(Slice key, Slice value)>& fn) = 0;

  /// Number of keys in `table` (kNotFound if the table does not exist).
  virtual Result<uint64_t> TableSize(const std::string& table) = 0;

  /// Cumulative traffic counters since construction (or ResetStats).
  virtual KVStats stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_KV_STORE_H_
