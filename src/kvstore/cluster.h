#ifndef RSTORE_KVSTORE_CLUSTER_H_
#define RSTORE_KVSTORE_CLUSTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/sync.h"
#include "common/trace.h"
#include "kvstore/fault_injector.h"
#include "kvstore/hash_ring.h"
#include "kvstore/kv_store.h"
#include "kvstore/latency_model.h"
#include "kvstore/memory_store.h"
#include "kvstore/retry_policy.h"

namespace rstore {

/// Configuration for a simulated cluster.
struct ClusterOptions {
  uint32_t num_nodes = 4;
  /// Copies of every key, Cassandra-style; writes go to all replicas, reads
  /// are served by the first alive replica, failing over down the replica
  /// list on errors/timeouts and hedging per LatencyModel::hedge_threshold_us.
  uint32_t replication_factor = 1;
  uint32_t virtual_nodes_per_node = 64;
  LatencyModel latency = DefaultLatencyModel();
  uint64_t ring_seed = 0x5274537265ull;  // "RtSre"
  /// Deterministic fault schedule (default: no faults injected).
  FaultInjectorOptions faults;
  /// Coordinator retry/backoff/timeout discipline (simulated clock).
  RetryPolicy retry;
};

/// An in-process distributed key-value store: the Cassandra stand-in.
///
/// N MemoryStore nodes behind a consistent-hash ring, a coordinator that
/// routes requests, and a LatencyModel that charges simulated time for every
/// round trip and byte. Data placement, replication, routing, and failover
/// are executed for real; only the wall-clock is simulated (accumulated in
/// stats().simulated_micros so callers can report "how long this would have
/// taken" on the modeled hardware).
///
/// Fault tolerance: a seeded FaultInjector supplies transient errors, latency
/// spikes, and crash windows per ClusterOptions::faults; the coordinator
/// retries with deterministic exponential backoff (ClusterOptions::retry),
/// hedges slow reads to the next alive replica, and stages hinted-handoff
/// writes for down replicas, replaying them when the node returns. The same
/// options therefore replay an exact fault timeline — same results, same
/// retry/hedge counters — which the chaos suite exploits.
///
/// MultiGet is the workhorse: RStore retrieves the chunks for a version "by
/// issuing queries in parallel to the backend store" (paper §2.4), so the
/// batch's simulated latency is the *max* over nodes of each node's serial
/// service time, plus one coordinator overhead.
class Cluster : public KVStore {
 public:
  explicit Cluster(const ClusterOptions& options);

  Status CreateTable(const std::string& table) override;
  Status Put(const std::string& table, Slice key, Slice value) override;
  Result<std::string> Get(const std::string& table, Slice key) override;
  /// When `trace` is non-null, records a "kvs.multiget" span with one
  /// "node<N>" child per contacted node covering [batch start, batch start +
  /// that node's service time] on the simulated clock — the children all
  /// start at the same simulated instant because the nodes serve their
  /// shares in parallel — and advances the trace's simulated clock by
  /// exactly the micros charged to stats(). Under faults, additional
  /// "node<N>.retry<k>" / "node<N>.hedge" children record the failed
  /// attempts and speculative reads, all contained in the parent interval.
  using KVStore::MultiGet;
  Status MultiGet(const std::string& table,
                  const std::vector<std::string>& keys,
                  std::map<std::string, std::string>* out,
                  TraceContext* trace) override;
  /// Per-key degradation: unavailable keys land in `*failures` instead of
  /// failing the batch (see KVStore::MultiGetPartial).
  Status MultiGetPartial(const std::string& table,
                         const std::vector<std::string>& keys,
                         std::map<std::string, std::string>* out,
                         std::vector<KeyReadFailure>* failures,
                         TraceContext* trace) override;
  /// Asynchronous MultiGet: the continuation-style twin of MultiGetInternal,
  /// scheduled on a deterministic virtual-time Executor so many batches from
  /// many queries overlap through one coordinator. Fault decisions draw from
  /// the same (tick, node, round, salt) streams as the synchronous path, so
  /// a sequentially-drained async run replays the synchronous timeline event
  /// for event; when batches genuinely overlap, a per-node FIFO queue
  /// (async_node_busy_us_) serializes each node's service so saturation is
  /// bounded by aggregate node capacity, exactly the resource the
  /// synchronous engine leaves idle between queries.
  ///
  /// With `partial` false the batch is strict (first unavailable key fails
  /// the whole batch, nothing is charged — mirroring MultiGet); with true,
  /// unavailable keys land in AsyncMultiGetResult::failures. The returned
  /// future completes on the executor at the batch's simulated completion
  /// instant, after this batch's charge lands in stats(). `trace` must
  /// belong to the submitting query chain and stay open (no span started
  /// before submission may close) until the future completes; per-node /
  /// per-attempt children and the simulated advance are recorded at
  /// completion and reconcile exactly with the charge, as in the sync path.
  ///
  /// All async traffic against one Cluster must share one Executor (one
  /// virtual timeline); mixing executors trips a DCHECK. Writes must not
  /// run concurrently with in-flight async reads.
  Future<AsyncMultiGetResult> MultiGetAsync(
      Executor* executor, const std::string& table,
      const std::vector<std::string>& keys, bool partial,
      TraceContext* trace) override;

  Status Delete(const std::string& table, Slice key) override;
  Status Scan(const std::string& table,
              const std::function<void(Slice key, Slice value)>& fn) override;
  Result<uint64_t> TableSize(const std::string& table) override;

  KVStats stats() const override;
  void ResetStats() override;

  uint32_t num_nodes() const { return ring_.num_nodes(); }

  /// Failure injection: a down node rejects requests; reads fail over to the
  /// next alive replica, writes stage a hinted-handoff entry that is
  /// replayed when the node comes back (SetNodeAlive(node, true) replays
  /// synchronously; injector crash windows are backfilled at the next
  /// coordinator operation after the window closes).
  void SetNodeAlive(uint32_t node, bool alive);
  bool IsNodeAlive(uint32_t node) const;

  /// Bytes resident on one node (for balance/skew inspection).
  uint64_t NodeBytes(uint32_t node) const;

  /// Hinted-handoff entries currently staged for `node` (tests/inspection).
  size_t PendingHints(uint32_t node) const;

  /// The fault schedule this cluster draws from, exposed so chaos tests can
  /// reconcile the injected-fault tallies against the coordinator's stats.
  const FaultInjector& fault_injector() const { return injector_; }

 private:
  /// A write captured for a down replica, replayed on recovery.
  struct Hint {
    std::string table;
    std::string key;
    std::string value;
    bool is_delete = false;
  };

  /// True when `node` serves requests at `tick`: the liveness flag is set
  /// and no injector crash window covers the tick.
  bool NodeUp(uint32_t node, uint64_t tick) const;

  /// Position of the first serving replica in `replicas` at `tick`, or -1
  /// if all are down.
  int FirstUp(const std::vector<uint32_t>& replicas, uint64_t tick) const;
  /// Position of the first serving replica strictly after `after`, or -1.
  int NextUp(const std::vector<uint32_t>& replicas, size_t after,
             uint64_t tick) const;

  /// Simulated outcome of one request's attempt chain against one node:
  /// transient errors consume attempts (with backoff between them) until an
  /// attempt is served or the RetryPolicy is exhausted. Pure function of
  /// (node, tick, round, salt_base) given the schedule — no state mutated.
  struct AttemptChain {
    bool served = false;
    /// Issue time of the successful attempt (offset from the op start).
    uint64_t start_us = 0;
    double slow_multiplier = 1.0;
    /// When the chain gave up (valid when !served).
    uint64_t failure_us = 0;
    uint32_t retries = 0;
    /// [issue, error) intervals of the attempts that failed, for tracing.
    std::vector<std::pair<uint64_t, uint64_t>> failed_attempts;
  };
  AttemptChain SimulateAttempts(uint32_t node, uint64_t tick, uint32_t round,
                                uint32_t salt_base, uint64_t start_us) const;

  /// Shared implementation of MultiGet / MultiGetPartial. With
  /// `failures == nullptr` (strict) the first unavailable key fails the
  /// batch; otherwise unavailable keys are reported and the rest served.
  Status MultiGetInternal(const std::string& table,
                          const std::vector<std::string>& keys,
                          std::map<std::string, std::string>* out,
                          std::vector<KeyReadFailure>* failures,
                          TraceContext* trace);

  /// Mutable continuation state of one in-flight MultiGetAsync batch,
  /// shared by every event the batch schedules. Only executor events touch
  /// it after submission, and the executor runs them one at a time, so no
  /// lock guards it; cross-thread publication happens via the executor's
  /// own queue lock.
  struct AsyncMultiGetState {
    struct Member {
      size_t key_idx;
      std::vector<uint32_t> replicas;
      size_t pos;
    };
    struct Group {
      uint32_t node;
      uint64_t start_us;  // absolute virtual time the group was issued
      uint32_t round;     // failover depth, decorrelates fault decisions
      std::vector<Member> members;
      /// Attribution inherited from the event chain that issued this group
      /// (zero for initial groups): how start_us - submit_us decomposes
      /// into queue wait / service / retry penalty. Every event this group
      /// produces extends the inherited triple, keeping the conservation
      /// invariant exact through arbitrary failover chains.
      uint64_t attr_queue_us = 0;
      uint64_t attr_service_us = 0;
      uint64_t attr_retry_us = 0;
    };
    /// A child span recorded at an absolute virtual interval, re-based onto
    /// the query's simulated clock at finalize.
    struct SimSpan {
      std::string name;
      uint64_t start_us;
      uint64_t end_us;
      std::vector<std::pair<std::string, std::string>> notes;
    };

    Executor* executor = nullptr;
    std::string table;
    std::vector<std::string> keys;
    bool partial = false;
    TraceContext* trace = nullptr;
    uint64_t tick = 0;
    uint64_t submit_us = 0;        // absolute virtual submission instant
    uint64_t sim_batch_start = 0;  // trace sim clock at submission
    uint32_t span_id = TraceSpan::kNoParent;

    std::vector<Group> groups;  // append-only; events index into it
    size_t outstanding = 0;
    bool failed = false;

    std::vector<SimSpan> sim_spans;
    uint64_t last_event_us = 0;  // absolute latest completion/failure
    /// Attribution of the critical event — the one that set last_event_us.
    /// Strictly-greater updates keep ties resolved toward the first event,
    /// matching the synchronous path's iteration order exactly.
    uint64_t crit_queue_us = 0;
    uint64_t crit_service_us = 0;
    uint64_t crit_retry_us = 0;
    uint64_t crit_hedge_us = 0;
    uint32_t nodes_contacted = 0;
    uint64_t n_retries = 0;
    uint64_t n_hedges = 0;
    uint64_t n_hedge_wins = 0;
    uint64_t n_timeouts = 0;

    AsyncMultiGetResult result;
    Promise<AsyncMultiGetResult> promise;
  };
  using AsyncStatePtr = std::shared_ptr<AsyncMultiGetState>;

  /// One group event: physical read, queued service + attempt chain,
  /// hedging, per-member completion, failover scheduling.
  void ProcessAsyncGroup(const AsyncStatePtr& state, size_t group_index);
  /// Routes members that failed at `fail_us` to their next serving
  /// replicas, scheduling the new groups, which inherit the failing event's
  /// attribution triple (queue + service + retry == fail_us - submit_us).
  /// Strict-mode exhaustion returns the error (caller aborts the batch).
  Status AsyncFailOver(const AsyncStatePtr& state,
                       std::vector<AsyncMultiGetState::Member> failed,
                       uint64_t fail_us, uint32_t next_round,
                       uint64_t attr_queue_us, uint64_t attr_service_us,
                       uint64_t attr_retry_us, const char* reason);
  /// Marks one group resolved; the last one schedules FinalizeAsync at the
  /// batch's simulated completion instant.
  void AsyncGroupResolved(const AsyncStatePtr& state);
  /// Charges stats/metrics, emits the trace children + simulated advance,
  /// and completes the promise (with no locks held).
  void FinalizeAsync(const AsyncStatePtr& state);
  /// Strict-mode batch failure: mirrors the sync early return — the span
  /// closes without an advance and nothing is charged.
  void AbortAsync(const AsyncStatePtr& state, Status error);

  /// Samples every node's async busy horizon into the process-wide
  /// FlightRecorder time series, at most once per sampling interval of
  /// virtual time. Snapshot under mu_, recording outside it.
  void MaybeSampleAsyncLoad(uint64_t now_us);

  /// Replays staged hints for every node that is up at `tick`. Called at
  /// the start of each coordinator operation (before routing, so a write
  /// issued after recovery can never be overwritten by an older hint) and
  /// from SetNodeAlive. Replayed writes are charged zero simulated micros:
  /// handoff replay is background repair traffic, not client latency.
  void ReplayReadyHints(uint64_t tick);

  /// Appends hints (collected during one write op) to the per-node queues.
  void CommitHints(std::vector<std::pair<uint32_t, Hint>> staged);

  /// Routing state (ring_, nodes_, options_) is immutable after
  /// construction and alive_ is atomic, so requests route lock-free; mu_
  /// guards only the coordinator's stats and is never held across a node
  /// call (node locks rank below kLockRankCluster — see sync.h).
  ClusterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<MemoryStore>> nodes_;
  /// Per-node liveness, atomic so failure injection (SetNodeAlive) can race
  /// with request routing without tearing; a std::vector<bool> here is a
  /// data race under TSan because neighbouring bits share a byte.
  /// analyze:atomic -- lock-free flags, racing with routing by design.
  std::vector<std::atomic<bool>> alive_;
  /// Deterministic fault source; inert unless ClusterOptions::faults has
  /// any fault configured.
  FaultInjector injector_;

  /// Staged hinted-handoff writes, one queue per node. hints_mu_ is never
  /// held across a node call: replay swaps a queue out under the lock and
  /// writes with it released. hint_count_ lets the per-operation replay
  /// check skip the lock entirely while no hints are staged (the common,
  /// fault-free case).
  mutable Mutex hints_mu_{kLockRankClusterHints, "Cluster::hints_mu_"};
  std::vector<std::vector<Hint>> hints_ RSTORE_GUARDED_BY(hints_mu_);
  /// Written under hints_mu_, read lock-free as an empty-queue fast path;
  /// over/under-reads only delay or waste a replay probe, never lose a
  /// hint (the queue itself is guarded). analyze:atomic
  std::atomic<uint64_t> hint_count_{0};

  mutable Mutex mu_{kLockRankCluster, "Cluster::mu_"};
  KVStats stats_ RSTORE_GUARDED_BY(mu_);
  /// Virtual-time instant (on the async executor's clock) until which each
  /// node is busy serving async reads — the per-node FIFO queue that keeps
  /// saturation finite when hundreds of async queries overlap. The
  /// synchronous path never consults it: a sync caller waits out each batch
  /// before issuing the next, so its nodes are idle by construction.
  std::vector<uint64_t> async_node_busy_us_ RSTORE_GUARDED_BY(mu_);
  /// All async traffic on one cluster shares one virtual timeline; pinned
  /// at the first MultiGetAsync and DCHECKed on every later one.
  const Executor* async_executor_ RSTORE_GUARDED_BY(mu_) = nullptr;
  /// Next virtual instant at which the async path samples the per-node
  /// busy horizons into the flight recorder's time series (saturation
  /// visibility over time; see common/flight_recorder.h).
  uint64_t next_sample_us_ RSTORE_GUARDED_BY(mu_) = 0;
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_CLUSTER_H_
