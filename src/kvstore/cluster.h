#ifndef RSTORE_KVSTORE_CLUSTER_H_
#define RSTORE_KVSTORE_CLUSTER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "kvstore/hash_ring.h"
#include "kvstore/kv_store.h"
#include "kvstore/latency_model.h"
#include "kvstore/memory_store.h"

namespace rstore {

/// Configuration for a simulated cluster.
struct ClusterOptions {
  uint32_t num_nodes = 4;
  /// Copies of every key, Cassandra-style; writes go to all replicas, reads
  /// are served by the first alive replica.
  uint32_t replication_factor = 1;
  uint32_t virtual_nodes_per_node = 64;
  LatencyModel latency = DefaultLatencyModel();
  uint64_t ring_seed = 0x5274537265ull;  // "RtSre"
};

/// An in-process distributed key-value store: the Cassandra stand-in.
///
/// N MemoryStore nodes behind a consistent-hash ring, a coordinator that
/// routes requests, and a LatencyModel that charges simulated time for every
/// round trip and byte. Data placement, replication, routing, and failover
/// are executed for real; only the wall-clock is simulated (accumulated in
/// stats().simulated_micros so callers can report "how long this would have
/// taken" on the modeled hardware).
///
/// MultiGet is the workhorse: RStore retrieves the chunks for a version "by
/// issuing queries in parallel to the backend store" (paper §2.4), so the
/// batch's simulated latency is the *max* over nodes of each node's serial
/// service time, plus one coordinator overhead.
class Cluster : public KVStore {
 public:
  explicit Cluster(const ClusterOptions& options);

  Status CreateTable(const std::string& table) override;
  Status Put(const std::string& table, Slice key, Slice value) override;
  Result<std::string> Get(const std::string& table, Slice key) override;
  /// When `trace` is non-null, records a "kvs.multiget" span with one
  /// "node<N>" child per contacted node covering [batch start, batch start +
  /// that node's service time] on the simulated clock — the children all
  /// start at the same simulated instant because the nodes serve their
  /// shares in parallel — and advances the trace's simulated clock by
  /// exactly the micros charged to stats().simulated_micros.
  using KVStore::MultiGet;
  Status MultiGet(const std::string& table,
                  const std::vector<std::string>& keys,
                  std::map<std::string, std::string>* out,
                  TraceContext* trace) override;
  Status Delete(const std::string& table, Slice key) override;
  Status Scan(const std::string& table,
              const std::function<void(Slice key, Slice value)>& fn) override;
  Result<uint64_t> TableSize(const std::string& table) override;

  KVStats stats() const override;
  void ResetStats() override;

  uint32_t num_nodes() const { return ring_.num_nodes(); }

  /// Failure injection: a down node rejects requests; reads fail over to the
  /// next alive replica, writes skip it (and are therefore lost on it, as in
  /// an eventually-consistent store without hinted handoff).
  void SetNodeAlive(uint32_t node, bool alive);
  bool IsNodeAlive(uint32_t node) const;

  /// Bytes resident on one node (for balance/skew inspection).
  uint64_t NodeBytes(uint32_t node) const;

 private:
  /// First alive node in `replicas`, or -1 if all are down.
  int FirstAlive(const std::vector<uint32_t>& replicas) const;

  /// Routing state (ring_, nodes_, options_) is immutable after
  /// construction and alive_ is atomic, so requests route lock-free; mu_
  /// guards only the coordinator's stats and is never held across a node
  /// call (node locks rank below kLockRankCluster — see sync.h).
  ClusterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<MemoryStore>> nodes_;
  /// Per-node liveness, atomic so failure injection (SetNodeAlive) can race
  /// with request routing without tearing; a std::vector<bool> here is a
  /// data race under TSan because neighbouring bits share a byte.
  std::vector<std::atomic<bool>> alive_;

  mutable Mutex mu_{kLockRankCluster, "Cluster::mu_"};
  KVStats stats_ RSTORE_GUARDED_BY(mu_);
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_CLUSTER_H_
