#include "kvstore/hash_ring.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace rstore {

HashRing::HashRing(uint32_t num_nodes, uint32_t virtual_nodes, uint64_t seed)
    : num_nodes_(num_nodes), virtual_nodes_(virtual_nodes) {
  RSTORE_CHECK(num_nodes >= 1);
  RSTORE_CHECK(virtual_nodes >= 1);
  ring_.reserve(static_cast<size_t>(num_nodes) * virtual_nodes);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    for (uint32_t v = 0; v < virtual_nodes; ++v) {
      // Pre-mix the seed: XOR-ing a raw small seed into the low bits would
      // only permute v within the same input set, yielding identical rings
      // for every seed < virtual_nodes.
      uint64_t position =
          Mix64(Mix64(seed) ^ (static_cast<uint64_t>(node) << 32 | v));
      ring_.push_back({position, node});
    }
  }
  std::sort(ring_.begin(), ring_.end());
  RSTORE_DCHECK(Validate().ok()) << "freshly built ring fails validation";
}

Status HashRing::Validate() const {
  if (ring_.size() !=
      static_cast<size_t>(num_nodes_) * virtual_nodes_) {
    return Status::Corruption("ring entry count mismatch");
  }
  std::vector<bool> present(num_nodes_, false);
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i].node >= num_nodes_) {
      return Status::Corruption("ring entry names unknown node");
    }
    if (i > 0 && ring_[i].position < ring_[i - 1].position) {
      return Status::Corruption("ring positions not sorted");
    }
    present[ring_[i].node] = true;
  }
  for (uint32_t node = 0; node < num_nodes_; ++node) {
    if (!present[node]) {
      return Status::Corruption("node " + std::to_string(node) +
                                " owns no ring positions");
    }
  }
  return Status::OK();
}

uint32_t HashRing::Owner(Slice key) const {
  uint64_t h = Mix64(Fnv1a64(key));
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Entry{h, 0});
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->node;
}

std::vector<uint32_t> HashRing::Replicas(Slice key, uint32_t count) const {
  count = std::min(count, num_nodes_);
  std::vector<uint32_t> out;
  out.reserve(count);
  uint64_t h = Mix64(Fnv1a64(key));
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Entry{h, 0});
  for (size_t steps = 0; steps < ring_.size() && out.size() < count; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->node) == out.end()) {
      out.push_back(it->node);
    }
    ++it;
  }
  return out;
}

}  // namespace rstore
