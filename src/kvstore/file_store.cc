#include "kvstore/file_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/coding.h"

namespace rstore {

namespace {

// Log record: 'P' | key | value  or  'D' | key, each field length-prefixed,
// the whole record preceded by its varint byte length so truncated tails are
// detectable.
constexpr char kOpPut = 'P';
constexpr char kOpDelete = 'D';

std::string HexEncode(const std::string& s) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

}  // namespace

FileStore::FileStore(std::string directory)
    : directory_(std::move(directory)) {}

FileStore::~FileStore() {
  MutexLock lock(mu_);
  for (auto& [name, table] : tables_) {
    if (table.log != nullptr) std::fclose(table.log);
  }
}

std::string FileStore::LogPath(const std::string& table) const {
  return directory_ + "/" + HexEncode(table) + ".log";
}

Result<std::unique_ptr<FileStore>> FileStore::Open(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create " + directory + ": " +
                           ec.message());
  }
  std::unique_ptr<FileStore> store(new FileStore(directory));
  // Replay existing table logs.
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file() || entry.path().extension() != ".log") {
      continue;
    }
    std::string stem = entry.path().stem().string();
    // Hex-decode the table name.
    if (stem.size() % 2 != 0) continue;
    std::string table;
    bool valid = true;
    for (size_t i = 0; i + 1 < stem.size() + 1 && i < stem.size(); i += 2) {
      auto nibble = [&](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      int hi = nibble(stem[i]);
      int lo = nibble(stem[i + 1]);
      if (hi < 0 || lo < 0) {
        valid = false;
        break;
      }
      table.push_back(static_cast<char>(hi << 4 | lo));
    }
    if (!valid) continue;
    RSTORE_RETURN_IF_ERROR(store->LoadTable(table, entry.path().string()));
  }
  return store;
}

Status FileStore::LoadTable(const std::string& table,
                            const std::string& path) {
  MutexLock lock(mu_);
  Table& t = tables_[table];
  FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(in);

  Slice input(contents);
  uint64_t replayed_bytes = 0;
  while (!input.empty()) {
    Slice record_slice;
    Slice probe = input;
    if (!GetLengthPrefixed(&probe, &record_slice).ok()) {
      break;  // truncated tail from a crash: stop replay here
    }
    Slice record = record_slice;
    if (record.empty()) break;
    char op = record[0];
    record.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixed(&record, &key).ok()) break;
    if (op == kOpPut) {
      if (!GetLengthPrefixed(&record, &value).ok()) break;
      t.entries[key.ToString()] = value.ToString();
    } else if (op == kOpDelete) {
      t.entries.erase(key.ToString());
    } else {
      break;  // unknown op: treat as corruption boundary
    }
    replayed_bytes += static_cast<uint64_t>(probe.data() - input.data());
    input = probe;
  }
  t.log_bytes = replayed_bytes;
  // Reopen for appending; truncate any detected garbage tail first.
  if (replayed_bytes != contents.size()) {
    FILE* rewrite = std::fopen(path.c_str(), "wb");
    if (rewrite == nullptr) return Status::IOError("cannot rewrite " + path);
    if (replayed_bytes > 0 &&
        std::fwrite(contents.data(), 1, replayed_bytes, rewrite) !=
            replayed_bytes) {
      std::fclose(rewrite);
      return Status::IOError("cannot truncate " + path);
    }
    std::fclose(rewrite);
  }
  t.log = std::fopen(path.c_str(), "ab");
  if (t.log == nullptr) return Status::IOError("cannot append to " + path);
  return Status::OK();
}

Status FileStore::CreateTable(const std::string& table) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it != tables_.end()) return Status::OK();
  Table& t = tables_[table];
  t.log = std::fopen(LogPath(table).c_str(), "ab");
  if (t.log == nullptr) {
    tables_.erase(table);
    return Status::IOError("cannot create log for table " + table);
  }
  return Status::OK();
}

Status FileStore::AppendUnflushed(Table* table, char op, Slice key,
                                  Slice value) {
  std::string record;
  record.push_back(op);
  PutLengthPrefixed(&record, key);
  if (op == kOpPut) PutLengthPrefixed(&record, value);
  std::string framed;
  PutLengthPrefixed(&framed, Slice(record));
  if (std::fwrite(framed.data(), 1, framed.size(), table->log) !=
      framed.size()) {
    return Status::IOError("log append failed");
  }
  table->log_bytes += framed.size();
  return Status::OK();
}

Status FileStore::FlushLog(Table* table) {
  if (std::fflush(table->log) != 0) {
    return Status::IOError("log flush failed");
  }
  return Status::OK();
}

Status FileStore::AppendRecord(Table* table, char op, Slice key,
                               Slice value) {
  RSTORE_RETURN_IF_ERROR(AppendUnflushed(table, op, key, value));
  return FlushLog(table);
}

Status FileStore::Put(const std::string& table, Slice key, Slice value) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  RSTORE_RETURN_IF_ERROR(AppendRecord(&it->second, kOpPut, key, value));
  it->second.entries[key.ToString()] = value.ToString();
  ++stats_.puts;
  stats_.bytes_written += key.size() + value.size();
  return Status::OK();
}

Status FileStore::WriteBatch(
    const std::string& table,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  for (const auto& [key, value] : entries) {
    RSTORE_RETURN_IF_ERROR(
        AppendUnflushed(&it->second, kOpPut, Slice(key), Slice(value)));
    it->second.entries[key] = value;
    ++stats_.puts;
    stats_.bytes_written += key.size() + value.size();
  }
  return FlushLog(&it->second);
}

Result<std::string> FileStore::Get(const std::string& table, Slice key) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  ++stats_.gets;
  ++stats_.keys_requested;
  auto kit = it->second.entries.find(key.ToString());
  if (kit == it->second.entries.end()) {
    return Status::NotFound("key: " + key.ToString());
  }
  stats_.bytes_read += kit->second.size();
  return kit->second;
}

Status FileStore::MultiGet(const std::string& table,
                           const std::vector<std::string>& keys,
                           std::map<std::string, std::string>* out,
                           TraceContext* /*trace*/) {
  // Single node, zero modeled latency: nothing to record in a trace.
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  ++stats_.multiget_batches;
  stats_.keys_requested += keys.size();
  for (const std::string& key : keys) {
    auto kit = it->second.entries.find(key);
    if (kit != it->second.entries.end()) {
      stats_.bytes_read += kit->second.size();
      (*out)[key] = kit->second;
    }
  }
  return Status::OK();
}

Status FileStore::Delete(const std::string& table, Slice key) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  RSTORE_RETURN_IF_ERROR(AppendRecord(&it->second, kOpDelete, key, Slice()));
  it->second.entries.erase(key.ToString());
  ++stats_.deletes;
  return Status::OK();
}

Status FileStore::Scan(
    const std::string& table,
    const std::function<void(Slice key, Slice value)>& fn) {
  // Snapshot under the lock, iterate outside it, so `fn` may re-enter the
  // store without self-deadlocking on mu_ (see MemoryStore::Scan).
  std::map<std::string, std::string> snapshot;
  {
    MutexLock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("table: " + table);
    snapshot = it->second.entries;
  }
  for (const auto& [key, value] : snapshot) {
    fn(Slice(key), Slice(value));
  }
  return Status::OK();
}

Result<uint64_t> FileStore::TableSize(const std::string& table) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  return static_cast<uint64_t>(it->second.entries.size());
}

KVStats FileStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void FileStore::ResetStats() {
  MutexLock lock(mu_);
  stats_ = KVStats{};
}

Result<uint64_t> FileStore::Compact(const std::string& table) {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  Table& t = it->second;
  const uint64_t before = t.log_bytes;
  const std::string path = LogPath(table);
  const std::string tmp_path = path + ".tmp";
  FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) return Status::IOError("cannot create " + tmp_path);
  uint64_t written = 0;
  for (const auto& [key, value] : t.entries) {
    std::string record;
    record.push_back(kOpPut);
    PutLengthPrefixed(&record, Slice(key));
    PutLengthPrefixed(&record, Slice(value));
    std::string framed;
    PutLengthPrefixed(&framed, Slice(record));
    if (std::fwrite(framed.data(), 1, framed.size(), tmp) != framed.size()) {
      std::fclose(tmp);
      std::remove(tmp_path.c_str());
      return Status::IOError("compaction write failed");
    }
    written += framed.size();
  }
  if (std::fflush(tmp) != 0) {
    std::fclose(tmp);
    std::remove(tmp_path.c_str());
    return Status::IOError("compaction flush failed");
  }
  std::fclose(tmp);
  std::fclose(t.log);
  t.log = nullptr;
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("compaction rename failed");
  }
  t.log = std::fopen(path.c_str(), "ab");
  if (t.log == nullptr) return Status::IOError("cannot reopen " + path);
  t.log_bytes = written;
  return before > written ? before - written : 0;
}

}  // namespace rstore
