#ifndef RSTORE_KVSTORE_MEMORY_STORE_H_
#define RSTORE_KVSTORE_MEMORY_STORE_H_

#include <map>
#include <string>

#include "common/sync.h"
#include "kvstore/kv_store.h"

namespace rstore {

/// A single-node in-memory KVStore. Serves two roles: the storage engine
/// inside each simulated cluster node, and a fast zero-latency backend for
/// unit tests. Thread-safe via a single mutex (contention is irrelevant at
/// the scales tests use it directly).
class MemoryStore : public KVStore {
 public:
  MemoryStore() = default;

  Status CreateTable(const std::string& table) override;
  Status Put(const std::string& table, Slice key, Slice value) override;
  /// Applies the whole group under one lock acquisition (group commit);
  /// stats are identical to the equivalent Put sequence.
  Status WriteBatch(const std::string& table,
                    const std::vector<std::pair<std::string, std::string>>&
                        entries) override;
  Result<std::string> Get(const std::string& table, Slice key) override;
  using KVStore::MultiGet;
  Status MultiGet(const std::string& table,
                  const std::vector<std::string>& keys,
                  std::map<std::string, std::string>* out,
                  TraceContext* trace) override;
  Status Delete(const std::string& table, Slice key) override;
  /// Iterates a point-in-time snapshot of the table; the store lock is NOT
  /// held while `fn` runs, so the callback may call back into this store
  /// (or mutate it — such writes are simply not visible to the snapshot).
  Status Scan(const std::string& table,
              const std::function<void(Slice key, Slice value)>& fn) override;
  Result<uint64_t> TableSize(const std::string& table) override;

  KVStats stats() const override;
  void ResetStats() override;

  /// Total bytes of keys+values held, across all tables.
  uint64_t TotalBytes() const;

 private:
  using Table = std::map<std::string, std::string>;

  mutable Mutex mu_{kLockRankMemoryStore, "MemoryStore::mu_"};
  std::map<std::string, Table> tables_ RSTORE_GUARDED_BY(mu_);
  KVStats stats_ RSTORE_GUARDED_BY(mu_);
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_MEMORY_STORE_H_
