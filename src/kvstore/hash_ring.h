#ifndef RSTORE_KVSTORE_HASH_RING_H_
#define RSTORE_KVSTORE_HASH_RING_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace rstore {

/// Consistent-hash ring with virtual nodes, Cassandra/Dynamo style.
///
/// Each physical node owns `virtual_nodes` pseudo-random positions on a
/// 64-bit ring; a key is owned by the node whose position is the first at or
/// clockwise-after the key's hash. Replicas are the next distinct physical
/// nodes walking clockwise. Virtual nodes smooth the load imbalance to a few
/// percent, which the cluster simulator's per-node serial service model then
/// translates into realistic tail behaviour.
class HashRing {
 public:
  /// `num_nodes` >= 1 physical nodes, each with `virtual_nodes` ring entries.
  HashRing(uint32_t num_nodes, uint32_t virtual_nodes, uint64_t seed);

  uint32_t num_nodes() const { return num_nodes_; }

  /// The physical node owning `key`.
  uint32_t Owner(Slice key) const;

  /// The first `count` distinct physical nodes clockwise from `key`'s
  /// position: the primary followed by its replicas. `count` is clamped to
  /// the number of physical nodes.
  std::vector<uint32_t> Replicas(Slice key, uint32_t count) const;

  /// Ring/replica invariants: exactly num_nodes * virtual_nodes entries,
  /// sorted by position, every node id in range, and every physical node
  /// present on the ring (otherwise Replicas() could never return it and its
  /// data would be unreachable). Returns kCorruption on the first violation.
  Status Validate() const;

 private:
  struct Entry {
    uint64_t position;
    uint32_t node;
    bool operator<(const Entry& other) const {
      return position < other.position;
    }
  };

  uint32_t num_nodes_;
  uint32_t virtual_nodes_;
  std::vector<Entry> ring_;  // sorted by position
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_HASH_RING_H_
