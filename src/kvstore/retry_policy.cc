#include "kvstore/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rstore {

uint64_t RetryPolicy::BackoffMicros(uint32_t retry, double jitter_token) const {
  RSTORE_DCHECK(retry >= 1) << "backoff is only charged before a retry";
  RSTORE_DCHECK(jitter_token >= 0.0 && jitter_token < 1.0);
  double backoff = static_cast<double>(base_backoff_us) *
                   std::pow(backoff_multiplier, static_cast<double>(retry - 1));
  backoff = std::min(backoff, static_cast<double>(max_backoff_us));
  // jitter_token in [0,1) -> factor in [1-jitter, 1+jitter).
  const double factor = 1.0 + jitter_fraction * (2.0 * jitter_token - 1.0);
  backoff = std::max(0.0, backoff * factor);
  return static_cast<uint64_t>(std::llround(backoff));
}

}  // namespace rstore
