#ifndef RSTORE_KVSTORE_RETRY_POLICY_H_
#define RSTORE_KVSTORE_RETRY_POLICY_H_

#include <cstdint>

namespace rstore {

/// Coordinator-side retry discipline for requests against cluster nodes.
/// All timing is charged to the *simulated* clock: a backoff of 500 us adds
/// 500 us to stats().simulated_micros and zero wall time.
struct RetryPolicy {
  /// Total attempts per node including the first (1 = no retries).
  uint32_t max_attempts = 3;

  /// Simulated backoff before retry k (1-based) is
  ///   min(base * multiplier^(k-1), max) * (1 +/- jitter)
  /// with deterministic jitter derived from the fault injector's seed.
  uint64_t base_backoff_us = 500;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_us = 50'000;
  double jitter_fraction = 0.1;

  /// Per-request deadline on the simulated clock: if a node's attempt would
  /// complete later than start + timeout, the coordinator abandons it at the
  /// deadline and fails over. 0 disables timeouts.
  uint64_t request_timeout_us = 0;

  /// Simulated backoff in micros before retry `retry` (1-based).
  /// `jitter_token` is a deterministic uniform in [0, 1) — see
  /// FaultInjector::UniformAt — mapped onto [-jitter, +jitter].
  uint64_t BackoffMicros(uint32_t retry, double jitter_token) const;
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_RETRY_POLICY_H_
