#ifndef RSTORE_KVSTORE_FAULT_INJECTOR_H_
#define RSTORE_KVSTORE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

namespace rstore {

/// Half-open interval of coordinator operation ticks during which a node is
/// crashed (rejects every request, exactly like SetNodeAlive(node, false)).
/// Ticks — one per coordinator-level operation — are the injector's time
/// axis: they advance deterministically with the workload, so a schedule
/// expressed in ticks replays identically run after run, which a wall-clock
/// schedule never could.
struct CrashWindow {
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;  // exclusive

  bool Contains(uint64_t tick) const {
    return tick >= start_tick && tick < end_tick;
  }
};

/// Per-node fault behaviour. All probabilities are evaluated with a
/// deterministic hash of (seed, node, tick, attempt), never a stateful RNG,
/// so a decision depends only on its coordinates — concurrent requests
/// cannot perturb each other's fault outcomes.
struct NodeFaultProfile {
  /// Probability that one request attempt against the node fails with a
  /// transient error (the coordinator retries per its RetryPolicy).
  double transient_error_rate = 0.0;

  /// Probability that an attempt is served slowly: its modeled service time
  /// is multiplied by `slow_multiplier`. Slow attempts are what trip the
  /// latency model's hedge threshold.
  double slow_rate = 0.0;
  double slow_multiplier = 1.0;

  /// The transient/slow rates apply only from this operation tick on —
  /// earlier ticks behave fault-free. Lets a schedule spare a setup phase
  /// (e.g. a bulk load) and then fault the measured workload; crash windows
  /// carry their own tick ranges and ignore this.
  uint64_t active_from_tick = 0;

  /// Tick windows during which the node is down. Writes are hinted, reads
  /// fail over, and the node is backfilled when the window passes.
  std::vector<CrashWindow> crash_windows;

  bool any_faults() const {
    return transient_error_rate > 0.0 || slow_rate > 0.0 ||
           !crash_windows.empty();
  }
};

/// A complete, replayable fault schedule for a simulated cluster. Default
/// construction is inert: no faults, zero overhead on the request paths.
struct FaultInjectorOptions {
  /// Root of every fault decision; two clusters configured with the same
  /// seed and profiles inject byte-identical fault timelines.
  uint64_t seed = 0xFA017ull;

  /// Applied to every node without an entry in `per_node`.
  NodeFaultProfile default_profile;

  /// Node-specific overrides (replace, not merge, the default profile).
  std::map<uint32_t, NodeFaultProfile> per_node;

  bool any_faults() const {
    if (default_profile.any_faults()) return true;
    for (const auto& [node, profile] : per_node) {
      if (profile.any_faults()) return true;
    }
    return false;
  }
};

/// What the injector decided for one request attempt against one node.
enum class FaultKind {
  kOk,
  kTransientError,  // attempt fails; coordinator may retry
  kSlow,            // attempt succeeds at slow_multiplier x the modeled time
};

struct FaultDecision {
  FaultKind kind = FaultKind::kOk;
  double slow_multiplier = 1.0;
};

/// Deterministic, seeded fault source for the simulated cluster.
///
/// The coordinator draws one tick per operation (NextTick) and evaluates
/// every per-node attempt against that tick: crash windows come from the
/// schedule, transient/slow outcomes from a counter-free hash of
/// (seed, node, tick, attempt, salt). Determinism contract: given the same
/// options and the same (node, tick, attempt, salt) coordinates, Decide
/// returns the same outcome in every process, on every thread — the chaos
/// equivalence harness depends on it.
///
/// Thread-safe: the tick counter is a single relaxed atomic; everything else
/// is immutable after construction.
class FaultInjector {
 public:
  FaultInjector(const FaultInjectorOptions& options, uint32_t num_nodes);

  /// False when the schedule contains no faults at all (the default): the
  /// cluster then skips every injection branch.
  bool enabled() const { return enabled_; }

  /// Claims the tick for one coordinator operation.
  uint64_t NextTick() {
    return ticks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The next tick NextTick would return (monotonic observation point).
  uint64_t CurrentTick() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// True when `node` is inside one of its crash windows at `tick`.
  bool Crashed(uint32_t node, uint64_t tick) const;

  /// Outcome for attempt number `attempt` (0-based) of the operation at
  /// `tick` against `node`. `salt` decorrelates different uses within one
  /// operation (primary read vs. hedge vs. write).
  FaultDecision Decide(uint32_t node, uint64_t tick, uint32_t attempt,
                       uint32_t salt = 0) const;

  /// Deterministic uniform double in [0, 1) at the given coordinates — the
  /// primitive Decide is built from, exposed for tests and for policies that
  /// need extra deterministic randomness (backoff jitter).
  double UniformAt(uint32_t node, uint64_t tick, uint32_t attempt,
                   uint32_t salt) const;

  const NodeFaultProfile& profile(uint32_t node) const {
    return profiles_[node];
  }

  // -- Injected-fault tallies, by kind. Chaos tests reconcile these against
  //    the coordinator's KVStats: every retry/failover the cluster performs
  //    must trace back to an injected fault, so e.g. KVStats::retries can
  //    never exceed transient_errors_injected + crash_rejections_injected.
  //    All three stay zero on a fault-free schedule.

  /// Attempts Decide failed with kTransientError.
  uint64_t transient_errors_injected() const {
    return transient_injected_.load(std::memory_order_relaxed);
  }
  /// Attempts Decide served at slow_multiplier x the modeled time.
  uint64_t slow_attempts_injected() const {
    return slow_injected_.load(std::memory_order_relaxed);
  }
  /// Times Crashed() told the coordinator a node was inside a crash window
  /// (one per rejected attempt the coordinator probed).
  uint64_t crash_rejections_injected() const {
    return crash_injected_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<NodeFaultProfile> profiles_;  // resolved, one per node
  uint64_t seed_;
  bool enabled_;
  // Relaxed monotone tick dispenser; concurrent coordinator ops may claim
  // ticks in any interleaving, which the seeded hash absorbs. analyze:atomic
  std::atomic<uint64_t> ticks_{0};
  // Relaxed monotone fault tallies, bumped from the const decision paths
  // (observability only — decisions themselves stay pure functions of their
  // coordinates). analyze:atomic
  mutable std::atomic<uint64_t> transient_injected_{0};
  mutable std::atomic<uint64_t> slow_injected_{0};    // analyze:atomic
  mutable std::atomic<uint64_t> crash_injected_{0};   // analyze:atomic
};

}  // namespace rstore

#endif  // RSTORE_KVSTORE_FAULT_INJECTOR_H_
