#include "kvstore/latency_model.h"

#include <algorithm>
#include <cmath>

namespace rstore {

uint64_t LatencyModel::NodeServiceMicros(uint64_t keys, uint64_t bytes) const {
  if (keys == 0) return 0;
  double total_us = static_cast<double>(keys) *
                        static_cast<double>(request_overhead_us) +
                    static_cast<double>(bytes) * per_byte_ns / 1000.0;
  uint32_t conc = std::max<uint32_t>(1, node_concurrency);
  // Pipelined service: the node overlaps up to `conc` requests, so elapsed
  // time is total work divided by the concurrency it can sustain.
  return static_cast<uint64_t>(std::ceil(total_us / conc));
}

LatencyModel DefaultLatencyModel() { return LatencyModel{}; }

LatencyModel ZeroLatencyModel() {
  LatencyModel m;
  m.request_overhead_us = 0;
  m.per_byte_ns = 0.0;
  m.coordinator_overhead_us = 0;
  return m;
}

}  // namespace rstore
