#include "kvstore/fault_injector.h"

#include "common/hash.h"
#include "common/logging.h"

namespace rstore {

FaultInjector::FaultInjector(const FaultInjectorOptions& options,
                             uint32_t num_nodes)
    : seed_(options.seed), enabled_(options.any_faults()) {
  profiles_.reserve(num_nodes);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    auto it = options.per_node.find(node);
    const NodeFaultProfile& p =
        it != options.per_node.end() ? it->second : options.default_profile;
    RSTORE_CHECK(p.transient_error_rate >= 0.0 &&
                 p.transient_error_rate <= 1.0)
        << "transient_error_rate out of [0,1] for node " << node;
    RSTORE_CHECK(p.slow_rate >= 0.0 && p.slow_rate <= 1.0)
        << "slow_rate out of [0,1] for node " << node;
    RSTORE_CHECK(p.slow_multiplier >= 1.0)
        << "slow_multiplier < 1 for node " << node;
    for (const CrashWindow& w : p.crash_windows) {
      RSTORE_CHECK(w.start_tick <= w.end_tick)
          << "inverted crash window for node " << node;
    }
    profiles_.push_back(p);
  }
}

bool FaultInjector::Crashed(uint32_t node, uint64_t tick) const {
  if (!enabled_) return false;
  RSTORE_DCHECK(node < profiles_.size());
  for (const CrashWindow& w : profiles_[node].crash_windows) {
    if (w.Contains(tick)) {
      crash_injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

double FaultInjector::UniformAt(uint32_t node, uint64_t tick, uint32_t attempt,
                                uint32_t salt) const {
  // Independent streams via iterated avalanche mixing; the coordinates are
  // folded in one at a time so (node=1, tick=2) and (node=2, tick=1) land in
  // unrelated parts of the output space.
  uint64_t h = Mix64(seed_ ^ 0x9E3779B97F4A7C15ull);
  h = Mix64(h ^ (uint64_t{node} + 1));
  h = Mix64(h ^ (tick + 1));
  h = Mix64(h ^ (uint64_t{attempt} + 1));
  h = Mix64(h ^ (uint64_t{salt} + 1));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultDecision FaultInjector::Decide(uint32_t node, uint64_t tick,
                                    uint32_t attempt, uint32_t salt) const {
  FaultDecision decision;
  if (!enabled_) return decision;
  RSTORE_DCHECK(node < profiles_.size());
  const NodeFaultProfile& p = profiles_[node];
  if (!p.any_faults()) return decision;
  if (tick < p.active_from_tick) return decision;
  // Two independent draws: an attempt can only be one of error/slow, with
  // error taking priority (a request that never completes can't be "slow").
  if (p.transient_error_rate > 0.0 &&
      UniformAt(node, tick, attempt, salt * 2 + 0) < p.transient_error_rate) {
    decision.kind = FaultKind::kTransientError;
    transient_injected_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  if (p.slow_rate > 0.0 &&
      UniformAt(node, tick, attempt, salt * 2 + 1) < p.slow_rate) {
    decision.kind = FaultKind::kSlow;
    decision.slow_multiplier = p.slow_multiplier;
    slow_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

}  // namespace rstore
