#ifndef RSTORE_KVSTORE_LATENCY_MODEL_H_
#define RSTORE_KVSTORE_LATENCY_MODEL_H_

#include <cstdint>

namespace rstore {

/// Cost model for the simulated cluster, replacing the paper's physical
/// Cassandra deployment (see DESIGN.md, "Substitutions").
///
/// Every effect the paper's evaluation measures is a function of three
/// things this model charges for:
///   1. a fixed per-request coordinator<->node round-trip overhead — this is
///      what makes the "too many queries" problem real (paper §2.3: ~100K
///      unit-size requests took 65 s, i.e. ~0.65 ms per request);
///   2. a per-byte transfer cost (network + storage-engine scan);
///   3. per-node serial service with cross-node parallelism — a batch
///      completes when the slowest node finishes its share, which is what
///      produces the weak-scaling curves of Fig. 12.
///
/// Defaults are calibrated to the §2.3 measurement: 0.6 ms/request and
/// 50 ns/byte (~20 MB/s effective per node, the paper's observed end-to-end
/// scan+transfer rate).
struct LatencyModel {
  /// Fixed cost charged per key request reaching a node (round trip,
  /// request parsing, one storage-engine point lookup).
  uint64_t request_overhead_us = 600;

  /// Transfer + scan cost per value byte moved from a node.
  double per_byte_ns = 50.0;

  /// Fixed cost per client->coordinator operation (one per Get/Put/Delete,
  /// one per MultiGet batch regardless of batch size).
  uint64_t coordinator_overhead_us = 200;

  /// How many outstanding requests a single node serves concurrently.
  /// Requests beyond this queue: a node's completion time for n requests of
  /// average cost c is ceil(n / concurrency) * c.
  uint32_t node_concurrency = 4;

  /// Hedged-read threshold ("tail at scale" speculation): when a node's
  /// modeled service time for its share of a batch exceeds this, the
  /// coordinator speculatively re-issues those keys to the next alive
  /// replica and takes whichever finishes first. 0 disables hedging (the
  /// default — hedges only help when replication_factor > 1 anyway).
  uint64_t hedge_threshold_us = 0;

  /// Simulated cost in microseconds for one node servicing `keys` point
  /// lookups totalling `bytes` of values, accounting for node_concurrency.
  uint64_t NodeServiceMicros(uint64_t keys, uint64_t bytes) const;
};

/// Cassandra-like defaults (see above).
LatencyModel DefaultLatencyModel();

/// A zero-cost model: the cluster then behaves like a plain sharded map.
LatencyModel ZeroLatencyModel();

}  // namespace rstore

#endif  // RSTORE_KVSTORE_LATENCY_MODEL_H_
