#ifndef RSTORE_WORKLOAD_QUERY_WORKLOAD_H_
#define RSTORE_WORKLOAD_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "version/dataset.h"

namespace rstore {
namespace workload {

/// One query of the paper's §5.4 randomly generated workloads.
struct Query {
  enum class Kind { kFullVersion, kRange, kEvolution, kPoint };
  Kind kind = Kind::kFullVersion;
  VersionId version = 0;        // Q1/Q2/point
  std::string key_lo, key_hi;   // Q2
  std::string key;              // Q3/point
};

/// Generates randomized query workloads over a dataset: uniformly random
/// versions for Q1, random key ranges of a requested selectivity for Q2,
/// and uniformly random primary keys for Q3.
class QueryWorkloadGenerator {
 public:
  QueryWorkloadGenerator(const VersionedDataset* dataset, uint64_t seed);

  /// `count` full-version retrievals over random versions.
  std::vector<Query> FullVersionQueries(size_t count);
  /// `count` range retrievals, each covering ~`selectivity` of the key
  /// space of a random version.
  std::vector<Query> RangeQueries(size_t count, double selectivity);
  /// `count` record-evolution queries over random primary keys.
  std::vector<Query> EvolutionQueries(size_t count);
  /// `count` point lookups (random key of a random version).
  std::vector<Query> PointQueries(size_t count);

 private:
  /// All distinct primary keys, sorted.
  const std::vector<std::string>& Keys();

  const VersionedDataset* dataset_;
  Random rng_;
  std::vector<std::string> keys_;
};

}  // namespace workload
}  // namespace rstore

#endif  // RSTORE_WORKLOAD_QUERY_WORKLOAD_H_
