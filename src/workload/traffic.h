#ifndef RSTORE_WORKLOAD_TRAFFIC_H_
#define RSTORE_WORKLOAD_TRAFFIC_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/executor.h"
#include "core/query_processor.h"
#include "core/rstore.h"
#include "version/dataset.h"
#include "workload/query_workload.h"

namespace rstore {
namespace workload {

/// A deterministic mixed query stream and how to drive it. The same options
/// always produce the same queries (GenerateTraffic is a pure function of
/// the dataset and seed), so a sync and an async run over one stream are
/// comparable query for query.
struct TrafficOptions {
  uint64_t seed = 1;
  uint32_t num_queries = 200;

  /// Relative mix weights of the four query classes (paper §5.4's Q1/Q2/Q3
  /// plus point lookups). Defaults skew toward the cheap classes, like
  /// interactive traffic.
  uint32_t weight_full = 1;
  uint32_t weight_range = 4;
  uint32_t weight_evolution = 2;
  uint32_t weight_point = 9;

  /// Version popularity skew: versions are ranked newest-first and sampled
  /// Zipf(theta) — recent versions are hot, as in real checkout traffic.
  double zipf_theta = 0.8;
  /// Fraction of the key space each range query covers.
  double range_selectivity = 0.05;

  /// Open-loop arrival: one query arrives every `arrival_interval_us` of
  /// virtual time regardless of completions (latency then includes queueing
  /// behind saturated nodes). 0 selects closed-loop mode.
  uint64_t arrival_interval_us = 0;
  /// Closed-loop concurrency: how many queries are kept in flight; each
  /// completion immediately submits the next. Ignored in open-loop mode.
  /// 1 reproduces the synchronous engine's timeline exactly.
  uint32_t concurrency = 16;
};

/// Generates the deterministic mixed query stream for `options`.
std::vector<Query> GenerateTraffic(const VersionedDataset& dataset,
                                   const TrafficOptions& options);

/// Outcome of one traffic run. Every figure is on the virtual clock, so two
/// runs with the same stream and scheduling are bit-equal.
struct TrafficReport {
  uint64_t completed = 0;
  /// Queries that finished with a non-OK status (their status codes still
  /// feed result_hash, so equivalence checks cover failures too).
  uint64_t failed = 0;
  /// Per-query virtual-time latency, indexed by submission order.
  std::vector<uint64_t> latencies_us;
  /// Virtual time from the first submission to the last completion.
  uint64_t makespan_us = 0;
  /// Aggregate per-query cost accounting (sum over all queries).
  QueryStats stats;
  /// The same accounting split by query class, indexed by
  /// static_cast<size_t>(Query::Kind) — tail attribution differs wildly
  /// between a full-version scan and a point lookup, so the aggregate alone
  /// hides which class is paying the queue/retry penalty.
  std::array<QueryStats, 4> stats_by_kind;
  /// Order-independent fingerprint of every query's full result (records
  /// and status, keyed by submission index): equal hashes mean every query
  /// returned byte-identical results.
  uint64_t result_hash = 0;

  double throughput_qps() const;
  /// Nearest-rank percentile of latencies_us; `p` in (0, 100].
  uint64_t PercentileLatencyUs(double p) const;
};

/// Hash of a result set as fingerprinted by the harness (exposed so tests
/// can fingerprint individually obtained results the same way).
uint64_t HashRecords(const std::vector<Record>& records);

/// Drives the stream through the asynchronous read path: queries pipeline
/// through the coordinator on `executor`'s virtual timeline, per
/// TrafficOptions' loop mode. Returns after the executor drains.
TrafficReport RunTrafficAsync(RStore* store, Executor* executor,
                              const std::vector<Query>& queries,
                              const TrafficOptions& options);

/// Synchronous baseline: one query at a time. Each query's latency is its
/// own simulated cost and the makespan is their sum — the coordinator never
/// overlaps work, which is exactly the idle capacity the async engine
/// reclaims.
TrafficReport RunTrafficSync(RStore* store,
                             const std::vector<Query>& queries);

}  // namespace workload
}  // namespace rstore

#endif  // RSTORE_WORKLOAD_TRAFFIC_H_
