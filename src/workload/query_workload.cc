#include "workload/query_workload.h"

#include <algorithm>
#include <set>

namespace rstore {
namespace workload {

QueryWorkloadGenerator::QueryWorkloadGenerator(
    const VersionedDataset* dataset, uint64_t seed)
    : dataset_(dataset), rng_(seed) {}

const std::vector<std::string>& QueryWorkloadGenerator::Keys() {
  if (keys_.empty()) {
    std::set<std::string> unique;
    for (const VersionDelta& delta : dataset_->deltas) {
      for (const CompositeKey& ck : delta.added) unique.insert(ck.key);
    }
    keys_.assign(unique.begin(), unique.end());
  }
  return keys_;
}

std::vector<Query> QueryWorkloadGenerator::FullVersionQueries(size_t count) {
  std::vector<Query> out(count);
  for (Query& q : out) {
    q.kind = Query::Kind::kFullVersion;
    q.version = static_cast<VersionId>(rng_.Uniform(dataset_->graph.size()));
  }
  return out;
}

std::vector<Query> QueryWorkloadGenerator::RangeQueries(size_t count,
                                                        double selectivity) {
  const auto& keys = Keys();
  size_t span = std::max<size_t>(
      1, static_cast<size_t>(selectivity * keys.size()));
  std::vector<Query> out(count);
  for (Query& q : out) {
    q.kind = Query::Kind::kRange;
    q.version = static_cast<VersionId>(rng_.Uniform(dataset_->graph.size()));
    size_t start = rng_.Uniform(keys.size() - std::min(span, keys.size()) + 1);
    q.key_lo = keys[start];
    q.key_hi = keys[std::min(start + span, keys.size()) - 1];
  }
  return out;
}

std::vector<Query> QueryWorkloadGenerator::EvolutionQueries(size_t count) {
  const auto& keys = Keys();
  std::vector<Query> out(count);
  for (Query& q : out) {
    q.kind = Query::Kind::kEvolution;
    q.key = keys[rng_.Uniform(keys.size())];
  }
  return out;
}

std::vector<Query> QueryWorkloadGenerator::PointQueries(size_t count) {
  const auto& keys = Keys();
  std::vector<Query> out(count);
  for (Query& q : out) {
    q.kind = Query::Kind::kPoint;
    q.version = static_cast<VersionId>(rng_.Uniform(dataset_->graph.size()));
    q.key = keys[rng_.Uniform(keys.size())];
  }
  return out;
}

}  // namespace workload
}  // namespace rstore
