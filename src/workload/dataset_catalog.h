#ifndef RSTORE_WORKLOAD_DATASET_CATALOG_H_
#define RSTORE_WORKLOAD_DATASET_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "workload/dataset_generator.h"

namespace rstore {
namespace workload {

/// The named datasets of paper Table 2, scaled down for an in-process
/// simulator (see DESIGN.md "Substitutions"): the structural parameters —
/// linear vs. branched shape, depth ratios, update percentage, skew — match
/// the paper; version counts, records per version, and record sizes are
/// divided by a common factor so every experiment runs in seconds. Scale
/// mapping (paper -> here):
///
///   A*: 300 versions, depth 300 (chains),   100K recs -> 150 versions, 1.5K recs
///   B*: 1001 versions, avg depth ~294,      100K recs -> 300 versions, 1.5K recs
///   C*: 10001 versions, avg depth ~143,      20K recs -> 800 versions, 500 recs
///   D*: 10002 versions, avg depth ~94,       20K recs -> 800 versions, 500 recs
///   E/F: the TB-scale variants               -> 1000 versions, 1K recs
///   G/H: the weak-scaling datasets of Fig.12 -> parameterized per cluster size
struct CatalogEntry {
  const char* name;
  DatasetConfig config;
};

/// Every catalog entry (A0..F).
std::vector<CatalogEntry> DatasetCatalog();

/// Looks up one entry by name ("A0", "C1", ...).
Result<DatasetConfig> CatalogConfig(const std::string& name);

}  // namespace workload
}  // namespace rstore

#endif  // RSTORE_WORKLOAD_DATASET_CATALOG_H_
