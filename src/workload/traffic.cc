#include "workload/traffic.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"

namespace rstore {
namespace workload {

namespace {

/// Order-independent per-query fingerprint: mixes the submission index with
/// the status code and the records hash, so XOR-combining across queries
/// detects any query returning different bytes (or a different error).
uint64_t QueryFingerprint(size_t index, const Status& status,
                          uint64_t records_hash) {
  uint64_t h = Mix64(static_cast<uint64_t>(index) ^ 0x9e3779b97f4a7c15ull);
  h ^= Mix64(static_cast<uint64_t>(status.code()) + 1);
  h ^= records_hash;
  return Mix64(h);
}

std::vector<std::string> DistinctKeys(const VersionedDataset& dataset) {
  std::set<std::string> unique;
  for (const VersionDelta& delta : dataset.deltas) {
    for (const CompositeKey& ck : delta.added) unique.insert(ck.key);
  }
  return std::vector<std::string>(unique.begin(), unique.end());
}

}  // namespace

uint64_t HashRecords(const std::vector<Record>& records) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis, arbitrary nonzero
  for (const Record& r : records) {
    h = Mix64(h ^ Fnv1a64(r.key.key));
    h = Mix64(h ^ r.key.version);
    h = Mix64(h ^ Fnv1a64(r.payload));
  }
  return h;
}

std::vector<Query> GenerateTraffic(const VersionedDataset& dataset,
                                   const TrafficOptions& options) {
  RSTORE_CHECK(dataset.graph.size() > 0) << "empty dataset";
  Random rng(options.seed);
  ZipfGenerator zipf(dataset.graph.size(),
                     options.zipf_theta > 0 ? options.zipf_theta : 0.01);
  const std::vector<std::string> keys = DistinctKeys(dataset);
  RSTORE_CHECK(!keys.empty()) << "dataset has no keys";
  const size_t span = std::max<size_t>(
      1, static_cast<size_t>(options.range_selectivity * keys.size()));
  const uint64_t w_full = options.weight_full;
  const uint64_t w_range = w_full + options.weight_range;
  const uint64_t w_evo = w_range + options.weight_evolution;
  const uint64_t total = w_evo + options.weight_point;
  RSTORE_CHECK(total > 0) << "all mix weights zero";

  std::vector<Query> out(options.num_queries);
  for (Query& q : out) {
    // Zipf rank 0 = newest version: hot recent checkouts.
    q.version = static_cast<VersionId>(dataset.graph.size() - 1 -
                                       zipf.Sample(&rng));
    const uint64_t pick = rng.Uniform(total);
    if (pick < w_full) {
      q.kind = Query::Kind::kFullVersion;
    } else if (pick < w_range) {
      q.kind = Query::Kind::kRange;
      const size_t start =
          rng.Uniform(keys.size() - std::min(span, keys.size()) + 1);
      q.key_lo = keys[start];
      q.key_hi = keys[std::min(start + span, keys.size()) - 1];
    } else if (pick < w_evo) {
      q.kind = Query::Kind::kEvolution;
      q.key = keys[rng.Uniform(keys.size())];
    } else {
      q.kind = Query::Kind::kPoint;
      q.key = keys[rng.Uniform(keys.size())];
    }
  }
  return out;
}

double TrafficReport::throughput_qps() const {
  if (makespan_us == 0) return 0.0;
  return static_cast<double>(completed) * 1e6 /
         static_cast<double>(makespan_us);
}

uint64_t TrafficReport::PercentileLatencyUs(double p) const {
  if (latencies_us.empty()) return 0;
  std::vector<uint64_t> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest latency >= p percent of the distribution.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TrafficReport RunTrafficSync(RStore* store,
                             const std::vector<Query>& queries) {
  TrafficReport report;
  report.latencies_us.resize(queries.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    QueryStats qs;
    Status status = Status::OK();
    uint64_t records_hash = 0;
    switch (q.kind) {
      case Query::Kind::kFullVersion: {
        auto r = store->GetVersion(q.version, &qs);
        status = r.status();
        if (r.ok()) records_hash = HashRecords(r.value());
        break;
      }
      case Query::Kind::kRange: {
        auto r = store->GetRange(q.version, q.key_lo, q.key_hi, &qs);
        status = r.status();
        if (r.ok()) records_hash = HashRecords(r.value());
        break;
      }
      case Query::Kind::kEvolution: {
        auto r = store->GetHistory(q.key, &qs);
        status = r.status();
        if (r.ok()) records_hash = HashRecords(r.value());
        break;
      }
      case Query::Kind::kPoint: {
        auto r = store->GetRecord(q.key, q.version, &qs);
        status = r.status();
        if (r.ok()) records_hash = HashRecords({r.value()});
        break;
      }
    }
    report.latencies_us[i] = qs.simulated_micros;
    report.makespan_us += qs.simulated_micros;
    report.stats += qs;
    report.stats_by_kind[static_cast<size_t>(q.kind)] += qs;
    if (status.ok()) {
      ++report.completed;
    } else {
      ++report.failed;
    }
    report.result_hash ^= QueryFingerprint(i, status, records_hash);
  }
  return report;
}

TrafficReport RunTrafficAsync(RStore* store, Executor* executor,
                              const std::vector<Query>& queries,
                              const TrafficOptions& options) {
  struct Shared {
    RStore* store = nullptr;
    Executor* executor = nullptr;
    const std::vector<Query>* queries = nullptr;
    bool closed_loop = false;
    TrafficReport report;
    size_t next = 0;  // next query to submit (closed-loop refill)
    uint64_t first_submit_us = 0;
    uint64_t last_complete_us = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->store = store;
  shared->executor = executor;
  shared->queries = &queries;
  shared->closed_loop = options.arrival_interval_us == 0;
  shared->report.latencies_us.resize(queries.size(), 0);

  // Self-referential submit closure: heap-held so completion continuations
  // can refill the closed loop; the self-cycle is broken after the drain.
  auto submit = std::make_shared<std::function<void(size_t)>>();
  *submit = [shared, submit](size_t index) {
    const Query& q = (*shared->queries)[index];
    const uint64_t start_us = shared->executor->now_us();
    auto on_done = [shared, submit, index, start_us](
                       const Status& status, uint64_t records_hash,
                       const QueryStats& qs) {
      const uint64_t end_us = shared->executor->now_us();
      TrafficReport& report = shared->report;
      report.latencies_us[index] = end_us - start_us;
      report.stats += qs;
      report.stats_by_kind[static_cast<size_t>(
          (*shared->queries)[index].kind)] += qs;
      if (status.ok()) {
        ++report.completed;
      } else {
        ++report.failed;
      }
      report.result_hash ^= QueryFingerprint(index, status, records_hash);
      shared->last_complete_us = std::max(shared->last_complete_us, end_us);
      if (shared->closed_loop && shared->next < shared->queries->size()) {
        (*submit)(shared->next++);
      }
    };
    switch (q.kind) {
      case Query::Kind::kFullVersion:
        shared->store->GetVersionAsync(shared->executor, q.version)
            .OnReady([on_done](const AsyncQueryResult& r) {
              on_done(r.status, HashRecords(r.records), r.stats);
            });
        break;
      case Query::Kind::kRange:
        shared->store
            ->GetRangeAsync(shared->executor, q.version, q.key_lo, q.key_hi)
            .OnReady([on_done](const AsyncQueryResult& r) {
              on_done(r.status, HashRecords(r.records), r.stats);
            });
        break;
      case Query::Kind::kEvolution:
        shared->store->GetHistoryAsync(shared->executor, q.key)
            .OnReady([on_done](const AsyncQueryResult& r) {
              on_done(r.status, HashRecords(r.records), r.stats);
            });
        break;
      case Query::Kind::kPoint:
        shared->store->GetRecordAsync(shared->executor, q.key, q.version)
            .OnReady([on_done](const AsyncRecordResult& r) {
              on_done(r.status,
                      r.status.ok() ? HashRecords({r.record}) : 0, r.stats);
            });
        break;
    }
  };

  shared->first_submit_us = executor->now_us();
  if (shared->closed_loop) {
    const size_t initial = std::min<size_t>(
        std::max<uint32_t>(options.concurrency, 1), queries.size());
    shared->next = initial;
    for (size_t i = 0; i < initial; ++i) (*submit)(i);
  } else {
    const uint64_t base = shared->first_submit_us;
    for (size_t i = 0; i < queries.size(); ++i) {
      executor->PostAt(base + i * options.arrival_interval_us,
                       [submit, i] { (*submit)(i); });
    }
  }
  executor->RunUntilIdle();
  *submit = nullptr;  // break the self-cycle

  TrafficReport report = std::move(shared->report);
  RSTORE_CHECK(report.completed + report.failed == queries.size())
      << "traffic run lost queries: " << report.completed << " + "
      << report.failed << " != " << queries.size();
  report.makespan_us = shared->last_complete_us - shared->first_submit_us;
  return report;
}

}  // namespace workload
}  // namespace rstore
