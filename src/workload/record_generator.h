#ifndef RSTORE_WORKLOAD_RECORD_GENERATOR_H_
#define RSTORE_WORKLOAD_RECORD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace rstore {
namespace workload {

/// Generates and mutates JSON record payloads, mirroring the paper's data
/// generator (§5.1): "every record in the base version is assigned an
/// auto-incremented primary key and a randomly generated value of the
/// requisite size", and updated records change by at most a bounded
/// percentage Pd of their content (§5.3).
class RecordGenerator {
 public:
  /// `target_bytes` is the approximate serialized record size.
  RecordGenerator(uint32_t target_bytes, uint64_t seed);

  /// A fresh record for `key`: a JSON document with an id field and enough
  /// random string fields to reach the target size.
  std::string Generate(const std::string& key);

  /// A mutated copy of `payload` where roughly `pd` (0..1] of the content
  /// bytes change — the paper's bounded-difference update used in the
  /// compression experiments (Fig. 10). The result is again valid JSON.
  std::string Mutate(const std::string& payload, double pd);

  uint32_t target_bytes() const { return target_bytes_; }

 private:
  std::string RandomToken(size_t length);

  uint32_t target_bytes_;
  Random rng_;
};

}  // namespace workload
}  // namespace rstore

#endif  // RSTORE_WORKLOAD_RECORD_GENERATOR_H_
