#include "workload/record_generator.h"

#include <algorithm>

#include "json/json_parser.h"
#include "json/json_value.h"
#include "json/json_writer.h"

namespace rstore {
namespace workload {

namespace {
constexpr size_t kFieldValueBytes = 16;
constexpr char kAlphabet[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
}  // namespace

RecordGenerator::RecordGenerator(uint32_t target_bytes, uint64_t seed)
    : target_bytes_(std::max<uint32_t>(target_bytes, 64)), rng_(seed) {}

std::string RecordGenerator::RandomToken(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng_.Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::string RecordGenerator::Generate(const std::string& key) {
  json::Value doc = json::Value::MakeObject();
  doc["id"] = json::Value(key);
  // Each field costs roughly kFieldValueBytes + ~12 bytes of framing.
  size_t budget = target_bytes_;
  size_t field = 0;
  json::Value fields = json::Value::MakeObject();
  while (budget > kFieldValueBytes + 12) {
    std::string name =
        "f" + std::to_string(field < 10 ? field : field);  // f0, f1, ...
    fields[name] = json::Value(RandomToken(kFieldValueBytes));
    budget -= kFieldValueBytes + 12;
    ++field;
  }
  doc["fields"] = std::move(fields);
  return json::WriteCompact(doc);
}

std::string RecordGenerator::Mutate(const std::string& payload, double pd) {
  auto parsed = json::Parse(payload);
  if (!parsed.ok() || !parsed->is_object()) {
    // Non-JSON payload: mutate raw bytes instead.
    std::string out = payload;
    size_t flips =
        std::max<size_t>(1, static_cast<size_t>(pd * out.size()));
    for (size_t i = 0; i < flips; ++i) {
      out[rng_.Uniform(out.size())] =
          kAlphabet[rng_.Uniform(sizeof(kAlphabet) - 1)];
    }
    return out;
  }
  json::Value doc = *std::move(parsed);
  json::Value* fields = nullptr;
  if (auto* f = doc.Find("fields"); f != nullptr && f->is_object()) {
    fields = &doc["fields"];
  }
  if (fields == nullptr || fields->as_object().empty()) {
    doc["mutation"] = json::Value(RandomToken(8));
    return json::WriteCompact(doc);
  }
  // Rewrite enough field values to change ~pd of the document bytes.
  auto& members = fields->as_object();
  size_t field_count = members.size();
  size_t bytes_to_change =
      std::max<size_t>(1, static_cast<size_t>(pd * payload.size()));
  size_t fields_to_change = std::clamp<size_t>(
      bytes_to_change / kFieldValueBytes, 1, field_count);
  // Pick distinct fields.
  auto picks = rng_.SampleWithoutReplacement(field_count, fields_to_change);
  std::sort(picks.begin(), picks.end());
  size_t index = 0;
  size_t pick_pos = 0;
  for (auto& [name, value] : members) {
    if (pick_pos < picks.size() && index == picks[pick_pos]) {
      value = json::Value(RandomToken(kFieldValueBytes));
      ++pick_pos;
    }
    ++index;
  }
  return json::WriteCompact(doc);
}

}  // namespace workload
}  // namespace rstore
