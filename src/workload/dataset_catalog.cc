#include "workload/dataset_catalog.h"

namespace rstore {
namespace workload {

namespace {

DatasetConfig Make(const char* name, uint32_t versions, uint32_t records,
                   double update_fraction, bool zipf, double branch_prob,
                   uint32_t record_bytes, uint64_t seed) {
  DatasetConfig config;
  config.name = name;
  config.num_versions = versions;
  config.records_per_version = records;
  config.update_fraction = update_fraction;
  config.zipf_updates = zipf;
  config.branch_probability = branch_prob;
  config.record_size_bytes = record_bytes;
  config.seed = seed;
  return config;
}

}  // namespace

std::vector<CatalogEntry> DatasetCatalog() {
  // Scaled counterparts of paper Table 2 (see header): A* are linear chains,
  // B* lightly branched deep trees, C*/D* heavily branched shallow trees,
  // E/F the large variants. The defining knobs — update %, random/skewed
  // selection, and relative depth ordering A > B > C > D — match the paper.
  std::vector<CatalogEntry> catalog;
  catalog.push_back({"A0", Make("A0", 150, 1500, 0.50, false, 0.00, 200, 11)});
  catalog.push_back({"A1", Make("A1", 150, 1500, 0.05, true, 0.00, 200, 12)});
  catalog.push_back({"A2", Make("A2", 150, 1500, 0.05, false, 0.00, 200, 13)});
  catalog.push_back({"B0", Make("B0", 300, 1500, 0.05, true, 0.02, 200, 21)});
  catalog.push_back({"B1", Make("B1", 300, 1500, 0.05, false, 0.02, 200, 22)});
  catalog.push_back({"B2", Make("B2", 300, 1500, 0.10, false, 0.02, 200, 23)});
  catalog.push_back({"C0", Make("C0", 800, 500, 0.10, false, 0.25, 200, 31)});
  catalog.push_back({"C1", Make("C1", 800, 500, 0.01, false, 0.25, 200, 32)});
  catalog.push_back({"C2", Make("C2", 800, 500, 0.05, true, 0.25, 200, 33)});
  catalog.push_back({"D0", Make("D0", 800, 500, 0.10, false, 0.45, 200, 41)});
  catalog.push_back({"D1", Make("D1", 800, 500, 0.01, false, 0.45, 200, 42)});
  catalog.push_back({"D2", Make("D2", 800, 500, 0.05, true, 0.45, 200, 43)});
  catalog.push_back({"E", Make("E", 1000, 500, 0.10, false, 0.25, 400, 51)});
  catalog.push_back({"F", Make("F", 400, 1500, 0.20, false, 0.05, 400, 61)});
  return catalog;
}

Result<DatasetConfig> CatalogConfig(const std::string& name) {
  for (const CatalogEntry& entry : DatasetCatalog()) {
    if (name == entry.name) return entry.config;
  }
  return Status::NotFound("no catalog dataset named " + name);
}

}  // namespace workload
}  // namespace rstore
