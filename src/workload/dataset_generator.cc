#include "workload/dataset_generator.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "workload/record_generator.h"

namespace rstore {
namespace workload {

namespace {

/// Per-version live record table used while growing the graph: primary-key
/// index -> current composite key (or absent). Copied on branch, mutated on
/// chain extension — branches are rare enough that copying is fine.
struct LiveSet {
  // key index -> current composite key version (kInvalidVersion = deleted).
  std::vector<VersionId> origin;

  size_t live_count = 0;
};

std::string KeyName(uint32_t index) {
  // Zero-padded so lexicographic key order matches numeric order, making
  // range queries intuitive.
  return StringPrintf("key%08u", index);
}

}  // namespace

GeneratedDataset GenerateDataset(const DatasetConfig& config) {
  RSTORE_CHECK(config.num_versions >= 1);
  GeneratedDataset out;
  Random rng(config.seed);
  RecordGenerator records(config.record_size_bytes, config.seed ^ 0x9e37);

  VersionedDataset& ds = out.dataset;
  ds.graph.AddRoot();
  ds.deltas.resize(1);

  // Root version: records_per_version fresh records.
  uint32_t next_key_index = 0;
  LiveSet root_live;
  for (uint32_t i = 0; i < config.records_per_version; ++i) {
    uint32_t key_index = next_key_index++;
    CompositeKey ck(KeyName(key_index), 0);
    ds.deltas[0].added.push_back(ck);
    out.payloads.emplace(ck, records.Generate(ck.key));
    root_live.origin.push_back(0);
  }
  root_live.live_count = config.records_per_version;

  // live[v] kept for the versions that may still be branched from. To bound
  // memory we keep every version's LiveSet (origin vector of ~#keys u32);
  // at catalog scale this is tens of MB at most.
  std::vector<LiveSet> live;
  live.reserve(config.num_versions);
  live.push_back(std::move(root_live));

  ZipfGenerator zipf(std::max<uint32_t>(config.records_per_version, 2),
                     config.zipf_theta);

  VersionId tip = 0;
  for (VersionId v = 1; v < config.num_versions; ++v) {
    VersionId parent = tip;
    if (config.branch_probability > 0 &&
        rng.NextDouble() < config.branch_probability) {
      parent = static_cast<VersionId>(rng.Uniform(v));
    }
    (void)*ds.graph.AddVersion({parent});
    VersionDelta delta;
    LiveSet current = live[parent];  // copy-on-branch

    const size_t key_space = current.origin.size();
    auto pick_live_key = [&]() -> int64_t {
      // Try a few times to hit a live key; fall back to linear scan.
      for (int attempt = 0; attempt < 32; ++attempt) {
        uint64_t index = config.zipf_updates
                             ? zipf.Sample(&rng) % key_space
                             : rng.Uniform(key_space);
        if (current.origin[index] != kInvalidVersion) {
          return static_cast<int64_t>(index);
        }
      }
      for (size_t i = 0; i < key_space; ++i) {
        if (current.origin[i] != kInvalidVersion) {
          return static_cast<int64_t>(i);
        }
      }
      return -1;
    };

    // Updates: mutate Pd-bounded copies of the parent records.
    uint64_t updates = static_cast<uint64_t>(config.update_fraction *
                                             current.live_count);
    std::unordered_map<uint32_t, bool> touched;
    for (uint64_t u = 0; u < updates; ++u) {
      int64_t key_index = pick_live_key();
      if (key_index < 0) break;
      if (touched.count(static_cast<uint32_t>(key_index))) continue;
      touched[static_cast<uint32_t>(key_index)] = true;
      CompositeKey old_ck(KeyName(static_cast<uint32_t>(key_index)),
                          current.origin[key_index]);
      CompositeKey new_ck(old_ck.key, v);
      delta.removed.push_back(old_ck);
      delta.added.push_back(new_ck);
      out.payloads.emplace(new_ck,
                           records.Mutate(out.payloads.at(old_ck), config.pd));
      current.origin[key_index] = v;
    }

    // Deletes.
    uint64_t deletes = static_cast<uint64_t>(config.delete_fraction *
                                             current.live_count);
    for (uint64_t d = 0; d < deletes; ++d) {
      int64_t key_index = pick_live_key();
      if (key_index < 0) break;
      if (touched.count(static_cast<uint32_t>(key_index))) continue;
      touched[static_cast<uint32_t>(key_index)] = true;
      delta.removed.push_back(CompositeKey(
          KeyName(static_cast<uint32_t>(key_index)),
          current.origin[key_index]));
      current.origin[key_index] = kInvalidVersion;
      --current.live_count;
    }

    // Inserts: brand-new primary keys (the paper's evolving-schema EHRs).
    uint64_t inserts = static_cast<uint64_t>(config.insert_fraction *
                                             current.live_count);
    for (uint64_t i = 0; i < inserts; ++i) {
      uint32_t key_index = next_key_index++;
      CompositeKey ck(KeyName(key_index), v);
      delta.added.push_back(ck);
      out.payloads.emplace(ck, records.Generate(ck.key));
      // The origin vector is indexed by GLOBAL key index; branches may have
      // gaps for keys inserted on other branches (marked dead here).
      current.origin.resize(key_index + 1, kInvalidVersion);
      current.origin[key_index] = v;
      ++current.live_count;
    }

    ds.deltas.push_back(std::move(delta));
    live.push_back(std::move(current));
    tip = v;
  }

  // Stats (paper Table 2 columns).
  out.stats.name = config.name;
  out.stats.num_versions = config.num_versions;
  out.stats.avg_depth = ds.graph.AverageLeafDepth();
  out.stats.update_fraction = config.update_fraction;
  out.stats.zipf_updates = config.zipf_updates;
  out.stats.unique_records = ds.CountDistinctRecords();
  for (const auto& [ck, payload] : out.payloads) {
    out.stats.unique_record_bytes += payload.size();
  }
  uint64_t total_membership = ds.TotalMembership();
  out.stats.avg_records_per_version =
      total_membership / config.num_versions;
  double avg_record_size =
      out.stats.unique_records == 0
          ? 0
          : static_cast<double>(out.stats.unique_record_bytes) /
                static_cast<double>(out.stats.unique_records);
  out.stats.total_bytes =
      static_cast<uint64_t>(avg_record_size * total_membership);
  return out;
}

std::string StatsHeader() {
  return StringPrintf(
      "%-8s %9s %9s %12s %8s %7s %12s %14s %12s", "Dataset", "#versions",
      "Avg.depth", "~#recs/ver", "%update", "Type", "#unique_recs",
      "unique_bytes", "total_bytes");
}

std::string FormatStatsRow(const DatasetStats& stats) {
  return StringPrintf(
      "%-8s %9u %9.1f %12llu %8.0f %7s %12llu %14s %12s",
      stats.name.c_str(), stats.num_versions, stats.avg_depth,
      static_cast<unsigned long long>(stats.avg_records_per_version),
      stats.update_fraction * 100.0,
      stats.zipf_updates ? "Skewed" : "Random",
      static_cast<unsigned long long>(stats.unique_records),
      HumanBytes(stats.unique_record_bytes).c_str(),
      HumanBytes(stats.total_bytes).c_str());
}

}  // namespace workload
}  // namespace rstore
