#ifndef RSTORE_WORKLOAD_DATASET_GENERATOR_H_
#define RSTORE_WORKLOAD_DATASET_GENERATOR_H_

#include <cstdint>
#include <string>

#include "core/record.h"
#include "version/dataset.h"

namespace rstore {
namespace workload {

/// Parameters of a synthetic versioned dataset, following the generation
/// method of the paper's §5.1 (which follows Bhattacherjee et al. [4]): a
/// version graph grown from a single root, each new version derived from an
/// existing one by updating/deleting/inserting records, with either uniform
/// or Zipf-skewed record selection and Pd-bounded record mutation.
struct DatasetConfig {
  std::string name = "custom";
  uint32_t num_versions = 100;
  /// Records in the root version (versions stay near this size since
  /// inserts and deletes are balanced).
  uint32_t records_per_version = 1000;
  /// Fraction of a version's records updated per derivation (paper Table 2
  /// "%update": 0.01 - 0.5).
  double update_fraction = 0.05;
  /// Skewed (Zipf) vs uniform record selection for updates/deletes.
  bool zipf_updates = false;
  double zipf_theta = 0.99;
  /// Fraction of records inserted / deleted per version (small).
  double insert_fraction = 0.002;
  double delete_fraction = 0.002;
  /// Probability that a new version branches from a random earlier version
  /// instead of continuing the current tip. 0 = linear chain; the paper's
  /// datasets range from chains (A) to heavily branched trees (D).
  double branch_probability = 0.0;
  /// Approximate serialized record size in bytes.
  uint32_t record_size_bytes = 200;
  /// Bounded per-update record change (Fig. 10's Pd).
  double pd = 0.10;
  uint64_t seed = 1;
};

/// Summary statistics mirroring the columns of paper Table 2.
struct DatasetStats {
  std::string name;
  uint32_t num_versions = 0;
  double avg_depth = 0;
  uint64_t avg_records_per_version = 0;
  double update_fraction = 0;
  bool zipf_updates = false;
  uint64_t unique_records = 0;
  uint64_t unique_record_bytes = 0;
  uint64_t total_bytes = 0;  // sum over versions of version size
};

struct GeneratedDataset {
  VersionedDataset dataset;
  RecordPayloadMap payloads;
  DatasetStats stats;
};

/// Generates a dataset (graph + deltas + payloads) from `config`.
/// Deterministic given config.seed. The result always passes
/// VersionedDataset::Validate().
GeneratedDataset GenerateDataset(const DatasetConfig& config);

/// Formats `stats` as one Table 2-style row.
std::string FormatStatsRow(const DatasetStats& stats);
/// The Table 2 header matching FormatStatsRow.
std::string StatsHeader();

}  // namespace workload
}  // namespace rstore

#endif  // RSTORE_WORKLOAD_DATASET_GENERATOR_H_
