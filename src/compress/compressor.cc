#include "compress/compressor.h"

#include "compress/lz_codec.h"

namespace rstore {

namespace {

class NoneCompressor : public Compressor {
 public:
  CompressionType type() const override { return CompressionType::kNone; }

  void Compress(Slice input, std::string* output) const override {
    output->assign(input.data(), input.size());
  }

  Status Decompress(Slice input, std::string* output) const override {
    output->assign(input.data(), input.size());
    return Status::OK();
  }
};

class LZCompressor : public Compressor {
 public:
  CompressionType type() const override { return CompressionType::kLZ; }

  void Compress(Slice input, std::string* output) const override {
    lz::Compress(input, output);
  }

  Status Decompress(Slice input, std::string* output) const override {
    return lz::Decompress(input, output);
  }
};

}  // namespace

const Compressor* GetCompressor(CompressionType type) {
  static const NoneCompressor none;
  static const LZCompressor lz;
  switch (type) {
    case CompressionType::kNone:
      return &none;
    case CompressionType::kLZ:
      return &lz;
  }
  return &none;
}

}  // namespace rstore
