#include "compress/delta_codec.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/coding.h"

namespace rstore {
namespace delta_codec {

namespace {

constexpr size_t kAnchor = 8;     // bytes hashed per anchor
constexpr size_t kMinCopy = 12;   // below this a COPY costs more than ADD

inline uint64_t Hash8(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v * 0x9e3779b97f4a7c15ull;
}

void EmitAdd(const unsigned char* data, size_t start, size_t end,
             std::string* out) {
  if (end <= start) return;
  size_t len = end - start;
  PutVarint64(out, (len << 1) | 0);
  out->append(reinterpret_cast<const char*>(data + start), len);
}

}  // namespace

void Encode(Slice base, Slice target, std::string* delta) {
  delta->clear();
  PutVarint64(delta, target.size());
  if (target.empty()) return;

  const unsigned char* b = reinterpret_cast<const unsigned char*>(base.data());
  const unsigned char* t =
      reinterpret_cast<const unsigned char*>(target.data());
  const size_t bn = base.size();
  const size_t tn = target.size();

  if (bn < kAnchor) {
    EmitAdd(t, 0, tn, delta);
    return;
  }

  // Index every 4th anchor of the base (dense enough for record-sized
  // payloads, 4x cheaper to build).
  std::unordered_map<uint64_t, uint32_t> index;
  index.reserve(bn / 4 + 1);
  for (size_t i = 0; i + kAnchor <= bn; i += 4) {
    index.emplace(Hash8(b + i), static_cast<uint32_t>(i));
  }

  size_t add_start = 0;
  size_t i = 0;
  while (i + kAnchor <= tn) {
    auto it = index.find(Hash8(t + i));
    bool matched = false;
    if (it != index.end()) {
      size_t bp = it->second;
      if (std::memcmp(b + bp, t + i, kAnchor) == 0) {
        // Extend forward.
        size_t fwd = kAnchor;
        while (bp + fwd < bn && i + fwd < tn && b[bp + fwd] == t[i + fwd]) {
          ++fwd;
        }
        // Extend backward into the pending ADD region.
        size_t back = 0;
        while (bp > back && i > add_start + back && b[bp - back - 1] == t[i - back - 1]) {
          ++back;
        }
        size_t copy_len = fwd + back;
        if (copy_len >= kMinCopy) {
          EmitAdd(t, add_start, i - back, delta);
          PutVarint64(delta, (copy_len << 1) | 1);
          PutVarint64(delta, bp - back);
          i += fwd;
          add_start = i;
          matched = true;
        }
      }
    }
    if (!matched) ++i;
  }
  EmitAdd(t, add_start, tn, delta);
}

Status Apply(Slice base, Slice delta, std::string* target) {
  target->clear();
  Slice input = delta;
  uint64_t expected;
  RSTORE_RETURN_IF_ERROR(GetVarint64(&input, &expected));
  // Untrusted header: bound the up-front allocation.
  target->reserve(std::min<uint64_t>(expected, 1u << 20));
  while (!input.empty()) {
    uint64_t token;
    RSTORE_RETURN_IF_ERROR(GetVarint64(&input, &token));
    uint64_t len = token >> 1;
    if ((token & 1) == 0) {
      if (input.size() < len) {
        return Status::Corruption("delta: truncated ADD data");
      }
      target->append(input.data(), len);
      input.RemovePrefix(len);
    } else {
      uint64_t offset;
      RSTORE_RETURN_IF_ERROR(GetVarint64(&input, &offset));
      if (offset + len > base.size()) {
        return Status::Corruption("delta: COPY out of base range");
      }
      target->append(base.data() + offset, len);
    }
  }
  if (target->size() != expected) {
    return Status::Corruption("delta: size mismatch after apply");
  }
  return Status::OK();
}

}  // namespace delta_codec
}  // namespace rstore
